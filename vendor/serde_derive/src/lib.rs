//! Derive macros for the vendored `serde` stand-in.
//!
//! Each macro scans the raw token stream for the `struct`/`enum` keyword,
//! takes the following identifier as the type name, and emits an empty
//! marker-trait impl. Declaring `attributes(serde)` lets the derives accept
//! field attributes like `#[serde(skip, default)]` without `syn`/`quote`
//! (neither is available offline). Generic types are not supported — none
//! of the workspace's serde-derived types are generic.

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tree) = tokens.next() {
        if let TokenTree::Ident(ident) = tree {
            let word = ident.to_string();
            if word == "struct" || word == "enum" || word == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde_derive stub: could not find a type name in the derive input");
}

/// Emits `impl ::serde::Serialize for <Type> {}`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("serde_derive stub: generated impl must parse")
}

/// Emits `impl<'de> ::serde::Deserialize<'de> for <Type> {}`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("serde_derive stub: generated impl must parse")
}
