//! Offline vendored stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and report
//! types so they are *ready* for serialization, but no code path actually
//! serializes them yet (reports emit CSV by hand). This stand-in therefore
//! only has to make the derives compile: the traits are markers and the
//! derive macros emit empty impls while accepting `#[serde(...)]` field
//! attributes such as `#[serde(skip, default)]`.
//!
//! When the real `serde` becomes available the vendored path dependency can
//! be swapped back to the registry version without touching any call site.

#![forbid(unsafe_code)]

/// Marker for types that can be serialized (no-op in the vendored stub).
pub trait Serialize {}

/// Marker for types that can be deserialized (no-op in the vendored stub).
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
