//! Offline vendored stand-in for the `rand` crate.
//!
//! The build container has no network access and no registry cache, so the
//! workspace vendors the *subset* of the `rand` 0.10 API it actually uses:
//! [`rngs::StdRng`] (here a xoshiro256++ generator seeded through
//! SplitMix64), [`SeedableRng::seed_from_u64`], [`RngExt::random_range`]
//! over integer and float ranges, and [`seq::SliceRandom::shuffle`].
//!
//! Determinism is the only contract the workspace relies on (every
//! experiment seeds its RNGs explicitly); the exact stream differs from
//! upstream `rand`, which is fine because no test pins upstream values.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods over [`Rng`] (mirrors `rand`'s `Rng`/`RngExt` split).
pub trait RngExt: Rng {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// A range that can produce one uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly samplable between two bounds.
///
/// [`SampleRange`] is implemented generically over this trait (as in
/// upstream `rand`) so unsuffixed literals like `0.0..1.0` still infer
/// their float type from the surrounding expression.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! float_uniform {
    ($t:ty, $bits:expr, $shift:expr) => {
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let u = (rng.next_u64() >> $shift) as $t / (1u64 << $bits) as $t;
                lo + (hi - lo) * u
            }
            fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let u = (rng.next_u64() >> $shift) as $t / ((1u64 << $bits) - 1) as $t;
                lo + (hi - lo) * u
            }
        }
    };
}

float_uniform!(f32, 24, 40);
float_uniform!(f64, 53, 11);

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Seedable random sources.
pub trait SeedableRng: Sized {
    /// Builds a generator whose full state derives from one `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seeding (deterministic, fast, statistically solid for simulation).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but keep the guard local.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{Rng, RngExt};

    /// In-place random permutation of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffles the slice.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let va: Vec<f32> = (0..32).map(|_| a.random_range(0.0f32..1.0)).collect();
        let vb: Vec<f32> = (0..32).map(|_| b.random_range(0.0f32..1.0)).collect();
        assert_eq!(va, vb);
        assert!(va.iter().all(|v| (0.0..1.0).contains(v)));
    }

    #[test]
    fn integer_ranges_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..64 {
            let v: i32 = rng.random_range(-2..=2);
            assert!((-2..=2).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
