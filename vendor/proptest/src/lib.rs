//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, numeric-range and
//! [`collection::vec`] strategies, [`arbitrary::any`], the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`]
//! macros, and [`test_runner::ProptestConfig`].
//!
//! Differences from upstream are intentional simplifications: cases are
//! drawn from a deterministic per-test RNG (seeded from the test name) with
//! no shrinking, and a rejected case (`prop_assume!`) simply redraws. The
//! property-test *contract* — run each body over `cases` random inputs and
//! fail loudly with the offending message — is preserved.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Post-processes generated values with `map`.
        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, map }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.inner.random_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.inner.random_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(f32, f64, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);
}

pub mod arbitrary {
    //! Type-directed default strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.inner.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.inner.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Default)]
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical unconstrained strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec`]: an exact `usize` or a
    /// (half-open or inclusive) `usize` range.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            rng.inner.random_range(self.clone())
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            rng.inner.random_range(self.clone())
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// comes from `len`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    //! Per-test configuration, RNG, and case outcomes.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Number of cases (and little else) — mirrors upstream's config type.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many accepted cases each property must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` accepted cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// Deterministic per-test random source (seeded from the test name, so
    /// failures reproduce without recording a seed).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        pub(crate) inner: StdRng,
    }

    impl TestRng {
        /// Builds the RNG for the named test via an FNV-1a hash of the name.
        pub fn for_test(name: &str) -> Self {
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(hash),
            }
        }
    }

    /// Outcome of one drawn case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case violated a `prop_assume!` precondition; redraw it.
        Reject,
        /// The property failed with this message.
        Fail(String),
    }
}

/// Defines property tests: an optional `#![proptest_config(..)]` inner
/// attribute followed by `#[test] fn name(arg in strategy, ..) { body }`
/// items. Each body runs over `config.cases` accepted random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    (@run ($config:expr) $(
        #[test]
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut accepted = 0u32;
            let mut drawn = 0u32;
            while accepted < config.cases {
                drawn += 1;
                assert!(
                    drawn <= config.cases.saturating_mul(100).saturating_add(1000),
                    "property '{}': too many inputs rejected by prop_assume!",
                    stringify!($name),
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                )+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("property '{}' failed on case {}: {}", stringify!($name), drawn, msg)
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case (with an optional formatted message) if the
/// condition is false. Usable in any function returning
/// `Result<_, TestCaseError>`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Rejects (redraws) the current case if the precondition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_vecs_respect_bounds(
            x in -3.0f32..3.0,
            v in prop::collection::vec(any::<u8>(), 4..9),
        ) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((4..9).contains(&v.len()));
        }

        #[test]
        fn assume_redraws_without_failing(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(mapped in (1usize..5).prop_map(|n| n * 2)) {
            prop_assert!(mapped % 2 == 0 && (2..10).contains(&mapped));
        }
    }
}
