//! Offline vendored stand-in for `criterion`.
//!
//! Provides the measurement surface the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by plain
//! [`std::time::Instant`] wall-clock sampling. No statistical analysis,
//! plotting, or baseline storage: each benchmark reports min/median/mean
//! time per iteration over `sample_size` samples, which is enough to
//! compare kernels locally.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (kept for API parity; the
/// vendored harness times every batch individually regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per sample upstream; one per sample here.
    SmallInput,
    /// Large inputs: few per sample.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Times one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples_ns: Vec::with_capacity(sample_size),
        }
    }

    /// Calibrates an iteration count (~5 ms per sample), then records
    /// `sample_size` timed samples of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / per_sample as f64;
            self.samples_ns.push(ns);
        }
    }

    /// Like [`Bencher::iter`] but rebuilds the input with `setup` outside
    /// the timed section before every call.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples_ns.push(start.elapsed().as_nanos() as f64);
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<44} no samples recorded");
            return;
        }
        self.samples_ns.sort_by(f64::total_cmp);
        let min = self.samples_ns[0];
        let median = self.samples_ns[self.samples_ns.len() / 2];
        let mean = self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64;
        println!(
            "{id:<44} min {} | median {} | mean {}",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
        );
        self.samples_ns.clear();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:8.3} s ", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:8.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:8.3} us", ns / 1e3)
    } else {
        format!("{ns:8.1} ns")
    }
}

/// Benchmark harness entry point (mirrors upstream's builder surface).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `routine` under the timer and prints a one-line summary.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher);
        bencher.report(id);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing a prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        self.criterion.bench_function(&full, routine);
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one group runner, with an optional
/// custom [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `fn main` running the listed groups (requires the bench
/// target to set `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls >= 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default().sample_size(4);
        let mut setups = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 4);
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.bench_function("inner", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
