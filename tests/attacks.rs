//! Integration tests of the three encoding attacks from the paper's
//! background section, exercised against real trained models.

use qce_attack::correlation::SignConvention;
use qce_attack::{lsb, sign, CorrelationRegularizer, Decoder, EncodingLayout, GroupSpec};
use qce_data::SynthCifar;
use qce_metrics::mape;
use qce_nn::models::ResNetLite;
use qce_nn::{Network, Regularizer, TrainConfig, Trainer};
use qce_quant::{quantize_network, LinearQuantizer, WeightedEntropyQuantizer};

fn train_with_attack(lambda: f32, seed: u64) -> (Network, EncodingLayout, qce_data::Dataset) {
    let data = SynthCifar::new(8).classes(4).generate(200, seed).unwrap();
    let mut net = ResNetLite::builder()
        .input(3, 8)
        .classes(4)
        .stage_channels(&[8, 16])
        .blocks_per_stage(1)
        .build(seed)
        .unwrap();
    let specs = GroupSpec::uniform(net.weight_slots().len(), lambda);
    let layout = EncodingLayout::plan(&net, &specs, data.images()).unwrap();
    let mut reg = CorrelationRegularizer::new(layout.clone(), SignConvention::Positive);
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 3,
        batch_size: 32,
        lr: 0.05,
        ..TrainConfig::default()
    });
    let x = data.to_tensor();
    let y = data.labels().to_vec();
    trainer.fit(&mut net, &x, &y, Some(&mut reg)).unwrap();
    (net, layout, data)
}

#[test]
fn correlation_attack_end_to_end_extraction() {
    let (net, layout, data) = train_with_attack(200.0, 41);
    let decoder = Decoder::new(layout, SignConvention::Positive);
    let decoded = decoder.decode(&net.flat_weights()).unwrap();
    assert!(!decoded.is_empty());
    let mean_mape: f32 = decoded
        .iter()
        .map(|d| mape(data.image(d.target_index), &d.image))
        .sum::<f32>()
        / decoded.len() as f32;
    // Random decoding would sit near 85; the attack should be far below.
    assert!(mean_mape < 35.0, "mean MAPE {mean_mape}");
}

#[test]
fn correlation_survives_mild_quantization_but_weq_hurts_it() {
    let (mut net, layout, data) = train_with_attack(200.0, 43);
    let decoder = Decoder::new(layout, SignConvention::Positive);
    let mean_mape = |net: &Network| -> f32 {
        let decoded = decoder.decode(&net.flat_weights()).unwrap();
        decoded
            .iter()
            .map(|d| mape(data.image(d.target_index), &d.image))
            .sum::<f32>()
            / decoded.len() as f32
    };
    let float_mape = mean_mape(&net);
    let state = net.state();

    // 8-bit linear quantization barely moves the needle.
    quantize_network(&mut net, &LinearQuantizer::new(256).unwrap()).unwrap();
    let linear8 = mean_mape(&net);
    assert!(linear8 < float_mape + 3.0, "{float_mape} -> {linear8}");

    // 3-bit weighted-entropy quantization visibly degrades it.
    net.load_state(&state).unwrap();
    quantize_network(&mut net, &WeightedEntropyQuantizer::new(8).unwrap()).unwrap();
    let weq3 = mean_mape(&net);
    assert!(weq3 > linear8, "weq3 {weq3} vs linear8 {linear8}");
}

#[test]
fn lsb_attack_full_capacity_round_trip_on_model_weights() {
    let net = ResNetLite::builder()
        .input(3, 8)
        .classes(4)
        .stage_channels(&[8, 16])
        .blocks_per_stage(1)
        .build(45)
        .unwrap();
    let mut flat = net.flat_weights();
    let capacity_bytes = lsb::capacity_bits(flat.len(), 8) / 8;
    let payload: Vec<u8> = (0..capacity_bytes).map(|i| (i * 131 + 17) as u8).collect();
    lsb::embed(&mut flat, &payload, 8).unwrap();
    let recovered = lsb::extract(&flat, 8, payload.len()).unwrap();
    assert_eq!(recovered, payload);
}

#[test]
fn lsb_attack_is_destroyed_by_any_codebook_quantization() {
    let mut net = ResNetLite::builder()
        .input(3, 8)
        .classes(4)
        .stage_channels(&[8, 16])
        .blocks_per_stage(1)
        .build(46)
        .unwrap();
    let mut flat = net.flat_weights();
    let payload: Vec<u8> = (0..256).map(|i| (i * 37) as u8).collect();
    lsb::embed(&mut flat, &payload, 4).unwrap();
    net.set_flat_weights(&flat).unwrap();
    // Even a mild 4-bit quantization of the released model...
    // (16 levels, small enough that no tensor falls back to the
    // lossless exact codebook)
    quantize_network(&mut net, &LinearQuantizer::new(16).unwrap()).unwrap();
    let recovered = lsb::extract(&net.flat_weights(), 4, payload.len()).unwrap();
    let rate = lsb::bit_recovery_rate(&payload, &recovered);
    // ...reduces recovery to coin flipping.
    assert!(rate < 0.65, "LSB payload survived quantization: {rate}");
}

#[test]
fn sign_attack_survives_quantization_unlike_lsb() {
    let mut net = ResNetLite::builder()
        .input(3, 8)
        .classes(4)
        .stage_channels(&[8, 16])
        .blocks_per_stage(1)
        .build(47)
        .unwrap();
    let payload: Vec<u8> = (0..32).map(|i| (i * 53 + 5) as u8).collect();
    let mut reg = sign::SignEncodingRegularizer::with_margin(&payload, 20.0, 0.1).unwrap();
    // Drive the signs with pure regularizer descent.
    for _ in 0..300 {
        net.zero_grad();
        reg.apply(&mut net).unwrap();
        let mut params = net.params_mut();
        for p in params.iter_mut() {
            if p.kind() == qce_nn::ParamKind::Weight {
                let g = p.grad().clone();
                p.value_mut().axpy(-0.5, &g).unwrap();
            }
        }
    }
    assert_eq!(
        sign::extract(&net.flat_weights(), payload.len()).unwrap(),
        payload
    );
    // Sign-preserving quantization keeps the payload readable.
    quantize_network(&mut net, &LinearQuantizer::new(16).unwrap()).unwrap();
    let agreement = sign::sign_agreement(&net.flat_weights(), &payload);
    assert!(agreement > 0.9, "agreement after quantization {agreement}");
}

#[test]
fn absolute_sign_convention_resolves_polarity_at_evaluation() {
    let data = SynthCifar::new(8).classes(4).generate(120, 48).unwrap();
    let net = ResNetLite::builder()
        .input(3, 8)
        .classes(4)
        .stage_channels(&[8, 16])
        .blocks_per_stage(1)
        .build(48)
        .unwrap();
    let specs = GroupSpec::uniform(net.weight_slots().len(), 1.0);
    let layout = EncodingLayout::plan(&net, &specs, data.images()).unwrap();
    // Synthesize anti-correlated weights (what Absolute training may do).
    let mut flat = net.flat_weights();
    let g = &layout.groups()[0];
    let mut stream = g.extract(&flat);
    for (i, &p) in g.target().iter().enumerate() {
        stream[i] = -0.001 * p + 0.1;
    }
    let mut acc = vec![0.0f32; flat.len()];
    g.scatter_add(&stream, &mut acc);
    for &(off, len) in g.flat_ranges() {
        flat[off..off + len].copy_from_slice(&acc[off..off + len]);
    }
    let decoder = Decoder::new(layout.clone(), SignConvention::Absolute);
    let straight = decoder.decode_group(&flat, 0, false).unwrap();
    let flipped = decoder.decode_group(&flat, 0, true).unwrap();
    let err = |set: &[qce_attack::DecodedImage]| -> f32 {
        set.iter()
            .map(|d| mape(data.image(d.target_index), &d.image))
            .sum::<f32>()
            / set.len() as f32
    };
    assert!(err(&flipped) < 10.0);
    assert!(err(&straight) > err(&flipped));
}

#[test]
fn byte_payload_rides_the_correlation_channel() {
    use qce_attack::payload;
    // A "credit card numbers" style secret: structured bytes, not pixels.
    let secret: Vec<u8> = (0..768).map(|i| ((i * 131 + 41) % 251) as u8).collect();
    let targets = payload::bytes_as_targets(&secret, 192).unwrap();

    let data = SynthCifar::new(8).classes(4).generate(200, 61).unwrap();
    let mut net = ResNetLite::builder()
        .input(3, 8)
        .classes(4)
        .stage_channels(&[8, 16])
        .blocks_per_stage(1)
        .build(61)
        .unwrap();
    let specs = GroupSpec::uniform(net.weight_slots().len(), 200.0);
    let layout = EncodingLayout::plan(&net, &specs, &targets).unwrap();
    let mut reg = CorrelationRegularizer::new(layout.clone(), SignConvention::Positive);
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 3,
        batch_size: 32,
        lr: 0.05,
        ..TrainConfig::default()
    });
    let x = data.to_tensor();
    let y = data.labels().to_vec();
    trainer.fit(&mut net, &x, &y, Some(&mut reg)).unwrap();

    // Extract the payload from the released weights.
    let decoder = Decoder::new(layout, SignConvention::Positive);
    let decoded = decoder.decode(&net.flat_weights()).unwrap();
    let mut by_index = decoded;
    by_index.sort_by_key(|d| d.target_index);
    let chunks: Vec<_> = by_index.iter().map(|d| d.image.clone()).collect();
    let recovered = payload::targets_as_bytes(&chunks, secret.len());

    // The analog channel recovers the bytes to within a few units — the
    // high bits of every byte leak verbatim.
    let mae = payload::mean_byte_error(&secret, &recovered);
    assert!(mae < 12.0, "mean byte error {mae}");
}
