//! Checkpoint/resume integration tests: a warm cache must reproduce a
//! cold run bit for bit, and a damaged cache must degrade to
//! recomputation, never to a wrong result.
//!
//! Caches are attached with [`AttackFlow::with_cache`] (not `QCE_CACHE`)
//! so parallel tests cannot race on process environment, and every test
//! uses its own temp directory. Telemetry counters are process-global,
//! so assertions on them are `>=` deltas.

use std::sync::atomic::{AtomicU64, Ordering};

use qce::{AttackFlow, BandRule, FlowConfig, FlowOutcome, Grouping, QuantConfig, QuantMethod};
use qce_data::{Dataset, SynthCifar};
use qce_store::StageCache;

fn temp_cache(tag: &str) -> StageCache {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "qce-flow-cache-{}-{}-{}",
        tag,
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    StageCache::at(dir)
}

fn data() -> Dataset {
    SynthCifar::new(8).classes(4).generate(160, 5).unwrap()
}

fn config() -> FlowConfig {
    FlowConfig {
        grouping: Grouping::Uniform(5.0),
        band: BandRule::FirstN,
        quant: Some(QuantConfig {
            method: QuantMethod::Linear,
            bits: 4,
            finetune_epochs: 1,
            finetune_lr: 0.01,
            regularize_finetune: true,
        }),
        epochs: 2,
        ..FlowConfig::tiny()
    }
}

/// Everything [`FlowOutcome`] promises to reproduce must match between
/// the two runs — weights bitwise, reports via `StageReport::eq`
/// (result fields; wall times are observational), histories bitwise.
fn assert_outcomes_identical(a: &FlowOutcome, b: &FlowOutcome) {
    assert_eq!(a.network.flat_weights(), b.network.flat_weights());
    assert_eq!(a.selection_indices, b.selection_indices);
    assert_eq!(a.targets, b.targets);
    assert_eq!(a.target_labels, b.target_labels);
    assert_eq!(a.pre_quant, b.pre_quant);
    assert_eq!(a.post_quant, b.post_quant);
    assert_eq!(a.training.epoch_losses, b.training.epoch_losses);
    assert_eq!(a.training.epoch_penalties, b.training.epoch_penalties);
    assert_eq!(a.training.rollbacks, b.training.rollbacks);
    assert_eq!(a.compression_ratio, b.compression_ratio);
}

#[test]
fn warm_run_skips_stages_and_is_bitwise_identical() {
    let dataset = data();
    let cache = temp_cache("warm");

    // Reference run without any cache: what the pipeline computes cold.
    let reference = AttackFlow::new(config()).run(&dataset).unwrap();

    // Cold run against the cache populates every stage checkpoint.
    let writes_before = qce_telemetry::counter("store.write").get();
    let cold = AttackFlow::new(config())
        .with_cache(cache.clone())
        .run(&dataset)
        .unwrap();
    assert!(
        qce_telemetry::counter("store.write").get() - writes_before >= 5,
        "expected checkpoints for select, train, quantize and both evaluations"
    );
    assert_outcomes_identical(&reference, &cold);

    // Warm run: select, train, quantize and both evaluations must all
    // come from the cache, and the outcome must not change at all.
    let hits_before = qce_telemetry::counter("store.hit").get();
    let warm = AttackFlow::new(config())
        .with_cache(cache.clone())
        .run(&dataset)
        .unwrap();
    assert!(
        qce_telemetry::counter("store.hit").get() - hits_before >= 5,
        "warm run should hit every stage checkpoint"
    );
    assert_outcomes_identical(&reference, &warm);

    std::fs::remove_dir_all(cache.dir()).unwrap();
}

#[test]
fn corrupted_checkpoint_degrades_to_recompute() {
    let dataset = data();
    let cache = temp_cache("corrupt");

    let cold = AttackFlow::new(config())
        .with_cache(cache.clone())
        .run(&dataset)
        .unwrap();

    // Damage every artifact in the cache: flip one payload byte each.
    let mut damaged = 0;
    for entry in std::fs::read_dir(cache.dir()).unwrap() {
        let path = entry.unwrap().path();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        damaged += 1;
    }
    assert!(
        damaged >= 5,
        "expected one artifact per stage, saw {damaged}"
    );

    let corrupt_before = qce_telemetry::counter("store.corrupt").get();
    let recovered = AttackFlow::new(config())
        .with_cache(cache.clone())
        .run(&dataset)
        .unwrap();
    assert!(
        qce_telemetry::counter("store.corrupt").get() - corrupt_before >= damaged,
        "every damaged artifact must be detected"
    );
    assert_outcomes_identical(&cold, &recovered);

    std::fs::remove_dir_all(cache.dir()).unwrap();
}

#[test]
fn killed_run_resumes_from_last_completed_stage() {
    let dataset = data();
    let cache = temp_cache("resume");

    let cold = AttackFlow::new(config())
        .with_cache(cache.clone())
        .run(&dataset)
        .unwrap();

    // Simulate a run killed after training: later-stage checkpoints
    // (quantize, evaluations) are gone, select + train survive.
    let mut kept = 0;
    for entry in std::fs::read_dir(cache.dir()).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if name.contains("quantize") || name.contains("evaluate") {
            std::fs::remove_file(&path).unwrap();
        } else {
            kept += 1;
        }
    }
    assert!(kept >= 2, "select and train checkpoints should survive");

    let hits_before = qce_telemetry::counter("store.hit").get();
    let resumed = AttackFlow::new(config())
        .with_cache(cache.clone())
        .run(&dataset)
        .unwrap();
    // The surviving stages are reused; the rest recompute to the same
    // bits because every stage is deterministic from (config, seed).
    assert!(
        qce_telemetry::counter("store.hit").get() - hits_before >= 2,
        "resume should reuse the surviving select/train checkpoints"
    );
    assert_outcomes_identical(&cold, &resumed);

    std::fs::remove_dir_all(cache.dir()).unwrap();
}

#[test]
fn cacheless_flow_needs_no_directory() {
    // Without a cache attached (and without QCE_CACHE), the flow
    // touches no checkpoint paths at all — there is nothing to clean up.
    let out = AttackFlow::new(FlowConfig {
        quant: None,
        epochs: 1,
        ..config()
    })
    .run(&data());
    assert!(out.is_ok());
}
