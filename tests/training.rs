//! Integration tests of the training substrate on the synthetic datasets.

use qce_data::{SynthCifar, SynthFaces};
use qce_nn::models::{FaceNetLite, ResNetLite};
use qce_nn::{accuracy, LrSchedule, TrainConfig, Trainer};

#[test]
fn resnet_lite_learns_synth_cifar_well_above_chance() {
    let data = SynthCifar::new(8).classes(4).generate(320, 51).unwrap();
    let (train, test) = data.split(0.75, 1).unwrap();
    let mut net = ResNetLite::builder()
        .input(3, 8)
        .classes(4)
        .stage_channels(&[8, 16])
        .blocks_per_stage(1)
        .build(52)
        .unwrap();
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 6,
        batch_size: 32,
        lr: 0.05,
        schedule: LrSchedule::Cosine {
            total_epochs: 6,
            min_lr: 0.002,
        },
        ..TrainConfig::default()
    });
    let history = trainer
        .fit(&mut net, &train.to_tensor(), train.labels(), None)
        .unwrap();
    assert!(history.epoch_losses[5] < history.epoch_losses[0]);
    let acc = accuracy(&mut net, &test.to_tensor(), test.labels(), 64).unwrap();
    assert!(acc > 0.6, "test accuracy {acc} (chance 0.25)");
}

#[test]
fn facenet_lite_learns_synth_faces_above_chance() {
    let data = SynthFaces::new(16, 8).generate(320, 53).unwrap();
    let (train, test) = data.split(0.75, 2).unwrap();
    let mut net = FaceNetLite::small(1, 16, 8, 54).unwrap();
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 6,
        batch_size: 32,
        lr: 0.05,
        ..TrainConfig::default()
    });
    trainer
        .fit(&mut net, &train.to_tensor(), train.labels(), None)
        .unwrap();
    let acc = accuracy(&mut net, &test.to_tensor(), test.labels(), 64).unwrap();
    assert!(acc > 0.5, "face accuracy {acc} (chance 0.125)");
}

#[test]
fn grayscale_pipeline_trains_end_to_end() {
    let data = SynthCifar::new(8)
        .classes(4)
        .generate(160, 55)
        .unwrap()
        .to_grayscale();
    let mut net = ResNetLite::builder()
        .input(1, 8)
        .classes(4)
        .stage_channels(&[8])
        .blocks_per_stage(1)
        .build(56)
        .unwrap();
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 3,
        batch_size: 16,
        ..TrainConfig::default()
    });
    let history = trainer
        .fit(&mut net, &data.to_tensor(), data.labels(), None)
        .unwrap();
    assert_eq!(history.epoch_losses.len(), 3);
    assert!(history.epoch_losses.iter().all(|l| l.is_finite()));
}

#[test]
fn training_is_reproducible_across_identical_runs() {
    let data = SynthCifar::new(8).classes(3).generate(90, 57).unwrap();
    let run = || {
        let mut net = ResNetLite::builder()
            .input(3, 8)
            .classes(3)
            .stage_channels(&[6])
            .blocks_per_stage(1)
            .build(58)
            .unwrap();
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 2,
            batch_size: 16,
            ..TrainConfig::default()
        });
        trainer
            .fit(&mut net, &data.to_tensor(), data.labels(), None)
            .unwrap();
        net.flat_weights()
    };
    assert_eq!(run(), run());
}

#[test]
fn adam_trains_the_same_model_as_sgd() {
    use qce_nn::OptimizerKind;
    let data = SynthCifar::new(8).classes(4).generate(240, 61).unwrap();
    let (train, test) = data.split(0.75, 3).unwrap();
    let run = |optimizer: OptimizerKind, lr: f32| -> f32 {
        let mut net = ResNetLite::builder()
            .input(3, 8)
            .classes(4)
            .stage_channels(&[8, 16])
            .blocks_per_stage(1)
            .build(62)
            .unwrap();
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 5,
            batch_size: 32,
            lr,
            optimizer,
            ..TrainConfig::default()
        });
        trainer
            .fit(&mut net, &train.to_tensor(), train.labels(), None)
            .unwrap();
        accuracy(&mut net, &test.to_tensor(), test.labels(), 64).unwrap()
    };
    let sgd_acc = run(OptimizerKind::Sgd, 0.05);
    let adam_acc = run(OptimizerKind::Adam, 0.005);
    assert!(sgd_acc > 0.5, "sgd accuracy {sgd_acc}");
    assert!(adam_acc > 0.5, "adam accuracy {adam_acc}");
}
