//! Integration tests for the observability layer: the golden span tree a
//! tiny attack run emits, manifest contents, and the guarantee that
//! tracing never perturbs the computation.

use qce::{AttackFlow, BandRule, FlowConfig, Grouping, QuantConfig, QuantMethod};
use qce_data::{Dataset, SynthCifar};
use qce_telemetry::json::JsonValue;
use qce_telemetry::{add_sink, MemorySink};

fn tiny_data() -> Dataset {
    SynthCifar::new(8).classes(4).generate(160, 5).unwrap()
}

fn attack_config() -> FlowConfig {
    FlowConfig {
        grouping: Grouping::Uniform(5.0),
        band: BandRule::FirstN,
        quant: Some(QuantConfig {
            method: QuantMethod::Linear,
            bits: 4,
            finetune_epochs: 0,
            finetune_lr: 0.01,
            regularize_finetune: false,
        }),
        epochs: 1,
        ..FlowConfig::tiny()
    }
}

/// Events of one kind, parsed, filtered from a shared global sink (other
/// tests in the workspace may interleave their own events).
fn events_of(lines: &[String], kind: &str) -> Vec<JsonValue> {
    lines
        .iter()
        .map(|l| qce_telemetry::json::parse(l).expect("every trace line is valid JSON"))
        .filter(|v| v.get("ev").and_then(JsonValue::as_str) == Some(kind))
        .collect()
}

fn name_of(e: &JsonValue) -> Option<&str> {
    e.get("name").and_then(JsonValue::as_str)
}

#[test]
fn attack_run_emits_golden_span_tree_and_manifest() {
    let sink = MemorySink::shared();
    add_sink(sink.clone());
    sink.clear();

    let out = AttackFlow::new(attack_config()).run(&tiny_data()).unwrap();

    let lines = sink.lines();
    let starts = events_of(&lines, "span_start");
    let ends = events_of(&lines, "span_end");

    // Every pipeline stage opens and closes a span.
    for stage in [
        "flow.select",
        "flow.train",
        "flow.quantize",
        "flow.evaluate",
        "quant.network",
    ] {
        assert!(
            starts.iter().any(|e| name_of(e) == Some(stage)),
            "missing span_start for {stage}"
        );
        assert!(
            ends.iter().any(|e| name_of(e) == Some(stage)),
            "missing span_end for {stage}"
        );
    }

    // Per-epoch training spans are children of a flow.train span.
    let train_ids: Vec<u64> = starts
        .iter()
        .filter(|e| name_of(e) == Some("flow.train"))
        .filter_map(|e| e.get("id").and_then(JsonValue::as_u64))
        .collect();
    assert!(!train_ids.is_empty());
    let epoch_parented = starts
        .iter()
        .filter(|e| name_of(e) == Some("train.epoch"))
        .filter_map(|e| e.get("parent").and_then(JsonValue::as_u64))
        .any(|p| train_ids.contains(&p));
    assert!(epoch_parented, "train.epoch not parented under flow.train");

    // Required fields on every span event.
    for e in starts.iter().chain(ends.iter()) {
        assert!(e.get("id").and_then(JsonValue::as_u64).is_some());
        assert!(e.get("t_us").is_some(), "span event missing t_us");
        assert!(e.get("seq").is_some(), "span event missing seq");
    }

    // Emission-order stamps: seq strictly ascends and t_us never goes
    // backwards across the whole stream (the obs validator's contract).
    let stamps: Vec<(u64, u64)> = lines
        .iter()
        .filter_map(|l| qce_telemetry::json::parse(l).ok())
        .filter_map(|v| {
            Some((
                v.get("seq").and_then(JsonValue::as_u64)?,
                v.get("t_us").and_then(JsonValue::as_u64)?,
            ))
        })
        .collect();
    assert!(
        stamps.windows(2).all(|w| w[0].0 < w[1].0),
        "seq not strictly ascending"
    );
    assert!(
        stamps.windows(2).all(|w| w[0].1 <= w[1].1),
        "t_us went backwards"
    );
    for e in &ends {
        assert!(
            e.get("dur_us").and_then(JsonValue::as_f64).is_some(),
            "span_end missing dur_us"
        );
    }

    // The run publishes a manifest event that matches the returned one.
    let manifests = events_of(&lines, "manifest");
    let m = manifests.last().expect("manifest event emitted");
    assert_eq!(
        m.get("seed").and_then(JsonValue::as_u64),
        Some(out.manifest.seed)
    );
    assert_eq!(
        m.get("threads").and_then(JsonValue::as_u64),
        Some(out.manifest.threads as u64)
    );
    // The hash is a full-width u64; the JSON parser stores numbers as
    // f64, so compare at f64 precision.
    assert_eq!(
        m.get("config_hash").and_then(JsonValue::as_f64),
        Some(out.manifest.config_hash as f64)
    );
    let stage_names: Vec<&str> = out
        .manifest
        .stages
        .iter()
        .map(|s| s.name.as_str())
        .collect();
    assert!(stage_names.contains(&"flow.select"));
    assert!(stage_names.contains(&"flow.train"));
    assert!(
        stage_names.iter().any(|n| n.starts_with("flow.quantize:")),
        "stages: {stage_names:?}"
    );
    assert!(
        stage_names.iter().any(|n| n.starts_with("flow.evaluate:")),
        "stages: {stage_names:?}"
    );
    assert!(out.manifest.total_wall_ms() > 0.0);
    // Stage reports carry their observational extras.
    assert!(out.pre_quant.wall_ms > 0.0);
    assert!(out
        .pre_quant
        .metrics
        .iter()
        .any(|(k, _)| k == "eval.accuracy"));
}

#[test]
fn tracing_does_not_perturb_results() {
    // Attach a sink so the expensive instrumentation paths are active,
    // then check the flow is still bit-for-bit deterministic.
    let sink = MemorySink::shared();
    add_sink(sink.clone());

    let cfg = attack_config();
    let data = tiny_data();
    let a = AttackFlow::new(cfg.clone()).run(&data).unwrap();
    let b = AttackFlow::new(cfg).run(&data).unwrap();

    assert_eq!(a.network.flat_weights(), b.network.flat_weights());
    assert_eq!(a.pre_quant, b.pre_quant);
    assert_eq!(a.post_quant, b.post_quant);
    assert_eq!(a.manifest.config_hash, b.manifest.config_hash);
    assert_eq!(a.manifest.seed, b.manifest.seed);
    assert_eq!(a.manifest.threads, b.manifest.threads);
}
