//! Robustness harness integration tests: fault plans on real networks,
//! resilient decoding on perturbed releases, and the flow-level faulted
//! evaluation (ISSUE archetype: survive perturbed releases).

use proptest::prelude::*;
use qce::faults::{FaultKind, FaultPlan};
use qce::{AttackFlow, BandRule, FlowConfig, FlowError, Grouping, QuantConfig, QuantMethod};
use qce_attack::correlation::SignConvention;
use qce_attack::{Decoder, EncodingLayout, GroupSpec};
use qce_data::{Image, SynthCifar};
use qce_nn::models::ResNetLite;
use qce_nn::Network;

/// A small net plus an encoding layout over synthetic images, with the
/// weights overwritten to a perfect affine encoding of the targets — the
/// "trained to convergence" limit, without the training cost.
fn encoded_setup() -> (Network, EncodingLayout, Vec<Image>) {
    let mut net = ResNetLite::builder()
        .input(3, 8)
        .classes(4)
        .stage_channels(&[4, 8])
        .blocks_per_stage(1)
        .build(3)
        .unwrap();
    let specs = GroupSpec::uniform(net.weight_slots().len(), 5.0);
    let data = SynthCifar::new(8).classes(4).generate(64, 9).unwrap();
    let layout = EncodingLayout::plan(&net, &specs, data.images()).unwrap();
    let targets = data.images()[..layout.total_encoded_images()].to_vec();

    let mut flat = net.flat_weights();
    for g in layout.groups() {
        let mut values = g.extract(&flat);
        for (i, &p) in g.target().iter().enumerate() {
            values[i] = 0.002 * p - 0.2;
        }
        let mut acc = vec![0.0f32; flat.len()];
        g.scatter_add(&values, &mut acc);
        for &(off, len) in g.flat_ranges() {
            flat[off..off + len].copy_from_slice(&acc[off..off + len]);
        }
    }
    net.set_flat_weights(&flat).unwrap();
    (net, layout, targets)
}

fn mean_mape(decoder: &Decoder, net: &Network, targets: &[Image]) -> f32 {
    let resilient = decoder.decode_resilient(&net.flat_weights());
    assert!(!resilient.images.is_empty());
    let mut sum = 0.0f32;
    let mut n = 0usize;
    for r in &resilient.images {
        if let Some(img) = &r.image {
            sum += qce_metrics::mape(&targets[r.target_index], img);
            n += 1;
        }
    }
    assert!(n > 0, "every rate in the ladder should decode something");
    sum / n as f32
}

#[test]
fn zero_severity_plan_preserves_decode_exactly() {
    let (mut net, layout, _targets) = encoded_setup();
    let before = net.flat_weights();
    let plan = FaultPlan::new(5)
        .with(FaultKind::BitFlip { rate: 0.01 })
        .with(FaultKind::GaussianNoise { fraction: 0.1 })
        .with(FaultKind::Prune { fraction: 0.2 })
        .scaled(0.0);
    plan.apply_to_network(&mut net).unwrap();
    // Bitwise identity, so decode ∘ encode is untouched.
    assert_eq!(net.flat_weights(), before);
    let decoder = Decoder::new(layout, SignConvention::Positive);
    let plain = decoder.decode(&before).unwrap();
    let resilient = decoder.decode_resilient(&net.flat_weights());
    assert_eq!(resilient.images.len(), plain.len());
    assert_eq!(resilient.failed_count(), 0);
    assert_eq!(resilient.degraded_count(), 0);
    for (r, p) in resilient.images.iter().zip(&plain) {
        assert_eq!(r.image.as_ref().unwrap(), &p.image);
    }
}

#[test]
fn decode_quality_degrades_monotonically_with_bit_flip_rate() {
    let (mut net, layout, targets) = encoded_setup();
    let encoded = net.snapshot();
    let decoder = Decoder::new(layout, SignConvention::Positive);
    let base = FaultPlan::new(41).with(FaultKind::BitFlip { rate: 0.0005 });
    let mut previous = f32::NEG_INFINITY;
    for severity in [0.0f32, 1.0, 4.0, 16.0, 64.0] {
        net.restore(&encoded).unwrap();
        base.scaled(severity).apply_to_network(&mut net).unwrap();
        let mape = mean_mape(&decoder, &net, &targets);
        // Nested flip sets make this monotone by construction; the
        // tolerance absorbs decoder-anchor quantization noise.
        assert!(
            mape >= previous - 2.0,
            "severity {severity}: mape {mape} dipped below {previous}"
        );
        previous = previous.max(mape);
    }
}

#[test]
fn fault_plans_are_deterministic_across_networks() {
    let (mut net, _layout, _targets) = encoded_setup();
    let encoded = net.snapshot();
    let plan = FaultPlan::new(77)
        .with(FaultKind::BitFlip { rate: 0.001 })
        .with(FaultKind::UniformNoise { fraction: 0.05 });
    plan.apply_to_network(&mut net).unwrap();
    let first = net.flat_weights();
    net.restore(&encoded).unwrap();
    plan.apply_to_network(&mut net).unwrap();
    assert_eq!(net.flat_weights(), first);
}

#[test]
fn flow_error_wraps_fault_error_with_source() {
    use std::error::Error;
    let fault = qce::faults::FaultError::InvalidFault {
        reason: "rate 2 exceeds 1".to_string(),
    };
    let flow: FlowError = fault.into();
    assert!(matches!(flow, FlowError::Faults(_)));
    assert!(flow.to_string().contains("fault injection"));
    assert!(flow.source().unwrap().to_string().contains("rate 2"));
}

#[test]
fn faulted_flow_evaluation_returns_partial_results() {
    let dataset = SynthCifar::new(8).classes(4).generate(240, 21).unwrap();
    let cfg = FlowConfig {
        grouping: Grouping::Uniform(5.0),
        band: BandRule::FirstN,
        quant: None,
        ..FlowConfig::tiny()
    };
    let mut trained = AttackFlow::new(cfg).train(&dataset).unwrap();
    let clean = trained.float_report().unwrap();

    let plan = FaultPlan::new(97).with(FaultKind::BitFlip { rate: 0.001 });
    let qcfg = QuantConfig::new(QuantMethod::KMeans, 4);
    let faulted = trained
        .evaluate_faulted(Some(qcfg), &plan, "bitflip".to_string())
        .unwrap();
    assert_eq!(faulted.images.len(), clean.images.len());
    assert!(faulted.ok_count() + faulted.degraded_count() > 0);
    // The faulted evaluation restores the float state afterwards.
    let clean2 = trained.float_report().unwrap();
    assert_eq!(clean, clean2);

    let sweep = trained
        .robustness_sweep(Some(qcfg), &plan, &[0.0, 4.0, 16.0])
        .unwrap();
    assert_eq!(sweep.points.len(), 3);
    assert!(sweep.mape_monotone(5.0), "sweep:\n{}", sweep.summary());
    assert!(sweep.ssim_monotone(0.05), "sweep:\n{}", sweep.summary());
}

/// Applies a seeded bit-flip + noise plan at the given severity and
/// checks the resilient decoder stays coherent: one entry per planned
/// image, status agreeing with image presence, confidence in `[0, 1]`.
/// Returns a description of the first violated invariant.
fn check_resilient_decode_is_coherent(seed: u64, severity: f32) -> Result<(), String> {
    let (mut net, layout, _targets) = encoded_setup();
    let total = layout.total_encoded_images();
    FaultPlan::new(seed)
        .with(FaultKind::BitFlip { rate: 0.001 })
        .with(FaultKind::GaussianNoise { fraction: 0.01 })
        .scaled(severity)
        .apply_to_network(&mut net)
        .map_err(|e| e.to_string())?;
    let decoder = Decoder::new(layout, SignConvention::Positive);
    let resilient = decoder.decode_resilient(&net.flat_weights());
    if resilient.images.len() != total {
        return Err(format!(
            "{} images, planned {total}",
            resilient.images.len()
        ));
    }
    for r in &resilient.images {
        if r.status.is_decoded() != r.image.is_some() {
            return Err(format!(
                "image {} status disagrees with payload",
                r.target_index
            ));
        }
    }
    let conf = resilient.mean_confidence();
    if !(0.0..=1.0).contains(&conf) {
        return Err(format!("confidence {conf} outside [0, 1]"));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Whatever the seed and severity, resilient decoding of a faulted
    // release never panics and reports a coherent status for every
    // planned image.
    #[test]
    fn resilient_decode_never_panics_under_faults(seed in 0u64..1000, severity in 0.0f32..50.0) {
        let outcome = check_resilient_decode_is_coherent(seed, severity);
        prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
    }
}
