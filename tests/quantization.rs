//! Cross-crate quantization integration tests: quantizers applied to real
//! trained networks, fine-tuning, and the Fig. 3 distribution property.

use qce_data::SynthCifar;
use qce_metrics::distribution::histogram_divergence;
use qce_nn::models::ResNetLite;
use qce_nn::{accuracy, Network, ParamKind, TrainConfig, Trainer};
use qce_quant::{
    finetune, pack, quantize_network, FinetuneConfig, KMeansQuantizer, LinearQuantizer, Quantizer,
    TargetCorrelatedQuantizer, WeightedEntropyQuantizer,
};

fn trained_net() -> (Network, qce_tensor::Tensor, Vec<usize>) {
    let data = SynthCifar::new(8).classes(4).generate(160, 31).unwrap();
    let x = data.to_tensor();
    let y = data.labels().to_vec();
    let mut net = ResNetLite::builder()
        .input(3, 8)
        .classes(4)
        .stage_channels(&[8, 16])
        .blocks_per_stage(1)
        .build(32)
        .unwrap();
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 4,
        batch_size: 32,
        lr: 0.05,
        ..TrainConfig::default()
    });
    trainer.fit(&mut net, &x, &y, None).unwrap();
    (net, x, y)
}

#[test]
fn all_quantizers_preserve_most_accuracy_at_6_bits() {
    let (mut net, x, y) = trained_net();
    let float_acc = accuracy(&mut net, &x, &y, 64).unwrap();
    let state = net.state();
    let pixels: Vec<u8> = (0..4096u32).map(|i| (i % 256) as u8).collect();
    let quantizers: Vec<Box<dyn Quantizer>> = vec![
        Box::new(LinearQuantizer::new(64).unwrap()),
        Box::new(KMeansQuantizer::new(64).unwrap()),
        Box::new(WeightedEntropyQuantizer::new(64).unwrap()),
        Box::new(TargetCorrelatedQuantizer::new(64, &pixels).unwrap()),
    ];
    for q in &quantizers {
        net.load_state(&state).unwrap();
        quantize_network(&mut net, q.as_ref()).unwrap();
        let acc = accuracy(&mut net, &x, &y, 64).unwrap();
        assert!(
            acc > float_acc - 0.25,
            "{}: float {float_acc} -> quantized {acc}",
            q.name()
        );
    }
}

#[test]
fn aggressive_quantization_hurts_then_finetune_recovers() {
    let (mut net, x, y) = trained_net();
    let float_acc = accuracy(&mut net, &x, &y, 64).unwrap();
    let mut qnet = quantize_network(&mut net, &LinearQuantizer::new(4).unwrap()).unwrap();
    let quant_acc = accuracy(&mut net, &x, &y, 64).unwrap();
    let cfg = FinetuneConfig {
        epochs: 4,
        batch_size: 32,
        lr: 0.02,
        ..FinetuneConfig::default()
    };
    finetune(&mut net, &mut qnet, &x, &y, &cfg, None).unwrap();
    let tuned_acc = accuracy(&mut net, &x, &y, 64).unwrap();
    assert!(
        tuned_acc >= quant_acc,
        "float {float_acc}, quantized {quant_acc}, tuned {tuned_acc}"
    );
    // Still quantized after fine-tuning.
    for (slot, p) in qnet.slots().iter().zip(
        net.params()
            .into_iter()
            .filter(|p| p.kind() == ParamKind::Weight),
    ) {
        let mut d: Vec<f32> = p.value().as_slice().to_vec();
        d.sort_by(f32::total_cmp);
        d.dedup();
        assert!(d.len() <= slot.codebook.levels());
    }
}

#[test]
fn target_correlated_tracks_pixel_distribution_better_than_weq() {
    // The Fig. 3 property: quantize a pixel-shaped weight vector with both
    // methods; the target-correlated result stays closer to the original
    // distribution.
    let mut rng = qce_tensor::init::seeded_rng(5);
    use rand::RngExt;
    // Bimodal pixel-like values (dark and bright pixels dominate).
    let pixels: Vec<u8> = (0..30_000)
        .map(|_| {
            if rng.random_range(0.0..1.0f32) < 0.5 {
                rng.random_range(0..80u32) as u8
            } else {
                rng.random_range(170..=255u32) as u8
            }
        })
        .collect();
    let weights: Vec<f32> = pixels.iter().map(|&p| 0.002 * p as f32 - 0.25).collect();

    let weq = WeightedEntropyQuantizer::new(32)
        .unwrap()
        .fit(&weights)
        .unwrap();
    let tc = TargetCorrelatedQuantizer::new(32, &pixels)
        .unwrap()
        .fit(&weights)
        .unwrap();
    let weq_q = weq.quantize(&weights);
    let tc_q = tc.quantize(&weights);
    let weq_div = histogram_divergence(&weights, &weq_q, 32, -0.3, 0.3);
    let tc_div = histogram_divergence(&weights, &tc_q, 32, -0.3, 0.3);
    assert!(
        tc_div < weq_div,
        "target-correlated divergence {tc_div} should be below weq {weq_div}"
    );
}

#[test]
fn packed_assignments_round_trip_through_storage() {
    let (mut net, _, _) = trained_net();
    let qnet = quantize_network(&mut net, &LinearQuantizer::new(16).unwrap()).unwrap();
    for slot in qnet.slots() {
        let bits = slot.codebook.bits();
        let packed = pack::pack(&slot.assignment, bits).unwrap();
        let unpacked = pack::unpack(&packed, bits, slot.assignment.len()).unwrap();
        assert_eq!(unpacked, slot.assignment);
        assert_eq!(packed.len(), pack::packed_len(slot.assignment.len(), bits));
    }
}

#[test]
fn quantized_model_reapply_is_stable() {
    let (mut net, x, y) = trained_net();
    let qnet = quantize_network(&mut net, &KMeansQuantizer::new(8).unwrap()).unwrap();
    let acc1 = accuracy(&mut net, &x, &y, 64).unwrap();
    let w1 = net.flat_weights();
    // Reapply is idempotent.
    qnet.reapply(&mut net).unwrap();
    assert_eq!(net.flat_weights(), w1);
    assert_eq!(accuracy(&mut net, &x, &y, 64).unwrap(), acc1);
}

#[test]
fn huffman_coding_beats_fixed_width_on_weq_assignments() {
    // Weighted-entropy quantization produces skewed cluster occupancies,
    // so entropy coding the indices (deep compression stage 3) must beat
    // fixed-width packing; the near-uniform linear quantizer gains little.
    let (mut net, _, _) = trained_net();
    let state = net.state();

    let weq = quantize_network(&mut net, &WeightedEntropyQuantizer::new(16).unwrap()).unwrap();
    let weq_fixed = weq.compressed_bits();
    let weq_huff = weq.huffman_bits().unwrap();
    assert!(
        weq_huff < weq_fixed,
        "huffman {weq_huff} should beat fixed {weq_fixed} for weq"
    );

    net.load_state(&state).unwrap();
    let lin = quantize_network(&mut net, &LinearQuantizer::new(16).unwrap()).unwrap();
    let lin_fixed = lin.compressed_bits();
    let lin_huff = lin.huffman_bits().unwrap();
    // Linear clusters are *also* skewed for bell-shaped weights, so
    // Huffman helps there too — but the weq gain must be at least as big.
    let weq_gain = weq_fixed as f64 / weq_huff as f64;
    let lin_gain = lin_fixed as f64 / lin_huff as f64;
    assert!(
        weq_gain >= lin_gain * 0.95,
        "weq gain {weq_gain:.3} vs linear gain {lin_gain:.3}"
    );
}
