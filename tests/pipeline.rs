//! End-to-end integration tests of the full attack flow across all
//! workspace crates.

use qce::{AttackFlow, BandRule, FlowConfig, Grouping, QuantConfig, QuantMethod};
use qce_data::SynthCifar;

fn data() -> qce_data::Dataset {
    SynthCifar::new(8).classes(4).generate(240, 21).unwrap()
}

fn tiny(grouping: Grouping, band: BandRule, quant: Option<QuantConfig>) -> FlowConfig {
    FlowConfig {
        grouping,
        band,
        quant,
        ..FlowConfig::tiny()
    }
}

#[test]
fn attack_flow_beats_noise_floor_and_keeps_accuracy() {
    let dataset = data();
    let benign = AttackFlow::new(tiny(Grouping::Benign, BandRule::FirstN, None))
        .run(&dataset)
        .unwrap();
    let attacked = AttackFlow::new(tiny(Grouping::Uniform(5.0), BandRule::FirstN, None))
        .run(&dataset)
        .unwrap();

    // The attack encodes data...
    assert!(attacked.pre_quant.images.len() > 4);
    // ...with far better quality than a random remap (MAPE ~85)...
    assert!(
        attacked.pre_quant.mean_mape() < 40.0,
        "mape {}",
        attacked.pre_quant.mean_mape()
    );
    // ...while accuracy stays in the same regime as benign training.
    assert!(
        attacked.pre_quant.accuracy > benign.pre_quant.accuracy - 0.35,
        "benign {} vs attacked {}",
        benign.pre_quant.accuracy,
        attacked.pre_quant.accuracy
    );
}

#[test]
fn full_paper_flow_with_target_correlated_quantization() {
    let dataset = data();
    let out = AttackFlow::new(tiny(
        Grouping::LayerWise([0.0, 0.0, 5.0]),
        BandRule::Auto { width: 10.0 },
        Some(QuantConfig::new(QuantMethod::TargetCorrelated, 4)),
    ))
    .run(&dataset)
    .unwrap();

    let post = out.post_quant.as_ref().unwrap();
    assert!(!post.images.is_empty());
    // Quantization to 16 levels should not destroy the encoding.
    assert!(
        post.mean_mape() < out.pre_quant.mean_mape() + 25.0,
        "pre {} post {}",
        out.pre_quant.mean_mape(),
        post.mean_mape()
    );
    // Three groups are reported under the paper's grouping.
    assert_eq!(post.group_correlations.len(), 3);
    assert!(out.compression_ratio.unwrap() > 3.0);
}

#[test]
fn layerwise_flow_encodes_only_late_groups() {
    let dataset = data();
    let out = AttackFlow::new(tiny(
        Grouping::LayerWise([0.0, 0.0, 8.0]),
        BandRule::FirstN,
        None,
    ))
    .run(&dataset)
    .unwrap();
    let layout = out.layout.as_ref().unwrap();
    assert!(layout.groups()[0].image_indices().is_empty());
    assert!(layout.groups()[1].image_indices().is_empty());
    assert!(!layout.groups()[2].image_indices().is_empty());
    assert!(out.pre_quant.images.iter().all(|i| i.group == 2));
}

#[test]
fn weq_degrades_encoding_more_than_target_correlated() {
    let dataset = data();
    let run = |method: QuantMethod| {
        AttackFlow::new(tiny(
            Grouping::Uniform(8.0),
            BandRule::FirstN,
            Some(QuantConfig {
                method,
                bits: 3,
                finetune_epochs: 1,
                finetune_lr: 0.01,
                regularize_finetune: true,
            }),
        ))
        .run(&dataset)
        .unwrap()
    };
    let weq = run(QuantMethod::WeightedEntropy);
    let tc = run(QuantMethod::TargetCorrelated);
    let weq_mape = weq.post_quant.as_ref().unwrap().mean_mape();
    let tc_mape = tc.post_quant.as_ref().unwrap().mean_mape();
    assert!(
        tc_mape < weq_mape,
        "target-correlated {tc_mape} should beat weq {weq_mape} at 3 bits"
    );
}

#[test]
fn std_band_selection_feeds_flow() {
    let dataset = SynthCifar::new(8).classes(4).generate(400, 22).unwrap();
    let out = AttackFlow::new(tiny(
        Grouping::Uniform(5.0),
        BandRule::Auto { width: 10.0 },
        None,
    ))
    .run(&dataset)
    .unwrap();
    // Every selected image really comes from the training split and the
    // layout encodes them all.
    let layout = out.layout.as_ref().unwrap();
    assert_eq!(out.targets.len(), out.selection_indices.len());
    assert_eq!(layout.total_encoded_images(), out.pre_quant.images.len());
}

#[test]
fn audit_separates_attacked_from_benign() {
    let dataset = data();
    let benign = AttackFlow::new(tiny(Grouping::Benign, BandRule::FirstN, None))
        .run(&dataset)
        .unwrap();
    let attacked = AttackFlow::new(tiny(Grouping::Uniform(10.0), BandRule::FirstN, None))
        .run(&dataset)
        .unwrap();
    let b = qce::audit::audit_network(&benign.network);
    let a = qce::audit::audit_network(&attacked.network);
    assert!(
        a.max_suspicion() > b.max_suspicion(),
        "benign {} vs attacked {}",
        b.max_suspicion(),
        a.max_suspicion()
    );
}

#[test]
fn outcome_reports_are_internally_consistent() {
    let dataset = data();
    let out = AttackFlow::new(tiny(
        Grouping::Uniform(5.0),
        BandRule::FirstN,
        Some(QuantConfig::new(QuantMethod::Linear, 4)),
    ))
    .run(&dataset)
    .unwrap();
    for report in [&out.pre_quant, out.post_quant.as_ref().unwrap()] {
        assert!(report.accuracy >= 0.0 && report.accuracy <= 1.0);
        assert!(report.recognized_count() <= report.images.len());
        assert_eq!(
            report.count_mape_below(20.0)
                + report.count_mape_above(20.0)
                + report.images.iter().filter(|i| i.mape == 20.0).count(),
            report.images.len()
        );
        for img in &report.images {
            assert!(img.mape >= 0.0);
            assert!((-1.0..=1.0).contains(&img.ssim));
            assert!(img.dataset_index < 200); // inside the training split
        }
    }
}

#[test]
fn image_level_detection_recovers_encoded_set() {
    let dataset = data();
    let cfg = tiny(Grouping::Uniform(8.0), BandRule::FirstN, None);
    let seed = cfg.seed;
    let train_fraction = cfg.train_fraction;
    let out = AttackFlow::new(cfg).run(&dataset).unwrap();

    // The defender audits their own training split against the release.
    let (train, _) = dataset.split(train_fraction, seed).unwrap();
    let detected = qce::audit::detect_encoded_images(&out.network, &train, 0.85);
    let encoded: std::collections::HashSet<usize> = out.selection_indices.iter().copied().collect();
    assert!(!encoded.is_empty());

    let true_hits = detected
        .iter()
        .filter(|d| encoded.contains(&d.dataset_index))
        .count();
    // High recall on the encoded set...
    assert!(
        true_hits * 2 >= encoded.len(),
        "recall too low: {true_hits}/{}",
        encoded.len()
    );
    // ...and high precision against the rest of the split.
    assert!(
        true_hits * 2 >= detected.len(),
        "precision too low: {true_hits}/{}",
        detected.len()
    );

    // A benign model detects nothing at the same threshold.
    let benign = AttackFlow::new(tiny(Grouping::Benign, BandRule::FirstN, None))
        .run(&dataset)
        .unwrap();
    let clean = qce::audit::detect_encoded_images(&benign.network, &train, 0.85);
    assert!(clean.len() <= 2, "benign false positives: {}", clean.len());
}

#[test]
fn released_model_survives_serialization_round_trip() {
    use qce_nn::serialize::{load_network, save_network};
    let dataset = data();
    let out = AttackFlow::new(tiny(
        Grouping::Uniform(5.0),
        BandRule::FirstN,
        Some(QuantConfig::new(QuantMethod::TargetCorrelated, 4)),
    ))
    .run(&dataset)
    .unwrap();

    let mut bytes = Vec::new();
    save_network(&out.network, &mut bytes).unwrap();

    // A fresh shell of the same architecture, loaded from the file,
    // decodes the same images.
    let mut shell = qce_nn::models::ResNetLite::builder()
        .input(3, 8)
        .classes(4)
        .stage_channels(&[8, 16])
        .blocks_per_stage(1)
        .build(12345)
        .unwrap();
    load_network(&mut shell, bytes.as_slice()).unwrap();
    assert_eq!(shell.flat_weights(), out.network.flat_weights());

    let layout = out.layout.as_ref().unwrap();
    let decoder = qce_attack::Decoder::new(
        layout.clone(),
        qce_attack::correlation::SignConvention::Positive,
    );
    let from_file = decoder.decode(&shell.flat_weights()).unwrap();
    assert_eq!(from_file.len(), layout.total_encoded_images());
}

#[test]
fn pruning_degrades_but_does_not_erase_the_attack() {
    let dataset = data();
    let mut trained = AttackFlow::new(tiny(Grouping::Uniform(8.0), BandRule::FirstN, None))
        .train(&dataset)
        .unwrap();
    let targets = trained.targets().to_vec();
    let mean_mape = |t: &qce::TrainedAttack| -> f32 {
        let decoded = t.decode_images().unwrap();
        decoded
            .iter()
            .map(|d| qce_metrics::mape(&targets[d.target_index], &d.image))
            .sum::<f32>()
            / decoded.len() as f32
    };
    let float_mape = mean_mape(&trained);
    qce_quant::prune::magnitude_prune(trained.network_mut(), 0.5).unwrap();
    let pruned_mape = mean_mape(&trained);
    assert!(pruned_mape > float_mape, "{float_mape} -> {pruned_mape}");
    // Half the weights are gone, yet reconstruction is still far above
    // the random-remap floor (~85).
    assert!(
        pruned_mape < 60.0,
        "pruning erased the attack: {pruned_mape}"
    );
}

#[test]
fn attack_is_architecture_independent() {
    // The correlation attack exploits white-box weight access, not
    // residual structure: it must work identically on a plain CNN.
    let dataset = data();
    let cfg = FlowConfig {
        arch: qce::Architecture::ConvNet,
        grouping: Grouping::Uniform(8.0),
        band: BandRule::FirstN,
        quant: None,
        ..FlowConfig::tiny()
    };
    let out = AttackFlow::new(cfg).run(&dataset).unwrap();
    assert!(
        out.pre_quant.group_correlations[0] > 0.5,
        "rho = {}",
        out.pre_quant.group_correlations[0]
    );
    assert!(
        out.pre_quant.mean_mape() < 40.0,
        "mape = {}",
        out.pre_quant.mean_mape()
    );
}
