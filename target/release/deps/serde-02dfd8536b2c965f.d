/root/repo/target/release/deps/serde-02dfd8536b2c965f.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-02dfd8536b2c965f.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-02dfd8536b2c965f.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
