/root/repo/target/release/deps/criterion-7e1eb10dbdc06a25.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-7e1eb10dbdc06a25.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-7e1eb10dbdc06a25.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
