/root/repo/target/release/deps/proptest-ceb75b438b5ebcb8.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-ceb75b438b5ebcb8.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-ceb75b438b5ebcb8.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
