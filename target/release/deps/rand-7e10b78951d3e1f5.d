/root/repo/target/release/deps/rand-7e10b78951d3e1f5.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-7e10b78951d3e1f5.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-7e10b78951d3e1f5.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
