/root/repo/target/release/deps/qce_metrics-7edac5b3dc130114.d: crates/metrics/src/lib.rs crates/metrics/src/classify.rs crates/metrics/src/image.rs crates/metrics/src/distribution.rs

/root/repo/target/release/deps/libqce_metrics-7edac5b3dc130114.rlib: crates/metrics/src/lib.rs crates/metrics/src/classify.rs crates/metrics/src/image.rs crates/metrics/src/distribution.rs

/root/repo/target/release/deps/libqce_metrics-7edac5b3dc130114.rmeta: crates/metrics/src/lib.rs crates/metrics/src/classify.rs crates/metrics/src/image.rs crates/metrics/src/distribution.rs

crates/metrics/src/lib.rs:
crates/metrics/src/classify.rs:
crates/metrics/src/image.rs:
crates/metrics/src/distribution.rs:
