/root/repo/target/release/deps/qce_quant-8a4c985198906834.d: crates/quant/src/lib.rs crates/quant/src/codebook.rs crates/quant/src/error.rs crates/quant/src/finetune.rs crates/quant/src/network.rs crates/quant/src/quantizers.rs crates/quant/src/deploy.rs crates/quant/src/huffman.rs crates/quant/src/pack.rs crates/quant/src/prune.rs

/root/repo/target/release/deps/libqce_quant-8a4c985198906834.rlib: crates/quant/src/lib.rs crates/quant/src/codebook.rs crates/quant/src/error.rs crates/quant/src/finetune.rs crates/quant/src/network.rs crates/quant/src/quantizers.rs crates/quant/src/deploy.rs crates/quant/src/huffman.rs crates/quant/src/pack.rs crates/quant/src/prune.rs

/root/repo/target/release/deps/libqce_quant-8a4c985198906834.rmeta: crates/quant/src/lib.rs crates/quant/src/codebook.rs crates/quant/src/error.rs crates/quant/src/finetune.rs crates/quant/src/network.rs crates/quant/src/quantizers.rs crates/quant/src/deploy.rs crates/quant/src/huffman.rs crates/quant/src/pack.rs crates/quant/src/prune.rs

crates/quant/src/lib.rs:
crates/quant/src/codebook.rs:
crates/quant/src/error.rs:
crates/quant/src/finetune.rs:
crates/quant/src/network.rs:
crates/quant/src/quantizers.rs:
crates/quant/src/deploy.rs:
crates/quant/src/huffman.rs:
crates/quant/src/pack.rs:
crates/quant/src/prune.rs:
