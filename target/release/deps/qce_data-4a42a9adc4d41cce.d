/root/repo/target/release/deps/qce_data-4a42a9adc4d41cce.d: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/image.rs crates/data/src/augment.rs crates/data/src/io.rs crates/data/src/select.rs crates/data/src/synth/mod.rs crates/data/src/synth/cifar.rs crates/data/src/synth/faces.rs

/root/repo/target/release/deps/libqce_data-4a42a9adc4d41cce.rlib: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/image.rs crates/data/src/augment.rs crates/data/src/io.rs crates/data/src/select.rs crates/data/src/synth/mod.rs crates/data/src/synth/cifar.rs crates/data/src/synth/faces.rs

/root/repo/target/release/deps/libqce_data-4a42a9adc4d41cce.rmeta: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/image.rs crates/data/src/augment.rs crates/data/src/io.rs crates/data/src/select.rs crates/data/src/synth/mod.rs crates/data/src/synth/cifar.rs crates/data/src/synth/faces.rs

crates/data/src/lib.rs:
crates/data/src/dataset.rs:
crates/data/src/error.rs:
crates/data/src/image.rs:
crates/data/src/augment.rs:
crates/data/src/io.rs:
crates/data/src/select.rs:
crates/data/src/synth/mod.rs:
crates/data/src/synth/cifar.rs:
crates/data/src/synth/faces.rs:
