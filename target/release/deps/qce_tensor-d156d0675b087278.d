/root/repo/target/release/deps/qce_tensor-d156d0675b087278.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/axis.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/linalg.rs crates/tensor/src/stats.rs

/root/repo/target/release/deps/libqce_tensor-d156d0675b087278.rlib: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/axis.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/linalg.rs crates/tensor/src/stats.rs

/root/repo/target/release/deps/libqce_tensor-d156d0675b087278.rmeta: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/axis.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/linalg.rs crates/tensor/src/stats.rs

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
crates/tensor/src/axis.rs:
crates/tensor/src/conv.rs:
crates/tensor/src/init.rs:
crates/tensor/src/linalg.rs:
crates/tensor/src/stats.rs:
