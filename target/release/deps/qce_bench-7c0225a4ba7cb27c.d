/root/repo/target/release/deps/qce_bench-7c0225a4ba7cb27c.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libqce_bench-7c0225a4ba7cb27c.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libqce_bench-7c0225a4ba7cb27c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
