/root/repo/target/release/deps/robustness-92547fb0aaec3417.d: crates/bench/benches/robustness.rs

/root/repo/target/release/deps/robustness-92547fb0aaec3417: crates/bench/benches/robustness.rs

crates/bench/benches/robustness.rs:
