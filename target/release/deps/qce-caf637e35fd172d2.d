/root/repo/target/release/deps/qce-caf637e35fd172d2.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/report.rs crates/core/src/audit.rs crates/core/src/defense.rs crates/core/src/faults.rs

/root/repo/target/release/deps/libqce-caf637e35fd172d2.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/report.rs crates/core/src/audit.rs crates/core/src/defense.rs crates/core/src/faults.rs

/root/repo/target/release/deps/libqce-caf637e35fd172d2.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/report.rs crates/core/src/audit.rs crates/core/src/defense.rs crates/core/src/faults.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/flow.rs:
crates/core/src/report.rs:
crates/core/src/audit.rs:
crates/core/src/defense.rs:
crates/core/src/faults.rs:
