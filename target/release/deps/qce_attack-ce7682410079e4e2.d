/root/repo/target/release/deps/qce_attack-ce7682410079e4e2.d: crates/attack/src/lib.rs crates/attack/src/decode.rs crates/attack/src/error.rs crates/attack/src/layout.rs crates/attack/src/regularizer.rs crates/attack/src/capacity.rs crates/attack/src/correlation.rs crates/attack/src/ecc.rs crates/attack/src/lsb.rs crates/attack/src/payload.rs crates/attack/src/sign.rs

/root/repo/target/release/deps/libqce_attack-ce7682410079e4e2.rlib: crates/attack/src/lib.rs crates/attack/src/decode.rs crates/attack/src/error.rs crates/attack/src/layout.rs crates/attack/src/regularizer.rs crates/attack/src/capacity.rs crates/attack/src/correlation.rs crates/attack/src/ecc.rs crates/attack/src/lsb.rs crates/attack/src/payload.rs crates/attack/src/sign.rs

/root/repo/target/release/deps/libqce_attack-ce7682410079e4e2.rmeta: crates/attack/src/lib.rs crates/attack/src/decode.rs crates/attack/src/error.rs crates/attack/src/layout.rs crates/attack/src/regularizer.rs crates/attack/src/capacity.rs crates/attack/src/correlation.rs crates/attack/src/ecc.rs crates/attack/src/lsb.rs crates/attack/src/payload.rs crates/attack/src/sign.rs

crates/attack/src/lib.rs:
crates/attack/src/decode.rs:
crates/attack/src/error.rs:
crates/attack/src/layout.rs:
crates/attack/src/regularizer.rs:
crates/attack/src/capacity.rs:
crates/attack/src/correlation.rs:
crates/attack/src/ecc.rs:
crates/attack/src/lsb.rs:
crates/attack/src/payload.rs:
crates/attack/src/sign.rs:
