/root/repo/target/release/examples/fault_sweep-a2395940be3af14a.d: crates/core/../../examples/fault_sweep.rs

/root/repo/target/release/examples/fault_sweep-a2395940be3af14a: crates/core/../../examples/fault_sweep.rs

crates/core/../../examples/fault_sweep.rs:
