/root/repo/target/release/examples/probe_faults-9f7ac7fbb5c1d023.d: crates/core/examples/probe_faults.rs

/root/repo/target/release/examples/probe_faults-9f7ac7fbb5c1d023: crates/core/examples/probe_faults.rs

crates/core/examples/probe_faults.rs:
