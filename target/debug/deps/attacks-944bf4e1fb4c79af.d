/root/repo/target/debug/deps/attacks-944bf4e1fb4c79af.d: crates/core/../../tests/attacks.rs

/root/repo/target/debug/deps/attacks-944bf4e1fb4c79af: crates/core/../../tests/attacks.rs

crates/core/../../tests/attacks.rs:
