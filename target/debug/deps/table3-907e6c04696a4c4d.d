/root/repo/target/debug/deps/table3-907e6c04696a4c4d.d: crates/bench/benches/table3.rs

/root/repo/target/debug/deps/table3-907e6c04696a4c4d: crates/bench/benches/table3.rs

crates/bench/benches/table3.rs:
