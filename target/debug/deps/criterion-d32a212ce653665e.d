/root/repo/target/debug/deps/criterion-d32a212ce653665e.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-d32a212ce653665e.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-d32a212ce653665e.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
