/root/repo/target/debug/deps/qce_attack-5149f8ea7ab16a79.d: crates/attack/src/lib.rs crates/attack/src/decode.rs crates/attack/src/error.rs crates/attack/src/layout.rs crates/attack/src/regularizer.rs crates/attack/src/capacity.rs crates/attack/src/correlation.rs crates/attack/src/ecc.rs crates/attack/src/lsb.rs crates/attack/src/payload.rs crates/attack/src/sign.rs Cargo.toml

/root/repo/target/debug/deps/libqce_attack-5149f8ea7ab16a79.rmeta: crates/attack/src/lib.rs crates/attack/src/decode.rs crates/attack/src/error.rs crates/attack/src/layout.rs crates/attack/src/regularizer.rs crates/attack/src/capacity.rs crates/attack/src/correlation.rs crates/attack/src/ecc.rs crates/attack/src/lsb.rs crates/attack/src/payload.rs crates/attack/src/sign.rs Cargo.toml

crates/attack/src/lib.rs:
crates/attack/src/decode.rs:
crates/attack/src/error.rs:
crates/attack/src/layout.rs:
crates/attack/src/regularizer.rs:
crates/attack/src/capacity.rs:
crates/attack/src/correlation.rs:
crates/attack/src/ecc.rs:
crates/attack/src/lsb.rs:
crates/attack/src/payload.rs:
crates/attack/src/sign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
