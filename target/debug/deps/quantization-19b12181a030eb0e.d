/root/repo/target/debug/deps/quantization-19b12181a030eb0e.d: crates/core/../../tests/quantization.rs Cargo.toml

/root/repo/target/debug/deps/libquantization-19b12181a030eb0e.rmeta: crates/core/../../tests/quantization.rs Cargo.toml

crates/core/../../tests/quantization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
