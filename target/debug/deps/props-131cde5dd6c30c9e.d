/root/repo/target/debug/deps/props-131cde5dd6c30c9e.d: crates/quant/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-131cde5dd6c30c9e.rmeta: crates/quant/tests/props.rs Cargo.toml

crates/quant/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
