/root/repo/target/debug/deps/rand-f46e33468fd6c24a.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-f46e33468fd6c24a.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-f46e33468fd6c24a.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
