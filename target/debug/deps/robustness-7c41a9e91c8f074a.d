/root/repo/target/debug/deps/robustness-7c41a9e91c8f074a.d: crates/bench/benches/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-7c41a9e91c8f074a.rmeta: crates/bench/benches/robustness.rs Cargo.toml

crates/bench/benches/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
