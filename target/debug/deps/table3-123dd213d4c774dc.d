/root/repo/target/debug/deps/table3-123dd213d4c774dc.d: crates/bench/benches/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-123dd213d4c774dc.rmeta: crates/bench/benches/table3.rs Cargo.toml

crates/bench/benches/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
