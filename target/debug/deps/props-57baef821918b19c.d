/root/repo/target/debug/deps/props-57baef821918b19c.d: crates/nn/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-57baef821918b19c.rmeta: crates/nn/tests/props.rs Cargo.toml

crates/nn/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
