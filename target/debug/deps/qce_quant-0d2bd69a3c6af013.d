/root/repo/target/debug/deps/qce_quant-0d2bd69a3c6af013.d: crates/quant/src/lib.rs crates/quant/src/codebook.rs crates/quant/src/error.rs crates/quant/src/finetune.rs crates/quant/src/network.rs crates/quant/src/quantizers.rs crates/quant/src/deploy.rs crates/quant/src/huffman.rs crates/quant/src/pack.rs crates/quant/src/prune.rs

/root/repo/target/debug/deps/qce_quant-0d2bd69a3c6af013: crates/quant/src/lib.rs crates/quant/src/codebook.rs crates/quant/src/error.rs crates/quant/src/finetune.rs crates/quant/src/network.rs crates/quant/src/quantizers.rs crates/quant/src/deploy.rs crates/quant/src/huffman.rs crates/quant/src/pack.rs crates/quant/src/prune.rs

crates/quant/src/lib.rs:
crates/quant/src/codebook.rs:
crates/quant/src/error.rs:
crates/quant/src/finetune.rs:
crates/quant/src/network.rs:
crates/quant/src/quantizers.rs:
crates/quant/src/deploy.rs:
crates/quant/src/huffman.rs:
crates/quant/src/pack.rs:
crates/quant/src/prune.rs:
