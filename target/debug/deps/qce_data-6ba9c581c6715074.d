/root/repo/target/debug/deps/qce_data-6ba9c581c6715074.d: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/image.rs crates/data/src/augment.rs crates/data/src/io.rs crates/data/src/select.rs crates/data/src/synth/mod.rs crates/data/src/synth/cifar.rs crates/data/src/synth/faces.rs

/root/repo/target/debug/deps/qce_data-6ba9c581c6715074: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/image.rs crates/data/src/augment.rs crates/data/src/io.rs crates/data/src/select.rs crates/data/src/synth/mod.rs crates/data/src/synth/cifar.rs crates/data/src/synth/faces.rs

crates/data/src/lib.rs:
crates/data/src/dataset.rs:
crates/data/src/error.rs:
crates/data/src/image.rs:
crates/data/src/augment.rs:
crates/data/src/io.rs:
crates/data/src/select.rs:
crates/data/src/synth/mod.rs:
crates/data/src/synth/cifar.rs:
crates/data/src/synth/faces.rs:
