/root/repo/target/debug/deps/props-bb6f5acd224bc54e.d: crates/metrics/tests/props.rs

/root/repo/target/debug/deps/props-bb6f5acd224bc54e: crates/metrics/tests/props.rs

crates/metrics/tests/props.rs:
