/root/repo/target/debug/deps/qce_nn-898f296ba248db7f.d: crates/nn/src/lib.rs crates/nn/src/error.rs crates/nn/src/layer.rs crates/nn/src/network.rs crates/nn/src/param.rs crates/nn/src/trainer.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/batchnorm.rs crates/nn/src/layers/conv.rs crates/nn/src/layers/dropout.rs crates/nn/src/layers/elementwise.rs crates/nn/src/layers/flatten.rs crates/nn/src/layers/linear.rs crates/nn/src/layers/pool.rs crates/nn/src/layers/residual.rs crates/nn/src/layers/sequential.rs crates/nn/src/loss.rs crates/nn/src/models/mod.rs crates/nn/src/models/convnet.rs crates/nn/src/models/facenet.rs crates/nn/src/models/resnet.rs crates/nn/src/optim.rs crates/nn/src/schedule.rs crates/nn/src/serialize.rs

/root/repo/target/debug/deps/libqce_nn-898f296ba248db7f.rlib: crates/nn/src/lib.rs crates/nn/src/error.rs crates/nn/src/layer.rs crates/nn/src/network.rs crates/nn/src/param.rs crates/nn/src/trainer.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/batchnorm.rs crates/nn/src/layers/conv.rs crates/nn/src/layers/dropout.rs crates/nn/src/layers/elementwise.rs crates/nn/src/layers/flatten.rs crates/nn/src/layers/linear.rs crates/nn/src/layers/pool.rs crates/nn/src/layers/residual.rs crates/nn/src/layers/sequential.rs crates/nn/src/loss.rs crates/nn/src/models/mod.rs crates/nn/src/models/convnet.rs crates/nn/src/models/facenet.rs crates/nn/src/models/resnet.rs crates/nn/src/optim.rs crates/nn/src/schedule.rs crates/nn/src/serialize.rs

/root/repo/target/debug/deps/libqce_nn-898f296ba248db7f.rmeta: crates/nn/src/lib.rs crates/nn/src/error.rs crates/nn/src/layer.rs crates/nn/src/network.rs crates/nn/src/param.rs crates/nn/src/trainer.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/batchnorm.rs crates/nn/src/layers/conv.rs crates/nn/src/layers/dropout.rs crates/nn/src/layers/elementwise.rs crates/nn/src/layers/flatten.rs crates/nn/src/layers/linear.rs crates/nn/src/layers/pool.rs crates/nn/src/layers/residual.rs crates/nn/src/layers/sequential.rs crates/nn/src/loss.rs crates/nn/src/models/mod.rs crates/nn/src/models/convnet.rs crates/nn/src/models/facenet.rs crates/nn/src/models/resnet.rs crates/nn/src/optim.rs crates/nn/src/schedule.rs crates/nn/src/serialize.rs

crates/nn/src/lib.rs:
crates/nn/src/error.rs:
crates/nn/src/layer.rs:
crates/nn/src/network.rs:
crates/nn/src/param.rs:
crates/nn/src/trainer.rs:
crates/nn/src/layers/mod.rs:
crates/nn/src/layers/activation.rs:
crates/nn/src/layers/batchnorm.rs:
crates/nn/src/layers/conv.rs:
crates/nn/src/layers/dropout.rs:
crates/nn/src/layers/elementwise.rs:
crates/nn/src/layers/flatten.rs:
crates/nn/src/layers/linear.rs:
crates/nn/src/layers/pool.rs:
crates/nn/src/layers/residual.rs:
crates/nn/src/layers/sequential.rs:
crates/nn/src/loss.rs:
crates/nn/src/models/mod.rs:
crates/nn/src/models/convnet.rs:
crates/nn/src/models/facenet.rs:
crates/nn/src/models/resnet.rs:
crates/nn/src/optim.rs:
crates/nn/src/schedule.rs:
crates/nn/src/serialize.rs:
