/root/repo/target/debug/deps/qce_nn-ca69664fa1e23311.d: crates/nn/src/lib.rs crates/nn/src/error.rs crates/nn/src/layer.rs crates/nn/src/network.rs crates/nn/src/param.rs crates/nn/src/trainer.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/batchnorm.rs crates/nn/src/layers/conv.rs crates/nn/src/layers/dropout.rs crates/nn/src/layers/elementwise.rs crates/nn/src/layers/flatten.rs crates/nn/src/layers/linear.rs crates/nn/src/layers/pool.rs crates/nn/src/layers/residual.rs crates/nn/src/layers/sequential.rs crates/nn/src/loss.rs crates/nn/src/models/mod.rs crates/nn/src/models/convnet.rs crates/nn/src/models/facenet.rs crates/nn/src/models/resnet.rs crates/nn/src/optim.rs crates/nn/src/schedule.rs crates/nn/src/serialize.rs Cargo.toml

/root/repo/target/debug/deps/libqce_nn-ca69664fa1e23311.rmeta: crates/nn/src/lib.rs crates/nn/src/error.rs crates/nn/src/layer.rs crates/nn/src/network.rs crates/nn/src/param.rs crates/nn/src/trainer.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/batchnorm.rs crates/nn/src/layers/conv.rs crates/nn/src/layers/dropout.rs crates/nn/src/layers/elementwise.rs crates/nn/src/layers/flatten.rs crates/nn/src/layers/linear.rs crates/nn/src/layers/pool.rs crates/nn/src/layers/residual.rs crates/nn/src/layers/sequential.rs crates/nn/src/loss.rs crates/nn/src/models/mod.rs crates/nn/src/models/convnet.rs crates/nn/src/models/facenet.rs crates/nn/src/models/resnet.rs crates/nn/src/optim.rs crates/nn/src/schedule.rs crates/nn/src/serialize.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/error.rs:
crates/nn/src/layer.rs:
crates/nn/src/network.rs:
crates/nn/src/param.rs:
crates/nn/src/trainer.rs:
crates/nn/src/layers/mod.rs:
crates/nn/src/layers/activation.rs:
crates/nn/src/layers/batchnorm.rs:
crates/nn/src/layers/conv.rs:
crates/nn/src/layers/dropout.rs:
crates/nn/src/layers/elementwise.rs:
crates/nn/src/layers/flatten.rs:
crates/nn/src/layers/linear.rs:
crates/nn/src/layers/pool.rs:
crates/nn/src/layers/residual.rs:
crates/nn/src/layers/sequential.rs:
crates/nn/src/loss.rs:
crates/nn/src/models/mod.rs:
crates/nn/src/models/convnet.rs:
crates/nn/src/models/facenet.rs:
crates/nn/src/models/resnet.rs:
crates/nn/src/optim.rs:
crates/nn/src/schedule.rs:
crates/nn/src/serialize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
