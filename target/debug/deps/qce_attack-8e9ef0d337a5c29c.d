/root/repo/target/debug/deps/qce_attack-8e9ef0d337a5c29c.d: crates/attack/src/lib.rs crates/attack/src/decode.rs crates/attack/src/error.rs crates/attack/src/layout.rs crates/attack/src/regularizer.rs crates/attack/src/capacity.rs crates/attack/src/correlation.rs crates/attack/src/ecc.rs crates/attack/src/lsb.rs crates/attack/src/payload.rs crates/attack/src/sign.rs

/root/repo/target/debug/deps/qce_attack-8e9ef0d337a5c29c: crates/attack/src/lib.rs crates/attack/src/decode.rs crates/attack/src/error.rs crates/attack/src/layout.rs crates/attack/src/regularizer.rs crates/attack/src/capacity.rs crates/attack/src/correlation.rs crates/attack/src/ecc.rs crates/attack/src/lsb.rs crates/attack/src/payload.rs crates/attack/src/sign.rs

crates/attack/src/lib.rs:
crates/attack/src/decode.rs:
crates/attack/src/error.rs:
crates/attack/src/layout.rs:
crates/attack/src/regularizer.rs:
crates/attack/src/capacity.rs:
crates/attack/src/correlation.rs:
crates/attack/src/ecc.rs:
crates/attack/src/lsb.rs:
crates/attack/src/payload.rs:
crates/attack/src/sign.rs:
