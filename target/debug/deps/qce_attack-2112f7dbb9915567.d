/root/repo/target/debug/deps/qce_attack-2112f7dbb9915567.d: crates/attack/src/lib.rs crates/attack/src/decode.rs crates/attack/src/error.rs crates/attack/src/layout.rs crates/attack/src/regularizer.rs crates/attack/src/capacity.rs crates/attack/src/correlation.rs crates/attack/src/ecc.rs crates/attack/src/lsb.rs crates/attack/src/payload.rs crates/attack/src/sign.rs

/root/repo/target/debug/deps/libqce_attack-2112f7dbb9915567.rlib: crates/attack/src/lib.rs crates/attack/src/decode.rs crates/attack/src/error.rs crates/attack/src/layout.rs crates/attack/src/regularizer.rs crates/attack/src/capacity.rs crates/attack/src/correlation.rs crates/attack/src/ecc.rs crates/attack/src/lsb.rs crates/attack/src/payload.rs crates/attack/src/sign.rs

/root/repo/target/debug/deps/libqce_attack-2112f7dbb9915567.rmeta: crates/attack/src/lib.rs crates/attack/src/decode.rs crates/attack/src/error.rs crates/attack/src/layout.rs crates/attack/src/regularizer.rs crates/attack/src/capacity.rs crates/attack/src/correlation.rs crates/attack/src/ecc.rs crates/attack/src/lsb.rs crates/attack/src/payload.rs crates/attack/src/sign.rs

crates/attack/src/lib.rs:
crates/attack/src/decode.rs:
crates/attack/src/error.rs:
crates/attack/src/layout.rs:
crates/attack/src/regularizer.rs:
crates/attack/src/capacity.rs:
crates/attack/src/correlation.rs:
crates/attack/src/ecc.rs:
crates/attack/src/lsb.rs:
crates/attack/src/payload.rs:
crates/attack/src/sign.rs:
