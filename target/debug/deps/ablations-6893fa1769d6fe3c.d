/root/repo/target/debug/deps/ablations-6893fa1769d6fe3c.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-6893fa1769d6fe3c.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
