/root/repo/target/debug/deps/props-e68356576c74dc78.d: crates/attack/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-e68356576c74dc78.rmeta: crates/attack/tests/props.rs Cargo.toml

crates/attack/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
