/root/repo/target/debug/deps/qce-e5c33f88e5f51b83.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/report.rs crates/core/src/audit.rs crates/core/src/defense.rs crates/core/src/faults.rs Cargo.toml

/root/repo/target/debug/deps/libqce-e5c33f88e5f51b83.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/report.rs crates/core/src/audit.rs crates/core/src/defense.rs crates/core/src/faults.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/flow.rs:
crates/core/src/report.rs:
crates/core/src/audit.rs:
crates/core/src/defense.rs:
crates/core/src/faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
