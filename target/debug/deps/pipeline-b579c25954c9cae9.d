/root/repo/target/debug/deps/pipeline-b579c25954c9cae9.d: crates/core/../../tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-b579c25954c9cae9: crates/core/../../tests/pipeline.rs

crates/core/../../tests/pipeline.rs:
