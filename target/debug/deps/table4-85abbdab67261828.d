/root/repo/target/debug/deps/table4-85abbdab67261828.d: crates/bench/benches/table4.rs

/root/repo/target/debug/deps/table4-85abbdab67261828: crates/bench/benches/table4.rs

crates/bench/benches/table4.rs:
