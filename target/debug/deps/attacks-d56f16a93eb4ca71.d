/root/repo/target/debug/deps/attacks-d56f16a93eb4ca71.d: crates/core/../../tests/attacks.rs Cargo.toml

/root/repo/target/debug/deps/libattacks-d56f16a93eb4ca71.rmeta: crates/core/../../tests/attacks.rs Cargo.toml

crates/core/../../tests/attacks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
