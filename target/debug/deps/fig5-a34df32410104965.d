/root/repo/target/debug/deps/fig5-a34df32410104965.d: crates/bench/benches/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-a34df32410104965.rmeta: crates/bench/benches/fig5.rs Cargo.toml

crates/bench/benches/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
