/root/repo/target/debug/deps/qce_bench-d0538d4139f9860b.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libqce_bench-d0538d4139f9860b.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
