/root/repo/target/debug/deps/serde-14f3f93aa00efa4e.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-14f3f93aa00efa4e.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-14f3f93aa00efa4e.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
