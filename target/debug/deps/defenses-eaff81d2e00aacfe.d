/root/repo/target/debug/deps/defenses-eaff81d2e00aacfe.d: crates/bench/benches/defenses.rs Cargo.toml

/root/repo/target/debug/deps/libdefenses-eaff81d2e00aacfe.rmeta: crates/bench/benches/defenses.rs Cargo.toml

crates/bench/benches/defenses.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
