/root/repo/target/debug/deps/qce_tensor-3124eafbc9c79859.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/axis.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/linalg.rs crates/tensor/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libqce_tensor-3124eafbc9c79859.rmeta: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/axis.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/linalg.rs crates/tensor/src/stats.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
crates/tensor/src/axis.rs:
crates/tensor/src/conv.rs:
crates/tensor/src/init.rs:
crates/tensor/src/linalg.rs:
crates/tensor/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
