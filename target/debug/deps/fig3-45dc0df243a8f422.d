/root/repo/target/debug/deps/fig3-45dc0df243a8f422.d: crates/bench/benches/fig3.rs

/root/repo/target/debug/deps/fig3-45dc0df243a8f422: crates/bench/benches/fig3.rs

crates/bench/benches/fig3.rs:
