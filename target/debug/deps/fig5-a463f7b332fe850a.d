/root/repo/target/debug/deps/fig5-a463f7b332fe850a.d: crates/bench/benches/fig5.rs

/root/repo/target/debug/deps/fig5-a463f7b332fe850a: crates/bench/benches/fig5.rs

crates/bench/benches/fig5.rs:
