/root/repo/target/debug/deps/props-84df4c1892652cdd.d: crates/data/tests/props.rs

/root/repo/target/debug/deps/props-84df4c1892652cdd: crates/data/tests/props.rs

crates/data/tests/props.rs:
