/root/repo/target/debug/deps/props-a29940fbfeb2b822.d: crates/tensor/tests/props.rs

/root/repo/target/debug/deps/props-a29940fbfeb2b822: crates/tensor/tests/props.rs

crates/tensor/tests/props.rs:
