/root/repo/target/debug/deps/robustness-c0f723180d1b6254.d: crates/core/../../tests/robustness.rs

/root/repo/target/debug/deps/robustness-c0f723180d1b6254: crates/core/../../tests/robustness.rs

crates/core/../../tests/robustness.rs:
