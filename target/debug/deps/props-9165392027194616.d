/root/repo/target/debug/deps/props-9165392027194616.d: crates/attack/tests/props.rs

/root/repo/target/debug/deps/props-9165392027194616: crates/attack/tests/props.rs

crates/attack/tests/props.rs:
