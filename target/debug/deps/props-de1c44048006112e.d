/root/repo/target/debug/deps/props-de1c44048006112e.d: crates/nn/tests/props.rs

/root/repo/target/debug/deps/props-de1c44048006112e: crates/nn/tests/props.rs

crates/nn/tests/props.rs:
