/root/repo/target/debug/deps/proptest-c99ac1a43d978407.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-c99ac1a43d978407.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
