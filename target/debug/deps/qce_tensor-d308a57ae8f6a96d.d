/root/repo/target/debug/deps/qce_tensor-d308a57ae8f6a96d.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/axis.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/linalg.rs crates/tensor/src/stats.rs

/root/repo/target/debug/deps/qce_tensor-d308a57ae8f6a96d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/axis.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/linalg.rs crates/tensor/src/stats.rs

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
crates/tensor/src/axis.rs:
crates/tensor/src/conv.rs:
crates/tensor/src/init.rs:
crates/tensor/src/linalg.rs:
crates/tensor/src/stats.rs:
