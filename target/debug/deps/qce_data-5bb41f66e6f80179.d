/root/repo/target/debug/deps/qce_data-5bb41f66e6f80179.d: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/image.rs crates/data/src/augment.rs crates/data/src/io.rs crates/data/src/select.rs crates/data/src/synth/mod.rs crates/data/src/synth/cifar.rs crates/data/src/synth/faces.rs Cargo.toml

/root/repo/target/debug/deps/libqce_data-5bb41f66e6f80179.rmeta: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/image.rs crates/data/src/augment.rs crates/data/src/io.rs crates/data/src/select.rs crates/data/src/synth/mod.rs crates/data/src/synth/cifar.rs crates/data/src/synth/faces.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/dataset.rs:
crates/data/src/error.rs:
crates/data/src/image.rs:
crates/data/src/augment.rs:
crates/data/src/io.rs:
crates/data/src/select.rs:
crates/data/src/synth/mod.rs:
crates/data/src/synth/cifar.rs:
crates/data/src/synth/faces.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
