/root/repo/target/debug/deps/robustness-318c169f6af58dbc.d: crates/bench/benches/robustness.rs

/root/repo/target/debug/deps/robustness-318c169f6af58dbc: crates/bench/benches/robustness.rs

crates/bench/benches/robustness.rs:
