/root/repo/target/debug/deps/serde-e4ad0ab6b359907e.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-e4ad0ab6b359907e.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
