/root/repo/target/debug/deps/qce_quant-29b1513ff5517d22.d: crates/quant/src/lib.rs crates/quant/src/codebook.rs crates/quant/src/error.rs crates/quant/src/finetune.rs crates/quant/src/network.rs crates/quant/src/quantizers.rs crates/quant/src/deploy.rs crates/quant/src/huffman.rs crates/quant/src/pack.rs crates/quant/src/prune.rs Cargo.toml

/root/repo/target/debug/deps/libqce_quant-29b1513ff5517d22.rmeta: crates/quant/src/lib.rs crates/quant/src/codebook.rs crates/quant/src/error.rs crates/quant/src/finetune.rs crates/quant/src/network.rs crates/quant/src/quantizers.rs crates/quant/src/deploy.rs crates/quant/src/huffman.rs crates/quant/src/pack.rs crates/quant/src/prune.rs Cargo.toml

crates/quant/src/lib.rs:
crates/quant/src/codebook.rs:
crates/quant/src/error.rs:
crates/quant/src/finetune.rs:
crates/quant/src/network.rs:
crates/quant/src/quantizers.rs:
crates/quant/src/deploy.rs:
crates/quant/src/huffman.rs:
crates/quant/src/pack.rs:
crates/quant/src/prune.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
