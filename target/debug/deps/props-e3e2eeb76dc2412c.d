/root/repo/target/debug/deps/props-e3e2eeb76dc2412c.d: crates/metrics/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-e3e2eeb76dc2412c.rmeta: crates/metrics/tests/props.rs Cargo.toml

crates/metrics/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
