/root/repo/target/debug/deps/pipeline-1f5dfb8c4a25864b.d: crates/core/../../tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-1f5dfb8c4a25864b.rmeta: crates/core/../../tests/pipeline.rs Cargo.toml

crates/core/../../tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
