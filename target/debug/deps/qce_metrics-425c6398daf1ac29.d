/root/repo/target/debug/deps/qce_metrics-425c6398daf1ac29.d: crates/metrics/src/lib.rs crates/metrics/src/classify.rs crates/metrics/src/image.rs crates/metrics/src/distribution.rs Cargo.toml

/root/repo/target/debug/deps/libqce_metrics-425c6398daf1ac29.rmeta: crates/metrics/src/lib.rs crates/metrics/src/classify.rs crates/metrics/src/image.rs crates/metrics/src/distribution.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/classify.rs:
crates/metrics/src/image.rs:
crates/metrics/src/distribution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
