/root/repo/target/debug/deps/robustness-20fb0c0dfc1ec12d.d: crates/core/../../tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-20fb0c0dfc1ec12d.rmeta: crates/core/../../tests/robustness.rs Cargo.toml

crates/core/../../tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
