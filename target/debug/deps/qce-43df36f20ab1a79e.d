/root/repo/target/debug/deps/qce-43df36f20ab1a79e.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/report.rs crates/core/src/audit.rs crates/core/src/defense.rs crates/core/src/faults.rs

/root/repo/target/debug/deps/libqce-43df36f20ab1a79e.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/report.rs crates/core/src/audit.rs crates/core/src/defense.rs crates/core/src/faults.rs

/root/repo/target/debug/deps/libqce-43df36f20ab1a79e.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/report.rs crates/core/src/audit.rs crates/core/src/defense.rs crates/core/src/faults.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/flow.rs:
crates/core/src/report.rs:
crates/core/src/audit.rs:
crates/core/src/defense.rs:
crates/core/src/faults.rs:
