/root/repo/target/debug/deps/rand-39f1d401273760a7.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-39f1d401273760a7.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
