/root/repo/target/debug/deps/table2-3768a5cd285da67b.d: crates/bench/benches/table2.rs

/root/repo/target/debug/deps/table2-3768a5cd285da67b: crates/bench/benches/table2.rs

crates/bench/benches/table2.rs:
