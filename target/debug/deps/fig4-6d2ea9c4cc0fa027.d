/root/repo/target/debug/deps/fig4-6d2ea9c4cc0fa027.d: crates/bench/benches/fig4.rs

/root/repo/target/debug/deps/fig4-6d2ea9c4cc0fa027: crates/bench/benches/fig4.rs

crates/bench/benches/fig4.rs:
