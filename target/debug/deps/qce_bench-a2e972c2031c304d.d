/root/repo/target/debug/deps/qce_bench-a2e972c2031c304d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libqce_bench-a2e972c2031c304d.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libqce_bench-a2e972c2031c304d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
