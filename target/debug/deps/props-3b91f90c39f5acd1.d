/root/repo/target/debug/deps/props-3b91f90c39f5acd1.d: crates/quant/tests/props.rs

/root/repo/target/debug/deps/props-3b91f90c39f5acd1: crates/quant/tests/props.rs

crates/quant/tests/props.rs:
