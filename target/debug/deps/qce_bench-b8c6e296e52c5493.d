/root/repo/target/debug/deps/qce_bench-b8c6e296e52c5493.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/qce_bench-b8c6e296e52c5493: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
