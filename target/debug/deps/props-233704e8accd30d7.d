/root/repo/target/debug/deps/props-233704e8accd30d7.d: crates/data/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-233704e8accd30d7.rmeta: crates/data/tests/props.rs Cargo.toml

crates/data/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
