/root/repo/target/debug/deps/training-6081dbc1867aaaf4.d: crates/core/../../tests/training.rs Cargo.toml

/root/repo/target/debug/deps/libtraining-6081dbc1867aaaf4.rmeta: crates/core/../../tests/training.rs Cargo.toml

crates/core/../../tests/training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
