/root/repo/target/debug/deps/qce_bench-d3aaaef595f689e0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/qce_bench-d3aaaef595f689e0: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
