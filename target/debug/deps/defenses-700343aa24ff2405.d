/root/repo/target/debug/deps/defenses-700343aa24ff2405.d: crates/bench/benches/defenses.rs

/root/repo/target/debug/deps/defenses-700343aa24ff2405: crates/bench/benches/defenses.rs

crates/bench/benches/defenses.rs:
