/root/repo/target/debug/deps/qce_metrics-4769f6d40c0807d1.d: crates/metrics/src/lib.rs crates/metrics/src/classify.rs crates/metrics/src/image.rs crates/metrics/src/distribution.rs

/root/repo/target/debug/deps/libqce_metrics-4769f6d40c0807d1.rlib: crates/metrics/src/lib.rs crates/metrics/src/classify.rs crates/metrics/src/image.rs crates/metrics/src/distribution.rs

/root/repo/target/debug/deps/libqce_metrics-4769f6d40c0807d1.rmeta: crates/metrics/src/lib.rs crates/metrics/src/classify.rs crates/metrics/src/image.rs crates/metrics/src/distribution.rs

crates/metrics/src/lib.rs:
crates/metrics/src/classify.rs:
crates/metrics/src/image.rs:
crates/metrics/src/distribution.rs:
