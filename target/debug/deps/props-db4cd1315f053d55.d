/root/repo/target/debug/deps/props-db4cd1315f053d55.d: crates/tensor/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-db4cd1315f053d55.rmeta: crates/tensor/tests/props.rs Cargo.toml

crates/tensor/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
