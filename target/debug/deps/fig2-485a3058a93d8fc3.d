/root/repo/target/debug/deps/fig2-485a3058a93d8fc3.d: crates/bench/benches/fig2.rs

/root/repo/target/debug/deps/fig2-485a3058a93d8fc3: crates/bench/benches/fig2.rs

crates/bench/benches/fig2.rs:
