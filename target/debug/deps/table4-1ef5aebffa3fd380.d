/root/repo/target/debug/deps/table4-1ef5aebffa3fd380.d: crates/bench/benches/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-1ef5aebffa3fd380.rmeta: crates/bench/benches/table4.rs Cargo.toml

crates/bench/benches/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
