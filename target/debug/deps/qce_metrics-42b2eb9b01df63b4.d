/root/repo/target/debug/deps/qce_metrics-42b2eb9b01df63b4.d: crates/metrics/src/lib.rs crates/metrics/src/classify.rs crates/metrics/src/image.rs crates/metrics/src/distribution.rs

/root/repo/target/debug/deps/qce_metrics-42b2eb9b01df63b4: crates/metrics/src/lib.rs crates/metrics/src/classify.rs crates/metrics/src/image.rs crates/metrics/src/distribution.rs

crates/metrics/src/lib.rs:
crates/metrics/src/classify.rs:
crates/metrics/src/image.rs:
crates/metrics/src/distribution.rs:
