/root/repo/target/debug/deps/table1-a978412eac432dfd.d: crates/bench/benches/table1.rs

/root/repo/target/debug/deps/table1-a978412eac432dfd: crates/bench/benches/table1.rs

crates/bench/benches/table1.rs:
