/root/repo/target/debug/deps/training-7a925b71cba369f0.d: crates/core/../../tests/training.rs

/root/repo/target/debug/deps/training-7a925b71cba369f0: crates/core/../../tests/training.rs

crates/core/../../tests/training.rs:
