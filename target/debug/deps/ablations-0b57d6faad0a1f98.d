/root/repo/target/debug/deps/ablations-0b57d6faad0a1f98.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/ablations-0b57d6faad0a1f98: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
