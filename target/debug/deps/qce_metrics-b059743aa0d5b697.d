/root/repo/target/debug/deps/qce_metrics-b059743aa0d5b697.d: crates/metrics/src/lib.rs crates/metrics/src/classify.rs crates/metrics/src/image.rs crates/metrics/src/distribution.rs

/root/repo/target/debug/deps/libqce_metrics-b059743aa0d5b697.rlib: crates/metrics/src/lib.rs crates/metrics/src/classify.rs crates/metrics/src/image.rs crates/metrics/src/distribution.rs

/root/repo/target/debug/deps/libqce_metrics-b059743aa0d5b697.rmeta: crates/metrics/src/lib.rs crates/metrics/src/classify.rs crates/metrics/src/image.rs crates/metrics/src/distribution.rs

crates/metrics/src/lib.rs:
crates/metrics/src/classify.rs:
crates/metrics/src/image.rs:
crates/metrics/src/distribution.rs:
