/root/repo/target/debug/deps/serde-a54cae676b502334.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-a54cae676b502334.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-a54cae676b502334.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
