/root/repo/target/debug/deps/qce_tensor-873df79f5fd6ee15.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/axis.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/linalg.rs crates/tensor/src/stats.rs

/root/repo/target/debug/deps/libqce_tensor-873df79f5fd6ee15.rlib: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/axis.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/linalg.rs crates/tensor/src/stats.rs

/root/repo/target/debug/deps/libqce_tensor-873df79f5fd6ee15.rmeta: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/axis.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/linalg.rs crates/tensor/src/stats.rs

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
crates/tensor/src/axis.rs:
crates/tensor/src/conv.rs:
crates/tensor/src/init.rs:
crates/tensor/src/linalg.rs:
crates/tensor/src/stats.rs:
