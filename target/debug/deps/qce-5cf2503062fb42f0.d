/root/repo/target/debug/deps/qce-5cf2503062fb42f0.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/report.rs crates/core/src/audit.rs crates/core/src/defense.rs crates/core/src/faults.rs

/root/repo/target/debug/deps/libqce-5cf2503062fb42f0.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/report.rs crates/core/src/audit.rs crates/core/src/defense.rs crates/core/src/faults.rs

/root/repo/target/debug/deps/libqce-5cf2503062fb42f0.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/report.rs crates/core/src/audit.rs crates/core/src/defense.rs crates/core/src/faults.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/flow.rs:
crates/core/src/report.rs:
crates/core/src/audit.rs:
crates/core/src/defense.rs:
crates/core/src/faults.rs:
