/root/repo/target/debug/deps/quantization-814c8f876c8e3f12.d: crates/core/../../tests/quantization.rs

/root/repo/target/debug/deps/quantization-814c8f876c8e3f12: crates/core/../../tests/quantization.rs

crates/core/../../tests/quantization.rs:
