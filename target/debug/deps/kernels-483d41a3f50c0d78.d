/root/repo/target/debug/deps/kernels-483d41a3f50c0d78.d: crates/bench/benches/kernels.rs

/root/repo/target/debug/deps/kernels-483d41a3f50c0d78: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:
