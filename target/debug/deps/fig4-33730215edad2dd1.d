/root/repo/target/debug/deps/fig4-33730215edad2dd1.d: crates/bench/benches/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-33730215edad2dd1.rmeta: crates/bench/benches/fig4.rs Cargo.toml

crates/bench/benches/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
