/root/repo/target/debug/deps/qce_bench-80b2a6c9dd835168.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libqce_bench-80b2a6c9dd835168.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libqce_bench-80b2a6c9dd835168.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
