/root/repo/target/debug/deps/criterion-a377c26d75fa7f3f.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-a377c26d75fa7f3f.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
