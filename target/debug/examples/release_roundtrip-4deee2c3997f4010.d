/root/repo/target/debug/examples/release_roundtrip-4deee2c3997f4010.d: crates/core/../../examples/release_roundtrip.rs Cargo.toml

/root/repo/target/debug/examples/librelease_roundtrip-4deee2c3997f4010.rmeta: crates/core/../../examples/release_roundtrip.rs Cargo.toml

crates/core/../../examples/release_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
