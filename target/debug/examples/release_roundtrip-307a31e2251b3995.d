/root/repo/target/debug/examples/release_roundtrip-307a31e2251b3995.d: crates/core/../../examples/release_roundtrip.rs

/root/repo/target/debug/examples/release_roundtrip-307a31e2251b3995: crates/core/../../examples/release_roundtrip.rs

crates/core/../../examples/release_roundtrip.rs:
