/root/repo/target/debug/examples/quickstart-c940db2a1aa7adac.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-c940db2a1aa7adac.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
