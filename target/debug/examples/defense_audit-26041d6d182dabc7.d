/root/repo/target/debug/examples/defense_audit-26041d6d182dabc7.d: crates/core/../../examples/defense_audit.rs

/root/repo/target/debug/examples/defense_audit-26041d6d182dabc7: crates/core/../../examples/defense_audit.rs

crates/core/../../examples/defense_audit.rs:
