/root/repo/target/debug/examples/defense_audit-732791dbf40b16b8.d: crates/core/../../examples/defense_audit.rs Cargo.toml

/root/repo/target/debug/examples/libdefense_audit-732791dbf40b16b8.rmeta: crates/core/../../examples/defense_audit.rs Cargo.toml

crates/core/../../examples/defense_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
