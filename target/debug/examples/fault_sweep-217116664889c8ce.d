/root/repo/target/debug/examples/fault_sweep-217116664889c8ce.d: crates/core/../../examples/fault_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libfault_sweep-217116664889c8ce.rmeta: crates/core/../../examples/fault_sweep.rs Cargo.toml

crates/core/../../examples/fault_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
