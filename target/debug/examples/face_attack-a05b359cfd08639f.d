/root/repo/target/debug/examples/face_attack-a05b359cfd08639f.d: crates/core/../../examples/face_attack.rs Cargo.toml

/root/repo/target/debug/examples/libface_attack-a05b359cfd08639f.rmeta: crates/core/../../examples/face_attack.rs Cargo.toml

crates/core/../../examples/face_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
