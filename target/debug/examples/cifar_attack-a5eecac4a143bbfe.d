/root/repo/target/debug/examples/cifar_attack-a5eecac4a143bbfe.d: crates/core/../../examples/cifar_attack.rs Cargo.toml

/root/repo/target/debug/examples/libcifar_attack-a5eecac4a143bbfe.rmeta: crates/core/../../examples/cifar_attack.rs Cargo.toml

crates/core/../../examples/cifar_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
