/root/repo/target/debug/examples/quickstart-34218717cf668419.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-34218717cf668419: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
