/root/repo/target/debug/examples/fault_sweep-eb3524e982f56737.d: crates/core/../../examples/fault_sweep.rs

/root/repo/target/debug/examples/fault_sweep-eb3524e982f56737: crates/core/../../examples/fault_sweep.rs

crates/core/../../examples/fault_sweep.rs:
