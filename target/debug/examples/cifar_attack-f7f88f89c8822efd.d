/root/repo/target/debug/examples/cifar_attack-f7f88f89c8822efd.d: crates/core/../../examples/cifar_attack.rs

/root/repo/target/debug/examples/cifar_attack-f7f88f89c8822efd: crates/core/../../examples/cifar_attack.rs

crates/core/../../examples/cifar_attack.rs:
