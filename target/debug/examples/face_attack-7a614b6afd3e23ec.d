/root/repo/target/debug/examples/face_attack-7a614b6afd3e23ec.d: crates/core/../../examples/face_attack.rs

/root/repo/target/debug/examples/face_attack-7a614b6afd3e23ec: crates/core/../../examples/face_attack.rs

crates/core/../../examples/face_attack.rs:
