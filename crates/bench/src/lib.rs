//! Shared harness code for the experiment-reproduction benches.
//!
//! Every table and figure of the paper has a `harness = false` bench in
//! `benches/` that regenerates it at reduced (CPU-minutes) scale; this
//! library holds the dataset builders, base configuration and table
//! formatting they share. See `DESIGN.md` §4 for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use qce::FlowConfig;
use qce_data::{Dataset, SynthCifar, SynthFaces};

/// Number of CIFAR-like images the table benches generate.
pub const CIFAR_N: usize = 1200;
/// Number of face images the face benches generate.
pub const FACES_N: usize = 1600;
/// Number of face identities.
pub const FACE_IDENTITIES: usize = 40;
/// Master seed of all benches.
pub const SEED: u64 = 1;

/// The standard 16×16 RGB CIFAR-like dataset of the benches.
///
/// # Panics
///
/// Panics only on an internal generator bug (fixed valid parameters).
pub fn cifar_rgb() -> Dataset {
    SynthCifar::new(16)
        .generate(CIFAR_N, SEED)
        .expect("valid generator parameters")
}

/// The grayscale variant of [`cifar_rgb`] (same underlying images).
pub fn cifar_gray() -> Dataset {
    cifar_rgb().to_grayscale()
}

/// The standard synthetic face dataset of the benches.
///
/// # Panics
///
/// Panics only on an internal generator bug (fixed valid parameters).
pub fn faces() -> Dataset {
    SynthFaces::new(16, FACE_IDENTITIES)
        .generate(FACES_N, 11)
        .expect("valid generator parameters")
}

/// The shared base flow configuration (the `small` preset, quantization
/// and grouping overridden per experiment).
pub fn base_config() -> FlowConfig {
    FlowConfig {
        quant: None,
        ..FlowConfig::small()
    }
}

/// Prints a bench banner naming the paper artifact being reproduced.
pub fn banner(artifact: &str, description: &str) {
    println!("================================================================");
    println!("{artifact} — {description}");
    println!("(reduced CPU scale; compare *shapes* with the paper, not");
    println!(" absolute values — see EXPERIMENTS.md)");
    println!("================================================================");
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f32) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Prints a histogram as a horizontal ASCII bar series, one bin per line.
pub fn print_histogram(label: &str, values: &[f32], bins: usize, lo: f32, hi: f32) {
    use qce_tensor::stats::Histogram;
    let h = Histogram::from_values(values, bins, lo, hi);
    let max = h.counts().iter().copied().max().unwrap_or(1).max(1);
    println!(
        "--- {label} (n={}, range [{lo:.3}, {hi:.3}]) ---",
        values.len()
    );
    for (i, &c) in h.counts().iter().enumerate() {
        let bar = "#".repeat((c * 48 / max) as usize);
        println!("{:>9.4} | {bar} {c}", h.bin_center(i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_build() {
        assert_eq!(cifar_rgb().len(), CIFAR_N);
        assert_eq!(cifar_gray().image(0).channels(), 1);
        assert_eq!(faces().classes(), FACE_IDENTITIES);
    }

    #[test]
    fn base_config_is_valid() {
        base_config().validate().unwrap();
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.8831), "88.31%");
    }
}
