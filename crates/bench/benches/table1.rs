//! Table I — model accuracy and recognizable-image count of the
//! *original* correlated value encoding attack after weighted-entropy
//! quantization, across quantization bit widths and correlation rates.
//!
//! Paper row layout:
//!
//! ```text
//! lambda_c            |   3.0            | 5.0  | 10.0
//! bit width           | 8    | 6   | 4   | 4    | 4
//! recognizable images | 88   | 82  | 58  | 59   | 75
//! model accuracy      | 88.79| 88.2| 83.0| 80.35| 75.46
//! ```
//!
//! Reproduction shape: for fixed λ, fewer bits → fewer recognizable
//! images and lower accuracy; for fixed low bits, larger λ → more
//! recognizable images but worse accuracy.

use qce::{AttackFlow, BandRule, FlowConfig, Grouping, QuantConfig, QuantMethod};
use qce_bench::{banner, base_config, cifar_rgb, pct};

fn main() {
    banner(
        "Table I",
        "original correlation attack vs weighted-entropy quantization",
    );
    let dataset = cifar_rgb();
    let cases: [(f32, &[u32]); 3] = [(3.0, &[8, 6, 4]), (5.0, &[4]), (10.0, &[4])];

    qce_telemetry::progress!(
        "{:<8} {:<5} {:>18} {:>15} {:>12} {:>12}",
        "lambda",
        "bits",
        "recognizable",
        "accuracy",
        "mean MAPE",
        "float acc"
    );
    for (lambda, bit_widths) in cases {
        let flow = AttackFlow::new(FlowConfig {
            grouping: Grouping::Uniform(lambda),
            band: BandRule::FirstN,
            ..base_config()
        });
        let mut trained = flow.train(&dataset).expect("training failed");
        let float_report = trained.float_report().expect("evaluation failed");
        for &bits in bit_widths {
            let release = trained
                .quantize(QuantConfig::new(QuantMethod::WeightedEntropy, bits))
                .expect("quantization failed");
            qce_telemetry::progress!(
                "{:<8} {:<5} {:>12}/{:<5} {:>15} {:>12.2} {:>12}",
                lambda,
                bits,
                release.report.recognized_count(),
                release.report.images.len(),
                pct(release.report.accuracy),
                release.report.mean_mape(),
                pct(float_report.accuracy),
            );
        }
    }
    qce_telemetry::progress!(
        "\npaper shape check: recognizable images and accuracy both fall as\n\
         bits decrease (lambda=3: 8 -> 6 -> 4 bits), and at 4 bits a larger\n\
         lambda buys recognizable images at the cost of accuracy."
    );
}
