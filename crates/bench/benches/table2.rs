//! Table II — number and percentage of badly reconstructed images
//! (MAPE > 20) per layer group, for uniform correlation rates
//! λ ∈ {3, 5, 10}.
//!
//! Paper finding: group 1 (early convs) encodes terribly (100% bad at
//! λ=3, still 48% bad at λ=10) and group 2 poorly, while group 3 (late
//! layers) encodes well — the motivation for setting λ₁ = λ₂ = 0 in the
//! final flow.

use qce::{AttackFlow, BandRule, FlowConfig, Grouping};
use qce_bench::{banner, base_config, cifar_rgb};

fn main() {
    banner(
        "Table II",
        "badly encoded images (MAPE > 20) per layer group, uniform lambda",
    );
    let dataset = cifar_rgb();
    qce_telemetry::progress!(
        "{:<8} {:>16} {:>16} {:>16} {:>16}",
        "lambda",
        "total",
        "group 1",
        "group 2",
        "group 3"
    );
    for lambda in [3.0f32, 5.0, 10.0] {
        // Same rate in every group, but grouped so the report can break
        // the counts down per group (this is exactly the paper's setup:
        // a uniform-rate attack analyzed through the 3-group lens).
        // Use a reduced lambda multiplier: the paper's per-group failure
        // pattern lives where the correlation gradient and the task
        // gradient are comparable (see DESIGN.md on lambda_scale); the
        // headline tables run hotter to compensate for fewer SGD steps.
        let flow = AttackFlow::new(FlowConfig {
            grouping: Grouping::LayerWise([lambda, lambda, lambda]),
            band: BandRule::FirstN,
            lambda_scale: 8.0,
            ..base_config()
        });
        let mut trained = flow.train(&dataset).expect("training failed");
        let report = trained.float_report().expect("evaluation failed");
        let by_group = report.bad_by_group(20.0, 3);
        let total_bad: usize = by_group.iter().map(|&(bad, _)| bad).sum();
        let total: usize = by_group.iter().map(|&(_, n)| n).sum();
        let cell = |(bad, n): (usize, usize)| -> String {
            if n == 0 {
                "-".to_string()
            } else {
                format!("{bad}/{n} ({:.1}%)", 100.0 * bad as f32 / n as f32)
            }
        };
        qce_telemetry::progress!(
            "{:<8} {:>16} {:>16} {:>16} {:>16}",
            lambda,
            cell((total_bad, total)),
            cell(by_group[0]),
            cell(by_group[1]),
            cell(by_group[2]),
        );
    }
    qce_telemetry::progress!(
        "\npaper shape check: the bad-image percentage is highest in group 1,\n\
         lower in group 2, lowest in group 3, and increasing lambda reduces\n\
         the totals without rescuing group 1."
    );
}
