//! Fig. 2 — (a) weight distributions of the benign model vs. correlation
//! attack models at λ ∈ {1, 10}; (b) pixel-value distributions of images
//! grouped by per-image pixel std.
//!
//! Paper shape: the attack reshapes the bell-shaped benign weight
//! distribution toward the (flat, wide) pixel distribution, more strongly
//! at larger λ; and the [50, 55) std band's pixel distribution resembles
//! the attacked weight distribution while extreme bands (<30, >70) do
//! not.

use qce::{AttackFlow, BandRule, FlowConfig, Grouping};
use qce_bench::{banner, base_config, cifar_rgb, print_histogram};
use qce_data::select::StdBand;

fn main() {
    banner(
        "Fig. 2",
        "weight distributions under attack (a); pixel distributions by std band (b)",
    );
    let dataset = cifar_rgb();

    // (a) Weight distributions.
    qce_telemetry::progress!("\n(a) weight distributions (group-3 weights, 33 bins)\n");
    for (label, grouping) in [
        ("benign", Grouping::Benign),
        ("lambda = 1", Grouping::Uniform(1.0)),
        ("lambda = 10", Grouping::Uniform(10.0)),
    ] {
        let flow = AttackFlow::new(FlowConfig {
            grouping,
            band: BandRule::FirstN,
            epochs: 4,
            ..base_config()
        });
        let trained = flow.train(&dataset).expect("training failed");
        let flat = trained.network().flat_weights();
        let lo = qce_tensor::stats::quantile(&flat, 0.001).unwrap_or(-0.3);
        let hi = qce_tensor::stats::quantile(&flat, 0.999).unwrap_or(0.3);
        print_histogram(label, &flat, 33, lo, hi);
        let kurt = qce::audit::excess_kurtosis(&flat);
        qce_telemetry::progress!("excess kurtosis: {kurt:.3}\n");
    }

    // (b) Pixel distributions by std band.
    qce_telemetry::progress!("\n(b) pixel-value distributions by per-image std band\n");
    let bands = [
        ("std < 30", StdBand::new(0.0, 30.0).expect("valid band")),
        (
            "std in [50, 55)",
            StdBand::new(50.0, 55.0).expect("valid band"),
        ),
        ("std > 70", StdBand::new(70.0, 1000.0).expect("valid band")),
    ];
    for (label, band) in bands {
        let indices = qce_data::select::candidates_in_band(&dataset, band);
        let stream = dataset.pixel_stream(&indices).expect("valid indices");
        let values: Vec<f32> = stream.iter().map(|&p| p as f32).collect();
        print_histogram(
            &format!("{label} ({} images)", indices.len()),
            &values,
            33,
            0.0,
            256.0,
        );
        qce_telemetry::progress!();
    }
    qce_telemetry::progress!(
        "paper shape check: benign weights are bell-shaped (positive excess\n\
         kurtosis); attacked weights flatten toward the pixel distribution\n\
         as lambda grows; the mid-std band's pixel histogram matches the\n\
         attacked weight histogram far better than the extreme bands."
    );
}
