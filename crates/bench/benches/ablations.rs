//! Ablations — what each component of the attack flow contributes, plus
//! the §II-B baseline attacks under quantization.
//!
//! 1. Component knock-outs of the combined flow at 4 bits:
//!    * full flow (std band + layer-wise + target-correlated quant)
//!    * no preprocessing (encode the first images instead of the band)
//!    * uniform rate instead of layer-wise
//!    * weighted-entropy instead of target-correlated quantization
//!    * no regularizer during fine-tuning
//! 2. LSB and sign encoding baselines before/after quantization.
//! 3. Attack survival under magnitude pruning (the *other* compression of
//!    the deep-compression pipeline the paper's introduction cites).

use qce::{AttackFlow, BandRule, FlowConfig, Grouping, QuantConfig, QuantMethod};
use qce_attack::{lsb, sign};
use qce_bench::{banner, base_config, cifar_rgb, pct};
use qce_metrics::mape;
use qce_nn::ParamKind;
use qce_quant::{prune, quantize_network, LinearQuantizer};

fn run(name: &str, cfg: FlowConfig, dataset: &qce_data::Dataset) {
    let out = AttackFlow::new(cfg).run(dataset).expect("flow failed");
    let r = out.final_report();
    qce_telemetry::progress!(
        "{name:<28} accuracy {:>8}   MAPE {:>6.2}   recognized {:>3}/{:<3}",
        pct(r.accuracy),
        r.mean_mape(),
        r.recognized_count(),
        r.images.len(),
    );
}

fn main() {
    banner("Ablations", "component knock-outs and baseline attacks");
    let dataset = cifar_rgb();
    let lambda = 5.0;
    let tc4 = Some(QuantConfig::new(QuantMethod::TargetCorrelated, 4));

    qce_telemetry::progress!("\n1) component knock-outs (lambda = {lambda}, 4-bit):\n");
    run(
        "full flow",
        FlowConfig {
            grouping: Grouping::LayerWise([0.0, 0.0, lambda]),
            band: BandRule::Explicit {
                min: 50.0,
                max: 55.0,
            },
            quant: tc4,
            ..base_config()
        },
        &dataset,
    );
    run(
        "- std-band preprocessing",
        FlowConfig {
            grouping: Grouping::LayerWise([0.0, 0.0, lambda]),
            band: BandRule::FirstN,
            quant: tc4,
            ..base_config()
        },
        &dataset,
    );
    run(
        "- layer-wise rates",
        FlowConfig {
            grouping: Grouping::Uniform(lambda),
            band: BandRule::Explicit {
                min: 50.0,
                max: 55.0,
            },
            quant: tc4,
            ..base_config()
        },
        &dataset,
    );
    run(
        "- target-correlated quant",
        FlowConfig {
            grouping: Grouping::LayerWise([0.0, 0.0, lambda]),
            band: BandRule::Explicit {
                min: 50.0,
                max: 55.0,
            },
            quant: Some(QuantConfig::new(QuantMethod::WeightedEntropy, 4)),
            ..base_config()
        },
        &dataset,
    );
    run(
        "- regularized fine-tune",
        FlowConfig {
            grouping: Grouping::LayerWise([0.0, 0.0, lambda]),
            band: BandRule::Explicit {
                min: 50.0,
                max: 55.0,
            },
            quant: Some(QuantConfig {
                regularize_finetune: false,
                ..QuantConfig::new(QuantMethod::TargetCorrelated, 4)
            }),
            ..base_config()
        },
        &dataset,
    );

    qce_telemetry::progress!("\n2) baseline attacks under 4-bit linear quantization:\n");
    // A trained benign model as the carrier.
    let trained = AttackFlow::new(FlowConfig {
        grouping: Grouping::Benign,
        epochs: 3,
        ..base_config()
    })
    .train(&dataset)
    .expect("training failed");
    let payload: Vec<u8> = (0..512).map(|i| (i * 89 + 3) as u8).collect();

    // LSB attack.
    let mut lsb_net = trained.network().flat_weights();
    lsb::embed(&mut lsb_net, &payload, 4).expect("embedding failed");
    let before = lsb::bit_recovery_rate(
        &payload,
        &lsb::extract(&lsb_net, 4, payload.len()).expect("extraction failed"),
    );
    // Re-quantize the released weights.
    let mut carrier = AttackFlow::new(FlowConfig {
        grouping: Grouping::Benign,
        epochs: 3,
        ..base_config()
    })
    .train(&dataset)
    .expect("training failed");
    {
        let mut params = carrier_network_weights(&mut carrier);
        lsb::embed(&mut params, &payload, 4).expect("embedding failed");
        set_weights(&mut carrier, &params);
    }
    quantize_network(
        carrier_net_mut(&mut carrier),
        &LinearQuantizer::new(16).expect("levels"),
    )
    .expect("quantization failed");
    let after = lsb::bit_recovery_rate(
        &payload,
        &lsb::extract(&carrier_network_weights(&mut carrier), 4, payload.len())
            .expect("extraction failed"),
    );
    qce_telemetry::progress!(
        "LSB encoding   : bit recovery {before:.3} float -> {after:.3} after 4-bit quant"
    );

    // Sign attack: drive signs with the regularizer, then quantize.
    let mut net = carrier_net_owned(&dataset);
    let mut reg = sign::SignEncodingRegularizer::with_margin(&payload[..64], 20.0, 0.1)
        .expect("valid payload");
    for _ in 0..300 {
        net.zero_grad();
        qce_nn::Regularizer::apply(&mut reg, &mut net).expect("regularizer failed");
        let mut params = net.params_mut();
        for p in params.iter_mut() {
            if p.kind() == ParamKind::Weight {
                let g = p.grad().clone();
                p.value_mut().axpy(-0.5, &g).expect("shapes match");
            }
        }
    }
    let sign_before = sign::sign_agreement(&net.flat_weights(), &payload[..64]);
    quantize_network(&mut net, &LinearQuantizer::new(16).expect("levels"))
        .expect("quantization failed");
    let sign_after = sign::sign_agreement(&net.flat_weights(), &payload[..64]);
    qce_telemetry::progress!(
        "sign encoding  : bit agreement {sign_before:.3} float -> {sign_after:.3} after 4-bit quant"
    );
    qce_telemetry::progress!("\n3) correlation attack vs magnitude pruning:\n");
    let mut trained = AttackFlow::new(FlowConfig {
        grouping: Grouping::Uniform(lambda),
        band: BandRule::FirstN,
        ..base_config()
    })
    .train(&dataset)
    .expect("training failed");
    let targets = trained.targets().to_vec();
    for sparsity in [0.0f32, 0.25, 0.5, 0.75, 0.9] {
        trained.restore_float().expect("state restore failed");
        if sparsity > 0.0 {
            prune::magnitude_prune(trained.network_mut(), sparsity).expect("pruning failed");
        }
        let decoded = trained.decode_images().expect("decoding failed");
        let mean: f32 = decoded
            .iter()
            .map(|d| mape(&targets[d.target_index], &d.image))
            .sum::<f32>()
            / decoded.len().max(1) as f32;
        qce_telemetry::progress!(
            "sparsity {:>4.0}% : decoded MAPE {mean:>6.2}",
            100.0 * sparsity
        );
    }

    qce_telemetry::progress!(
        "\nshape check: LSB collapses toward 0.5 (destroyed); sign encoding\n\
         survives; the correlation attack degrades gracefully with pruning\n\
         (pruned weights blank a pixel-value band rather than whole images)\n\
         and survives quantization with the best capacity-quality product."
    );
}

// --- small helpers to keep the baseline section readable ---

fn carrier_network_weights(t: &mut qce::TrainedAttack) -> Vec<f32> {
    t.network().flat_weights()
}

fn set_weights(t: &mut qce::TrainedAttack, w: &[f32]) {
    carrier_net_mut(t)
        .set_flat_weights(w)
        .expect("layout matches");
}

fn carrier_net_mut(t: &mut qce::TrainedAttack) -> &mut qce_nn::Network {
    t.network_mut()
}

fn carrier_net_owned(dataset: &qce_data::Dataset) -> qce_nn::Network {
    AttackFlow::new(FlowConfig {
        grouping: Grouping::Benign,
        epochs: 2,
        ..base_config()
    })
    .train(dataset)
    .expect("training failed")
    .into_network()
}
