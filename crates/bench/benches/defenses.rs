//! Defense sweep (extension beyond the paper): what a data holder can do
//! to a finished model before release, and what it costs.
//!
//! * weight noising at increasing strength — accuracy vs. decoded-image
//!   quality trade-off curve;
//! * defender-side k-means re-quantization at decreasing bit width;
//! * the image-level detector's recall/precision on the attacked model.

use qce::audit::detect_encoded_images;
use qce::defense::{noise_weights, requantize};
use qce::{AttackFlow, BandRule, FlowConfig, Grouping};
use qce_bench::{banner, base_config, cifar_rgb, pct};
use qce_metrics::mape;

fn main() {
    banner(
        "Defenses",
        "release-time countermeasures vs the trained correlation attack",
    );
    let dataset = cifar_rgb();
    let cfg = FlowConfig {
        grouping: Grouping::Uniform(5.0),
        band: BandRule::FirstN,
        ..base_config()
    };
    let split_seed = cfg.seed;
    let train_fraction = cfg.train_fraction;
    let mut trained = AttackFlow::new(cfg)
        .train(&dataset)
        .expect("training failed");
    let targets = trained.targets().to_vec();
    let (train_split, _) = dataset
        .split(train_fraction, split_seed)
        .expect("valid split");

    let evaluate = |t: &mut qce::TrainedAttack, label: &str| {
        let report = t.evaluate(label.to_string()).expect("evaluation failed");
        let decoded = t.decode_images().expect("decoding failed");
        let mean: f32 = decoded
            .iter()
            .map(|d| mape(&targets[d.target_index], &d.image))
            .sum::<f32>()
            / decoded.len().max(1) as f32;
        qce_telemetry::progress!(
            "{label:<24} accuracy {:>8}   decoded MAPE {:>7.2}   recognized {:>3}/{:<3}",
            pct(report.accuracy),
            mean,
            report.recognized_count(),
            report.images.len(),
        );
    };

    qce_telemetry::progress!("\n1) released model without countermeasures:\n");
    trained.restore_float().expect("state restore failed");
    evaluate(&mut trained, "no defense");

    qce_telemetry::progress!("\n2) weight noising (sigma as a fraction of per-tensor std):\n");
    for fraction in [0.1f32, 0.2, 0.4, 0.8] {
        trained.restore_float().expect("state restore failed");
        noise_weights(trained.network_mut(), fraction, 5).expect("noise failed");
        evaluate(&mut trained, &format!("noise {fraction}"));
    }

    qce_telemetry::progress!("\n3) defender-side k-means re-quantization:\n");
    for bits in [6u32, 4, 3] {
        trained.restore_float().expect("state restore failed");
        requantize(trained.network_mut(), bits).expect("requantization failed");
        evaluate(&mut trained, &format!("requantize {bits}-bit"));
    }

    qce_telemetry::progress!("\n4) image-level detection on the undefended release:\n");
    trained.restore_float().expect("state restore failed");
    let detected = detect_encoded_images(trained.network(), &train_split, 0.85);
    let encoded: std::collections::HashSet<usize> = trained
        .decode_images()
        .expect("decoding failed")
        .iter()
        .map(|d| d.target_index)
        .collect();
    qce_telemetry::progress!(
        "detected {} images; {} actually encoded in the model",
        detected.len(),
        encoded.len()
    );

    qce_telemetry::progress!(
        "\nfinding: on a correlation-encoded model the usual intuition\n\
         FAILS — noise strong enough to damage the encoding destroys\n\
         accuracy first, and defender re-quantization leaves most images\n\
         recognizable. Post-hoc weight perturbation is NOT an effective\n\
         defense here; the detector (which names the stolen images\n\
         outright) and training-code review are."
    );
}
