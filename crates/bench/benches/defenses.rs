//! Defense arms race (extension beyond the paper): what a data holder
//! can do to a finished model before release, what it costs, and which
//! attack channel survives it.
//!
//! * the [`DefensePlan`] roster (rotation in both modes, scrub
//!   fine-tuning, magnitude pruning, re-quantization, weight noising)
//!   against the paper's correlation channel;
//! * the same roster against the rotation-invariant statsign channel,
//!   with the payload bit-error rate before ECC as the damage measure;
//! * the image-level detector's recall on the attacked model;
//! * wall-time and determinism of every defense transform plus the
//!   resilient decoder, written to `BENCH_defense.json` for the
//!   `harness bench-gate` regression check.

use std::time::Instant;

use qce::audit::detect_encoded_images;
use qce::{AttackFlow, BandRule, EncodingChannel, FlowConfig, Grouping, TrainedAttack};
use qce_attack::correlation::SignConvention;
use qce_attack::Decoder;
use qce_bench::{banner, base_config, cifar_rgb, pct};
use qce_defense::{DefenseKind, DefensePlan, RotationMode};
use qce_tensor::par::Pool;

/// MAPE ceiling under which a decoded image counts as recovered (matches
/// the conformance harness's `recovered` metric).
const RECOVERY_MAPE_CEILING: f32 = 20.0;

/// The defense roster both channels face: every countermeasure family at
/// a strength that keeps the released model's accuracy usable.
fn roster() -> Vec<(&'static str, DefensePlan)> {
    vec![
        ("none", DefensePlan::new(0)),
        (
            "rotation permute",
            DefensePlan::new(11).with(DefenseKind::Rotation {
                mode: RotationMode::Permute,
            }),
        ),
        (
            // Strength must stay below 0.5: the blended mix (1-s)I + sQ is
            // singular exactly when an eigenvalue of Q hits -(1-s)/s, which
            // is only reachable (|eig| = 1) at s >= 0.5.
            "rotation qr_blend",
            DefensePlan::new(12).with(DefenseKind::Rotation {
                mode: RotationMode::QrBlend { strength: 0.4 },
            }),
        ),
        (
            "finetune-scrub",
            DefensePlan::new(13).with(DefenseKind::FinetuneScrub {
                epochs: 1,
                lr: 0.01,
            }),
        ),
        (
            "prune-scrub 10%",
            DefensePlan::new(17).with(DefenseKind::PruneScrub { fraction: 0.1 }),
        ),
        (
            "requantize 5-bit",
            DefensePlan::new(19).with(DefenseKind::Requantize { bits: 5 }),
        ),
        (
            "noise 10% std",
            DefensePlan::new(23).with(DefenseKind::NoiseWeights { fraction: 0.1 }),
        ),
    ]
}

/// Runs every roster defense against a trained release and prints one
/// line per defense: accuracy, decode MAPE and recovered-image count.
fn sweep(trained: &mut TrainedAttack, extra: impl Fn(&TrainedAttack) -> String) {
    for (name, plan) in roster() {
        let report = trained
            .evaluate_defended(None, &plan, name.to_string())
            .expect("defended evaluation failed");
        // `evaluate_defended` restores the float state afterwards; re-apply
        // the defense so channel-specific extras can probe the weights.
        trained
            .defend_in_place(&plan, name.to_string())
            .expect("defense application failed");
        let probe = extra(trained);
        trained.restore_float().expect("state restore failed");
        qce_telemetry::progress!(
            "{name:<20} accuracy {:>8}   decoded MAPE {:>7.2}   recovered {:>3}/{:<3}{probe}",
            pct(report.accuracy),
            report.mean_mape().unwrap_or(f32::NAN),
            report.recovered_count(RECOVERY_MAPE_CEILING),
            report.images.len(),
        );
    }
}

fn main() {
    banner(
        "Defenses",
        "the defense arms race: release-time countermeasures vs both attack channels",
    );
    let dataset = cifar_rgb();
    let corr_cfg = FlowConfig {
        grouping: Grouping::Uniform(5.0),
        band: BandRule::FirstN,
        ..base_config()
    };

    qce_telemetry::progress!("\n1) correlation channel (the paper's attack) vs the roster:\n");
    let mut corr = AttackFlow::new(corr_cfg.clone())
        .train(&dataset)
        .expect("correlation training failed");
    sweep(&mut corr, |_| String::new());

    qce_telemetry::progress!(
        "\n2) statsign channel (rotation-invariant hardening) vs the roster:\n"
    );
    let stat_cfg = FlowConfig {
        channel: EncodingChannel::StatSign { lambda: 3e4 },
        ..corr_cfg.clone()
    };
    let mut stat = AttackFlow::new(stat_cfg)
        .train(&dataset)
        .expect("statsign training failed");
    let stat_layout = stat
        .statsign_layout()
        .expect("statsign flow has a layout")
        .clone();
    // Raw (pre-ECC, pre-polarity-vote) BER: rotation shows ~0.5 here
    // because permutation compensation sign-flips whole blocks, yet the
    // decoder's per-block polarity vote still recovers every image.
    sweep(&mut stat, |t| {
        format!(
            "   raw payload BER {:.4}",
            stat_layout.payload_ber(&t.network().flat_weights())
        )
    });

    qce_telemetry::progress!("\n3) image-level detection on the undefended correlation release:\n");
    let (train_split, _) = dataset
        .split(corr_cfg.train_fraction, corr_cfg.seed)
        .expect("valid split");
    let detected = detect_encoded_images(corr.network(), &train_split, 0.85);
    let encoded: std::collections::HashSet<usize> = corr
        .decode_images()
        .expect("decoding failed")
        .iter()
        .map(|d| d.target_index)
        .collect();
    qce_telemetry::progress!(
        "detected {} images; {} actually encoded in the model",
        detected.len(),
        encoded.len()
    );

    write_bench_json(&mut corr);

    qce_telemetry::progress!(
        "\nfinding: the arms race has two distinct regimes. Against the\n\
         correlation channel, value-preserving perturbations (noise,\n\
         re-quantization, scrub fine-tuning) cost accuracy faster than\n\
         they destroy the encoding, but a compensated channel rotation\n\
         erases the pixel stream outright at zero accuracy cost. The\n\
         statsign channel survives that rotation by construction (its\n\
         payload lives in permutation-invariant group statistics) and\n\
         only magnitude pruning dents it — at which point the defender\n\
         is back to trading model quality for privacy. Detection and\n\
         training-code review remain the only defenses that win outright."
    );
}

// ---------------------------------------------------------------------------
// Timing harness: per-defense wall time + seeded-determinism check,
// written to BENCH_defense.json for `harness bench-gate`.
// ---------------------------------------------------------------------------

const TIMING_REPS: usize = 3;

struct DefenseRow {
    name: String,
    serial_ms: f64,
    parallel_ms: f64,
    bitwise_identical: bool,
}

impl DefenseRow {
    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\"name\": \"{}\", ",
                "\"serial_ms\": {:.4}, \"parallel_ms\": {:.4}, ",
                "\"bitwise_identical\": {}}}"
            ),
            self.name, self.serial_ms, self.parallel_ms, self.bitwise_identical,
        )
    }
}

/// Minimum wall time of `TIMING_REPS` runs plus the produced weight bits.
fn time_defense(trained: &mut TrainedAttack, plan: &DefensePlan) -> (f64, Vec<u32>) {
    let mut best = f64::INFINITY;
    let mut bits = Vec::new();
    for _ in 0..TIMING_REPS {
        trained.restore_float().expect("state restore failed");
        let start = Instant::now();
        trained
            .defend_in_place(plan, "timing".to_string())
            .expect("defense application failed");
        best = best.min(start.elapsed().as_secs_f64());
        bits = trained
            .network()
            .flat_weights()
            .iter()
            .map(|v| v.to_bits())
            .collect();
    }
    trained.restore_float().expect("state restore failed");
    (best, bits)
}

fn write_bench_json(corr: &mut TrainedAttack) {
    qce_telemetry::progress!("\n4) defense transform timing and determinism:\n");
    let mut rows = Vec::new();
    for (name, plan) in roster() {
        if plan.is_benign() {
            continue;
        }
        // Defense transforms are single-threaded; both columns carry the
        // same wall time and the bitwise flag asserts that a seeded plan
        // re-applied to the same release is deterministic.
        let (first_s, first_bits) = time_defense(corr, &plan);
        let (second_s, second_bits) = time_defense(corr, &plan);
        rows.push(DefenseRow {
            name: format!("defense_{}", name.replace([' ', '%', '-'], "_")),
            serial_ms: first_s.min(second_s) * 1e3,
            parallel_ms: first_s.min(second_s) * 1e3,
            bitwise_identical: first_bits == second_bits,
        });
    }

    // The resilient decoder is the arms race's hot path and genuinely
    // pool-parameterized: serial vs 4-thread, bit-identical by contract.
    let decoder = Decoder::new(
        corr.layout()
            .expect("correlation flow has a layout")
            .clone(),
        SignConvention::Positive,
    );
    let flat = corr.network().flat_weights();
    let time_decode = |pool: &Pool| -> (f64, Vec<u8>) {
        let mut best = f64::INFINITY;
        let mut bits = Vec::new();
        for _ in 0..TIMING_REPS {
            let start = Instant::now();
            let out = decoder.decode_resilient_with(pool, &flat);
            best = best.min(start.elapsed().as_secs_f64());
            bits = out
                .images
                .iter()
                .filter_map(|r| r.image.as_ref())
                .flat_map(|img| img.pixels().to_vec())
                .collect();
        }
        (best, bits)
    };
    let (serial_s, serial_bits) = time_decode(&Pool::serial());
    let (parallel_s, parallel_bits) = time_decode(&Pool::with_threads(4));
    rows.push(DefenseRow {
        name: "decode_resilient".to_string(),
        serial_ms: serial_s * 1e3,
        parallel_ms: parallel_s * 1e3,
        bitwise_identical: serial_bits == parallel_bits,
    });

    for r in &rows {
        qce_telemetry::progress!(
            "{:<32} serial {:9.3} ms | parallel {:9.3} ms | bitwise_identical={}",
            r.name,
            r.serial_ms,
            r.parallel_ms,
            r.bitwise_identical,
        );
        assert!(r.bitwise_identical, "{}: non-deterministic output", r.name);
    }

    let body: Vec<String> = rows.iter().map(DefenseRow::json).collect();
    let json = format!(
        "{{\n  \"bench\": \"defenses\",\n  \"reps\": {},\n  \"kernels\": [\n{}\n  ]\n}}\n",
        TIMING_REPS,
        body.join(",\n"),
    );
    // The bench binary's cwd is the package dir; anchor the report at the
    // workspace root so CI can pick it up from a stable path.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_defense.json");
    std::fs::write(path, json).expect("write BENCH_defense.json");
    qce_telemetry::progress!("wrote {path}");
}
