//! Fig. 5 — reconstructed face images from the 3-bit quantized model:
//! top row our target-correlated quantization, bottom row the original
//! weighted-entropy quantization.
//!
//! Writes PGM strips under `target/fig5/` and prints per-face MAPE/SSIM
//! so the visual claim is also a number.

use qce::{AttackFlow, BandRule, FlowConfig, Grouping, QuantConfig, QuantMethod};
use qce_bench::{banner, base_config, faces};
use qce_data::io;
use qce_metrics::{mape, ssim};

const STRIP: usize = 8;

fn main() {
    banner(
        "Fig. 5",
        "reconstructed faces: target-correlated vs weighted-entropy, 3-bit",
    );
    std::fs::create_dir_all("target/fig5").expect("create output dir");
    let dataset = faces();
    let flow = AttackFlow::new(FlowConfig {
        grouping: Grouping::LayerWise([0.0, 0.0, 10.0]),
        band: BandRule::Auto { width: 8.0 },
        epochs: 14,
        ..base_config()
    });
    let mut trained = flow.train(&dataset).expect("training failed");

    let mut strips: Vec<(String, Vec<qce_data::Image>)> = Vec::new();
    strips.push((
        "targets".to_string(),
        trained.targets().iter().take(STRIP).cloned().collect(),
    ));

    for (label, method) in [
        ("proposed", QuantMethod::TargetCorrelated),
        ("original", QuantMethod::WeightedEntropy),
    ] {
        trained
            .apply_quantized_state(QuantConfig::new(method, 3))
            .expect("quantization failed");
        let decoded = trained.decode_images().expect("decoding failed");
        qce_telemetry::progress!("\n{label} quantization, first {STRIP} faces:");
        let mut row = Vec::new();
        for d in decoded.iter().take(STRIP) {
            let original = &trained.targets()[d.target_index];
            qce_telemetry::progress!(
                "  face {:>3}: MAPE {:>6.2}  SSIM {:.4}",
                d.target_index,
                mape(original, &d.image),
                ssim(original, &d.image),
            );
            row.push(d.image.clone());
        }
        strips.push((label.to_string(), row));
        trained.restore_float().expect("state restore failed");
    }

    for (name, images) in &strips {
        if images.is_empty() {
            continue;
        }
        let strip = io::tile_row(images).expect("tiling failed");
        let path = format!("target/fig5/{name}.pgm");
        io::write_pgm(&strip, &path).expect("write failed");
        qce_telemetry::progress!("wrote {path}");
    }
    qce_telemetry::progress!(
        "\npaper shape check: the proposed row preserves face texture\n\
         (higher SSIM per face); the weighted-entropy row visibly degrades\n\
         it. Open the PGM strips side by side to compare."
    );
}
