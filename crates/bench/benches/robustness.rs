//! Robustness sweep (extension beyond the paper): how much *release
//! perturbation* the correlation attack survives.
//!
//! The quantization tables answer "how few bits survive the attack"; this
//! harness answers the complementary deployment question. A trained
//! attack model is released (float and 4-bit quantized), a seeded
//! [`FaultPlan`] perturbs each release at increasing severity — bit flips
//! in the packed cluster-index stream, Gaussian noise, centroid jitter,
//! simulated fine-tune drift — and the *resilient* decoder extracts what
//! it can, reporting per-image status instead of failing outright.

use qce::{AttackFlow, BandRule, QuantConfig, QuantMethod};
use qce::{FaultKind, FaultPlan, FlowConfig, Grouping};
use qce_bench::{banner, base_config, cifar_rgb};

fn main() {
    banner(
        "Robustness",
        "fault severity vs task accuracy and resilient extraction quality",
    );
    let dataset = cifar_rgb();
    let cfg = FlowConfig {
        grouping: Grouping::Uniform(5.0),
        band: BandRule::FirstN,
        ..base_config()
    };
    let mut trained = AttackFlow::new(cfg)
        .train(&dataset)
        .expect("training failed");

    let severities = [0.0f32, 0.5, 1.0, 2.0, 4.0];
    let qcfg = QuantConfig::new(QuantMethod::KMeans, 4);

    qce_telemetry::progress!("\n1) bit rot in the released artifact (base rate 0.05% per bit):\n");
    let bitrot = FaultPlan::new(17).with(FaultKind::BitFlip { rate: 0.0005 });
    let float_sweep = trained
        .robustness_sweep(None, &bitrot, &severities)
        .expect("float sweep failed");
    qce_telemetry::progress!("float release:\n{}", float_sweep.summary());
    let quant_sweep = trained
        .robustness_sweep(Some(qcfg), &bitrot, &severities)
        .expect("quantized sweep failed");
    qce_telemetry::progress!(
        "4-bit release (flips hit the packed index stream):\n{}",
        quant_sweep.summary()
    );

    qce_telemetry::progress!("2) data-holder tampering (noise + prune + fine-tune drift):\n");
    let tamper = FaultPlan::new(23)
        .with(FaultKind::GaussianNoise { fraction: 0.02 })
        .with(FaultKind::Prune { fraction: 0.05 })
        .with(FaultKind::FinetuneDrift { strength: 0.02 });
    let tamper_sweep = trained
        .robustness_sweep(Some(qcfg), &tamper, &severities)
        .expect("tamper sweep failed");
    qce_telemetry::progress!("{}", tamper_sweep.summary());

    qce_telemetry::progress!("3) centroid jitter (codebook-only corruption):\n");
    let jitter = FaultPlan::new(29).with(FaultKind::CentroidJitter { fraction: 0.05 });
    let jitter_sweep = trained
        .robustness_sweep(Some(qcfg), &jitter, &severities)
        .expect("jitter sweep failed");
    qce_telemetry::progress!("{}", jitter_sweep.summary());

    qce_telemetry::progress!("CSV ({}):", qce::RobustnessReport::csv_header());
    for sweep in [&float_sweep, &quant_sweep, &tamper_sweep, &jitter_sweep] {
        qce_telemetry::progress!("{}", sweep.to_csv());
    }

    qce_telemetry::progress!(
        "\nfinding: extraction quality degrades gracefully, not cliff-like —\n\
         the resilient decoder keeps returning partial images (with honest\n\
         per-image status) well past the severity where naive decoding\n\
         would abort, and accuracy usually collapses before the encoded\n\
         images become unrecognizable."
    );
}
