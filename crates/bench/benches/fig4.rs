//! Fig. 4 — MAPE, accuracy and recognized-image count of:
//!
//! * `Cor`    — the original correlation attack, uncompressed;
//! * `Cor+WQ` — the same model, weighted-entropy quantized to 4 bits;
//! * `Comb` — the paper's full flow with 4-bit target-correlated
//!   quantization;
//!
//! for λ ∈ {3, 5, 10}.
//!
//! Paper shape: `Cor+WQ` collapses (accuracy drop grows with λ, image
//! quality drops), `Comb` restores both to (or above) the `Cor` level.

use qce::{AttackFlow, BandRule, FlowConfig, Grouping, QuantConfig, QuantMethod, StageReport};
use qce_bench::{banner, base_config, cifar_rgb, pct};

fn print_bar(name: &str, r: &StageReport) {
    qce_telemetry::progress!(
        "  {name:<8} MAPE {:>6.2}   accuracy {:>8}   recognized {:>3}/{:<3}",
        r.mean_mape(),
        pct(r.accuracy),
        r.recognized_count(),
        r.images.len(),
    );
}

fn main() {
    banner(
        "Fig. 4",
        "Cor vs Cor+WQ vs Comb at 4-bit quantization, lambda in {3, 5, 10}",
    );
    let dataset = cifar_rgb();
    for lambda in [3.0f32, 5.0, 10.0] {
        qce_telemetry::progress!("\nlambda = {lambda}");
        // Cor and Cor+WQ share one training run.
        let mut cor = AttackFlow::new(FlowConfig {
            grouping: Grouping::Uniform(lambda),
            band: BandRule::FirstN,
            ..base_config()
        })
        .train(&dataset)
        .expect("training failed");
        print_bar("Cor", &cor.float_report().expect("evaluation failed"));
        let wq = cor
            .quantize(QuantConfig::new(QuantMethod::WeightedEntropy, 4))
            .expect("quantization failed");
        print_bar("Cor+WQ", &wq.report);

        let comb = AttackFlow::new(FlowConfig {
            grouping: Grouping::LayerWise([0.0, 0.0, lambda]),
            band: BandRule::Explicit {
                min: 50.0,
                max: 55.0,
            },
            quant: Some(QuantConfig::new(QuantMethod::TargetCorrelated, 4)),
            ..base_config()
        })
        .run(&dataset)
        .expect("flow failed");
        print_bar("Comb", comb.final_report());
    }
    qce_telemetry::progress!(
        "\npaper shape check: in every lambda column, Cor+WQ has the worst\n\
         MAPE and its accuracy deficit grows with lambda; Comb restores\n\
         accuracy and recognized fraction to the Cor level or above."
    );
}
