//! Fig. 3 — weight distributions of the quantized attack model at 32
//! quantization levels: (a) weighted-entropy quantization reshapes the
//! distribution; (b) target-correlated quantization preserves it.
//!
//! The quantitative proxy for "preserves the distribution" is the
//! symmetric KL divergence between the float attacked weights and each
//! quantized version.

use qce::{AttackFlow, BandRule, FlowConfig, Grouping, QuantConfig, QuantMethod};
use qce_bench::{banner, base_config, cifar_rgb, print_histogram};
use qce_metrics::distribution::histogram_divergence;

fn main() {
    banner(
        "Fig. 3",
        "quantized weight distributions at 32 levels: WEQ vs target-correlated",
    );
    let dataset = cifar_rgb();
    let flow = AttackFlow::new(FlowConfig {
        grouping: Grouping::Uniform(10.0),
        band: BandRule::FirstN,
        ..base_config()
    });
    let mut trained = flow.train(&dataset).expect("training failed");
    let float_weights = trained.network().flat_weights();
    let lo = qce_tensor::stats::quantile(&float_weights, 0.001).unwrap_or(-0.3);
    let hi = qce_tensor::stats::quantile(&float_weights, 0.999).unwrap_or(0.3);
    print_histogram("float attacked weights", &float_weights, 33, lo, hi);
    qce_telemetry::progress!();

    // 32 levels = 5 bits. Fine-tuning off so the figure isolates the
    // quantizer's own reshaping, like the paper's figure.
    let quant = |method: QuantMethod| QuantConfig {
        method,
        bits: 5,
        finetune_epochs: 0,
        finetune_lr: 0.0,
        regularize_finetune: false,
    };

    for (label, method) in [
        (
            "(a) weighted-entropy quantization",
            QuantMethod::WeightedEntropy,
        ),
        (
            "(b) target-correlated quantization",
            QuantMethod::TargetCorrelated,
        ),
    ] {
        trained
            .apply_quantized_state(quant(method))
            .expect("quantization failed");
        let q = trained.network().flat_weights();
        print_histogram(label, &q, 33, lo, hi);
        let div = histogram_divergence(&float_weights, &q, 33, lo, hi);
        qce_telemetry::progress!("symmetric KL vs float: {div:.4}\n");
        trained.restore_float().expect("state restore failed");
    }
    qce_telemetry::progress!(
        "paper shape check: the WEQ histogram concentrates mass in a few\n\
         near-zero spikes (large divergence); the target-correlated\n\
         histogram tracks the float distribution (small divergence)."
    );
}
