//! Table III — the headline result: the proposed flow (std-band
//! preprocessing + layer-wise rates + target-correlated quantization)
//! versus the original uncompressed attack, for λ ∈ {3, 5, 10}, bit
//! widths {original float, 8, 6, 4}, in grayscale and RGB.
//!
//! Paper shape: the proposed quantized models hold accuracy near (or
//! above) the original *uncompressed* attack models, with lower MAPE and
//! comparable-or-better recognizable-image counts, all the way down to 4
//! bits.

use qce::{AttackFlow, BandRule, FlowConfig, Grouping, QuantConfig, QuantMethod, StageReport};
use qce_bench::{banner, base_config, cifar_gray, cifar_rgb, pct};
use qce_data::Dataset;

struct Row {
    label: String,
    mape: f32,
    accuracy: f32,
    recognized: usize,
    encoded: usize,
}

impl Row {
    fn from_report(label: &str, r: &StageReport) -> Row {
        Row {
            label: label.to_string(),
            mape: r.mean_mape(),
            accuracy: r.accuracy,
            recognized: r.recognized_count(),
            encoded: r.images.len(),
        }
    }
}

fn run_color(dataset: &Dataset, color: &str, lambda: f32) -> Vec<Row> {
    let mut rows = Vec::new();
    // "Ori": the original uncompressed attack (uniform rate, no
    // preprocessing, no quantization).
    let mut ori = AttackFlow::new(FlowConfig {
        grouping: Grouping::Uniform(lambda),
        band: BandRule::FirstN,
        ..base_config()
    })
    .train(dataset)
    .expect("training failed");
    rows.push(Row::from_report(
        &format!("{color} Ori"),
        &ori.float_report().expect("evaluation failed"),
    ));

    // Ours: layer-wise rates + std band, quantized at each bit width.
    let mut ours = AttackFlow::new(FlowConfig {
        grouping: Grouping::LayerWise([0.0, 0.0, lambda]),
        band: BandRule::Explicit {
            min: 50.0,
            max: 55.0,
        },
        ..base_config()
    })
    .train(dataset)
    .expect("training failed");
    for bits in [8u32, 6, 4] {
        let release = ours
            .quantize(QuantConfig::new(QuantMethod::TargetCorrelated, bits))
            .expect("quantization failed");
        rows.push(Row::from_report(
            &format!("{color} ours {bits}-bit"),
            &release.report,
        ));
    }
    rows
}

fn main() {
    banner(
        "Table III",
        "proposed quantized attack flow vs original uncompressed attack",
    );
    let rgb = cifar_rgb();
    let gray = cifar_gray();
    for lambda in [3.0f32, 5.0, 10.0] {
        qce_telemetry::progress!(
            "\n--- lambda = {lambda} (ours: lambda1=lambda2=0, lambda3={lambda}, std in [50,55)) ---"
        );
        qce_telemetry::progress!(
            "{:<16} {:>10} {:>12} {:>22}",
            "model",
            "MAPE",
            "accuracy",
            "recognized/encoded"
        );
        for rows in [
            run_color(&gray, "GRAY", lambda),
            run_color(&rgb, "RGB", lambda),
        ] {
            for row in rows {
                qce_telemetry::progress!(
                    "{:<16} {:>10.2} {:>12} {:>14}/{:<7}",
                    row.label,
                    row.mape,
                    pct(row.accuracy),
                    row.recognized,
                    row.encoded,
                );
            }
        }
    }
    qce_telemetry::progress!(
        "\npaper shape check: at every lambda the quantized 'ours' rows keep\n\
         accuracy within ~1-2 points of (or above) the uncompressed 'Ori'\n\
         rows and reduce MAPE, even at 4 bits; the recognized fraction of\n\
         'ours' matches or beats 'Ori' despite encoding fewer images."
    );
}
