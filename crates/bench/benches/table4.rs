//! Table IV — face recognition model with λ = 10 quantized to 3 bits:
//! accuracy, MAPE, MAPE<20 count, mean SSIM and SSIM>0.5 count for the
//! uncompressed model, the proposed target-correlated quantization and
//! the original weighted-entropy quantization.
//!
//! Paper values: 95.30%/15.8/644/0.7088/718 (uncompressed),
//! 94.80%/22.7/468/0.4115/310 (proposed), 93.70%/28.6/216/0.2976/12
//! (original). Reproduction shape: proposed sits between uncompressed
//! and original on every column.

use qce::{AttackFlow, BandRule, FlowConfig, Grouping, QuantConfig, QuantMethod, StageReport};
use qce_bench::{banner, base_config, faces, pct};

fn row(name: &str, r: &StageReport) {
    qce_telemetry::progress!(
        "{name:<26} {:>10} {:>8.2} {:>10} {:>11.4} {:>10} {:>11}",
        pct(r.accuracy),
        r.mean_mape(),
        r.count_mape_below(20.0),
        r.mean_ssim(),
        r.count_ssim_above(0.5),
        r.count_ssim_above(0.9),
    );
}

fn main() {
    banner(
        "Table IV",
        "face model, lambda = 10, 3-bit quantization (8 gray levels)",
    );
    let dataset = faces();
    let flow = AttackFlow::new(FlowConfig {
        grouping: Grouping::LayerWise([0.0, 0.0, 10.0]),
        band: BandRule::Auto { width: 8.0 },
        epochs: 14,
        ..base_config()
    });
    let mut trained = flow.train(&dataset).expect("training failed");

    qce_telemetry::progress!(
        "{:<26} {:>10} {:>8} {:>10} {:>11} {:>10} {:>11}",
        "model",
        "accuracy",
        "MAPE",
        "MAPE<20",
        "mean SSIM",
        "SSIM>0.5",
        "SSIM>0.9"
    );
    let float_report = trained.float_report().expect("evaluation failed");
    row("Uncompressed", &float_report);

    let proposed = trained
        .quantize(QuantConfig::new(QuantMethod::TargetCorrelated, 3))
        .expect("quantization failed");
    row("Proposed quantization", &proposed.report);

    let original = trained
        .quantize(QuantConfig::new(QuantMethod::WeightedEntropy, 3))
        .expect("quantization failed");
    row("Original quantization", &original.report);

    qce_telemetry::progress!(
        "\npaper shape check: every column orders\n\
         uncompressed >= proposed > original (lower MAPE is better).\n\
         The SSIM>0.9 column is added because the synthetic faces are\n\
         smoother than FaceScrub photos, compressing all SSIMs upward;\n\
         the paper's 0.5 threshold separates there, 0.9 separates here."
    );
}
