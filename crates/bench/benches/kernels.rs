//! Criterion micro-benchmarks of the computational kernels every
//! experiment leans on — convolution, matmul, the correlation-regularizer
//! gradient, the four quantizer fits, SSIM, the image decoder and
//! bit-packing — plus a before/after backend harness.
//!
//! Beyond the criterion samples, `main` runs every hot kernel on the
//! serial reference pool, a 4-thread pool and the `QCE_THREADS` global
//! pool, plus a forced-scalar vs detected-SIMD pair on the serial pool,
//! asserts all outputs are bit-for-bit identical, and writes the
//! wall-clock and GFLOP/s comparison to `BENCH_kernels.json` so CI can
//! archive and gate the numbers next to the run.

use criterion::{criterion_group, BatchSize, Criterion};
use std::hint::black_box;
use std::time::Instant;

use qce_attack::correlation::{correlation_penalty, SignConvention};
use qce_data::{Image, SynthCifar};
use qce_metrics::ssim;
use qce_quant::{
    pack, KMeansQuantizer, LinearQuantizer, Quantizer, TargetCorrelatedQuantizer,
    WeightedEntropyQuantizer,
};
use qce_tensor::conv::{conv2d, conv2d_backward, conv2d_backward_with, conv2d_with, ConvGeometry};
use qce_tensor::par::Pool;
use qce_tensor::{init, linalg, Tensor};

fn random_weights(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = init::seeded_rng(seed);
    (0..n)
        .map(|_| init::standard_normal(&mut rng) * 0.1)
        .collect()
}

fn bench_tensor_kernels(c: &mut Criterion) {
    let mut rng = init::seeded_rng(1);
    let input = init::uniform(&[8, 12, 16, 16], -1.0, 1.0, &mut rng);
    let weight = init::kaiming(&[24, 12, 3, 3], 108, &mut rng);
    let geom = ConvGeometry::new(1, 1);
    c.bench_function("conv2d_forward_8x12x16x16", |b| {
        b.iter(|| conv2d(black_box(&input), black_box(&weight), None, geom).expect("conv"))
    });
    let out = conv2d(&input, &weight, None, geom).expect("conv");
    let grad = Tensor::ones(out.dims());
    c.bench_function("conv2d_backward_8x12x16x16", |b| {
        b.iter(|| {
            conv2d_backward(
                black_box(&input),
                black_box(&weight),
                black_box(&grad),
                geom,
            )
            .expect("conv backward")
        })
    });
    let a = init::uniform(&[128, 256], -1.0, 1.0, &mut rng);
    let bm = init::uniform(&[256, 128], -1.0, 1.0, &mut rng);
    c.bench_function("matmul_128x256x128", |b| {
        b.iter(|| linalg::matmul(black_box(&a), black_box(&bm)).expect("matmul"))
    });
}

/// Dense vs pruned inputs through the same dense kernel: the old scalar
/// matmul special-cased `a[i] == 0.0` to skip work on pruned networks; the
/// blocked kernel dropped that branch, so this pair proves the dense path
/// is not slower when most weights are zero.
fn bench_matmul_sparsity(c: &mut Criterion) {
    let mut rng = init::seeded_rng(9);
    let dense = init::uniform(&[128, 256], -1.0, 1.0, &mut rng);
    let bm = init::uniform(&[256, 128], -1.0, 1.0, &mut rng);
    let mut pruned = dense.clone();
    // Magnitude-prune 70% of A, the regime the zero-skip branch targeted.
    let mut mags: Vec<f32> = pruned.as_slice().iter().map(|v| v.abs()).collect();
    mags.sort_by(f32::total_cmp);
    let threshold = mags[(mags.len() as f64 * 0.7) as usize];
    for v in pruned.as_mut_slice() {
        if v.abs() < threshold {
            *v = 0.0;
        }
    }
    let mut group = c.benchmark_group("matmul_128x256x128_sparsity");
    group.bench_function("dense", |b| {
        b.iter(|| linalg::matmul(black_box(&dense), black_box(&bm)).expect("matmul"))
    });
    group.bench_function("pruned_70pct", |b| {
        b.iter(|| linalg::matmul(black_box(&pruned), black_box(&bm)).expect("matmul"))
    });
    group.finish();
}

fn bench_correlation(c: &mut Criterion) {
    let theta = random_weights(100_000, 2);
    let mut rng = init::seeded_rng(3);
    use rand::RngExt;
    let s: Vec<f32> = (0..100_000).map(|_| rng.random_range(0.0..256.0)).collect();
    c.bench_function("correlation_penalty_grad_100k", |b| {
        b.iter(|| {
            correlation_penalty(
                black_box(&theta),
                black_box(&s),
                3.0,
                SignConvention::Positive,
            )
        })
    });
}

fn bench_quantizers(c: &mut Criterion) {
    let weights = random_weights(100_000, 4);
    let pixels: Vec<u8> = (0..100_000u32).map(|i| (i % 256) as u8).collect();
    let mut group = c.benchmark_group("quantizer_fit_100k_16_levels");
    group.bench_function("linear", |b| {
        let q = LinearQuantizer::new(16).expect("levels");
        b.iter(|| q.fit(black_box(&weights)).expect("fit"))
    });
    group.bench_function("kmeans", |b| {
        let q = KMeansQuantizer::new(16).expect("levels");
        b.iter(|| q.fit(black_box(&weights)).expect("fit"))
    });
    group.bench_function("weighted_entropy", |b| {
        let q = WeightedEntropyQuantizer::new(16).expect("levels");
        b.iter(|| q.fit(black_box(&weights)).expect("fit"))
    });
    group.bench_function("target_correlated", |b| {
        let q = TargetCorrelatedQuantizer::new(16, &pixels).expect("levels");
        b.iter(|| q.fit(black_box(&weights)).expect("fit"))
    });
    group.finish();

    let codebook = WeightedEntropyQuantizer::new(16)
        .expect("levels")
        .fit(&weights)
        .expect("fit");
    c.bench_function("codebook_quantize_100k", |b| {
        b.iter(|| codebook.quantize(black_box(&weights)))
    });
}

fn bench_metrics_and_packing(c: &mut Criterion) {
    let data = SynthCifar::new(16).generate(2, 5).expect("generator");
    let a: &Image = data.image(0);
    let bimg: &Image = data.image(1);
    c.bench_function("ssim_16x16_rgb", |b| {
        b.iter(|| ssim(black_box(a), black_box(bimg)))
    });

    let indices: Vec<u32> = (0..100_000u32).map(|i| i % 16).collect();
    c.bench_function("pack_unpack_100k_4bit", |b| {
        b.iter_batched(
            || indices.clone(),
            |idx| {
                let bytes = pack::pack(&idx, 4).expect("pack");
                pack::unpack(black_box(&bytes), 4, idx.len()).expect("unpack")
            },
            BatchSize::SmallInput,
        )
    });
}

// ---------------------------------------------------------------------------
// Backend comparison harness: serial vs parallel wall time + GFLOP/s and a
// scalar-vs-SIMD pair per kernel, with bitwise-identity checks, written to
// BENCH_kernels.json.
//
// Measurement is *interleaved*: every rep runs each leg (serial pool,
// 4-thread pool, global pool, forced-scalar SIMD, detected SIMD) once,
// round-robin, after one discarded warm-up sweep. The earlier
// leg-after-leg scheme mis-measured: on a 1-core host all three pool legs
// execute the same inline code, yet the last leg measured (`global_ms`)
// came out ~2x faster on the allocation-heavy kmeans fit because the
// first legs paid the allocator's page-fault warm-up and the final leg
// reused hot arenas. Min-of-N within a leg cannot fix that — the bias is
// monotone across legs, not noise within one. Interleaving gives every
// leg the same allocator state distribution, so the numbers are
// apples-to-apples by construction.
// ---------------------------------------------------------------------------

const HARNESS_REPS: usize = 5;

/// Number of measured legs per kernel (see [`KernelRow::measure`]).
const LEGS: usize = 5;

struct KernelRow {
    name: &'static str,
    flops: u64,
    serial_s: f64,
    parallel_s: f64,
    global_s: f64,
    scalar_s: f64,
    simd_s: f64,
    simd_level: &'static str,
    /// Pool legs (serial / 4-thread / global) produced identical bytes.
    bitwise_identical: bool,
    /// Forced-scalar and detected-SIMD legs produced identical bytes
    /// (also identical to the pool legs — asserted by the caller).
    simd_bitwise_identical: bool,
}

impl KernelRow {
    /// Times `run` on five legs, interleaved rep by rep with a discarded
    /// warm-up sweep, taking the min per leg:
    ///
    /// 0. serial pool, ambient SIMD dispatch (`QCE_SIMD`),
    /// 1. 4-thread pool, ambient SIMD,
    /// 2. global pool, ambient SIMD,
    /// 3. serial pool, SIMD forced off (scalar reference),
    /// 4. serial pool, best detected SIMD level.
    ///
    /// Legs 0-2 isolate threading; legs 3-4 isolate vectorisation.
    fn measure<F>(name: &'static str, flops: u64, mut run: F) -> KernelRow
    where
        F: FnMut(&Pool) -> Vec<f32>,
    {
        use qce_tensor::simd::{self, Level};
        let serial = Pool::serial();
        let parallel = Pool::with_threads(4);
        let detected = simd::detect();
        let mut best = [f64::INFINITY; LEGS];
        let mut bits: [Vec<u32>; LEGS] = Default::default();
        for rep in 0..=HARNESS_REPS {
            for leg in 0..LEGS {
                let forced = match leg {
                    3 => Some(simd::set_active(Level::Scalar)),
                    4 => Some(simd::set_active(detected)),
                    _ => None,
                };
                let pool = match leg {
                    1 => &parallel,
                    2 => Pool::global(),
                    _ => &serial,
                };
                let start = Instant::now();
                let out = black_box(run(pool));
                let elapsed = start.elapsed().as_secs_f64();
                if let Some(prev) = forced {
                    simd::set_active(prev);
                }
                if rep > 0 {
                    best[leg] = best[leg].min(elapsed);
                }
                bits[leg] = out.iter().map(|v| v.to_bits()).collect();
            }
        }
        KernelRow {
            name,
            flops,
            serial_s: best[0],
            parallel_s: best[1],
            global_s: best[2],
            scalar_s: best[3],
            simd_s: best[4],
            simd_level: detected.name(),
            bitwise_identical: bits[0] == bits[1] && bits[0] == bits[2],
            simd_bitwise_identical: bits[3] == bits[4] && bits[0] == bits[3],
        }
    }

    fn gflops(&self, seconds: f64) -> f64 {
        if self.flops == 0 || seconds <= 0.0 {
            return 0.0;
        }
        self.flops as f64 / seconds / 1e9
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\"name\": \"{}\", \"flops\": {}, ",
                "\"serial_ms\": {:.4}, \"parallel_ms\": {:.4}, \"global_ms\": {:.4}, ",
                "\"serial_gflops\": {:.4}, \"parallel_gflops\": {:.4}, ",
                "\"speedup_parallel_over_serial\": {:.4}, ",
                "\"scalar_ms\": {:.4}, \"simd_ms\": {:.4}, \"simd_level\": \"{}\", ",
                "\"scalar_gflops\": {:.4}, \"simd_gflops\": {:.4}, ",
                "\"speedup_simd_over_scalar\": {:.4}, ",
                "\"bitwise_identical\": {}, \"simd_bitwise_identical\": {}}}"
            ),
            self.name,
            self.flops,
            self.serial_s * 1e3,
            self.parallel_s * 1e3,
            self.global_s * 1e3,
            self.gflops(self.serial_s),
            self.gflops(self.parallel_s),
            self.serial_s / self.parallel_s.max(1e-12),
            self.scalar_s * 1e3,
            self.simd_s * 1e3,
            self.simd_level,
            self.gflops(self.scalar_s),
            self.gflops(self.simd_s),
            self.scalar_s / self.simd_s.max(1e-12),
            self.bitwise_identical,
            self.simd_bitwise_identical,
        )
    }
}

fn backend_comparison() {
    qce_telemetry::progress!(
        "\nbackend comparison (serial vs 4-thread pool, scalar vs {} SIMD; interleaved min of {HARNESS_REPS} runs, {} detected cores)",
        qce_tensor::simd::detect().name(),
        qce_tensor::par::detected_cores(),
    );
    let mut rng = init::seeded_rng(11);

    let (m, k, n) = (128usize, 256, 128);
    let a = init::uniform(&[m, k], -1.0, 1.0, &mut rng);
    let bm = init::uniform(&[k, n], -1.0, 1.0, &mut rng);
    let matmul_row = KernelRow::measure("matmul_128x256x128", (2 * m * k * n) as u64, |pool| {
        linalg::matmul_with(pool, &a, &bm)
            .expect("matmul")
            .as_slice()
            .to_vec()
    });

    let input = init::uniform(&[8, 12, 16, 16], -1.0, 1.0, &mut rng);
    let weight = init::kaiming(&[24, 12, 3, 3], 108, &mut rng);
    let geom = ConvGeometry::new(1, 1);
    // One fused multiply-add pair per (sample, out-channel, out-pixel, tap).
    let conv_flops = (2usize * 8 * 24 * 16 * 16 * 12 * 3 * 3) as u64;
    let fwd_row = KernelRow::measure("conv2d_forward_8x12x16x16", conv_flops, |pool| {
        conv2d_with(pool, &input, &weight, None, geom)
            .expect("conv")
            .as_slice()
            .to_vec()
    });
    let out = conv2d(&input, &weight, None, geom).expect("conv");
    let grad = Tensor::ones(out.dims());
    let bwd_row = KernelRow::measure("conv2d_backward_8x12x16x16", 2 * conv_flops, |pool| {
        let g = conv2d_backward_with(pool, &input, &weight, &grad, geom).expect("conv backward");
        let mut flat = g.input.as_slice().to_vec();
        flat.extend_from_slice(g.weight.as_slice());
        flat.extend_from_slice(g.bias.as_slice());
        flat
    });

    let weights = random_weights(100_000, 4);
    let kmeans = KMeansQuantizer::new(16).expect("levels");
    let fit_row = KernelRow::measure("kmeans_fit_100k_16_levels", 0, |pool| {
        let cb = kmeans.fit_with(pool, &weights).expect("fit");
        let mut flat = cb.representatives().to_vec();
        flat.extend_from_slice(cb.boundaries());
        flat
    });
    let codebook = kmeans.fit(&weights).expect("fit");
    let assign_row = KernelRow::measure("codebook_assign_100k", 0, |pool| {
        codebook
            .assign_with(pool, &weights)
            .iter()
            .map(|&i| i as f32)
            .collect()
    });

    let rows = [matmul_row, fwd_row, bwd_row, fit_row, assign_row];
    for r in &rows {
        qce_telemetry::progress!(
            "{:<28} serial {:9.3} ms | 4-thread {:9.3} ms | speedup {:5.2}x | scalar {:9.3} ms | {} {:9.3} ms | simd speedup {:5.2}x | {:7.2} GFLOP/s simd | bitwise={} simd_bitwise={}",
            r.name,
            r.serial_s * 1e3,
            r.parallel_s * 1e3,
            r.serial_s / r.parallel_s.max(1e-12),
            r.scalar_s * 1e3,
            r.simd_level,
            r.simd_s * 1e3,
            r.scalar_s / r.simd_s.max(1e-12),
            r.gflops(r.simd_s),
            r.bitwise_identical,
            r.simd_bitwise_identical,
        );
        assert!(
            r.bitwise_identical,
            "{}: serial and parallel outputs differ",
            r.name
        );
        assert!(
            r.simd_bitwise_identical,
            "{}: scalar and SIMD outputs differ",
            r.name
        );
    }

    let body: Vec<String> = rows.iter().map(KernelRow::json).collect();
    // `detected_cores` qualifies every speedup number: on a 1-core host
    // the pool falls back to inline execution, so "parallel" timings are
    // really the serial path plus partitioning and the speedup is ~1.0
    // by construction, not a regression. `simd` qualifies the
    // scalar-vs-SIMD pairs the same way: on a host without AVX2 the
    // "simd" leg is the scalar path and its speedup is ~1.0.
    let json = format!(
        "{{\n  \"bench\": \"kernels\",\n  \"threads\": {{\"serial\": 1, \"parallel\": 4, \"global\": {}, \"detected_cores\": {}}},\n  \"simd\": {{\"detected\": \"{}\", \"active\": \"{}\"}},\n  \"reps\": {},\n  \"kernels\": [\n{}\n  ]\n}}\n",
        Pool::global().threads(),
        qce_tensor::par::detected_cores(),
        qce_tensor::simd::detect().name(),
        qce_tensor::simd::active().name(),
        HARNESS_REPS,
        body.join(",\n"),
    );
    // The bench binary's cwd is the package dir; anchor the report at the
    // workspace root so CI can pick it up from a stable path.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, json).expect("write BENCH_kernels.json");
    qce_telemetry::progress!("wrote {path}");
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_tensor_kernels, bench_matmul_sparsity, bench_correlation,
        bench_quantizers, bench_metrics_and_packing
}

fn main() {
    kernels();
    backend_comparison();
}
