//! Criterion micro-benchmarks of the computational kernels every
//! experiment leans on: convolution, matmul, the correlation-regularizer
//! gradient, the four quantizer fits, SSIM, the image decoder and
//! bit-packing.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use qce_attack::correlation::{correlation_penalty, SignConvention};
use qce_data::{Image, SynthCifar};
use qce_metrics::ssim;
use qce_quant::{
    pack, KMeansQuantizer, LinearQuantizer, Quantizer, TargetCorrelatedQuantizer,
    WeightedEntropyQuantizer,
};
use qce_tensor::conv::{conv2d, conv2d_backward, ConvGeometry};
use qce_tensor::{init, linalg, Tensor};

fn random_weights(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = init::seeded_rng(seed);
    (0..n)
        .map(|_| init::standard_normal(&mut rng) * 0.1)
        .collect()
}

fn bench_tensor_kernels(c: &mut Criterion) {
    let mut rng = init::seeded_rng(1);
    let input = init::uniform(&[8, 12, 16, 16], -1.0, 1.0, &mut rng);
    let weight = init::kaiming(&[24, 12, 3, 3], 108, &mut rng);
    let geom = ConvGeometry::new(1, 1);
    c.bench_function("conv2d_forward_8x12x16x16", |b| {
        b.iter(|| conv2d(black_box(&input), black_box(&weight), None, geom).expect("conv"))
    });
    let out = conv2d(&input, &weight, None, geom).expect("conv");
    let grad = Tensor::ones(out.dims());
    c.bench_function("conv2d_backward_8x12x16x16", |b| {
        b.iter(|| {
            conv2d_backward(
                black_box(&input),
                black_box(&weight),
                black_box(&grad),
                geom,
            )
            .expect("conv backward")
        })
    });
    let a = init::uniform(&[128, 256], -1.0, 1.0, &mut rng);
    let bm = init::uniform(&[256, 128], -1.0, 1.0, &mut rng);
    c.bench_function("matmul_128x256x128", |b| {
        b.iter(|| linalg::matmul(black_box(&a), black_box(&bm)).expect("matmul"))
    });
}

fn bench_correlation(c: &mut Criterion) {
    let theta = random_weights(100_000, 2);
    let mut rng = init::seeded_rng(3);
    use rand::RngExt;
    let s: Vec<f32> = (0..100_000).map(|_| rng.random_range(0.0..256.0)).collect();
    c.bench_function("correlation_penalty_grad_100k", |b| {
        b.iter(|| {
            correlation_penalty(
                black_box(&theta),
                black_box(&s),
                3.0,
                SignConvention::Positive,
            )
        })
    });
}

fn bench_quantizers(c: &mut Criterion) {
    let weights = random_weights(100_000, 4);
    let pixels: Vec<u8> = (0..100_000u32).map(|i| (i % 256) as u8).collect();
    let mut group = c.benchmark_group("quantizer_fit_100k_16_levels");
    group.bench_function("linear", |b| {
        let q = LinearQuantizer::new(16).expect("levels");
        b.iter(|| q.fit(black_box(&weights)).expect("fit"))
    });
    group.bench_function("kmeans", |b| {
        let q = KMeansQuantizer::new(16).expect("levels");
        b.iter(|| q.fit(black_box(&weights)).expect("fit"))
    });
    group.bench_function("weighted_entropy", |b| {
        let q = WeightedEntropyQuantizer::new(16).expect("levels");
        b.iter(|| q.fit(black_box(&weights)).expect("fit"))
    });
    group.bench_function("target_correlated", |b| {
        let q = TargetCorrelatedQuantizer::new(16, &pixels).expect("levels");
        b.iter(|| q.fit(black_box(&weights)).expect("fit"))
    });
    group.finish();

    let codebook = WeightedEntropyQuantizer::new(16)
        .expect("levels")
        .fit(&weights)
        .expect("fit");
    c.bench_function("codebook_quantize_100k", |b| {
        b.iter(|| codebook.quantize(black_box(&weights)))
    });
}

fn bench_metrics_and_packing(c: &mut Criterion) {
    let data = SynthCifar::new(16).generate(2, 5).expect("generator");
    let a: &Image = data.image(0);
    let bimg: &Image = data.image(1);
    c.bench_function("ssim_16x16_rgb", |b| {
        b.iter(|| ssim(black_box(a), black_box(bimg)))
    });

    let indices: Vec<u32> = (0..100_000u32).map(|i| i % 16).collect();
    c.bench_function("pack_unpack_100k_4bit", |b| {
        b.iter_batched(
            || indices.clone(),
            |idx| {
                let bytes = pack::pack(&idx, 4).expect("pack");
                pack::unpack(black_box(&bytes), 4, idx.len()).expect("unpack")
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_tensor_kernels, bench_correlation, bench_quantizers,
        bench_metrics_and_packing
}
criterion_main!(kernels);
