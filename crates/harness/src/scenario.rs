//! Declarative conformance scenarios: JSON specs resolved into the
//! workspace's real configuration types.
//!
//! A scenario names everything a run depends on — dataset synthesis
//! parameters, the full [`FlowConfig`], and an optional
//! [`FaultPlan`] — so a committed `.json` file plus this crate's runner
//! *is* the experiment. Parsing goes through the zero-dependency
//! [`qce_telemetry::json`] reader (the vendored serde is a marker stub),
//! and [`Scenario::to_json`] emits the same schema back, so specs
//! round-trip exactly.

use qce::faults::{FaultKind, FaultPlan};
use qce::{
    Architecture, BandRule, EncodingChannel, FlowConfig, Grouping, LambdaSchedule, QuantConfig,
    QuantMethod, SignConvention,
};
use qce_data::Dataset;
use qce_data::{SynthCifar, SynthFaces};
use qce_defense::{DefenseKind, DefensePlan, RotationMode};
use qce_telemetry::json::{parse, JsonValue, ObjWriter};

use crate::{HarnessError, Result};

/// Which synthetic dataset family a scenario trains on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// CIFAR-like object images ([`SynthCifar`]).
    Cifar,
    /// Face-like identity images ([`SynthFaces`]); `classes` doubles as
    /// the identity count.
    Faces,
}

/// Dataset synthesis parameters of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Generator family.
    pub kind: DatasetKind,
    /// Square image edge length in pixels.
    pub size: usize,
    /// Class (or identity) count.
    pub classes: usize,
    /// Number of images to synthesize.
    pub count: usize,
    /// Generation seed.
    pub seed: u64,
    /// RGB images (`false` = grayscale; CIFAR generator only).
    pub rgb: bool,
}

impl DatasetSpec {
    /// Synthesizes the dataset this spec describes.
    ///
    /// # Errors
    ///
    /// Propagates generator configuration errors.
    pub fn generate(&self) -> Result<Dataset> {
        let data = match self.kind {
            DatasetKind::Cifar => SynthCifar::new(self.size)
                .classes(self.classes)
                .rgb(self.rgb)
                .generate(self.count, self.seed)?,
            DatasetKind::Faces => {
                SynthFaces::new(self.size, self.classes).generate(self.count, self.seed)?
            }
        };
        Ok(data)
    }
}

/// One executable conformance scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Unique scenario name; golden files are addressed by it.
    pub name: String,
    /// Dataset synthesis parameters.
    pub dataset: DatasetSpec,
    /// The resolved flow configuration (runs with `verbose` off).
    pub flow: FlowConfig,
    /// Release perturbation applied before the final evaluation
    /// (`None` for clean scenarios).
    pub fault: Option<FaultPlan>,
    /// Named data-holder countermeasures, each evaluated as its own
    /// stage against the same trained release (the tournament axis).
    /// Mutually exclusive with `fault`.
    pub defenses: Vec<(String, DefensePlan)>,
    /// Per-metric tolerance overrides layered over
    /// [`Tolerances::default`](crate::Tolerances) (absolute bands;
    /// longest matching prefix wins).
    pub tolerance_overrides: Vec<(String, f64)>,
}

impl Scenario {
    /// The committed scenario set: three clean quantization points that
    /// bracket the paper's 2–6-bit sweep across three quantizer
    /// families, plus one faulted release exercising the resilient
    /// decode path. All are sized to finish in seconds so CI can run
    /// the whole set on every push.
    #[must_use]
    pub fn builtin() -> Vec<Scenario> {
        let dataset = DatasetSpec {
            kind: DatasetKind::Cifar,
            size: 8,
            classes: 4,
            count: 160,
            seed: 5,
            rgb: false,
        };
        let flow = FlowConfig {
            grouping: Grouping::Uniform(5.0),
            band: BandRule::FirstN,
            epochs: 2,
            quant: None,
            verbose: false,
            ..FlowConfig::tiny()
        };
        let quant = |method, bits| {
            Some(QuantConfig {
                method,
                bits,
                finetune_epochs: 1,
                finetune_lr: 0.01,
                regularize_finetune: true,
            })
        };
        vec![
            Scenario {
                name: "quant2_weq".to_string(),
                dataset: dataset.clone(),
                flow: FlowConfig {
                    quant: quant(QuantMethod::WeightedEntropy, 2),
                    ..flow.clone()
                },
                fault: None,
                defenses: Vec::new(),
                tolerance_overrides: Vec::new(),
            },
            Scenario {
                name: "quant4_tcq".to_string(),
                dataset: dataset.clone(),
                flow: FlowConfig {
                    quant: quant(QuantMethod::TargetCorrelated, 4),
                    ..flow.clone()
                },
                fault: None,
                defenses: Vec::new(),
                tolerance_overrides: Vec::new(),
            },
            Scenario {
                name: "quant6_kmeans".to_string(),
                dataset: dataset.clone(),
                flow: FlowConfig {
                    quant: quant(QuantMethod::KMeans, 6),
                    ..flow.clone()
                },
                fault: None,
                defenses: Vec::new(),
                tolerance_overrides: Vec::new(),
            },
            Scenario {
                name: "faulted_bitflip".to_string(),
                dataset,
                flow: FlowConfig {
                    quant: quant(QuantMethod::TargetCorrelated, 4),
                    ..flow
                },
                fault: Some(
                    FaultPlan::new(11)
                        .with(FaultKind::BitFlip { rate: 0.002 })
                        .with(FaultKind::GaussianNoise { fraction: 0.02 }),
                ),
                defenses: Vec::new(),
                tolerance_overrides: Vec::new(),
            },
        ]
    }

    /// The defense-tournament scenario set: every attack variant ×
    /// release bit width, each swept through the same named defense
    /// roster. Cells pin the arms race measured end to end:
    ///
    /// * `tourney_corr_{2,4}bit` — the paper's correlation channel with
    ///   target-correlated quantization. High capacity, but the
    ///   compensated channel permutation (`rotation`) scrambles the
    ///   weight order it addresses pixels by.
    /// * `tourney_statsign_{2,4}bit` — the hardened
    ///   statistics-sign channel (`qce_attack::statsign`) with k-means
    ///   quantization. A fraction of the capacity, but recovery is
    ///   addressed by per-row headers riding the permutation-invariant
    ///   group statistics, so `rotation` does not erase it.
    ///
    /// Defense roster per cell (same seeds everywhere so columns are
    /// comparable): `none` (empty plan — the undefended baseline row of
    /// the leaderboard), `rotation` (exact-symmetry permute),
    /// `finetune-scrub` (1 epoch on clean data), `prune-scrub` (10%
    /// magnitude pruning), `requantize` (defender 5-bit k-means).
    #[must_use]
    pub fn tournament() -> Vec<Scenario> {
        let dataset = DatasetSpec {
            kind: DatasetKind::Cifar,
            size: 8,
            classes: 4,
            count: 160,
            seed: 5,
            rgb: false,
        };
        let roster = || {
            vec![
                ("none".to_string(), DefensePlan::new(0)),
                (
                    "rotation".to_string(),
                    DefensePlan::new(11).with(DefenseKind::Rotation {
                        mode: RotationMode::Permute,
                    }),
                ),
                (
                    "finetune-scrub".to_string(),
                    DefensePlan::new(13).with(DefenseKind::FinetuneScrub {
                        epochs: 1,
                        lr: 0.01,
                    }),
                ),
                (
                    "prune-scrub".to_string(),
                    DefensePlan::new(17).with(DefenseKind::PruneScrub { fraction: 0.1 }),
                ),
                (
                    "requantize".to_string(),
                    DefensePlan::new(19).with(DefenseKind::Requantize { bits: 5 }),
                ),
            ]
        };
        // Both variants share the model/data scale; they differ only in
        // channel, quantizer family, correlation pressure and the training
        // length the channel needs. The correlation cells need λ=8 and 4
        // epochs for a meaningful undefended baseline (~90% of images
        // under 20% MAPE) so the rotation knock-down is visible; statsign's
        // carrier pull converges in ~4 epochs at λ=3e4.
        let corr_flow = FlowConfig {
            grouping: Grouping::Uniform(8.0),
            band: BandRule::FirstN,
            stage_channels: vec![12, 24],
            epochs: 4,
            quant: None,
            verbose: false,
            ..FlowConfig::tiny()
        };
        let statsign_flow = FlowConfig {
            channel: EncodingChannel::StatSign { lambda: 3e4 },
            grouping: Grouping::Uniform(5.0),
            ..corr_flow.clone()
        };
        let quant = |method, bits| {
            Some(QuantConfig {
                method,
                bits,
                finetune_epochs: 1,
                finetune_lr: 0.01,
                regularize_finetune: true,
            })
        };
        let cell = |name: &str, flow: &FlowConfig, method, bits| Scenario {
            name: name.to_string(),
            dataset: dataset.clone(),
            flow: FlowConfig {
                quant: quant(method, bits),
                ..flow.clone()
            },
            fault: None,
            defenses: roster(),
            tolerance_overrides: Vec::new(),
        };
        vec![
            cell(
                "tourney_corr_2bit",
                &corr_flow,
                QuantMethod::TargetCorrelated,
                2,
            ),
            cell(
                "tourney_corr_4bit",
                &corr_flow,
                QuantMethod::TargetCorrelated,
                4,
            ),
            cell(
                "tourney_statsign_2bit",
                &statsign_flow,
                QuantMethod::KMeans,
                2,
            ),
            cell(
                "tourney_statsign_4bit",
                &statsign_flow,
                QuantMethod::KMeans,
                4,
            ),
        ]
    }

    /// Parses a scenario from its JSON spec. Flow fields not present in
    /// the document keep the [`FlowConfig::tiny`] defaults; `verbose`
    /// is always forced off so harness output stays machine-readable.
    ///
    /// # Errors
    ///
    /// [`HarnessError::Spec`] naming the first malformed field.
    pub fn from_json(body: &str) -> Result<Scenario> {
        let doc = parse(body).map_err(|e| HarnessError::spec(format!("scenario JSON: {e}")))?;
        let name = req_str(&doc, "name")?;
        let dataset = parse_dataset(req(&doc, "dataset")?)?;
        let mut flow = parse_flow(req(&doc, "flow")?)?;
        flow.verbose = false;
        flow.validate()
            .map_err(|e| HarnessError::spec(format!("flow config: {e}")))?;
        let fault = match doc.get("fault") {
            None | Some(JsonValue::Null) => None,
            Some(v) => Some(parse_fault(v)?),
        };
        let defenses = match doc.get("defenses") {
            None | Some(JsonValue::Null) => Vec::new(),
            Some(JsonValue::Arr(items)) => {
                let mut out = Vec::new();
                for item in items {
                    out.push(parse_defense_plan(item)?);
                }
                out
            }
            Some(_) => return Err(HarnessError::spec("\"defenses\" must be an array")),
        };
        if fault.is_some() && !defenses.is_empty() {
            return Err(HarnessError::spec(
                "\"fault\" and \"defenses\" are mutually exclusive",
            ));
        }
        let tolerance_overrides = match doc.get("tolerances") {
            None | Some(JsonValue::Null) => Vec::new(),
            Some(JsonValue::Obj(map)) => {
                let mut out = Vec::new();
                for (k, v) in map {
                    let band = v
                        .as_f64()
                        .filter(|t| t.is_finite() && *t >= 0.0)
                        .ok_or_else(|| {
                            HarnessError::spec(format!(
                                "tolerance {k:?} must be a non-negative number"
                            ))
                        })?;
                    out.push((k.clone(), band));
                }
                out
            }
            Some(_) => return Err(HarnessError::spec("\"tolerances\" must be an object")),
        };
        Ok(Scenario {
            name,
            dataset,
            flow,
            fault,
            defenses,
            tolerance_overrides,
        })
    }

    /// Renders the scenario back to its JSON spec (the inverse of
    /// [`Scenario::from_json`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut dataset = ObjWriter::new();
        dataset
            .str(
                "kind",
                match self.dataset.kind {
                    DatasetKind::Cifar => "cifar",
                    DatasetKind::Faces => "faces",
                },
            )
            .uint("size", self.dataset.size as u64)
            .uint("classes", self.dataset.classes as u64)
            .uint("count", self.dataset.count as u64)
            .uint("seed", self.dataset.seed)
            .bool("rgb", self.dataset.rgb);

        let mut flow = ObjWriter::new();
        flow.uint("seed", self.flow.seed).str(
            "arch",
            match self.flow.arch {
                Architecture::ResNetLite => "resnet_lite",
                Architecture::ConvNet => "conv_net",
            },
        );
        let channels: Vec<String> = self
            .flow
            .stage_channels
            .iter()
            .map(|c| c.to_string())
            .collect();
        flow.raw("stage_channels", &format!("[{}]", channels.join(",")))
            .uint("blocks_per_stage", self.flow.blocks_per_stage as u64)
            .num("train_fraction", f64::from(self.flow.train_fraction))
            .uint("epochs", self.flow.epochs as u64)
            .uint("batch_size", self.flow.batch_size as u64)
            .num("lr", f64::from(self.flow.lr))
            .num("lambda_scale", f64::from(self.flow.lambda_scale))
            .str(
                "lambda_schedule",
                match self.flow.lambda_schedule {
                    LambdaSchedule::Warmup => "warmup",
                    LambdaSchedule::Constant => "constant",
                },
            );
        let mut grouping = ObjWriter::new();
        match self.flow.grouping {
            Grouping::Benign => {
                grouping.str("kind", "benign");
            }
            Grouping::Uniform(l) => {
                grouping.str("kind", "uniform").num("lambda", f64::from(l));
            }
            Grouping::LayerWise(ls) => {
                let lambdas: Vec<String> =
                    ls.iter().map(|l| format!("{}", f64::from(*l))).collect();
                grouping
                    .str("kind", "layer_wise")
                    .raw("lambdas", &format!("[{}]", lambdas.join(",")));
            }
        }
        flow.raw("grouping", &grouping.finish());
        let mut band = ObjWriter::new();
        match self.flow.band {
            BandRule::Auto { width } => {
                band.str("kind", "auto").num("width", f64::from(width));
            }
            BandRule::Explicit { min, max } => {
                band.str("kind", "explicit")
                    .num("min", f64::from(min))
                    .num("max", f64::from(max));
            }
            BandRule::FirstN => {
                band.str("kind", "first_n");
            }
        }
        flow.raw("band", &band.finish());
        flow.str(
            "sign",
            match self.flow.sign {
                SignConvention::Positive => "positive",
                SignConvention::Absolute => "absolute",
            },
        );
        let mut channel = ObjWriter::new();
        match self.flow.channel {
            EncodingChannel::Correlation => {
                channel.str("kind", "correlation");
            }
            EncodingChannel::StatSign { lambda } => {
                channel
                    .str("kind", "statsign")
                    .num("lambda", f64::from(lambda));
            }
        }
        flow.raw("channel", &channel.finish());
        if let Some(plan) = &self.flow.defense {
            let mut defense = ObjWriter::new();
            defense.uint("seed", plan.seed());
            let kinds: Vec<String> = plan.defenses().iter().map(defense_kind_to_json).collect();
            defense.raw("defenses", &format!("[{}]", kinds.join(",")));
            flow.raw("defense", &defense.finish());
        }
        match self.flow.quant {
            None => {
                flow.raw("quant", "null");
            }
            Some(q) => {
                let mut quant = ObjWriter::new();
                quant
                    .str(
                        "method",
                        match q.method {
                            QuantMethod::Linear => "linear",
                            QuantMethod::KMeans => "kmeans",
                            QuantMethod::WeightedEntropy => "weighted_entropy",
                            QuantMethod::TargetCorrelated => "target_correlated",
                        },
                    )
                    .uint("bits", u64::from(q.bits))
                    .uint("finetune_epochs", q.finetune_epochs as u64)
                    .num("finetune_lr", f64::from(q.finetune_lr))
                    .bool("regularize_finetune", q.regularize_finetune);
                flow.raw("quant", &quant.finish());
            }
        }

        let mut root = ObjWriter::new();
        root.str("name", &self.name)
            .raw("dataset", &dataset.finish())
            .raw("flow", &flow.finish());
        if let Some(plan) = &self.fault {
            let mut fault = ObjWriter::new();
            fault.uint("seed", plan.seed());
            let faults: Vec<String> = plan.faults().iter().map(fault_to_json).collect();
            fault.raw("faults", &format!("[{}]", faults.join(",")));
            root.raw("fault", &fault.finish());
        }
        if !self.defenses.is_empty() {
            let entries: Vec<String> = self
                .defenses
                .iter()
                .map(|(name, plan)| defense_plan_to_json(name, plan))
                .collect();
            root.raw("defenses", &format!("[{}]", entries.join(",")));
        }
        if !self.tolerance_overrides.is_empty() {
            let mut tol = ObjWriter::new();
            for (k, v) in &self.tolerance_overrides {
                tol.num(k, *v);
            }
            root.raw("tolerances", &tol.finish());
        }
        root.finish()
    }
}

fn fault_to_json(f: &FaultKind) -> String {
    let mut o = ObjWriter::new();
    match *f {
        FaultKind::BitFlip { rate } => {
            o.str("kind", "bit_flip").num("rate", rate);
        }
        FaultKind::GaussianNoise { fraction } => {
            o.str("kind", "gaussian_noise")
                .num("fraction", f64::from(fraction));
        }
        FaultKind::UniformNoise { fraction } => {
            o.str("kind", "uniform_noise")
                .num("fraction", f64::from(fraction));
        }
        FaultKind::Prune { fraction } => {
            o.str("kind", "prune").num("fraction", f64::from(fraction));
        }
        FaultKind::CentroidJitter { fraction } => {
            o.str("kind", "centroid_jitter")
                .num("fraction", f64::from(fraction));
        }
        FaultKind::FinetuneDrift { strength } => {
            o.str("kind", "finetune_drift")
                .num("strength", f64::from(strength));
        }
    }
    o.finish()
}

fn defense_plan_to_json(name: &str, plan: &DefensePlan) -> String {
    let mut o = ObjWriter::new();
    o.str("name", name).uint("seed", plan.seed());
    let kinds: Vec<String> = plan.defenses().iter().map(defense_kind_to_json).collect();
    o.raw("defenses", &format!("[{}]", kinds.join(",")));
    o.finish()
}

fn defense_kind_to_json(kind: &DefenseKind) -> String {
    let mut o = ObjWriter::new();
    match *kind {
        DefenseKind::Rotation {
            mode: RotationMode::Permute,
        } => {
            o.str("kind", "rotation").str("mode", "permute");
        }
        DefenseKind::Rotation {
            mode: RotationMode::QrBlend { strength },
        } => {
            o.str("kind", "rotation")
                .str("mode", "qr_blend")
                .num("strength", f64::from(strength));
        }
        DefenseKind::FinetuneScrub { epochs, lr } => {
            o.str("kind", "finetune_scrub")
                .uint("epochs", epochs as u64)
                .num("lr", f64::from(lr));
        }
        DefenseKind::PruneScrub { fraction } => {
            o.str("kind", "prune_scrub")
                .num("fraction", f64::from(fraction));
        }
        DefenseKind::Requantize { bits } => {
            o.str("kind", "requantize").uint("bits", u64::from(bits));
        }
        DefenseKind::NoiseWeights { fraction } => {
            o.str("kind", "noise_weights")
                .num("fraction", f64::from(fraction));
        }
    }
    o.finish()
}

fn parse_defense_plan(doc: &JsonValue) -> Result<(String, DefensePlan)> {
    let name = req_str(doc, "name")?;
    let seed = req(doc, "seed")?
        .as_u64()
        .ok_or_else(|| HarnessError::spec("defense \"seed\" must be a non-negative integer"))?;
    let Some(JsonValue::Arr(items)) = doc.get("defenses") else {
        return Err(HarnessError::spec(format!(
            "defense plan {name:?} needs a \"defenses\" array (may be empty)"
        )));
    };
    let mut plan = DefensePlan::new(seed);
    for item in items {
        plan = plan.with(parse_defense_kind(item)?);
    }
    plan.validate()
        .map_err(|e| HarnessError::spec(format!("defense plan {name:?}: {e}")))?;
    Ok((name, plan))
}

fn parse_defense_kind(doc: &JsonValue) -> Result<DefenseKind> {
    let kind = match req_str(doc, "kind")?.as_str() {
        "rotation" => {
            let mode = match req_str(doc, "mode")?.as_str() {
                "permute" => RotationMode::Permute,
                "qr_blend" => RotationMode::QrBlend {
                    strength: req_f32(doc, "strength")?,
                },
                other => {
                    return Err(HarnessError::spec(format!(
                        "unknown rotation mode {other:?} (permute | qr_blend)"
                    )))
                }
            };
            DefenseKind::Rotation { mode }
        }
        "finetune_scrub" => DefenseKind::FinetuneScrub {
            epochs: req_usize(doc, "epochs")?,
            lr: req_f32(doc, "lr")?,
        },
        "prune_scrub" => DefenseKind::PruneScrub {
            fraction: req_f32(doc, "fraction")?,
        },
        "requantize" => DefenseKind::Requantize {
            bits: u32::try_from(req_usize(doc, "bits")?)
                .map_err(|_| HarnessError::spec("requantize \"bits\" out of range"))?,
        },
        "noise_weights" => DefenseKind::NoiseWeights {
            fraction: req_f32(doc, "fraction")?,
        },
        other => {
            return Err(HarnessError::spec(format!(
                "unknown defense kind {other:?}"
            )))
        }
    };
    Ok(kind)
}

fn req<'a>(doc: &'a JsonValue, key: &str) -> Result<&'a JsonValue> {
    doc.get(key)
        .ok_or_else(|| HarnessError::spec(format!("missing field {key:?}")))
}

fn req_str(doc: &JsonValue, key: &str) -> Result<String> {
    req(doc, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| HarnessError::spec(format!("field {key:?} must be a string")))
}

fn req_usize(doc: &JsonValue, key: &str) -> Result<usize> {
    req(doc, key)?
        .as_u64()
        .map(|v| v as usize)
        .ok_or_else(|| HarnessError::spec(format!("field {key:?} must be a non-negative integer")))
}

fn req_f32(doc: &JsonValue, key: &str) -> Result<f32> {
    req(doc, key)?
        .as_f64()
        .map(|v| v as f32)
        .ok_or_else(|| HarnessError::spec(format!("field {key:?} must be a number")))
}

fn parse_dataset(doc: &JsonValue) -> Result<DatasetSpec> {
    let kind = match req_str(doc, "kind")?.as_str() {
        "cifar" => DatasetKind::Cifar,
        "faces" => DatasetKind::Faces,
        other => {
            return Err(HarnessError::spec(format!(
                "unknown dataset kind {other:?} (cifar | faces)"
            )))
        }
    };
    Ok(DatasetSpec {
        kind,
        size: req_usize(doc, "size")?,
        classes: req_usize(doc, "classes")?,
        count: req_usize(doc, "count")?,
        seed: req(doc, "seed")?
            .as_u64()
            .ok_or_else(|| HarnessError::spec("dataset \"seed\" must be a non-negative integer"))?,
        rgb: matches!(doc.get("rgb"), Some(JsonValue::Bool(true))),
    })
}

fn parse_flow(doc: &JsonValue) -> Result<FlowConfig> {
    let mut cfg = FlowConfig::tiny();
    if doc.get("seed").is_some() {
        cfg.seed = req(doc, "seed")?
            .as_u64()
            .ok_or_else(|| HarnessError::spec("flow \"seed\" must be a non-negative integer"))?;
    }
    if let Some(v) = doc.get("arch") {
        cfg.arch = match v.as_str() {
            Some("resnet_lite") => Architecture::ResNetLite,
            Some("conv_net") => Architecture::ConvNet,
            _ => {
                return Err(HarnessError::spec(
                    "flow \"arch\" must be \"resnet_lite\" or \"conv_net\"",
                ))
            }
        };
    }
    if let Some(v) = doc.get("stage_channels") {
        let JsonValue::Arr(items) = v else {
            return Err(HarnessError::spec("\"stage_channels\" must be an array"));
        };
        cfg.stage_channels = items
            .iter()
            .map(|c| c.as_u64().map(|c| c as usize))
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| HarnessError::spec("\"stage_channels\" entries must be integers"))?;
    }
    if doc.get("blocks_per_stage").is_some() {
        cfg.blocks_per_stage = req_usize(doc, "blocks_per_stage")?;
    }
    if doc.get("train_fraction").is_some() {
        cfg.train_fraction = req_f32(doc, "train_fraction")?;
    }
    if doc.get("epochs").is_some() {
        cfg.epochs = req_usize(doc, "epochs")?;
    }
    if doc.get("batch_size").is_some() {
        cfg.batch_size = req_usize(doc, "batch_size")?;
    }
    if doc.get("lr").is_some() {
        cfg.lr = req_f32(doc, "lr")?;
    }
    if doc.get("lambda_scale").is_some() {
        cfg.lambda_scale = req_f32(doc, "lambda_scale")?;
    }
    if let Some(v) = doc.get("lambda_schedule") {
        cfg.lambda_schedule = match v.as_str() {
            Some("warmup") => LambdaSchedule::Warmup,
            Some("constant") => LambdaSchedule::Constant,
            _ => {
                return Err(HarnessError::spec(
                    "flow \"lambda_schedule\" must be \"warmup\" or \"constant\"",
                ))
            }
        };
    }
    if let Some(v) = doc.get("grouping") {
        cfg.grouping = match req_str(v, "kind")?.as_str() {
            "benign" => Grouping::Benign,
            "uniform" => Grouping::Uniform(req_f32(v, "lambda")?),
            "layer_wise" => {
                let Some(JsonValue::Arr(items)) = v.get("lambdas") else {
                    return Err(HarnessError::spec("layer_wise grouping needs \"lambdas\""));
                };
                let ls: Vec<f32> = items
                    .iter()
                    .map(|l| l.as_f64().map(|l| l as f32))
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| HarnessError::spec("\"lambdas\" entries must be numbers"))?;
                let [a, b, c] = ls[..] else {
                    return Err(HarnessError::spec(
                        "\"lambdas\" must have exactly 3 entries",
                    ));
                };
                Grouping::LayerWise([a, b, c])
            }
            other => {
                return Err(HarnessError::spec(format!(
                    "unknown grouping kind {other:?}"
                )))
            }
        };
    }
    if let Some(v) = doc.get("band") {
        cfg.band = match req_str(v, "kind")?.as_str() {
            "auto" => BandRule::Auto {
                width: req_f32(v, "width")?,
            },
            "explicit" => BandRule::Explicit {
                min: req_f32(v, "min")?,
                max: req_f32(v, "max")?,
            },
            "first_n" => BandRule::FirstN,
            other => return Err(HarnessError::spec(format!("unknown band kind {other:?}"))),
        };
    }
    if let Some(v) = doc.get("sign") {
        cfg.sign = match v.as_str() {
            Some("positive") => SignConvention::Positive,
            Some("absolute") => SignConvention::Absolute,
            _ => {
                return Err(HarnessError::spec(
                    "flow \"sign\" must be \"positive\" or \"absolute\"",
                ))
            }
        };
    }
    if let Some(v) = doc.get("channel") {
        cfg.channel = match req_str(v, "kind")?.as_str() {
            "correlation" => EncodingChannel::Correlation,
            "statsign" => EncodingChannel::StatSign {
                lambda: req_f32(v, "lambda")?,
            },
            other => {
                return Err(HarnessError::spec(format!(
                    "unknown channel kind {other:?} (correlation | statsign)"
                )))
            }
        };
    }
    match doc.get("defense") {
        None | Some(JsonValue::Null) => {}
        Some(v) => {
            let seed = req(v, "seed")?.as_u64().ok_or_else(|| {
                HarnessError::spec("flow defense \"seed\" must be a non-negative integer")
            })?;
            let Some(JsonValue::Arr(items)) = v.get("defenses") else {
                return Err(HarnessError::spec(
                    "flow \"defense\" needs a \"defenses\" array (may be empty)",
                ));
            };
            let mut plan = DefensePlan::new(seed);
            for item in items {
                plan = plan.with(parse_defense_kind(item)?);
            }
            cfg.defense = Some(plan);
        }
    }
    match doc.get("quant") {
        None => {}
        Some(JsonValue::Null) => cfg.quant = None,
        Some(v) => {
            let method = match req_str(v, "method")?.as_str() {
                "linear" => QuantMethod::Linear,
                "kmeans" => QuantMethod::KMeans,
                "weighted_entropy" => QuantMethod::WeightedEntropy,
                "target_correlated" => QuantMethod::TargetCorrelated,
                other => {
                    return Err(HarnessError::spec(format!(
                        "unknown quant method {other:?}"
                    )))
                }
            };
            let bits = u32::try_from(req_usize(v, "bits")?)
                .map_err(|_| HarnessError::spec("quant \"bits\" out of range"))?;
            let mut q = QuantConfig::new(method, bits);
            if v.get("finetune_epochs").is_some() {
                q.finetune_epochs = req_usize(v, "finetune_epochs")?;
            }
            if v.get("finetune_lr").is_some() {
                q.finetune_lr = req_f32(v, "finetune_lr")?;
            }
            if let Some(b) = v.get("regularize_finetune") {
                let JsonValue::Bool(b) = b else {
                    return Err(HarnessError::spec("\"regularize_finetune\" must be a bool"));
                };
                q.regularize_finetune = *b;
            }
            cfg.quant = Some(q);
        }
    }
    Ok(cfg)
}

fn parse_fault(doc: &JsonValue) -> Result<FaultPlan> {
    let seed = req(doc, "seed")?
        .as_u64()
        .ok_or_else(|| HarnessError::spec("fault \"seed\" must be a non-negative integer"))?;
    let Some(JsonValue::Arr(items)) = doc.get("faults") else {
        return Err(HarnessError::spec("fault plan needs a \"faults\" array"));
    };
    let mut plan = FaultPlan::new(seed);
    for item in items {
        let kind = match req_str(item, "kind")?.as_str() {
            "bit_flip" => FaultKind::BitFlip {
                rate: req(item, "rate")?
                    .as_f64()
                    .ok_or_else(|| HarnessError::spec("bit_flip \"rate\" must be a number"))?,
            },
            "gaussian_noise" => FaultKind::GaussianNoise {
                fraction: req_f32(item, "fraction")?,
            },
            "uniform_noise" => FaultKind::UniformNoise {
                fraction: req_f32(item, "fraction")?,
            },
            "prune" => FaultKind::Prune {
                fraction: req_f32(item, "fraction")?,
            },
            "centroid_jitter" => FaultKind::CentroidJitter {
                fraction: req_f32(item, "fraction")?,
            },
            "finetune_drift" => FaultKind::FinetuneDrift {
                strength: req_f32(item, "strength")?,
            },
            other => return Err(HarnessError::spec(format!("unknown fault kind {other:?}"))),
        };
        plan = plan.with(kind);
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_scenarios_round_trip_through_json() {
        for scenario in Scenario::builtin()
            .into_iter()
            .chain(Scenario::tournament())
        {
            let json = scenario.to_json();
            let back = Scenario::from_json(&json)
                .unwrap_or_else(|e| panic!("{}: {e}\n{json}", scenario.name));
            assert_eq!(back, scenario, "{json}");
        }
    }

    #[test]
    fn tournament_covers_both_variants_and_shares_the_roster() {
        let cells = Scenario::tournament();
        assert_eq!(cells.len(), 4);
        let statsign = |s: &Scenario| matches!(s.flow.channel, EncodingChannel::StatSign { .. });
        assert_eq!(cells.iter().filter(|s| statsign(s)).count(), 2);
        let roster: Vec<&str> = cells[0].defenses.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            roster,
            [
                "none",
                "rotation",
                "finetune-scrub",
                "prune-scrub",
                "requantize"
            ]
        );
        for cell in &cells {
            assert_eq!(cell.defenses, cells[0].defenses, "{}", cell.name);
            assert!(cell.fault.is_none());
            cell.flow.validate().unwrap();
            // The "none" entry is the undefended leaderboard baseline.
            assert!(cell.defenses[0].1.is_benign());
            assert!(!cell.defenses[1].1.is_benign());
        }
    }

    #[test]
    fn builtin_names_are_unique_and_filesystem_safe() {
        let mut scenarios = Scenario::builtin();
        scenarios.extend(Scenario::tournament());
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
        for name in names {
            assert!(name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'));
        }
    }

    #[test]
    fn minimal_scenario_uses_tiny_defaults() {
        let s = Scenario::from_json(
            r#"{"name":"mini",
                "dataset":{"kind":"cifar","size":8,"classes":3,"count":64,"seed":1},
                "flow":{"epochs":1}}"#,
        )
        .unwrap();
        assert_eq!(s.name, "mini");
        assert_eq!(s.flow.epochs, 1);
        assert_eq!(s.flow.batch_size, FlowConfig::tiny().batch_size);
        assert!(!s.flow.verbose);
        assert!(s.fault.is_none());
        assert!(s.defenses.is_empty());
        assert_eq!(s.flow.channel, EncodingChannel::Correlation);
        assert!(!s.dataset.rgb);
    }

    #[test]
    fn channel_and_defenses_parse() {
        let s = Scenario::from_json(
            r#"{"name":"hardened",
                "dataset":{"kind":"cifar","size":8,"classes":4,"count":64,"seed":1},
                "flow":{"channel":{"kind":"statsign","lambda":30000},
                        "quant":{"method":"kmeans","bits":4}},
                "defenses":[
                    {"name":"none","seed":0,"defenses":[]},
                    {"name":"rotation","seed":11,
                     "defenses":[{"kind":"rotation","mode":"permute"}]},
                    {"name":"blend","seed":12,
                     "defenses":[{"kind":"rotation","mode":"qr_blend","strength":0.5}]},
                    {"name":"combo","seed":13,
                     "defenses":[{"kind":"prune_scrub","fraction":0.2},
                                 {"kind":"noise_weights","fraction":0.05},
                                 {"kind":"requantize","bits":6},
                                 {"kind":"finetune_scrub","epochs":1,"lr":0.01}]}]}"#,
        )
        .unwrap();
        assert_eq!(s.flow.channel, EncodingChannel::StatSign { lambda: 3e4 });
        assert_eq!(s.defenses.len(), 4);
        assert!(s.defenses[0].1.is_benign());
        assert_eq!(s.defenses[3].1.defenses().len(), 4);
        // And it round-trips.
        assert_eq!(Scenario::from_json(&s.to_json()).unwrap(), s);
    }

    #[test]
    fn bad_defense_specs_are_rejected_with_context() {
        let wrap = |defenses: &str| {
            format!(
                r#"{{"name":"x",
                     "dataset":{{"kind":"cifar","size":8,"classes":2,"count":8,"seed":0}},
                     "flow":{{}},"defenses":{defenses}}}"#
            )
        };
        for (defenses, needle) in [
            (r#"[{"name":"d","seed":1}]"#, "defenses"),
            (
                r#"[{"name":"d","seed":1,"defenses":[{"kind":"melt"}]}]"#,
                "defense kind",
            ),
            (
                r#"[{"name":"d","seed":1,"defenses":[{"kind":"rotation","mode":"spin"}]}]"#,
                "rotation mode",
            ),
            (
                r#"[{"name":"d","seed":1,"defenses":[{"kind":"prune_scrub","fraction":1.5}]}]"#,
                "fraction",
            ),
        ] {
            let err = Scenario::from_json(&wrap(defenses))
                .unwrap_err()
                .to_string();
            assert!(err.contains(needle), "{defenses} -> {err}");
        }
        // fault + defenses is ambiguous; the spec must pick one axis.
        let both = r#"{"name":"x",
            "dataset":{"kind":"cifar","size":8,"classes":2,"count":8,"seed":0},
            "flow":{},
            "fault":{"seed":1,"faults":[{"kind":"prune","fraction":0.1}]},
            "defenses":[{"name":"none","seed":0,"defenses":[]}]}"#;
        let err = Scenario::from_json(both).unwrap_err().to_string();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn flow_defense_parses_and_round_trips() {
        let s = Scenario::from_json(
            r#"{"name":"release-defended",
                "dataset":{"kind":"cifar","size":8,"classes":2,"count":16,"seed":0},
                "flow":{"defense":{"seed":11,
                        "defenses":[{"kind":"rotation","mode":"permute"}]}}}"#,
        )
        .unwrap();
        let plan = s.flow.defense.as_ref().unwrap();
        assert_eq!(plan.seed(), 11);
        assert_eq!(plan.defenses().len(), 1);
        assert_eq!(Scenario::from_json(&s.to_json()).unwrap(), s);
        // An invalid plan is caught by flow validation.
        let err = Scenario::from_json(
            r#"{"name":"x",
                "dataset":{"kind":"cifar","size":8,"classes":2,"count":16,"seed":0},
                "flow":{"defense":{"seed":1,
                        "defenses":[{"kind":"prune_scrub","fraction":2.0}]}}}"#,
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("defense plan"), "{err}");
    }

    #[test]
    fn lambda_schedule_parses_and_round_trips() {
        let wrap = |schedule: &str| {
            format!(
                r#"{{"name":"sched",
                     "dataset":{{"kind":"cifar","size":8,"classes":2,"count":8,"seed":0}},
                     "flow":{{"lambda_schedule":{schedule}}}}}"#
            )
        };
        let s = Scenario::from_json(&wrap("\"constant\"")).unwrap();
        assert_eq!(s.flow.lambda_schedule, LambdaSchedule::Constant);
        assert_eq!(Scenario::from_json(&s.to_json()).unwrap(), s);
        // Absent keeps the default.
        let s = Scenario::from_json(&wrap("\"warmup\"")).unwrap();
        assert_eq!(s.flow.lambda_schedule, LambdaSchedule::Warmup);
        let err = Scenario::from_json(&wrap("\"ramp\""))
            .unwrap_err()
            .to_string();
        assert!(err.contains("lambda_schedule"), "{err}");
    }

    #[test]
    fn faces_and_layer_wise_parse() {
        let s = Scenario::from_json(
            r#"{"name":"faces",
                "dataset":{"kind":"faces","size":8,"classes":4,"count":64,"seed":2},
                "flow":{"grouping":{"kind":"layer_wise","lambdas":[0,0,5]},
                        "band":{"kind":"explicit","min":10,"max":90},
                        "quant":null},
                "tolerances":{"accuracy":0.1}}"#,
        )
        .unwrap();
        assert_eq!(s.dataset.kind, DatasetKind::Faces);
        assert_eq!(s.flow.grouping, Grouping::LayerWise([0.0, 0.0, 5.0]));
        assert!(s.flow.quant.is_none());
        assert_eq!(s.tolerance_overrides, vec![("accuracy".to_string(), 0.1)]);
        s.dataset.generate().unwrap();
    }

    #[test]
    fn malformed_specs_are_rejected_with_context() {
        for (body, needle) in [
            ("{", "scenario JSON"),
            (r#"{"dataset":{},"flow":{}}"#, "name"),
            (
                r#"{"name":"x","dataset":{"kind":"mnist","size":8,"classes":2,"count":8,"seed":0},"flow":{}}"#,
                "dataset kind",
            ),
            (
                r#"{"name":"x","dataset":{"kind":"cifar","size":8,"classes":2,"count":8,"seed":0},"flow":{"epochs":0}}"#,
                "flow config",
            ),
            (
                r#"{"name":"x","dataset":{"kind":"cifar","size":8,"classes":2,"count":8,"seed":0},"flow":{},"fault":{"seed":1,"faults":[{"kind":"melt"}]}}"#,
                "fault kind",
            ),
        ] {
            let err = Scenario::from_json(body).unwrap_err().to_string();
            assert!(err.contains(needle), "{body} -> {err}");
        }
    }
}
