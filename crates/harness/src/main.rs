//! `harness` — scenario conformance runner and CI regression gate.
//!
//! ```text
//! harness init       [--dir conformance]            write builtin scenario specs
//! harness list       [--dir conformance]            list scenarios
//! harness run        [--dir conformance] [--scenario NAME]   run + print report JSON
//! harness bless      [--dir conformance] [--scenario NAME]   regenerate golden artifacts
//! harness check      [--dir conformance] [--scenario NAME] [--out conformance-out]
//! harness bench-gate [--fresh BENCH_kernels.json]
//!                    [--baseline conformance/BENCH_baseline.json] [--threshold 0.20]
//!                    [--trace-fresh run.jsonl --trace-baseline base.jsonl]
//! ```
//!
//! Exit codes: 0 = pass, 1 = gate violation or unusable golden,
//! 2 = usage / runtime error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use qce_harness::{
    bench_gate, diff_reports, leaderboard_markdown, load_scenarios, parse_bench, report_from_json,
    run_scenario, ConformanceReport, HarnessError, Scenario, Tolerances, Violation,
};

fn main() -> ExitCode {
    // A warm stage cache would skip pipeline stages and change the
    // exported telemetry counters; conformance runs must always be cold.
    std::env::remove_var(qce_store::CACHE_ENV);

    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "init" => cmd_init(rest),
        "list" => cmd_list(rest),
        "run" => cmd_run(rest),
        "bless" => cmd_bless(rest),
        "check" => cmd_check(rest),
        "leaderboard" => cmd_leaderboard(rest),
        "bench-gate" => cmd_bench_gate(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("harness: unknown command {other:?}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(code) => code,
        Err(e @ HarnessError::Rebless { .. }) => {
            eprintln!("harness: {e}");
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("harness: {e}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: harness <init|list|run|bless|check|leaderboard|bench-gate> [options]
  init        write the builtin scenario specs under --dir
              (--tournament writes the defense-tournament set instead)
  list        list scenarios under --dir (channel, quant, fault/defense axes)
  run         run scenarios and print their report JSON
  bless       run scenarios and (re)write golden artifacts under --dir/golden
  check       run scenarios and diff against goldens; nonzero on any violation
  leaderboard render the defense-sweep reports under --out as a markdown table
  bench-gate  diff a fresh BENCH_kernels.json against the committed baseline
options:
  --dir DIR        conformance root (default: conformance)
  --tournament     init: write the tournament scenario set instead of the builtins
  --scenario NAME  restrict run/bless/check to one scenario
  --out DIR        where check writes fresh report JSON (default: conformance-out);
                   where leaderboard reads report JSON from
  --fresh FILE     bench-gate: fresh bench output (default: BENCH_kernels.json)
  --baseline FILE  bench-gate: baseline (default: conformance/BENCH_baseline.json)
  --threshold X    bench-gate: relative slowdown allowed (default: 0.20)
  --trace-fresh FILE     bench-gate: QCE_TRACE stream of the fresh run; on a
                         violation the failure output names the spans that moved
  --trace-baseline FILE  bench-gate: QCE_TRACE stream of the baseline run";

struct Opts {
    dir: PathBuf,
    tournament: bool,
    scenario: Option<String>,
    out: PathBuf,
    fresh: PathBuf,
    baseline: Option<PathBuf>,
    threshold: f64,
    trace_fresh: Option<PathBuf>,
    trace_baseline: Option<PathBuf>,
}

fn parse_opts(args: &[String]) -> Result<Opts, HarnessError> {
    let mut opts = Opts {
        dir: PathBuf::from("conformance"),
        tournament: false,
        scenario: None,
        out: PathBuf::from("conformance-out"),
        fresh: PathBuf::from("BENCH_kernels.json"),
        baseline: None,
        threshold: qce_harness::DEFAULT_BENCH_THRESHOLD,
        trace_fresh: None,
        trace_baseline: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| HarnessError::spec(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--dir" => opts.dir = PathBuf::from(value("--dir")?),
            "--tournament" => opts.tournament = true,
            "--scenario" => opts.scenario = Some(value("--scenario")?),
            "--out" => opts.out = PathBuf::from(value("--out")?),
            "--fresh" => opts.fresh = PathBuf::from(value("--fresh")?),
            "--baseline" => opts.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--trace-fresh" => opts.trace_fresh = Some(PathBuf::from(value("--trace-fresh")?)),
            "--trace-baseline" => {
                opts.trace_baseline = Some(PathBuf::from(value("--trace-baseline")?));
            }
            "--threshold" => {
                let raw = value("--threshold")?;
                opts.threshold = raw
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .ok_or_else(|| {
                        HarnessError::spec(format!("--threshold {raw:?} is not a valid fraction"))
                    })?;
            }
            other => return Err(HarnessError::spec(format!("unknown option {other:?}"))),
        }
    }
    Ok(opts)
}

fn selected_scenarios(opts: &Opts) -> Result<Vec<Scenario>, HarnessError> {
    let dir = opts.dir.join("scenarios");
    let mut scenarios = load_scenarios(&dir)?;
    if let Some(name) = &opts.scenario {
        scenarios.retain(|s| &s.name == name);
        if scenarios.is_empty() {
            return Err(HarnessError::spec(format!(
                "no scenario named {name:?} under {}",
                dir.display()
            )));
        }
    }
    Ok(scenarios)
}

fn cmd_init(args: &[String]) -> Result<ExitCode, HarnessError> {
    let opts = parse_opts(args)?;
    let dir = opts.dir.join("scenarios");
    std::fs::create_dir_all(&dir)
        .map_err(|e| HarnessError::io(format!("creating {}", dir.display()), e))?;
    let scenarios = if opts.tournament {
        Scenario::tournament()
    } else {
        Scenario::builtin()
    };
    for scenario in scenarios {
        let path = dir.join(format!("{}.json", scenario.name));
        std::fs::write(&path, scenario.to_json() + "\n")
            .map_err(|e| HarnessError::io(format!("writing {}", path.display()), e))?;
        println!("wrote {}", path.display());
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_list(args: &[String]) -> Result<ExitCode, HarnessError> {
    let opts = parse_opts(args)?;
    for scenario in selected_scenarios(&opts)? {
        let kind = if scenario.fault.is_some() {
            "faulted".to_string()
        } else if !scenario.defenses.is_empty() {
            format!("defended×{}", scenario.defenses.len())
        } else {
            "clean".to_string()
        };
        let channel = match scenario.flow.channel {
            qce::EncodingChannel::Correlation => "correlation".to_string(),
            qce::EncodingChannel::StatSign { .. } => "statsign".to_string(),
        };
        let quant = match scenario.flow.quant {
            Some(q) => format!("{:?} {}-bit", q.method, q.bits),
            None => "no quantization".to_string(),
        };
        let axes = if scenario.defenses.is_empty() {
            String::new()
        } else {
            let names: Vec<&str> = scenario.defenses.iter().map(|(n, _)| n.as_str()).collect();
            format!("  [{}]", names.join(", "))
        };
        println!(
            "{:<24} {kind:<12} {channel:<12} {quant}{axes}",
            scenario.name
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_leaderboard(args: &[String]) -> Result<ExitCode, HarnessError> {
    let opts = parse_opts(args)?;
    let entries = std::fs::read_dir(&opts.out)
        .map_err(|e| HarnessError::io(format!("reading report dir {}", opts.out.display()), e))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(std::result::Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    let mut reports = Vec::with_capacity(paths.len());
    for path in paths {
        let body = read(&path)?;
        let report = report_from_json(&body)
            .map_err(|e| HarnessError::spec(format!("{}: {e}", path.display())))?;
        reports.push(report);
    }
    print!("{}", leaderboard_markdown(&reports));
    Ok(ExitCode::SUCCESS)
}

fn cmd_run(args: &[String]) -> Result<ExitCode, HarnessError> {
    let opts = parse_opts(args)?;
    for scenario in selected_scenarios(&opts)? {
        let report = run_scenario(&scenario)?;
        println!("{}", report.to_json());
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_bless(args: &[String]) -> Result<ExitCode, HarnessError> {
    let opts = parse_opts(args)?;
    let golden_dir = opts.dir.join("golden");
    for scenario in selected_scenarios(&opts)? {
        let report = run_scenario(&scenario)?;
        let path = report.write_golden(&golden_dir)?;
        eprintln!("blessed {} ({:.0} ms)", path.display(), report.wall_ms);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_check(args: &[String]) -> Result<ExitCode, HarnessError> {
    let opts = parse_opts(args)?;
    let golden_dir = opts.dir.join("golden");
    let mut failures = 0usize;
    for scenario in selected_scenarios(&opts)? {
        let fresh = run_scenario(&scenario)?;
        write_fresh_report(&opts.out, &fresh)?;
        let golden = match ConformanceReport::read_golden(&golden_dir, &scenario.name) {
            Ok(golden) => golden,
            Err(e @ HarnessError::Rebless { .. }) => {
                eprintln!("FAIL {}: {e}", scenario.name);
                failures += 1;
                continue;
            }
            Err(e) => return Err(e),
        };
        let violations = diff_reports(&golden, &fresh, &Tolerances::for_scenario(&scenario));
        if violations.is_empty() {
            eprintln!("PASS {} ({:.0} ms)", scenario.name, fresh.wall_ms);
        } else {
            failures += 1;
            report_violations(&scenario.name, &violations);
        }
    }
    if failures > 0 {
        eprintln!(
            "harness check: {failures} scenario(s) failed; fresh reports in {}",
            opts.out.display()
        );
        return Ok(ExitCode::from(1));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_bench_gate(args: &[String]) -> Result<ExitCode, HarnessError> {
    let opts = parse_opts(args)?;
    let baseline_path = opts
        .baseline
        .unwrap_or_else(|| opts.dir.join("BENCH_baseline.json"));
    let fresh = parse_bench(&read(&opts.fresh)?)?;
    let baseline = parse_bench(&read(&baseline_path)?)?;
    let violations = bench_gate(&fresh, &baseline, opts.threshold);
    if violations.is_empty() {
        eprintln!(
            "bench-gate: {} kernel(s) within +{:.0}% of baseline",
            baseline.len(),
            opts.threshold * 100.0
        );
        return Ok(ExitCode::SUCCESS);
    }
    report_violations("bench", &violations);
    print_trace_attribution(&opts.trace_baseline, &opts.trace_fresh);
    Ok(ExitCode::from(1))
}

/// On a bench-gate failure, explains *where* the time went: diffs the
/// baseline and fresh `QCE_TRACE` streams (when both were supplied) and
/// prints the per-span attribution, ending with the top regressing span.
/// Trace problems only warn — the gate verdict is already decided by the
/// bench numbers, so a missing or damaged trace must not mask it.
fn print_trace_attribution(baseline: &Option<PathBuf>, fresh: &Option<PathBuf>) {
    let (Some(baseline), Some(fresh)) = (baseline, fresh) else {
        if baseline.is_some() || fresh.is_some() {
            eprintln!("bench-gate: span attribution needs both --trace-baseline and --trace-fresh");
        }
        return;
    };
    let load = |path: &PathBuf| match qce_obs::Trace::load(path) {
        Ok(trace) => Some(trace),
        Err(e) => {
            eprintln!("bench-gate: skipping span attribution: {e}");
            None
        }
    };
    let (Some(base_t), Some(fresh_t)) = (load(baseline), load(fresh)) else {
        return;
    };
    eprint!("{}", qce_obs::attribution_report(&base_t, &fresh_t, 10));
}

fn report_violations(what: &str, violations: &[Violation]) {
    eprintln!("FAIL {what}: {} violation(s)", violations.len());
    for v in violations {
        eprintln!("  {v}");
    }
}

fn write_fresh_report(out_dir: &Path, report: &ConformanceReport) -> Result<(), HarnessError> {
    std::fs::create_dir_all(out_dir)
        .map_err(|e| HarnessError::io(format!("creating {}", out_dir.display()), e))?;
    let path = out_dir.join(format!("{}.json", report.scenario));
    std::fs::write(&path, report.to_json() + "\n")
        .map_err(|e| HarnessError::io(format!("writing {}", path.display()), e))
}

fn read(path: &Path) -> Result<String, HarnessError> {
    std::fs::read_to_string(path)
        .map_err(|e| HarnessError::io(format!("reading {}", path.display()), e))
}
