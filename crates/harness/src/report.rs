//! The machine-readable result of one scenario run, plus its golden
//! persistence format.
//!
//! A [`ConformanceReport`] flattens everything gate-worthy about a run
//! into sorted `(name, value)` pairs: per-stage floats and counts,
//! content digests of the released state, and the deterministic
//! telemetry counter subset. Goldens are stored as QCES artifacts (one
//! [`CONFORMANCE_REPORT_SECTION`] section), so every golden inherits the
//! container's magic/version/CRC verification for free; a sibling
//! `.json` mirror is written at bless time purely for human diffing and
//! is never read back.

use std::path::{Path, PathBuf};

use qce_store::codec::{ByteReader, ByteWriter};
use qce_store::{peek_version, section_kind, Artifact, StoreError, FORMAT_VERSION};
use qce_telemetry::json::ObjWriter;

use crate::{HarnessError, Result};

/// Version of the report *payload* layout, independent of the QCES
/// container version. Bump on any codec change; `check` treats a golden
/// with a different value as unusable and asks for a re-bless.
pub const REPORT_FORMAT_VERSION: u16 = 1;

/// QCES section kind carrying an encoded [`ConformanceReport`]. Offset
/// well past the core crate's own downstream sections.
pub const CONFORMANCE_REPORT_SECTION: u16 = section_kind::DOWNSTREAM_BASE + 0x10;

/// Gate-worthy numbers of one evaluation stage, flattened to sorted
/// `(metric, value)` pairs.
///
/// Integral metrics (`images`, `recognized`, `ok`, `degraded`,
/// `failed`, `mape_below_20`, `ssim_above_0_5`) are stored as exact
/// small integers in the `f64`; the diff layer gates them exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct StageMetrics {
    /// Stage label, e.g. `"uncompressed"` or `"tcq 4-bit"`.
    pub label: String,
    /// Sorted `(metric name, value)` pairs.
    pub metrics: Vec<(String, f64)>,
}

impl StageMetrics {
    /// Builds a stage from unsorted pairs, sorting by metric name so
    /// encoding and diffing are order-independent.
    #[must_use]
    pub fn new(label: impl Into<String>, mut metrics: Vec<(String, f64)>) -> Self {
        metrics.sort_by(|a, b| a.0.cmp(&b.0));
        StageMetrics {
            label: label.into(),
            metrics,
        }
    }

    /// Looks up one metric by exact name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// The complete, diffable result of one scenario run.
///
/// Equality deliberately ignores the observational [`perf`] section
/// (see the manual [`PartialEq`] impl below): two reports that agree on
/// every gated number are equal even when their perf telemetry differs,
/// which is what keeps goldens stable across thread counts, SIMD tiers
/// and allocator-tracking modes.
///
/// [`perf`]: ConformanceReport::perf
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    /// Payload layout version ([`REPORT_FORMAT_VERSION`] for reports
    /// produced by this build).
    pub version: u16,
    /// Name of the scenario that produced the report.
    pub scenario: String,
    /// Evaluation stages in run order.
    pub stages: Vec<StageMetrics>,
    /// Content digests of the released state (`release.weights`,
    /// `select.indices`, `targets.pixels`, `training.history`), gated
    /// exactly.
    pub digests: Vec<(String, u64)>,
    /// Deterministic telemetry counters (`decode.*`, `quant.*`,
    /// `train.*`), gated exactly.
    pub counters: Vec<(String, u64)>,
    /// Total run wall time in milliseconds (observational; never gated).
    pub wall_ms: f64,
    /// Observational perf telemetry (`pool.*` busy/idle, `alloc.*`
    /// bytes, `proc.*` RSS): rendered in [`to_json`] for humans and CI
    /// artifacts, but **excluded** from the golden payload, from
    /// equality and from the diff gates — the numbers are machine- and
    /// configuration-dependent by nature.
    ///
    /// [`to_json`]: ConformanceReport::to_json
    pub perf: Vec<(String, f64)>,
}

// `perf` is observational: goldens blessed without perf telemetry must
// compare equal to fresh runs that carry it.
impl PartialEq for ConformanceReport {
    fn eq(&self, other: &Self) -> bool {
        self.version == other.version
            && self.scenario == other.scenario
            && self.stages == other.stages
            && self.digests == other.digests
            && self.counters == other.counters
            && self.wall_ms == other.wall_ms
    }
}

impl ConformanceReport {
    /// Encodes the report as the payload of a
    /// [`CONFORMANCE_REPORT_SECTION`] section.
    #[must_use]
    pub fn to_payload(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u16(REPORT_FORMAT_VERSION);
        w.put_str(&self.scenario);
        w.put_u64(self.stages.len() as u64);
        for stage in &self.stages {
            w.put_str(&stage.label);
            w.put_u64(stage.metrics.len() as u64);
            for (name, value) in &stage.metrics {
                w.put_str(name);
                w.put_f64(*value);
            }
        }
        for pairs in [&self.digests, &self.counters] {
            w.put_u64(pairs.len() as u64);
            for (name, value) in pairs {
                w.put_str(name);
                w.put_u64(*value);
            }
        }
        w.put_f64(self.wall_ms);
        w.finish()
    }

    /// Decodes a report from a section payload.
    ///
    /// # Errors
    ///
    /// [`StoreError::Payload`] on truncation or trailing bytes;
    /// [`StoreError::Format`] when the payload declares a different
    /// [`REPORT_FORMAT_VERSION`].
    pub fn from_payload(payload: &[u8]) -> qce_store::Result<ConformanceReport> {
        let mut r = ByteReader::new(payload);
        let version = r.u16()?;
        if version != REPORT_FORMAT_VERSION {
            return Err(StoreError::Format {
                reason: format!(
                    "conformance report format version {version} (this build reads \
                     {REPORT_FORMAT_VERSION})"
                ),
            });
        }
        let scenario = r.str()?;
        let stage_count = r.len_u64()?;
        let mut stages = Vec::with_capacity(stage_count.min(1024));
        for _ in 0..stage_count {
            let label = r.str()?;
            let metric_count = r.len_u64()?;
            let mut metrics = Vec::with_capacity(metric_count.min(1024));
            for _ in 0..metric_count {
                let name = r.str()?;
                let value = r.f64()?;
                metrics.push((name, value));
            }
            stages.push(StageMetrics { label, metrics });
        }
        let mut sections: [Vec<(String, u64)>; 2] = [Vec::new(), Vec::new()];
        for pairs in &mut sections {
            let count = r.len_u64()?;
            for _ in 0..count {
                let name = r.str()?;
                let value = r.u64()?;
                pairs.push((name, value));
            }
        }
        let [digests, counters] = sections;
        let wall_ms = r.f64()?;
        r.expect_empty()?;
        Ok(ConformanceReport {
            version,
            scenario,
            stages,
            digests,
            counters,
            wall_ms,
            // Never persisted: a decoded golden carries no perf section.
            perf: Vec::new(),
        })
    }

    /// Wraps the report in a single-section QCES artifact.
    #[must_use]
    pub fn to_artifact(&self) -> Artifact {
        let mut artifact = Artifact::new();
        artifact.push(CONFORMANCE_REPORT_SECTION, self.to_payload());
        artifact
    }

    /// Extracts a report from a QCES artifact.
    ///
    /// # Errors
    ///
    /// [`StoreError::Format`] when the section is absent,
    /// payload-decoding errors otherwise.
    pub fn from_artifact(artifact: &Artifact) -> qce_store::Result<ConformanceReport> {
        let payload = artifact.require(CONFORMANCE_REPORT_SECTION)?;
        ConformanceReport::from_payload(payload)
    }

    /// Golden artifact path for `scenario` under `golden_dir`.
    #[must_use]
    pub fn golden_file(golden_dir: &Path, scenario: &str) -> PathBuf {
        golden_path(golden_dir, scenario)
    }

    /// Writes the golden artifact for this report under `golden_dir`,
    /// plus a human-readable `.json` mirror next to it (the mirror is
    /// write-only: `check` never reads it).
    ///
    /// # Errors
    ///
    /// [`HarnessError::Io`] on filesystem failures.
    pub fn write_golden(&self, golden_dir: &Path) -> Result<PathBuf> {
        let path = golden_path(golden_dir, &self.scenario);
        self.to_artifact()
            .write_file(&path)
            .map_err(HarnessError::Store)?;
        let mirror = path.with_extension("json");
        std::fs::write(&mirror, self.to_json()).map_err(|e| {
            HarnessError::io(format!("writing golden mirror {}", mirror.display()), e)
        })?;
        Ok(path)
    }

    /// Reads the golden report for `scenario` from `golden_dir`.
    ///
    /// Every shape of unusable golden — missing file, damaged container,
    /// container or payload written by a *newer* format — maps to
    /// [`HarnessError::Rebless`] with a diagnostic naming the cause, so
    /// CI failures say "re-bless", never panic.
    ///
    /// # Errors
    ///
    /// [`HarnessError::Rebless`] for anything `harness bless` fixes;
    /// [`HarnessError::Io`] for other I/O failures.
    pub fn read_golden(golden_dir: &Path, scenario: &str) -> Result<ConformanceReport> {
        let path = golden_path(golden_dir, scenario);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(HarnessError::Rebless {
                    scenario: scenario.to_string(),
                    reason: format!("golden file {} does not exist", path.display()),
                })
            }
            Err(e) => return Err(HarnessError::io(format!("reading {}", path.display()), e)),
        };
        let artifact = Artifact::from_bytes(&bytes).map_err(|e| {
            // Distinguish "written by a newer build" from plain damage:
            // the declared container version is readable even when the
            // container itself is not.
            let reason = match peek_version(&bytes) {
                Some(v) if v != FORMAT_VERSION => format!(
                    "container format version {v} is newer than this build's {FORMAT_VERSION}"
                ),
                _ => format!("container rejected: {e}"),
            };
            HarnessError::Rebless {
                scenario: scenario.to_string(),
                reason,
            }
        })?;
        let report =
            ConformanceReport::from_artifact(&artifact).map_err(|e| HarnessError::Rebless {
                scenario: scenario.to_string(),
                reason: format!("payload rejected: {e}"),
            })?;
        if report.scenario != scenario {
            return Err(HarnessError::Rebless {
                scenario: scenario.to_string(),
                reason: format!(
                    "golden file carries report for scenario {:?}",
                    report.scenario
                ),
            });
        }
        Ok(report)
    }

    /// Renders the report as pretty-stable JSON — the `.json` golden
    /// mirror and the CI failure artifact.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut root = ObjWriter::new();
        root.uint("version", u64::from(self.version))
            .str("scenario", &self.scenario);
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|stage| {
                let mut s = ObjWriter::new();
                s.str("label", &stage.label);
                let mut metrics = ObjWriter::new();
                for (name, value) in &stage.metrics {
                    metrics.num(name, *value);
                }
                s.raw("metrics", &metrics.finish());
                s.finish()
            })
            .collect();
        root.raw("stages", &format!("[{}]", stages.join(",")));
        for (key, pairs) in [("digests", &self.digests), ("counters", &self.counters)] {
            let mut obj = ObjWriter::new();
            for (name, value) in pairs {
                obj.uint(name, *value);
            }
            root.raw(key, &obj.finish());
        }
        root.num("wall_ms", self.wall_ms);
        if !self.perf.is_empty() {
            let mut obj = ObjWriter::new();
            for (name, value) in &self.perf {
                obj.num(name, *value);
            }
            root.raw("perf", &obj.finish());
        }
        root.finish()
    }
}

/// Golden artifact path for `scenario` under `golden_dir`
/// (`<dir>/<scenario>.qces`).
#[must_use]
pub fn golden_path(golden_dir: &Path, scenario: &str) -> PathBuf {
    golden_dir.join(format!("{scenario}.qces"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ConformanceReport {
        ConformanceReport {
            version: REPORT_FORMAT_VERSION,
            scenario: "quant4_tcq".to_string(),
            stages: vec![
                StageMetrics::new(
                    "uncompressed",
                    vec![
                        ("images".to_string(), 12.0),
                        ("accuracy".to_string(), 0.8125),
                    ],
                ),
                StageMetrics::new("tcq 4-bit", vec![("mean_mape".to_string(), 7.25)]),
            ],
            digests: vec![
                ("release.weights".to_string(), 0xdead_beef_dead_beef),
                ("select.indices".to_string(), 42),
            ],
            counters: vec![("decode.images".to_string(), 12)],
            wall_ms: 1234.5,
            perf: vec![("pool.busy_us".to_string(), 9000.0)],
        }
    }

    #[test]
    fn stage_metrics_sort_on_construction() {
        let s = StageMetrics::new("s", vec![("b".to_string(), 2.0), ("a".to_string(), 1.0)]);
        assert_eq!(s.metrics[0].0, "a");
        assert_eq!(s.get("b"), Some(2.0));
        assert_eq!(s.get("missing"), None);
    }

    #[test]
    fn payload_round_trip_is_exact() {
        let r = report();
        let back = ConformanceReport::from_payload(&r.to_payload()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn artifact_round_trip_through_bytes() {
        let r = report();
        let bytes = r.to_artifact().to_bytes();
        let artifact = Artifact::from_bytes(&bytes).unwrap();
        assert_eq!(ConformanceReport::from_artifact(&artifact).unwrap(), r);
    }

    #[test]
    fn perf_is_observational_only() {
        let r = report();
        // Not persisted: round-tripping drops the section...
        let back = ConformanceReport::from_payload(&r.to_payload()).unwrap();
        assert!(back.perf.is_empty());
        // ...and does not participate in equality (golden vs fresh).
        assert_eq!(back, r);
        // But humans see it in the JSON mirror.
        let json = r.to_json();
        assert!(json.contains("\"perf\""), "{json}");
        assert!(json.contains("pool.busy_us"), "{json}");
        // And a perf-free report stays quiet rather than writing "perf":{}.
        assert!(!back.to_json().contains("\"perf\""));
    }

    #[test]
    fn newer_payload_version_is_rejected_with_version_message() {
        let mut payload = report().to_payload();
        let newer = REPORT_FORMAT_VERSION + 1;
        payload[0..2].copy_from_slice(&newer.to_le_bytes());
        let err = ConformanceReport::from_payload(&payload).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn truncated_payload_is_an_error_not_a_panic() {
        let payload = report().to_payload();
        for cut in [0, 1, 5, payload.len() / 2, payload.len() - 1] {
            assert!(ConformanceReport::from_payload(&payload[..cut]).is_err());
        }
        let mut extended = payload;
        extended.push(0);
        assert!(ConformanceReport::from_payload(&extended).is_err());
    }

    #[test]
    fn golden_round_trip_and_mirror() {
        let dir = tempdir("golden_round_trip");
        let r = report();
        let path = r.write_golden(&dir).unwrap();
        assert_eq!(path, golden_path(&dir, "quant4_tcq"));
        let back = ConformanceReport::read_golden(&dir, "quant4_tcq").unwrap();
        assert_eq!(back, r);
        let mirror = std::fs::read_to_string(path.with_extension("json")).unwrap();
        assert!(mirror.contains("\"scenario\":\"quant4_tcq\""));
        // The mirror parses as JSON.
        qce_telemetry::json::parse(&mirror).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_golden_asks_for_bless() {
        let dir = tempdir("golden_missing");
        let err = ConformanceReport::read_golden(&dir, "nope").unwrap_err();
        assert!(matches!(err, HarnessError::Rebless { .. }), "{err}");
        assert!(err.to_string().contains("bless"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_scenario_name_in_golden_asks_for_bless() {
        let dir = tempdir("golden_wrong_name");
        let r = report();
        r.to_artifact()
            .write_file(golden_path(&dir, "other"))
            .unwrap();
        let err = ConformanceReport::read_golden(&dir, "other").unwrap_err();
        assert!(err.to_string().contains("quant4_tcq"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qce_harness_report_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
