//! Executes a [`Scenario`] through the real attack flow and flattens the
//! outcome into a [`ConformanceReport`].

use std::time::Instant;

use qce::{AttackFlow, FaultedReport, StageReport};

use crate::{ConformanceReport, Result, Scenario, StageMetrics, REPORT_FORMAT_VERSION};

/// Telemetry counter prefixes that are deterministic functions of the
/// scenario: decode outcomes, quantization stats, training progress,
/// and applied countermeasures. `pool.*` (thread-count dependent) and
/// `store.*` (cache-state dependent) are deliberately excluded so
/// reports gate identically at any `QCE_THREADS` and with or without a
/// warm stage cache.
pub const DETERMINISTIC_COUNTER_PREFIXES: &[&str] = &["decode.", "defense.", "quant.", "train."];

/// MAPE ceiling (percent) under which a decoded image counts as
/// *recovered* in defense-sweep stages — aligned with the
/// `mape_below_20` gate of the clean stages.
pub const RECOVERY_MAPE_CEILING: f32 = 20.0;

/// Runs `scenario` end to end and returns its report.
///
/// Telemetry is [`reset`](qce_telemetry::reset) first so the exported
/// counters describe exactly this run; callers running multiple
/// scenarios in one process get independent counter sets. Note this
/// reads the process-global metric registry, so concurrent flows in the
/// same process would interleave counters — the harness binary and the
/// conformance tests serialize scenario runs.
///
/// # Errors
///
/// Dataset synthesis or flow errors, unchanged.
pub fn run_scenario(scenario: &Scenario) -> Result<ConformanceReport> {
    qce_telemetry::reset();
    let start = Instant::now();
    let dataset = scenario.dataset.generate()?;
    let flow = AttackFlow::new(scenario.flow.clone());

    if scenario.fault.is_some() && !scenario.defenses.is_empty() {
        return Err(crate::HarnessError::spec(format!(
            "scenario {:?} sets both \"fault\" and \"defenses\"; pick one perturbation axis",
            scenario.name
        )));
    }

    let (stages, digests) = match &scenario.fault {
        None if !scenario.defenses.is_empty() => {
            let mut trained = flow.train(&dataset)?;
            let pre = trained.float_report()?;
            let mut stages = vec![stage_from_report(&pre, None)];
            if let Some(qcfg) = scenario.flow.quant {
                let release = trained.quantize(qcfg)?;
                stages.push(stage_from_report(
                    &release.report,
                    Some(release.compression_ratio),
                ));
            }
            for (name, plan) in &scenario.defenses {
                let defended = trained.evaluate_defended(
                    scenario.flow.quant,
                    plan,
                    format!("defense:{name}"),
                )?;
                stages.push(stage_from_faulted(&defended));
            }
            (stages, trained.artifact_digests())
        }
        None => {
            let outcome = flow.run(&dataset)?;
            let mut stages = vec![stage_from_report(&outcome.pre_quant, None)];
            if let Some(post) = &outcome.post_quant {
                stages.push(stage_from_report(post, outcome.compression_ratio));
            }
            (stages, outcome.artifact_digests())
        }
        Some(plan) => {
            let mut trained = flow.train(&dataset)?;
            let pre = trained.float_report()?;
            let mut stages = vec![stage_from_report(&pre, None)];
            if let Some(qcfg) = scenario.flow.quant {
                let release = trained.quantize(qcfg)?;
                stages.push(stage_from_report(
                    &release.report,
                    Some(release.compression_ratio),
                ));
            }
            let faulted =
                trained.evaluate_faulted(scenario.flow.quant, plan, "faulted".to_string())?;
            stages.push(stage_from_faulted(&faulted));
            (stages, trained.artifact_digests())
        }
    };

    let counters = qce_telemetry::snapshot().counters_with_prefix(DETERMINISTIC_COUNTER_PREFIXES);
    // Observational perf telemetry: pool utilisation, allocation volume,
    // process RSS. Thread-count and machine dependent, so it rides along
    // in the JSON only (see `ConformanceReport::perf`) and never gates.
    let mut perf = qce_telemetry::snapshot().flatten_with_prefix(&["pool.", "alloc.", "proc."]);
    perf.sort_by(|a, b| a.0.cmp(&b.0));

    Ok(ConformanceReport {
        version: REPORT_FORMAT_VERSION,
        scenario: scenario.name.clone(),
        stages,
        digests,
        counters,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        perf,
    })
}

fn stage_from_report(report: &StageReport, compression_ratio: Option<f64>) -> StageMetrics {
    let mut metrics = vec![
        ("accuracy".to_string(), f64::from(report.accuracy)),
        ("images".to_string(), report.images.len() as f64),
        ("mean_mape".to_string(), f64::from(report.mean_mape())),
        ("mean_ssim".to_string(), f64::from(report.mean_ssim())),
        ("recognized".to_string(), report.recognized_count() as f64),
        (
            "mape_below_20".to_string(),
            report.count_mape_below(20.0) as f64,
        ),
        (
            "ssim_above_0_5".to_string(),
            report.count_ssim_above(0.5) as f64,
        ),
        ("wall_ms".to_string(), report.wall_ms),
    ];
    for (i, corr) in report.group_correlations.iter().enumerate() {
        metrics.push((format!("group_correlation.{i}"), f64::from(*corr)));
    }
    if let Some(ratio) = compression_ratio {
        metrics.push(("compression_ratio".to_string(), ratio));
    }
    StageMetrics::new(report.label.clone(), metrics)
}

fn stage_from_faulted(report: &FaultedReport) -> StageMetrics {
    let mut metrics = vec![
        ("accuracy".to_string(), f64::from(report.accuracy)),
        ("images".to_string(), report.images.len() as f64),
        ("ok".to_string(), report.ok_count() as f64),
        ("degraded".to_string(), report.degraded_count() as f64),
        ("failed".to_string(), report.failed_count() as f64),
        (
            "recovered".to_string(),
            report.recovered_count(RECOVERY_MAPE_CEILING) as f64,
        ),
        (
            "mean_confidence".to_string(),
            f64::from(report.mean_confidence),
        ),
    ];
    // Means over decoded chunks only exist when something decoded; the
    // exact ok/degraded/failed gates pin whether they should be present.
    if let Some(m) = report.mean_mape() {
        metrics.push(("mean_mape".to_string(), f64::from(m)));
    }
    if let Some(s) = report.mean_ssim() {
        metrics.push(("mean_ssim".to_string(), f64::from(s)));
    }
    StageMetrics::new(report.label.clone(), metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qce::{FaultedImage, ImageReport, ImageStatus};

    #[test]
    fn stage_metrics_cover_the_gateable_surface() {
        let report = StageReport {
            label: "tcq 4-bit".to_string(),
            accuracy: 0.75,
            images: vec![ImageReport {
                target_index: 0,
                dataset_index: 3,
                group: 2,
                mape: 8.0,
                ssim: 0.9,
                recognized: true,
            }],
            group_correlations: vec![0.1, 0.2, 0.95],
            wall_ms: 12.0,
            metrics: Vec::new(),
        };
        let stage = stage_from_report(&report, Some(8.0));
        assert_eq!(stage.label, "tcq 4-bit");
        assert_eq!(stage.get("accuracy"), Some(0.75));
        assert_eq!(stage.get("images"), Some(1.0));
        assert_eq!(stage.get("recognized"), Some(1.0));
        assert_eq!(stage.get("mape_below_20"), Some(1.0));
        assert_eq!(stage.get("ssim_above_0_5"), Some(1.0));
        assert_eq!(stage.get("compression_ratio"), Some(8.0));
        assert!((stage.get("group_correlation.2").unwrap() - 0.95).abs() < 1e-6);
    }

    #[test]
    fn faulted_stage_omits_means_when_nothing_decoded() {
        let report = FaultedReport {
            label: "faulted".to_string(),
            accuracy: 0.25,
            images: vec![FaultedImage {
                target_index: 0,
                group: 2,
                status: ImageStatus::Failed {
                    reason: "gone".to_string(),
                },
                mape: None,
                ssim: None,
            }],
            mean_confidence: 0.1,
        };
        let stage = stage_from_faulted(&report);
        assert_eq!(stage.get("failed"), Some(1.0));
        assert_eq!(stage.get("ok"), Some(0.0));
        assert_eq!(stage.get("recovered"), Some(0.0));
        assert_eq!(stage.get("mean_mape"), None);
        assert_eq!(stage.get("mean_ssim"), None);
    }

    #[test]
    fn recovered_requires_decode_and_fidelity() {
        let image = |status, mape| FaultedImage {
            target_index: 0,
            group: 0,
            status,
            mape,
            ssim: None,
        };
        let report = FaultedReport {
            label: "defense:rotation".to_string(),
            accuracy: 0.5,
            images: vec![
                image(ImageStatus::Ok, Some(5.0)),
                image(ImageStatus::Degraded { repaired_pixels: 2 }, Some(12.0)),
                // Decoded but scrambled — a permuted-weights readout.
                image(ImageStatus::Ok, Some(80.0)),
                image(
                    ImageStatus::Failed {
                        reason: "gone".to_string(),
                    },
                    None,
                ),
            ],
            mean_confidence: 0.4,
        };
        let stage = stage_from_faulted(&report);
        assert_eq!(stage.get("recovered"), Some(2.0));
        assert_eq!(stage.get("ok"), Some(2.0));
        assert_eq!(stage.get("failed"), Some(1.0));
    }
}
