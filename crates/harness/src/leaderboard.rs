//! Tournament leaderboard: renders defense-sweep conformance reports as
//! a markdown table of per-cell recovery and accuracy cost.
//!
//! The input is the fresh report JSON that `harness check` / `run`
//! already writes (the golden mirror format) — the leaderboard is a pure
//! view over those files, so CI can regenerate it from the uploaded
//! failure artifacts without re-running any scenario.

use qce_telemetry::json::{parse, JsonValue};

use crate::{ConformanceReport, HarnessError, Result, StageMetrics};

/// Stage-label prefix the runner gives defense-sweep stages.
pub const DEFENSE_STAGE_PREFIX: &str = "defense:";

/// Parses a report from its JSON rendering ([`ConformanceReport::to_json`]).
///
/// Only the leaderboard-relevant surface is required (scenario name and
/// stages); digests and counters are read when present. This is the
/// inverse of the golden *mirror*, not of the QCES artifact — the gate
/// path never goes through JSON.
///
/// # Errors
///
/// [`HarnessError::Spec`] naming the malformed field.
pub fn report_from_json(body: &str) -> Result<ConformanceReport> {
    let doc = parse(body).map_err(|e| HarnessError::spec(format!("report JSON: {e}")))?;
    let scenario = doc
        .get("scenario")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| HarnessError::spec("report needs a string \"scenario\""))?
        .to_string();
    let Some(JsonValue::Arr(stage_docs)) = doc.get("stages") else {
        return Err(HarnessError::spec("report needs a \"stages\" array"));
    };
    let mut stages = Vec::with_capacity(stage_docs.len());
    for stage in stage_docs {
        let label = stage
            .get("label")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| HarnessError::spec("stage needs a string \"label\""))?
            .to_string();
        let mut metrics = Vec::new();
        if let Some(JsonValue::Obj(map)) = stage.get("metrics") {
            for (name, value) in map {
                let value = value.as_f64().ok_or_else(|| {
                    HarnessError::spec(format!("stage metric {name:?} must be a number"))
                })?;
                metrics.push((name.clone(), value));
            }
        }
        stages.push(StageMetrics::new(label, metrics));
    }
    let pairs = |key: &str| -> Vec<(String, u64)> {
        match doc.get(key) {
            Some(JsonValue::Obj(map)) => map
                .iter()
                .filter_map(|(n, v)| v.as_u64().map(|v| (n.clone(), v)))
                .collect(),
            _ => Vec::new(),
        }
    };
    Ok(ConformanceReport {
        version: crate::REPORT_FORMAT_VERSION,
        scenario,
        stages,
        digests: pairs("digests"),
        counters: pairs("counters"),
        wall_ms: doc
            .get("wall_ms")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0),
        perf: Vec::new(),
    })
}

/// Renders the defense-sweep stages of `reports` as a markdown
/// leaderboard, one row per (scenario cell, defense). Columns:
///
/// * `acc` — task accuracy of the defended release, with the delta
///   against that cell's `none` baseline (the acceptance criterion is a
///   defense that stays within a couple of points);
/// * `recovered` — images decoded **and** faithful (MAPE ≤ 20%) out of
///   all encoded images — decode-status alone over-counts on structural
///   defenses (see `recovered` in the runner);
/// * `ok`/`degraded`/`failed` — raw resilient-decoder outcomes.
///
/// Reports without any `defense:` stage are skipped; an empty result
/// renders a table with only the header so callers can always embed it.
#[must_use]
pub fn leaderboard_markdown(reports: &[ConformanceReport]) -> String {
    let mut out = String::from(
        "| cell | defense | acc | Δacc vs none | recovered | ok | degraded | failed |\n\
         |------|---------|-----|--------------|-----------|----|----------|--------|\n",
    );
    for report in reports {
        let defense_stages: Vec<&StageMetrics> = report
            .stages
            .iter()
            .filter(|s| s.label.starts_with(DEFENSE_STAGE_PREFIX))
            .collect();
        let baseline_acc = defense_stages
            .iter()
            .find(|s| s.label == format!("{DEFENSE_STAGE_PREFIX}none"))
            .and_then(|s| s.get("accuracy"));
        for stage in defense_stages {
            let name = &stage.label[DEFENSE_STAGE_PREFIX.len()..];
            let acc = stage.get("accuracy").unwrap_or(f64::NAN);
            let delta = match baseline_acc {
                Some(base) => format!("{:+.1}", 100.0 * (acc - base)),
                None => "n/a".to_string(),
            };
            let count = |metric: &str| stage.get(metric).unwrap_or(0.0) as i64;
            out.push_str(&format!(
                "| {} | {} | {:.1}% | {} | {}/{} | {} | {} | {} |\n",
                report.scenario,
                name,
                100.0 * acc,
                delta,
                count("recovered"),
                count("images"),
                count("ok"),
                count("degraded"),
                count("failed"),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::REPORT_FORMAT_VERSION;

    fn tournament_report() -> ConformanceReport {
        let stage = |label: &str, acc: f64, recovered: f64, ok: f64, failed: f64| {
            StageMetrics::new(
                label,
                vec![
                    ("accuracy".to_string(), acc),
                    ("images".to_string(), 2.0),
                    ("recovered".to_string(), recovered),
                    ("ok".to_string(), ok),
                    ("degraded".to_string(), 0.0),
                    ("failed".to_string(), failed),
                ],
            )
        };
        ConformanceReport {
            version: REPORT_FORMAT_VERSION,
            scenario: "tourney_statsign_4bit".to_string(),
            stages: vec![
                StageMetrics::new("uncompressed", vec![("accuracy".to_string(), 0.8)]),
                stage("defense:none", 0.75, 2.0, 2.0, 0.0),
                stage("defense:rotation", 0.75, 2.0, 2.0, 0.0),
                stage("defense:prune-scrub", 0.74, 1.0, 1.0, 1.0),
            ],
            digests: vec![("release.weights".to_string(), 9)],
            counters: vec![("decode.images".to_string(), 2)],
            wall_ms: 10.0,
            perf: Vec::new(),
        }
    }

    #[test]
    fn report_json_round_trips_for_the_leaderboard() {
        let report = tournament_report();
        let back = report_from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn malformed_report_json_is_rejected() {
        for body in [
            "{",
            "{}",
            r#"{"scenario":"s"}"#,
            r#"{"scenario":"s","stages":[{}]}"#,
        ] {
            assert!(report_from_json(body).is_err(), "{body}");
        }
    }

    #[test]
    fn leaderboard_rows_cover_defense_stages_only() {
        let md = leaderboard_markdown(&[tournament_report()]);
        assert_eq!(md.lines().count(), 2 + 3, "{md}");
        assert!(!md.contains("uncompressed"));
        let rotation = md.lines().find(|l| l.contains("rotation")).unwrap();
        assert!(rotation.contains("| +0.0 |"), "{rotation}");
        assert!(rotation.contains("| 2/2 |"), "{rotation}");
        let prune = md.lines().find(|l| l.contains("prune-scrub")).unwrap();
        assert!(prune.contains("| -1.0 |"), "{prune}");
        assert!(prune.contains("| 1/2 |"), "{prune}");
    }

    #[test]
    fn reports_without_defenses_render_an_empty_table() {
        let mut report = tournament_report();
        report.stages.truncate(1);
        let md = leaderboard_markdown(&[report]);
        assert_eq!(md.lines().count(), 2, "{md}");
    }
}
