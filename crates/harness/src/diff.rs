//! Tolerance-gated comparison of a fresh [`ConformanceReport`] against a
//! golden one.
//!
//! The gate policy mirrors the workspace's determinism contract:
//! anything the pipeline promises bit-for-bit — release-state digests,
//! telemetry counters, image/decode counts — is compared **exactly**;
//! float summaries get small absolute bands so a legitimate numeric
//! change (e.g. a compiler upgrade reassociating a reduction) can be
//! absorbed by a deliberate tolerance instead of a silent re-bless;
//! wall-clock time is never gated.

use crate::{ConformanceReport, Scenario};

/// How one metric is compared.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Values must be bit-identical (used for counts and digests).
    Exact,
    /// `|golden - fresh| <= band` passes.
    Abs(f64),
    /// Never gated (observational metrics such as `wall_ms`).
    Ignore,
}

/// One gate failure, locating the metric and explaining the miss.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Where in the report the mismatch lives, e.g.
    /// `stage "tcq 4-bit" metric "accuracy"`.
    pub location: String,
    /// Golden vs. fresh values and the band that was exceeded.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.location, self.detail)
    }
}

/// Metric-name → [`Gate`] table with longest-prefix matching.
///
/// The default table (see the README tolerance section):
///
/// | metric (prefix)        | gate        |
/// |------------------------|-------------|
/// | counts (`images`, `recognized`, `ok`, `degraded`, `failed`, `recovered`, `mape_below_20`, `ssim_above_0_5`) | exact |
/// | `accuracy`             | abs 0.02    |
/// | `mean_mape`            | abs 1.0     |
/// | `mean_ssim`            | abs 0.03    |
/// | `mean_confidence`      | abs 0.05    |
/// | `group_correlation.`   | abs 0.05    |
/// | `compression_ratio`    | abs 1e-6    |
/// | `wall_ms`              | ignored     |
/// | anything else          | abs 1e-6    |
#[derive(Debug, Clone)]
pub struct Tolerances {
    /// `(metric name or prefix, gate)`; longest matching prefix wins.
    rules: Vec<(String, Gate)>,
    /// Gate for metrics no rule matches.
    fallback: Gate,
}

impl Default for Tolerances {
    fn default() -> Self {
        let rule = |name: &str, gate| (name.to_string(), gate);
        Tolerances {
            rules: vec![
                rule("images", Gate::Exact),
                rule("recognized", Gate::Exact),
                rule("ok", Gate::Exact),
                rule("degraded", Gate::Exact),
                rule("failed", Gate::Exact),
                rule("recovered", Gate::Exact),
                rule("mape_below_20", Gate::Exact),
                rule("ssim_above_0_5", Gate::Exact),
                rule("accuracy", Gate::Abs(0.02)),
                rule("mean_mape", Gate::Abs(1.0)),
                rule("mean_ssim", Gate::Abs(0.03)),
                rule("mean_confidence", Gate::Abs(0.05)),
                rule("group_correlation.", Gate::Abs(0.05)),
                rule("compression_ratio", Gate::Abs(1e-6)),
                rule("wall_ms", Gate::Ignore),
            ],
            fallback: Gate::Abs(1e-6),
        }
    }
}

impl Tolerances {
    /// The default table with the scenario's `"tolerances"` overrides
    /// layered on top (an override becomes an absolute band and takes
    /// precedence over any same-name default).
    #[must_use]
    pub fn for_scenario(scenario: &Scenario) -> Self {
        let mut tol = Tolerances::default();
        for (name, band) in &scenario.tolerance_overrides {
            tol.set(name, Gate::Abs(*band));
        }
        tol
    }

    /// Installs or replaces the rule for `name` (exact name or prefix).
    pub fn set(&mut self, name: &str, gate: Gate) {
        if let Some(rule) = self.rules.iter_mut().find(|(n, _)| n == name) {
            rule.1 = gate;
        } else {
            self.rules.push((name.to_string(), gate));
        }
    }

    /// The gate for `metric`: the longest rule that equals the name or
    /// is a prefix of it, else the fallback.
    #[must_use]
    pub fn gate(&self, metric: &str) -> Gate {
        self.rules
            .iter()
            .filter(|(name, _)| metric == name || metric.starts_with(name.as_str()))
            .max_by_key(|(name, _)| name.len())
            .map_or(self.fallback, |(_, gate)| *gate)
    }
}

/// Diffs `fresh` against `golden` under `tol`, returning every gate
/// violation (empty = pass). Stage order, stage labels, metric presence,
/// digest presence, and counter presence are all part of the contract.
#[must_use]
pub fn diff_reports(
    golden: &ConformanceReport,
    fresh: &ConformanceReport,
    tol: &Tolerances,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let violation = |location: String, detail: String| Violation { location, detail };

    if golden.scenario != fresh.scenario {
        out.push(violation(
            "scenario".to_string(),
            format!("golden {:?} vs fresh {:?}", golden.scenario, fresh.scenario),
        ));
        return out;
    }

    if golden.stages.len() != fresh.stages.len() {
        out.push(violation(
            "stages".to_string(),
            format!(
                "golden has {} stages, fresh has {}",
                golden.stages.len(),
                fresh.stages.len()
            ),
        ));
    }
    for (g, f) in golden.stages.iter().zip(&fresh.stages) {
        if g.label != f.label {
            out.push(violation(
                "stage order".to_string(),
                format!("golden stage {:?} vs fresh stage {:?}", g.label, f.label),
            ));
            continue;
        }
        let loc = |metric: &str| format!("stage {:?} metric {:?}", g.label, metric);
        for (name, gv) in &g.metrics {
            let Some(fv) = f.get(name) else {
                out.push(violation(
                    loc(name),
                    "missing from fresh report".to_string(),
                ));
                continue;
            };
            match tol.gate(name) {
                Gate::Ignore => {}
                Gate::Exact => {
                    if gv.to_bits() != fv.to_bits() {
                        out.push(violation(
                            loc(name),
                            format!("golden {gv} vs fresh {fv} (exact gate)"),
                        ));
                    }
                }
                Gate::Abs(band) => {
                    // NaN deltas (a NaN metric on either side) must fail.
                    let delta = (gv - fv).abs();
                    if delta.is_nan() || delta > band {
                        out.push(violation(
                            loc(name),
                            format!("golden {gv} vs fresh {fv} (|Δ| = {delta} > {band})"),
                        ));
                    }
                }
            }
        }
        for (name, _) in &f.metrics {
            if g.get(name).is_none() {
                out.push(violation(
                    loc(name),
                    "missing from golden report".to_string(),
                ));
            }
        }
    }

    for (kind, golden_pairs, fresh_pairs) in [
        ("digest", &golden.digests, &fresh.digests),
        ("counter", &golden.counters, &fresh.counters),
    ] {
        for (name, gv) in golden_pairs {
            match fresh_pairs.iter().find(|(n, _)| n == name) {
                None => out.push(violation(
                    format!("{kind} {name:?}"),
                    "missing from fresh report".to_string(),
                )),
                Some((_, fv)) if fv != gv => out.push(violation(
                    format!("{kind} {name:?}"),
                    format!("golden {gv:#018x} vs fresh {fv:#018x}"),
                )),
                Some(_) => {}
            }
        }
        for (name, _) in fresh_pairs {
            if !golden_pairs.iter().any(|(n, _)| n == name) {
                out.push(violation(
                    format!("{kind} {name:?}"),
                    "missing from golden report".to_string(),
                ));
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConformanceReport, StageMetrics, REPORT_FORMAT_VERSION};

    fn report() -> ConformanceReport {
        ConformanceReport {
            version: REPORT_FORMAT_VERSION,
            scenario: "s".to_string(),
            stages: vec![StageMetrics::new(
                "uncompressed",
                vec![
                    ("accuracy".to_string(), 0.8),
                    ("images".to_string(), 12.0),
                    ("wall_ms".to_string(), 100.0),
                    ("group_correlation.2".to_string(), 0.91),
                ],
            )],
            digests: vec![("release.weights".to_string(), 7)],
            counters: vec![("decode.images".to_string(), 12)],
            wall_ms: 50.0,
            perf: Vec::new(),
        }
    }

    #[test]
    fn identical_reports_pass() {
        let r = report();
        assert!(diff_reports(&r, &r, &Tolerances::default()).is_empty());
    }

    #[test]
    fn perf_telemetry_never_gates() {
        let golden = report(); // blessed before perf telemetry existed
        let mut fresh = report();
        fresh.perf = vec![
            ("alloc.peak_bytes".to_string(), 1.5e8),
            ("pool.idle_us".to_string(), 42_000.0),
        ];
        assert!(diff_reports(&golden, &fresh, &Tolerances::default()).is_empty());
        assert_eq!(golden, fresh);
    }

    #[test]
    fn drift_within_band_passes_beyond_band_fails() {
        let golden = report();
        let mut fresh = report();
        fresh.stages[0].metrics[0].1 = 0.81; // accuracy band is 0.02
        assert!(diff_reports(&golden, &fresh, &Tolerances::default()).is_empty());
        fresh.stages[0].metrics[0].1 = 0.85;
        let v = diff_reports(&golden, &fresh, &Tolerances::default());
        assert_eq!(v.len(), 1);
        assert!(v[0].to_string().contains("accuracy"), "{}", v[0]);
    }

    #[test]
    fn counts_are_gated_exactly() {
        let golden = report();
        let mut fresh = report();
        let images = fresh.stages[0]
            .metrics
            .iter_mut()
            .find(|(n, _)| n == "images")
            .unwrap();
        images.1 = 11.0;
        let v = diff_reports(&golden, &fresh, &Tolerances::default());
        assert_eq!(v.len(), 1);
        assert!(v[0].to_string().contains("exact"), "{}", v[0]);
    }

    #[test]
    fn wall_ms_is_never_gated() {
        let golden = report();
        let mut fresh = report();
        fresh.wall_ms = 9999.0;
        let wall = fresh.stages[0]
            .metrics
            .iter_mut()
            .find(|(n, _)| n == "wall_ms")
            .unwrap();
        wall.1 = 1e9;
        assert!(diff_reports(&golden, &fresh, &Tolerances::default()).is_empty());
    }

    #[test]
    fn digest_and_counter_perturbations_fail() {
        let golden = report();
        let mut fresh = report();
        fresh.digests[0].1 ^= 1;
        fresh.counters[0].1 += 1;
        let v = diff_reports(&golden, &fresh, &Tolerances::default());
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn missing_and_extra_entries_fail_both_directions() {
        let golden = report();
        let mut fresh = report();
        fresh.digests.clear();
        fresh.counters.push(("quant.levels".to_string(), 16));
        fresh.stages[0].metrics.retain(|(n, _)| n != "accuracy");
        let v = diff_reports(&golden, &fresh, &Tolerances::default());
        let rendered: Vec<String> = v.iter().map(ToString::to_string).collect();
        assert_eq!(v.len(), 3, "{rendered:?}");
    }

    #[test]
    fn stage_label_and_count_mismatches_fail() {
        let golden = report();
        let mut fresh = report();
        fresh.stages[0].label = "other".to_string();
        assert!(!diff_reports(&golden, &fresh, &Tolerances::default()).is_empty());
        fresh.stages.clear();
        assert!(!diff_reports(&golden, &fresh, &Tolerances::default()).is_empty());
    }

    #[test]
    fn nan_in_either_report_fails_banded_gates() {
        let golden = report();
        let mut fresh = report();
        fresh.stages[0].metrics[0].1 = f64::NAN;
        assert!(!diff_reports(&golden, &fresh, &Tolerances::default()).is_empty());
    }

    #[test]
    fn longest_prefix_rule_wins_and_overrides_apply() {
        let mut tol = Tolerances::default();
        assert_eq!(tol.gate("group_correlation.0"), Gate::Abs(0.05));
        assert_eq!(tol.gate("unknown_metric"), Gate::Abs(1e-6));
        tol.set("group_correlation.0", Gate::Abs(0.5));
        assert_eq!(tol.gate("group_correlation.0"), Gate::Abs(0.5));
        assert_eq!(tol.gate("group_correlation.1"), Gate::Abs(0.05));
    }

    #[test]
    fn scenario_overrides_layer_over_defaults() {
        let mut scenario = crate::Scenario::builtin()[0].clone();
        scenario
            .tolerance_overrides
            .push(("accuracy".to_string(), 0.5));
        let tol = Tolerances::for_scenario(&scenario);
        assert_eq!(tol.gate("accuracy"), Gate::Abs(0.5));
        assert_eq!(tol.gate("mean_mape"), Gate::Abs(1.0));
    }
}
