//! Throughput regression gate over `BENCH_kernels.json`.
//!
//! The bench harness (`cargo bench -p qce-bench`) writes a JSON summary
//! of kernel timings. CI keeps a committed baseline; this module diffs a
//! fresh summary against it and fails when any kernel got slower beyond
//! a relative threshold (20% by default — see DESIGN.md for why), when a
//! kernel disappeared, or when a kernel lost the bitwise-identical
//! serial/parallel guarantee. Kernels that are *new* in the fresh run
//! never fail the gate; they show up when the baseline is refreshed.

use qce_telemetry::json::{parse, JsonValue};

use crate::{HarnessError, Result, Violation};

/// Default relative slowdown that fails the gate (0.20 = 20%).
pub const DEFAULT_BENCH_THRESHOLD: f64 = 0.20;

/// One kernel row of `BENCH_kernels.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Kernel name, e.g. `matmul_128x256x128`.
    pub name: String,
    /// Serial wall time per rep, milliseconds.
    pub serial_ms: f64,
    /// Parallel wall time per rep, milliseconds.
    pub parallel_ms: f64,
    /// Whether serial and parallel outputs matched bit for bit.
    pub bitwise_identical: bool,
}

/// Parses the `kernels` array out of a `BENCH_kernels.json` document.
///
/// # Errors
///
/// [`HarnessError::Spec`] naming the malformed field.
pub fn parse_bench(body: &str) -> Result<Vec<BenchEntry>> {
    let doc = parse(body).map_err(|e| HarnessError::spec(format!("bench JSON: {e}")))?;
    let Some(JsonValue::Arr(kernels)) = doc.get("kernels") else {
        return Err(HarnessError::spec(
            "bench JSON has no \"kernels\" array — was it written by `cargo bench -p qce-bench`?",
        ));
    };
    let mut out = Vec::with_capacity(kernels.len());
    for kernel in kernels {
        let name = kernel
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| HarnessError::spec("bench kernel entry without a \"name\" string"))?
            .to_string();
        let num = |field: &str| {
            kernel
                .get(field)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| {
                    HarnessError::spec(format!("bench kernel {name:?}: missing number {field:?}"))
                })
        };
        out.push(BenchEntry {
            serial_ms: num("serial_ms")?,
            parallel_ms: num("parallel_ms")?,
            bitwise_identical: matches!(
                kernel.get("bitwise_identical"),
                Some(JsonValue::Bool(true))
            ),
            name,
        });
    }
    Ok(out)
}

/// Gates `fresh` against `baseline`: every baseline kernel must still
/// exist, must not have regressed by more than `threshold` (relative,
/// on both serial and parallel time), and must still be bitwise
/// identical if the baseline was. Returns every violation (empty =
/// pass).
#[must_use]
pub fn bench_gate(fresh: &[BenchEntry], baseline: &[BenchEntry], threshold: f64) -> Vec<Violation> {
    let mut out = Vec::new();
    for base in baseline {
        let Some(now) = fresh.iter().find(|k| k.name == base.name) else {
            out.push(Violation {
                location: format!("kernel {:?}", base.name),
                detail: "present in baseline but missing from fresh bench output".to_string(),
            });
            continue;
        };
        for (which, base_ms, now_ms) in [
            ("serial_ms", base.serial_ms, now.serial_ms),
            ("parallel_ms", base.parallel_ms, now.parallel_ms),
        ] {
            // Sub-threshold baselines (or zero, from a degenerate run)
            // can't support a meaningful relative gate.
            if base_ms <= 0.0 {
                continue;
            }
            let ratio = now_ms / base_ms;
            if ratio > 1.0 + threshold {
                out.push(Violation {
                    location: format!("kernel {:?} {which}", base.name),
                    detail: format!(
                        "{base_ms:.4} ms -> {now_ms:.4} ms ({:+.1}% > allowed +{:.0}%)",
                        (ratio - 1.0) * 100.0,
                        threshold * 100.0
                    ),
                });
            }
        }
        if base.bitwise_identical && !now.bitwise_identical {
            out.push(Violation {
                location: format!("kernel {:?}", base.name),
                detail: "serial/parallel outputs are no longer bitwise identical".to_string(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, serial_ms: f64, parallel_ms: f64) -> BenchEntry {
        BenchEntry {
            name: name.to_string(),
            serial_ms,
            parallel_ms,
            bitwise_identical: true,
        }
    }

    #[test]
    fn parses_the_real_bench_schema() {
        let body = r#"{
          "bench": "kernels",
          "threads": {"serial": 1, "parallel": 4},
          "kernels": [
            {"name": "matmul", "flops": 8, "serial_ms": 0.5, "parallel_ms": 0.2,
             "serial_gflops": 1.0, "bitwise_identical": true},
            {"name": "kmeans", "flops": 0, "serial_ms": 9.0, "parallel_ms": 8.0,
             "bitwise_identical": false}
          ]
        }"#;
        let kernels = parse_bench(body).unwrap();
        assert_eq!(kernels.len(), 2);
        assert_eq!(kernels[0].name, "matmul");
        assert!(kernels[0].bitwise_identical);
        assert!(!kernels[1].bitwise_identical);
        assert_eq!(kernels[1].serial_ms, 9.0);
    }

    #[test]
    fn malformed_bench_json_is_rejected() {
        assert!(parse_bench("{}").is_err());
        assert!(parse_bench(r#"{"kernels":[{"serial_ms":1}]}"#).is_err());
        assert!(parse_bench(r#"{"kernels":[{"name":"x","serial_ms":"fast"}]}"#).is_err());
    }

    #[test]
    fn within_threshold_passes_beyond_fails() {
        let baseline = vec![entry("matmul", 1.0, 0.5)];
        assert!(bench_gate(&[entry("matmul", 1.19, 0.59)], &baseline, 0.20).is_empty());
        let v = bench_gate(&[entry("matmul", 1.3, 0.5)], &baseline, 0.20);
        assert_eq!(v.len(), 1);
        assert!(v[0].to_string().contains("serial_ms"), "{}", v[0]);
    }

    #[test]
    fn faster_is_always_fine() {
        let baseline = vec![entry("matmul", 1.0, 0.5)];
        assert!(bench_gate(&[entry("matmul", 0.1, 0.05)], &baseline, 0.20).is_empty());
    }

    #[test]
    fn missing_kernel_fails_new_kernel_does_not() {
        let baseline = vec![entry("matmul", 1.0, 0.5)];
        let fresh = vec![entry("conv", 1.0, 0.5)];
        let v = bench_gate(&fresh, &baseline, 0.20);
        assert_eq!(v.len(), 1);
        assert!(v[0].to_string().contains("missing"), "{}", v[0]);
    }

    #[test]
    fn losing_bitwise_identity_fails() {
        let baseline = vec![entry("matmul", 1.0, 0.5)];
        let mut fresh = vec![entry("matmul", 1.0, 0.5)];
        fresh[0].bitwise_identical = false;
        let v = bench_gate(&fresh, &baseline, 0.20);
        assert_eq!(v.len(), 1);
        assert!(v[0].to_string().contains("bitwise"), "{}", v[0]);
    }

    #[test]
    fn zero_baseline_times_are_not_gated() {
        let baseline = vec![entry("warmup", 0.0, 0.0)];
        assert!(bench_gate(&[entry("warmup", 5.0, 5.0)], &baseline, 0.20).is_empty());
    }
}
