//! Throughput regression gate over `BENCH_kernels.json`.
//!
//! The bench harness (`cargo bench -p qce-bench`) writes a JSON summary
//! of kernel timings. CI keeps a committed baseline; this module diffs a
//! fresh summary against it and fails when any kernel got slower beyond
//! a relative threshold (20% by default — see DESIGN.md for why), when a
//! kernel disappeared, or when a kernel lost the bitwise-identical
//! serial/parallel guarantee. Kernels that are *new* in the fresh run
//! never fail the gate; they show up when the baseline is refreshed.

use qce_telemetry::json::{parse, JsonValue};

use crate::{HarnessError, Result, Violation};

/// Default relative slowdown that fails the gate (0.20 = 20%).
pub const DEFAULT_BENCH_THRESHOLD: f64 = 0.20;

/// One kernel row of `BENCH_kernels.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Kernel name, e.g. `matmul_128x256x128`.
    pub name: String,
    /// Serial wall time per rep, milliseconds.
    pub serial_ms: f64,
    /// Parallel wall time per rep, milliseconds.
    pub parallel_ms: f64,
    /// Forced-scalar SIMD wall time per rep, milliseconds (absent in
    /// pre-SIMD bench outputs).
    pub scalar_ms: Option<f64>,
    /// Detected-SIMD wall time per rep, milliseconds (absent in
    /// pre-SIMD bench outputs).
    pub simd_ms: Option<f64>,
    /// Whether serial and parallel outputs matched bit for bit.
    pub bitwise_identical: bool,
    /// Whether forced-scalar and detected-SIMD outputs matched bit for
    /// bit (`None` in pre-SIMD bench outputs).
    pub simd_bitwise_identical: Option<bool>,
}

/// Parses the `kernels` array out of a `BENCH_kernels.json` document.
///
/// # Errors
///
/// [`HarnessError::Spec`] naming the malformed field.
pub fn parse_bench(body: &str) -> Result<Vec<BenchEntry>> {
    let doc = parse(body).map_err(|e| HarnessError::spec(format!("bench JSON: {e}")))?;
    let Some(JsonValue::Arr(kernels)) = doc.get("kernels") else {
        return Err(HarnessError::spec(
            "bench JSON has no \"kernels\" array — was it written by `cargo bench -p qce-bench`?",
        ));
    };
    let mut out = Vec::with_capacity(kernels.len());
    for kernel in kernels {
        let name = kernel
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| HarnessError::spec("bench kernel entry without a \"name\" string"))?
            .to_string();
        let num = |field: &str| {
            kernel
                .get(field)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| {
                    HarnessError::spec(format!("bench kernel {name:?}: missing number {field:?}"))
                })
        };
        out.push(BenchEntry {
            serial_ms: num("serial_ms")?,
            parallel_ms: num("parallel_ms")?,
            scalar_ms: kernel.get("scalar_ms").and_then(JsonValue::as_f64),
            simd_ms: kernel.get("simd_ms").and_then(JsonValue::as_f64),
            bitwise_identical: matches!(
                kernel.get("bitwise_identical"),
                Some(JsonValue::Bool(true))
            ),
            simd_bitwise_identical: match kernel.get("simd_bitwise_identical") {
                Some(JsonValue::Bool(b)) => Some(*b),
                _ => None,
            },
            name,
        });
    }
    Ok(out)
}

/// Gates `fresh` against `baseline`: every baseline kernel must still
/// exist, must not have regressed by more than `threshold` (relative,
/// on both serial and parallel time), and must still be bitwise
/// identical if the baseline was. Returns every violation (empty =
/// pass).
#[must_use]
pub fn bench_gate(fresh: &[BenchEntry], baseline: &[BenchEntry], threshold: f64) -> Vec<Violation> {
    let mut out = Vec::new();
    for base in baseline {
        let Some(now) = fresh.iter().find(|k| k.name == base.name) else {
            out.push(Violation {
                location: format!("kernel {:?}", base.name),
                detail: "present in baseline but missing from fresh bench output".to_string(),
            });
            continue;
        };
        // Scalar/SIMD pairs gate only when the baseline carries them:
        // a baseline blessed before the SIMD overhaul simply has no pair
        // to regress against, and a fresh run that *dropped* a pair the
        // baseline has is flagged as a missing measurement.
        let mut timed = vec![
            ("serial_ms", Some(base.serial_ms), Some(now.serial_ms)),
            ("parallel_ms", Some(base.parallel_ms), Some(now.parallel_ms)),
        ];
        if base.scalar_ms.is_some() {
            timed.push(("scalar_ms", base.scalar_ms, now.scalar_ms));
            timed.push(("simd_ms", base.simd_ms, now.simd_ms));
        }
        for (which, base_ms, now_ms) in timed {
            let Some(base_ms) = base_ms else { continue };
            let Some(now_ms) = now_ms else {
                out.push(Violation {
                    location: format!("kernel {:?} {which}", base.name),
                    detail: "measured in baseline but missing from fresh bench output".to_string(),
                });
                continue;
            };
            // Sub-threshold baselines (or zero, from a degenerate run)
            // can't support a meaningful relative gate.
            if base_ms <= 0.0 {
                continue;
            }
            let ratio = now_ms / base_ms;
            if ratio > 1.0 + threshold {
                out.push(Violation {
                    location: format!("kernel {:?} {which}", base.name),
                    detail: format!(
                        "{base_ms:.4} ms -> {now_ms:.4} ms ({:+.1}% > allowed +{:.0}%)",
                        (ratio - 1.0) * 100.0,
                        threshold * 100.0
                    ),
                });
            }
        }
        if base.bitwise_identical && !now.bitwise_identical {
            out.push(Violation {
                location: format!("kernel {:?}", base.name),
                detail: "serial/parallel outputs are no longer bitwise identical".to_string(),
            });
        }
        if base.simd_bitwise_identical == Some(true) && now.simd_bitwise_identical != Some(true) {
            out.push(Violation {
                location: format!("kernel {:?}", base.name),
                detail: "scalar/SIMD outputs are no longer bitwise identical".to_string(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, serial_ms: f64, parallel_ms: f64) -> BenchEntry {
        BenchEntry {
            name: name.to_string(),
            serial_ms,
            parallel_ms,
            scalar_ms: None,
            simd_ms: None,
            bitwise_identical: true,
            simd_bitwise_identical: None,
        }
    }

    fn simd_entry(name: &str, scalar_ms: f64, simd_ms: f64) -> BenchEntry {
        BenchEntry {
            scalar_ms: Some(scalar_ms),
            simd_ms: Some(simd_ms),
            simd_bitwise_identical: Some(true),
            ..entry(name, 1.0, 1.0)
        }
    }

    #[test]
    fn parses_the_real_bench_schema() {
        let body = r#"{
          "bench": "kernels",
          "threads": {"serial": 1, "parallel": 4},
          "kernels": [
            {"name": "matmul", "flops": 8, "serial_ms": 0.5, "parallel_ms": 0.2,
             "serial_gflops": 1.0, "bitwise_identical": true},
            {"name": "kmeans", "flops": 0, "serial_ms": 9.0, "parallel_ms": 8.0,
             "bitwise_identical": false}
          ]
        }"#;
        let kernels = parse_bench(body).unwrap();
        assert_eq!(kernels.len(), 2);
        assert_eq!(kernels[0].name, "matmul");
        assert!(kernels[0].bitwise_identical);
        assert!(!kernels[1].bitwise_identical);
        assert_eq!(kernels[1].serial_ms, 9.0);
    }

    #[test]
    fn malformed_bench_json_is_rejected() {
        assert!(parse_bench("{}").is_err());
        assert!(parse_bench(r#"{"kernels":[{"serial_ms":1}]}"#).is_err());
        assert!(parse_bench(r#"{"kernels":[{"name":"x","serial_ms":"fast"}]}"#).is_err());
    }

    #[test]
    fn within_threshold_passes_beyond_fails() {
        let baseline = vec![entry("matmul", 1.0, 0.5)];
        assert!(bench_gate(&[entry("matmul", 1.19, 0.59)], &baseline, 0.20).is_empty());
        let v = bench_gate(&[entry("matmul", 1.3, 0.5)], &baseline, 0.20);
        assert_eq!(v.len(), 1);
        assert!(v[0].to_string().contains("serial_ms"), "{}", v[0]);
    }

    #[test]
    fn faster_is_always_fine() {
        let baseline = vec![entry("matmul", 1.0, 0.5)];
        assert!(bench_gate(&[entry("matmul", 0.1, 0.05)], &baseline, 0.20).is_empty());
    }

    #[test]
    fn missing_kernel_fails_new_kernel_does_not() {
        let baseline = vec![entry("matmul", 1.0, 0.5)];
        let fresh = vec![entry("conv", 1.0, 0.5)];
        let v = bench_gate(&fresh, &baseline, 0.20);
        assert_eq!(v.len(), 1);
        assert!(v[0].to_string().contains("missing"), "{}", v[0]);
    }

    #[test]
    fn losing_bitwise_identity_fails() {
        let baseline = vec![entry("matmul", 1.0, 0.5)];
        let mut fresh = vec![entry("matmul", 1.0, 0.5)];
        fresh[0].bitwise_identical = false;
        let v = bench_gate(&fresh, &baseline, 0.20);
        assert_eq!(v.len(), 1);
        assert!(v[0].to_string().contains("bitwise"), "{}", v[0]);
    }

    #[test]
    fn zero_baseline_times_are_not_gated() {
        let baseline = vec![entry("warmup", 0.0, 0.0)];
        assert!(bench_gate(&[entry("warmup", 5.0, 5.0)], &baseline, 0.20).is_empty());
    }

    #[test]
    fn parses_scalar_simd_pairs_when_present() {
        let body = r#"{
          "kernels": [
            {"name": "matmul", "serial_ms": 0.16, "parallel_ms": 0.16,
             "scalar_ms": 0.31, "simd_ms": 0.16, "simd_level": "avx2",
             "bitwise_identical": true, "simd_bitwise_identical": true},
            {"name": "legacy", "serial_ms": 1.0, "parallel_ms": 1.0,
             "bitwise_identical": true}
          ]
        }"#;
        let kernels = parse_bench(body).unwrap();
        assert_eq!(kernels[0].scalar_ms, Some(0.31));
        assert_eq!(kernels[0].simd_ms, Some(0.16));
        assert_eq!(kernels[0].simd_bitwise_identical, Some(true));
        assert_eq!(kernels[1].scalar_ms, None);
        assert_eq!(kernels[1].simd_bitwise_identical, None);
    }

    #[test]
    fn simd_pair_regressions_are_gated() {
        let baseline = vec![simd_entry("matmul", 0.30, 0.16)];
        // Within threshold on every leg: pass.
        assert!(bench_gate(&[simd_entry("matmul", 0.33, 0.18)], &baseline, 0.20).is_empty());
        // SIMD leg regressed past the band: fail, naming simd_ms.
        let v = bench_gate(&[simd_entry("matmul", 0.30, 0.25)], &baseline, 0.20);
        assert_eq!(v.len(), 1);
        assert!(v[0].to_string().contains("simd_ms"), "{}", v[0]);
        // Scalar leg regressed: fail, naming scalar_ms.
        let v = bench_gate(&[simd_entry("matmul", 0.45, 0.16)], &baseline, 0.20);
        assert_eq!(v.len(), 1);
        assert!(v[0].to_string().contains("scalar_ms"), "{}", v[0]);
    }

    #[test]
    fn dropping_a_measured_pair_fails() {
        let baseline = vec![simd_entry("matmul", 0.30, 0.16)];
        let mut fresh = simd_entry("matmul", 0.30, 0.16);
        fresh.scalar_ms = None;
        fresh.simd_ms = None;
        let v = bench_gate(&[fresh], &baseline, 0.20);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.to_string().contains("missing")));
    }

    #[test]
    fn losing_simd_bitwise_identity_fails() {
        let baseline = vec![simd_entry("matmul", 0.30, 0.16)];
        let mut fresh = simd_entry("matmul", 0.30, 0.16);
        fresh.simd_bitwise_identical = Some(false);
        let v = bench_gate(&[fresh], &baseline, 0.20);
        assert_eq!(v.len(), 1);
        assert!(v[0].to_string().contains("scalar/SIMD"), "{}", v[0]);
    }

    #[test]
    fn pre_simd_baseline_does_not_gate_pairs() {
        // Baseline without pairs gates nothing pair-related, even when
        // the fresh run carries (arbitrarily slow) pair measurements.
        let baseline = vec![entry("matmul", 1.0, 1.0)];
        let fresh = vec![simd_entry("matmul", 1.0, 99.0)];
        assert!(bench_gate(&fresh, &baseline, 0.20).is_empty());
    }
}
