//! Scenario-driven end-to-end conformance harness for the qce
//! reproduction.
//!
//! The paper's claims are quantitative — accuracy, MAPE, SSIM,
//! recognized-image counts under 2–6-bit quantization (Tables I, III,
//! IV) — and every prior layer of this workspace promises something
//! exact: bit-for-bit determinism at any thread count, resilient decode
//! counts, cache bit-identity. This crate turns those promises into one
//! executable contract:
//!
//! 1. A [`Scenario`] is a declarative spec (dataset synthesis
//!    parameters, flow configuration, quantizer bit width, optional
//!    fault plan) stored as JSON and resolved through the existing
//!    [`AttackFlow`](qce::AttackFlow).
//! 2. Running a scenario emits a [`ConformanceReport`]: per-stage
//!    metrics (accuracy, MAPE, SSIM, decode Ok/Degraded/Failed counts),
//!    deterministic telemetry counters, and the
//!    [`qce-store`](qce_store) content digests of the released state.
//! 3. `check` diffs a fresh report against a *golden* report committed
//!    as a CRC-guarded QCES artifact — exact for digests and counts,
//!    epsilon-banded for floats (see [`Tolerances`]) — and fails on any
//!    violation. `bless` regenerates the goldens; `bless` followed by
//!    `check` is a fixed point.
//! 4. `bench-gate` compares a fresh `BENCH_kernels.json` against a
//!    committed baseline and fails on a throughput regression beyond
//!    the configured threshold (20% by default).
//!
//! The `harness` binary wires these into CI; see the README
//! "Conformance" section for the workflow and the tolerance table.
//!
//! # Example: bless and re-check in-process
//!
//! ```no_run
//! use qce_harness::{diff_reports, run_scenario, Scenario, Tolerances};
//!
//! # fn main() -> Result<(), qce_harness::HarnessError> {
//! let scenario = &Scenario::builtin()[0];
//! let golden = run_scenario(scenario)?;
//! let fresh = run_scenario(scenario)?;
//! let violations = diff_reports(&golden, &fresh, &Tolerances::for_scenario(scenario));
//! assert!(violations.is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod bench_gate;
mod diff;
mod leaderboard;
mod report;
mod runner;
mod scenario;

pub use bench_gate::{bench_gate, parse_bench, BenchEntry, DEFAULT_BENCH_THRESHOLD};
pub use diff::{diff_reports, Gate, Tolerances, Violation};
pub use leaderboard::{leaderboard_markdown, report_from_json, DEFENSE_STAGE_PREFIX};
pub use report::{
    golden_path, ConformanceReport, StageMetrics, CONFORMANCE_REPORT_SECTION, REPORT_FORMAT_VERSION,
};
pub use runner::{run_scenario, DETERMINISTIC_COUNTER_PREFIXES, RECOVERY_MAPE_CEILING};
pub use scenario::{DatasetKind, DatasetSpec, Scenario};

use std::path::Path;

/// Error type of the conformance harness.
#[derive(Debug)]
#[non_exhaustive]
pub enum HarnessError {
    /// Reading or writing a scenario, report or golden file failed.
    Io {
        /// What the harness was doing when the I/O failed.
        context: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A scenario or bench JSON document is malformed or has
    /// out-of-range fields.
    Spec {
        /// Why the document is rejected.
        reason: String,
    },
    /// Running the attack flow for a scenario failed.
    Flow(qce::FlowError),
    /// Dataset synthesis for a scenario failed.
    Data(qce_data::DataError),
    /// Reading or writing a golden artifact failed structurally.
    Store(qce_store::StoreError),
    /// A golden exists but cannot be used by this build (newer container
    /// or report format version, or unreadable payload) — the caller
    /// must regenerate it with `harness bless`.
    Rebless {
        /// Which golden is unusable.
        scenario: String,
        /// Why it is unusable.
        reason: String,
    },
}

impl HarnessError {
    /// An [`HarnessError::Io`] with context on what was being attempted.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        HarnessError::Io {
            context: context.into(),
            source,
        }
    }

    /// An [`HarnessError::Spec`] from any printable reason.
    pub fn spec(reason: impl Into<String>) -> Self {
        HarnessError::Spec {
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Io { context, source } => write!(f, "{context}: {source}"),
            HarnessError::Spec { reason } => write!(f, "invalid spec: {reason}"),
            HarnessError::Flow(e) => write!(f, "scenario flow failed: {e}"),
            HarnessError::Data(e) => write!(f, "scenario dataset failed: {e}"),
            HarnessError::Store(e) => write!(f, "golden artifact: {e}"),
            HarnessError::Rebless { scenario, reason } => write!(
                f,
                "golden for scenario {scenario:?} is unusable ({reason}); if the format \
                 change is intentional, regenerate goldens with `harness bless`"
            ),
        }
    }
}

impl std::error::Error for HarnessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HarnessError::Io { source, .. } => Some(source),
            HarnessError::Flow(e) => Some(e),
            HarnessError::Data(e) => Some(e),
            HarnessError::Store(e) => Some(e),
            HarnessError::Spec { .. } | HarnessError::Rebless { .. } => None,
        }
    }
}

impl From<qce::FlowError> for HarnessError {
    fn from(e: qce::FlowError) -> Self {
        HarnessError::Flow(e)
    }
}

impl From<qce_data::DataError> for HarnessError {
    fn from(e: qce_data::DataError) -> Self {
        HarnessError::Data(e)
    }
}

impl From<qce_store::StoreError> for HarnessError {
    fn from(e: qce_store::StoreError) -> Self {
        HarnessError::Store(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, HarnessError>;

/// Loads every `*.json` scenario under `dir`, sorted by file name so
/// runs are deterministic.
///
/// # Errors
///
/// [`HarnessError::Io`] when the directory is unreadable,
/// [`HarnessError::Spec`] when any scenario fails to parse.
pub fn load_scenarios(dir: &Path) -> Result<Vec<Scenario>> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| HarnessError::io(format!("reading scenario dir {}", dir.display()), e))?;
    let mut paths: Vec<_> = entries
        .filter_map(std::result::Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let body = std::fs::read_to_string(&path)
            .map_err(|e| HarnessError::io(format!("reading scenario {}", path.display()), e))?;
        let scenario = Scenario::from_json(&body)
            .map_err(|e| HarnessError::spec(format!("{}: {e}", path.display())))?;
        out.push(scenario);
    }
    Ok(out)
}

/// Loads the golden report for `scenario` from `golden_dir`, mapping
/// every unusable-golden shape (missing file, damaged container, newer
/// format version, undecodable payload) to a diagnostic that names the
/// remedy.
///
/// # Errors
///
/// [`HarnessError::Rebless`] for anything that `harness bless` would
/// fix; [`HarnessError::Io`] only for non-recoverable I/O problems.
pub fn load_golden(scenario: &Scenario, golden_dir: &Path) -> Result<ConformanceReport> {
    ConformanceReport::read_golden(golden_dir, &scenario.name)
}
