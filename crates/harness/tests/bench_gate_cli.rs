//! CLI-level checks of `harness bench-gate`: a failing gate must be
//! able to *explain itself* — when the caller hands over the baseline
//! and fresh `QCE_TRACE` streams, the failure output names the specific
//! span whose time moved, not just the kernel number that tripped.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bench_json(quantize_ms: f64) -> String {
    format!(
        r#"{{"kernels":[{{"name":"quantize","serial_ms":{quantize_ms},"parallel_ms":{quantize_ms},"bitwise_identical":true}}]}}"#
    )
}

/// One root span per label, laid out sequentially; `dur` in microseconds.
fn trace_jsonl(stages: &[(&str, u64)]) -> String {
    let mut out = String::new();
    let mut t = 0u64;
    let mut seq = 0u64;
    for (i, (name, dur)) in stages.iter().enumerate() {
        let id = i as u64 + 1;
        out.push_str(&format!(
            "{{\"ev\":\"span_start\",\"id\":{id},\"name\":\"{name}\",\"thread\":\"main\",\"seq\":{seq},\"t_us\":{t}}}\n"
        ));
        seq += 1;
        t += dur;
        out.push_str(&format!(
            "{{\"ev\":\"span_end\",\"id\":{id},\"name\":\"{name}\",\"dur_us\":{dur},\"seq\":{seq},\"t_us\":{t}}}\n"
        ));
        seq += 1;
    }
    out
}

fn write(dir: &Path, name: &str, body: &str) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, body).unwrap();
    path
}

#[test]
fn failing_gate_names_the_regressing_span() {
    let dir = std::env::temp_dir().join(format!("qce-bench-gate-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let baseline = write(&dir, "baseline.json", &bench_json(10.0));
    // 3× slower than baseline: far past any sane threshold.
    let fresh = write(&dir, "fresh.json", &bench_json(30.0));
    let trace_base = write(
        &dir,
        "base.jsonl",
        &trace_jsonl(&[("flow.train", 40_000), ("flow.quantize", 5_000)]),
    );
    // The doctored fresh trace slows exactly one stage.
    let trace_fresh = write(
        &dir,
        "fresh.jsonl",
        &trace_jsonl(&[("flow.train", 40_000), ("flow.quantize", 45_000)]),
    );

    let out = Command::new(env!("CARGO_BIN_EXE_harness"))
        .args([
            "bench-gate",
            "--fresh",
            fresh.to_str().unwrap(),
            "--baseline",
            baseline.to_str().unwrap(),
            "--trace-fresh",
            trace_fresh.to_str().unwrap(),
            "--trace-baseline",
            trace_base.to_str().unwrap(),
        ])
        .output()
        .expect("run harness bench-gate");
    let stderr = String::from_utf8_lossy(&out.stderr);

    assert_eq!(out.status.code(), Some(1), "stderr:\n{stderr}");
    assert!(stderr.contains("FAIL bench"), "stderr:\n{stderr}");
    // Span-level attribution rides along with the gate verdict, naming
    // the stage that actually moved.
    assert!(
        stderr.contains("top regression: flow.quantize"),
        "stderr:\n{stderr}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unreadable_trace_warns_but_keeps_the_gate_verdict() {
    let dir = std::env::temp_dir().join(format!("qce-bench-gate-cli-warn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let baseline = write(&dir, "baseline.json", &bench_json(10.0));
    let fresh = write(&dir, "fresh.json", &bench_json(30.0));

    let out = Command::new(env!("CARGO_BIN_EXE_harness"))
        .args([
            "bench-gate",
            "--fresh",
            fresh.to_str().unwrap(),
            "--baseline",
            baseline.to_str().unwrap(),
            "--trace-fresh",
            dir.join("missing.jsonl").to_str().unwrap(),
            "--trace-baseline",
            dir.join("also-missing.jsonl").to_str().unwrap(),
        ])
        .output()
        .expect("run harness bench-gate");
    let stderr = String::from_utf8_lossy(&out.stderr);

    // The gate verdict is decided by the bench numbers alone (exit 1,
    // not the usage/runtime error code 2).
    assert_eq!(out.status.code(), Some(1), "stderr:\n{stderr}");
    assert!(
        stderr.contains("skipping span attribution"),
        "stderr:\n{stderr}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
