//! End-to-end conformance contract: bless → check is a fixed point,
//! every gate actually gates, and unusable goldens ask for a re-bless
//! instead of panicking.
//!
//! Flow runs share the process-global telemetry registry, so every run
//! goes through [`run_once`]/[`run_fresh`], which serialize on one mutex
//! and cache the expensive reports in `OnceLock`s.

use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

use qce::faults::{FaultKind, FaultPlan};
use qce_harness::{
    diff_reports, golden_path, run_scenario, ConformanceReport, HarnessError, Scenario, Tolerances,
    REPORT_FORMAT_VERSION,
};
use qce_store::{section_kind, Artifact};

static FLOW_LOCK: Mutex<()> = Mutex::new(());

fn tiny_scenario() -> Scenario {
    let mut scenario = Scenario::builtin()[0].clone();
    scenario.name = "tiny_check".to_string();
    scenario.dataset.count = 96;
    scenario.flow.epochs = 1;
    scenario
}

fn faulted_scenario() -> Scenario {
    let mut scenario = tiny_scenario();
    scenario.name = "tiny_faulted".to_string();
    scenario.fault = Some(
        FaultPlan::new(11)
            .with(FaultKind::BitFlip { rate: 0.002 })
            .with(FaultKind::GaussianNoise { fraction: 0.02 }),
    );
    scenario
}

fn run_fresh(scenario: &Scenario) -> ConformanceReport {
    let _guard = FLOW_LOCK.lock().unwrap();
    // A warm stage cache would skip stages and change the counters.
    std::env::remove_var(qce_store::CACHE_ENV);
    run_scenario(scenario).expect("scenario runs")
}

fn run_once(scenario: &Scenario, slot: &'static OnceLock<ConformanceReport>) -> ConformanceReport {
    slot.get_or_init(|| run_fresh(scenario)).clone()
}

fn tiny_report() -> ConformanceReport {
    static SLOT: OnceLock<ConformanceReport> = OnceLock::new();
    run_once(&tiny_scenario(), &SLOT)
}

fn faulted_report() -> ConformanceReport {
    static SLOT: OnceLock<ConformanceReport> = OnceLock::new();
    run_once(&faulted_scenario(), &SLOT)
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qce_conformance_{tag}_{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn bless_then_check_is_a_fixed_point() {
    let scenario = tiny_scenario();
    let golden = tiny_report();
    let dir = tempdir("fixed_point");
    golden.write_golden(&dir).unwrap();
    let reloaded = ConformanceReport::read_golden(&dir, &scenario.name).unwrap();
    assert_eq!(reloaded, golden, "golden round-trips bit-for-bit");

    let fresh = run_fresh(&scenario);
    let violations = diff_reports(&reloaded, &fresh, &Tolerances::for_scenario(&scenario));
    assert!(violations.is_empty(), "{violations:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn repeated_runs_are_identical_including_digests_and_counters() {
    let golden = tiny_report();
    let fresh = run_fresh(&tiny_scenario());
    // Strip the one observational metric; everything else must be
    // bit-identical between back-to-back runs.
    let gated = |report: &ConformanceReport| {
        report
            .stages
            .iter()
            .map(|s| {
                let mut s = s.clone();
                s.metrics.retain(|(n, _)| n != "wall_ms");
                s
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(gated(&fresh), gated(&golden));
    assert_eq!(fresh.digests, golden.digests);
    assert_eq!(fresh.counters, golden.counters);
    assert!(!fresh.digests.is_empty(), "digests are present");
    assert!(!fresh.counters.is_empty(), "counters are present");
}

#[test]
fn report_has_the_expected_shape() {
    let report = tiny_report();
    assert_eq!(report.version, REPORT_FORMAT_VERSION);
    assert_eq!(report.scenario, "tiny_check");
    assert_eq!(report.stages.len(), 2, "uncompressed + quantized");
    let digest_names: Vec<&str> = report.digests.iter().map(|(n, _)| n.as_str()).collect();
    assert!(
        digest_names.contains(&"release.weights"),
        "{digest_names:?}"
    );
    assert!(digest_names.contains(&"select.indices"), "{digest_names:?}");
    let quant_stage = &report.stages[1];
    assert!(quant_stage.get("compression_ratio").is_some());
    assert!(quant_stage.get("images").unwrap() > 0.0);
}

#[test]
fn metric_flip_beyond_tolerance_fails_the_check() {
    let scenario = tiny_scenario();
    let golden = tiny_report();
    let fresh = tiny_report();
    let tol = Tolerances::for_scenario(&scenario);

    let mut drifted = fresh.clone();
    for (name, value) in &mut drifted.stages[0].metrics {
        if name == "accuracy" {
            *value += 0.5;
        }
    }
    let violations = diff_reports(&golden, &drifted, &tol);
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert!(violations[0].to_string().contains("accuracy"));

    // A count flip of exactly 1 must also fail: counts gate exactly.
    let mut miscounted = fresh.clone();
    for (name, value) in &mut miscounted.stages[1].metrics {
        if name == "images" {
            *value += 1.0;
        }
    }
    assert!(!diff_reports(&golden, &miscounted, &tol).is_empty());
}

#[test]
fn drift_within_tolerance_passes() {
    let scenario = tiny_scenario();
    let golden = tiny_report();
    let mut fresh = tiny_report();
    for (name, value) in &mut fresh.stages[0].metrics {
        if name == "accuracy" {
            *value += 0.01; // band is 0.02
        }
    }
    assert!(diff_reports(&golden, &fresh, &Tolerances::for_scenario(&scenario)).is_empty());
}

#[test]
fn digest_perturbation_fails_the_check() {
    let scenario = tiny_scenario();
    let golden = tiny_report();
    let mut fresh = tiny_report();
    fresh.digests[0].1 ^= 1;
    let violations = diff_reports(&golden, &fresh, &Tolerances::for_scenario(&scenario));
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert!(violations[0].to_string().contains(&fresh.digests[0].0));
}

#[test]
fn faulted_scenario_reports_decode_statuses() {
    let report = faulted_report();
    assert_eq!(report.stages.len(), 3, "uncompressed + quantized + faulted");
    let faulted = &report.stages[2];
    assert_eq!(faulted.label, "faulted");
    let images = faulted.get("images").unwrap();
    let ok = faulted.get("ok").unwrap();
    let degraded = faulted.get("degraded").unwrap();
    let failed = faulted.get("failed").unwrap();
    assert_eq!(ok + degraded + failed, images, "statuses partition images");
    assert!(images > 0.0);
}

#[test]
fn faulted_golden_round_trips_and_checks_clean() {
    let scenario = faulted_scenario();
    let golden = faulted_report();
    let dir = tempdir("faulted_golden");
    golden.write_golden(&dir).unwrap();
    let reloaded = ConformanceReport::read_golden(&dir, &scenario.name).unwrap();
    let violations = diff_reports(&reloaded, &golden, &Tolerances::for_scenario(&scenario));
    assert!(violations.is_empty(), "{violations:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn newer_container_version_asks_for_rebless() {
    let golden = tiny_report();
    let dir = tempdir("newer_container");
    let path = golden.write_golden(&dir).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let newer = qce_store::FORMAT_VERSION + 1;
    bytes[4..6].copy_from_slice(&newer.to_le_bytes());
    std::fs::write(&path, bytes).unwrap();

    let err = ConformanceReport::read_golden(&dir, &golden.scenario).unwrap_err();
    let msg = err.to_string();
    assert!(matches!(err, HarnessError::Rebless { .. }), "{msg}");
    assert!(msg.contains("newer"), "{msg}");
    assert!(msg.contains("bless"), "{msg}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn newer_payload_version_asks_for_rebless() {
    let golden = tiny_report();
    let dir = tempdir("newer_payload");
    let mut payload = golden.to_payload();
    payload[0..2].copy_from_slice(&(REPORT_FORMAT_VERSION + 1).to_le_bytes());
    let mut artifact = Artifact::new();
    artifact.push(section_kind::DOWNSTREAM_BASE + 0x10, payload);
    artifact
        .write_file(golden_path(&dir, &golden.scenario))
        .unwrap();

    let err = ConformanceReport::read_golden(&dir, &golden.scenario).unwrap_err();
    let msg = err.to_string();
    assert!(matches!(err, HarnessError::Rebless { .. }), "{msg}");
    assert!(msg.contains("version"), "{msg}");
    assert!(msg.contains("bless"), "{msg}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_golden_asks_for_rebless_instead_of_panicking() {
    let golden = tiny_report();
    let dir = tempdir("corrupt_golden");
    let path = golden.write_golden(&dir).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();
    let err = ConformanceReport::read_golden(&dir, &golden.scenario).unwrap_err();
    assert!(matches!(err, HarnessError::Rebless { .. }), "{err}");

    // Truncation (e.g. an interrupted download) is equally non-fatal.
    std::fs::write(&path, &bytes[..mid]).unwrap();
    let err = ConformanceReport::read_golden(&dir, &golden.scenario).unwrap_err();
    assert!(matches!(err, HarnessError::Rebless { .. }), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn committed_scenario_specs_parse_and_match_builtins() {
    // The committed conformance/scenarios/*.json are generated by
    // `harness init`; they must stay in sync with `Scenario::builtin()`
    // so `check` in CI runs exactly what the goldens were blessed from.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../conformance/scenarios");
    let loaded = qce_harness::load_scenarios(&dir).expect("committed scenarios parse");
    let builtin = Scenario::builtin();
    assert_eq!(
        loaded.len(),
        builtin.len(),
        "conformance/scenarios is out of sync with Scenario::builtin()"
    );
    for scenario in &builtin {
        assert!(
            loaded.contains(scenario),
            "committed spec for {:?} drifted from the builtin definition; \
             re-run `harness init`",
            scenario.name
        );
    }
}
