//! Property-based tests of the attack primitives (DESIGN.md §6).

use proptest::prelude::*;
use qce_attack::correlation::{correlation, correlation_penalty, SignConvention};
use qce_attack::{ecc, lsb, sign};

fn theta_strategy() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1.0f32..1.0, 8..128)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn penalty_bounded_by_lambda(theta in theta_strategy(), lambda in 0.0f32..20.0, seed in 0u64..100) {
        let mut rng = qce_tensor::init::seeded_rng(seed);
        use rand::RngExt;
        let s: Vec<f32> = (0..theta.len()).map(|_| rng.random_range(0.0f32..256.0)).collect();
        for conv in [SignConvention::Positive, SignConvention::Absolute] {
            let (c, grad) = correlation_penalty(&theta, &s, lambda, conv);
            prop_assert!(c.abs() <= lambda + 1e-4);
            prop_assert_eq!(grad.len(), theta.len());
            prop_assert!(grad.iter().all(|g| g.is_finite()));
        }
    }

    #[test]
    fn absolute_penalty_is_never_positive(theta in theta_strategy(), seed in 0u64..100) {
        let mut rng = qce_tensor::init::seeded_rng(seed);
        use rand::RngExt;
        let s: Vec<f32> = (0..theta.len()).map(|_| rng.random_range(0.0f32..256.0)).collect();
        let (c, _) = correlation_penalty(&theta, &s, 5.0, SignConvention::Absolute);
        prop_assert!(c <= 1e-6, "absolute penalty {c} must be <= 0");
    }

    #[test]
    fn penalty_invariant_to_affine_s(
        theta in theta_strategy(),
        scale in 0.01f32..10.0,
        shift in -100.0f32..100.0,
        seed in 0u64..100,
    ) {
        let mut rng = qce_tensor::init::seeded_rng(seed);
        use rand::RngExt;
        let s: Vec<f32> = (0..theta.len()).map(|_| rng.random_range(0.0f32..256.0)).collect();
        let s2: Vec<f32> = s.iter().map(|&p| scale * p + shift).collect();
        let (c1, _) = correlation_penalty(&theta, &s, 3.0, SignConvention::Positive);
        let (c2, _) = correlation_penalty(&theta, &s2, 3.0, SignConvention::Positive);
        prop_assert!((c1 - c2).abs() < 1e-3, "{c1} vs {c2}");
    }

    #[test]
    fn gradient_matches_finite_difference(seed in 0u64..300) {
        let mut rng = qce_tensor::init::seeded_rng(seed);
        use rand::RngExt;
        let n = 24;
        let mut theta: Vec<f32> = (0..n)
            .map(|_| qce_tensor::init::standard_normal(&mut rng) * 0.3)
            .collect();
        let s: Vec<f32> = (0..n).map(|_| rng.random_range(0.0f32..256.0)).collect();
        prop_assume!(qce_tensor::stats::std_dev(&theta) > 1e-3);
        let (_, grad) = correlation_penalty(&theta, &s, 2.0, SignConvention::Positive);
        let probe = (seed as usize) % n;
        let eps = 1e-3;
        let orig = theta[probe];
        theta[probe] = orig + eps;
        let (hi, _) = correlation_penalty(&theta, &s, 2.0, SignConvention::Positive);
        theta[probe] = orig - eps;
        let (lo, _) = correlation_penalty(&theta, &s, 2.0, SignConvention::Positive);
        let fd = (hi - lo) / (2.0 * eps);
        prop_assert!((fd - grad[probe]).abs() < 2e-3, "fd {fd} vs analytic {}", grad[probe]);
    }

    #[test]
    fn perfectly_affine_weights_have_unit_correlation(
        s in prop::collection::vec(0.0f32..256.0, 8..64),
        scale in 0.001f32..0.1,
        offset in -1.0f32..1.0,
    ) {
        prop_assume!(qce_tensor::stats::std_dev(&s) > 1.0);
        let theta: Vec<f32> = s.iter().map(|&p| scale * p + offset).collect();
        prop_assert!((correlation(&theta, &s) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn lsb_round_trip(payload in prop::collection::vec(any::<u8>(), 1..64), bits in 1u32..9) {
        let needed = payload.len() * 8 / bits as usize + 1;
        let mut rng = qce_tensor::init::seeded_rng(7);
        let mut weights: Vec<f32> = (0..needed)
            .map(|_| qce_tensor::init::standard_normal(&mut rng) * 0.2)
            .collect();
        lsb::embed(&mut weights, &payload, bits).unwrap();
        let extracted = lsb::extract(&weights, bits, payload.len()).unwrap();
        prop_assert_eq!(extracted, payload);
    }

    #[test]
    fn ecc_round_trips_under_designed_flip_budget(
        payload in prop::collection::vec(any::<u8>(), 1..24),
        use_hamming in any::<bool>(),
        wide in any::<bool>(),
        start_pick in 0usize..10_000,
        len_pick in 0usize..10_000,
    ) {
        let code = if use_hamming {
            ecc::Ecc::Hamming74
        } else {
            ecc::Ecc::Repetition { copies: if wide { 5 } else { 3 } }
        };
        let frame_bits = (payload.len() + 4) * 8;
        // The designed budget: a contiguous burst short enough that no
        // frame bit loses its majority (repetition) and no codeword takes
        // two hits (Hamming).
        let budget = match code {
            ecc::Ecc::Repetition { .. } => frame_bits,
            ecc::Ecc::Hamming74 => frame_bits / 4,
        };
        let mut coded = ecc::encode(&payload, &code).unwrap();
        let coded_bits = coded.len() * 8;
        let burst_len = len_pick % budget + 1;
        let start = start_pick % (coded_bits - burst_len);
        for bit in start..start + burst_len {
            coded[bit / 8] ^= 1 << (bit % 8);
        }
        let (recovered, report) = ecc::decode(&coded, payload.len(), &code).unwrap();
        prop_assert_eq!(recovered, payload);
        prop_assert!(report.crc_ok, "CRC must confirm recovery within budget");
    }

    #[test]
    fn sign_payload_round_trip(payload in prop::collection::vec(any::<u8>(), 1..32)) {
        let signs = sign::payload_to_signs(&payload);
        prop_assert_eq!(signs.len(), payload.len() * 8);
        let extracted = sign::extract(&signs, payload.len()).unwrap();
        prop_assert!((sign::sign_agreement(&signs, &payload) - 1.0).abs() < 1e-9);
        prop_assert_eq!(extracted, payload);
    }
}
