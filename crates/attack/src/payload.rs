//! Arbitrary byte payloads through the correlation channel.
//!
//! The paper evaluates on images, but the threat model's examples include
//! "clients' identity images, personal medical records, credit card
//! numbers" — any byte stream. Since the correlation codec treats its
//! secret as a stream of values in `[0, 255]`, arbitrary bytes ride the
//! exact same machinery: these helpers wrap a byte payload as a sequence
//! of 1-row [`Image`]s so [`EncodingLayout`](crate::EncodingLayout),
//! [`CorrelationRegularizer`](crate::CorrelationRegularizer) and
//! [`Decoder`](crate::Decoder) work unchanged, and unwrap the decoded
//! result back into bytes.
//!
//! One caveat the tests pin down: unlike images (judged perceptually),
//! bytes are judged exactly, and an analog channel delivers *near* values
//! — so the right encoding for byte-exact payloads spreads each byte's
//! bits across the value range or adds redundancy. [`byte_error_rate`]
//! and [`mean_byte_error`] quantify the raw channel; the `attacks`
//! integration test shows ~1–3 units of mean absolute error, i.e. the
//! channel leaks ~6 of 8 bits per byte verbatim.

use qce_data::Image;

use crate::{AttackError, Result};

/// Wraps a byte payload as `1 × chunk` grayscale images (the last chunk
/// zero-padded), ready to be planned into an
/// [`EncodingLayout`](crate::EncodingLayout).
///
/// # Errors
///
/// Returns [`AttackError::InconsistentImages`] for an empty payload or
/// zero chunk size.
///
/// # Examples
///
/// ```
/// use qce_attack::payload;
///
/// # fn main() -> Result<(), qce_attack::AttackError> {
/// let targets = payload::bytes_as_targets(b"attack at dawn", 8)?;
/// assert_eq!(targets.len(), 2); // 14 bytes -> two 8-byte chunks
/// assert_eq!(payload::targets_as_bytes(&targets, 14), b"attack at dawn");
/// # Ok(())
/// # }
/// ```
pub fn bytes_as_targets(data: &[u8], chunk: usize) -> Result<Vec<Image>> {
    if data.is_empty() || chunk == 0 {
        return Err(AttackError::InconsistentImages {
            reason: "payload and chunk size must be non-empty".to_string(),
        });
    }
    let mut out = Vec::with_capacity(data.len().div_ceil(chunk));
    for piece in data.chunks(chunk) {
        let mut bytes = piece.to_vec();
        bytes.resize(chunk, 0);
        out.push(
            Image::new(bytes, 1, 1, chunk).map_err(|e| AttackError::InconsistentImages {
                reason: format!("payload chunk: {e}"),
            })?,
        );
    }
    Ok(out)
}

/// Reassembles the first `len` bytes from decoded target chunks (the
/// inverse of [`bytes_as_targets`], applied to the decoder's output in
/// target order).
pub fn targets_as_bytes(targets: &[Image], len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    for img in targets {
        out.extend_from_slice(img.pixels());
        if out.len() >= len {
            break;
        }
    }
    out.truncate(len);
    out
}

/// Fraction of byte positions recovered exactly.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn byte_error_rate(original: &[u8], recovered: &[u8]) -> f64 {
    assert_eq!(original.len(), recovered.len());
    if original.is_empty() {
        return 0.0;
    }
    let wrong = original
        .iter()
        .zip(recovered.iter())
        .filter(|(a, b)| a != b)
        .count();
    wrong as f64 / original.len() as f64
}

/// Mean absolute difference per byte — the analog channel's noise level
/// (a mean error of 2 means ~6 of 8 bits per byte recovered).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mean_byte_error(original: &[u8], recovered: &[u8]) -> f64 {
    assert_eq!(original.len(), recovered.len());
    if original.is_empty() {
        return 0.0;
    }
    original
        .iter()
        .zip(recovered.iter())
        .map(|(&a, &b)| (i16::from(a) - i16::from(b)).unsigned_abs() as f64)
        .sum::<f64>()
        / original.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_unwrap_round_trip() {
        let data: Vec<u8> = (0..100).map(|i| (i * 37) as u8).collect();
        let targets = bytes_as_targets(&data, 16).unwrap();
        assert_eq!(targets.len(), 7); // ceil(100/16)
        assert_eq!(targets[0].num_pixels(), 16);
        assert_eq!(targets_as_bytes(&targets, 100), data);
    }

    #[test]
    fn last_chunk_padded_with_zeros() {
        let targets = bytes_as_targets(&[1, 2, 3], 2).unwrap();
        assert_eq!(targets[1].pixels(), &[3, 0]);
    }

    #[test]
    fn error_metrics() {
        assert_eq!(byte_error_rate(&[1, 2, 3], &[1, 2, 3]), 0.0);
        assert!((byte_error_rate(&[1, 2, 3], &[1, 0, 3]) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(mean_byte_error(&[10, 20], &[12, 17]), 2.5);
        assert_eq!(byte_error_rate(&[], &[]), 0.0);
        assert_eq!(mean_byte_error(&[], &[]), 0.0);
    }

    #[test]
    fn validation() {
        assert!(bytes_as_targets(&[], 4).is_err());
        assert!(bytes_as_targets(&[1], 0).is_err());
    }
}
