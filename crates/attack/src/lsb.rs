//! The LSB encoding attack of §II-B: after training, overwrite the least
//! significant mantissa bits of the released `f32` parameters with the
//! secret payload.
//!
//! It needs no training-time cooperation and is capacity-rich, but — as
//! the paper notes and the `ablations` bench measures — *any* quantization
//! of the released weights wipes the mantissa bits and with them the
//! payload, which is precisely why the correlation attack exists.

use crate::{AttackError, Result};

/// Number of payload bits that fit in `num_weights` carriers at
/// `bits_per_weight` bits each.
pub fn capacity_bits(num_weights: usize, bits_per_weight: u32) -> usize {
    num_weights * bits_per_weight as usize
}

fn check_bits(bits_per_weight: u32) -> Result<()> {
    // More than 16 mantissa bits visibly perturbs the weights; the attack
    // stays in the "model accuracy unchanged" regime below that.
    if bits_per_weight == 0 || bits_per_weight > 16 {
        return Err(AttackError::InvalidGroups {
            reason: format!("bits_per_weight {bits_per_weight} outside 1..=16"),
        });
    }
    Ok(())
}

/// Embeds `payload` into the low mantissa bits of `weights`, in place.
///
/// # Errors
///
/// Returns [`AttackError::PayloadTooLarge`] if the payload does not fit,
/// or [`AttackError::InvalidGroups`] for an unusable `bits_per_weight`.
///
/// # Examples
///
/// ```
/// use qce_attack::lsb;
///
/// # fn main() -> Result<(), qce_attack::AttackError> {
/// let mut weights = vec![0.1f32; 64];
/// lsb::embed(&mut weights, b"secret!!", 1)?;
/// assert_eq!(lsb::extract(&weights, 1, 8)?, b"secret!!");
/// # Ok(())
/// # }
/// ```
pub fn embed(weights: &mut [f32], payload: &[u8], bits_per_weight: u32) -> Result<()> {
    check_bits(bits_per_weight)?;
    let needed = payload.len() * 8;
    let capacity = capacity_bits(weights.len(), bits_per_weight);
    if needed > capacity {
        return Err(AttackError::PayloadTooLarge {
            capacity_bits: capacity,
            needed_bits: needed,
        });
    }
    let mask = (1u32 << bits_per_weight) - 1;
    let mut bit_pos = 0usize;
    for w in weights.iter_mut() {
        if bit_pos >= needed {
            break;
        }
        let mut chunk = 0u32;
        for b in 0..bits_per_weight {
            let pos = bit_pos + b as usize;
            if pos < needed && (payload[pos / 8] >> (pos % 8)) & 1 == 1 {
                chunk |= 1 << b;
            }
        }
        let bits = w.to_bits() & !mask | chunk;
        *w = f32::from_bits(bits);
        bit_pos += bits_per_weight as usize;
    }
    Ok(())
}

/// Extracts `payload_len` bytes previously embedded with [`embed`].
///
/// # Errors
///
/// Returns [`AttackError::PayloadTooLarge`] if the carrier is too short,
/// or [`AttackError::InvalidGroups`] for an unusable `bits_per_weight`.
pub fn extract(weights: &[f32], bits_per_weight: u32, payload_len: usize) -> Result<Vec<u8>> {
    check_bits(bits_per_weight)?;
    let needed = payload_len * 8;
    let capacity = capacity_bits(weights.len(), bits_per_weight);
    if needed > capacity {
        return Err(AttackError::PayloadTooLarge {
            capacity_bits: capacity,
            needed_bits: needed,
        });
    }
    let mut payload = vec![0u8; payload_len];
    let mut bit_pos = 0usize;
    'outer: for w in weights {
        let bits = w.to_bits();
        for b in 0..bits_per_weight {
            if bit_pos >= needed {
                break 'outer;
            }
            if (bits >> b) & 1 == 1 {
                payload[bit_pos / 8] |= 1 << (bit_pos % 8);
            }
            bit_pos += 1;
        }
    }
    Ok(payload)
}

/// Fraction of payload bits recovered correctly — the attack's survival
/// metric under weight transformations (1.0 = intact, ~0.5 = destroyed).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn bit_recovery_rate(original: &[u8], recovered: &[u8]) -> f64 {
    assert_eq!(original.len(), recovered.len());
    if original.is_empty() {
        return 1.0;
    }
    let total = original.len() * 8;
    let wrong: u32 = original
        .iter()
        .zip(recovered.iter())
        .map(|(&a, &b)| (a ^ b).count_ones())
        .sum();
    1.0 - wrong as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn carrier(n: usize) -> Vec<f32> {
        let mut rng = qce_tensor::init::seeded_rng(1);
        (0..n)
            .map(|_| qce_tensor::init::standard_normal(&mut rng) * 0.1)
            .collect()
    }

    #[test]
    fn round_trip_various_widths() {
        let payload: Vec<u8> = (0..32).map(|i| (i * 37) as u8).collect();
        for bits in [1u32, 2, 4, 8, 16] {
            let mut w = carrier(300);
            embed(&mut w, &payload, bits).unwrap();
            let back = extract(&w, bits, payload.len()).unwrap();
            assert_eq!(back, payload, "bits={bits}");
        }
    }

    #[test]
    fn embedding_barely_changes_weights() {
        let orig = carrier(200);
        let mut w = orig.clone();
        embed(&mut w, &[0xFFu8; 25], 4).unwrap();
        for (a, b) in orig.iter().zip(w.iter()) {
            // 4 mantissa LSBs shift a float by a relative ~2^-19.
            assert!((a - b).abs() <= a.abs() * 1e-4 + 1e-9);
        }
    }

    #[test]
    fn quantization_destroys_lsb_payload() {
        let payload: Vec<u8> = (0..64).map(|i| (i * 73 + 11) as u8).collect();
        let mut w = carrier(2048);
        embed(&mut w, &payload, 2).unwrap();
        // Simulate 8-bit uniform quantization of the released weights.
        let lo = w.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = w.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let q: Vec<f32> = w
            .iter()
            .map(|&x| {
                let t = ((x - lo) / (hi - lo) * 255.0).round();
                lo + t / 255.0 * (hi - lo)
            })
            .collect();
        let back = extract(&q, 2, payload.len()).unwrap();
        let rate = bit_recovery_rate(&payload, &back);
        assert!(rate < 0.7, "LSB payload should not survive, rate={rate}");
    }

    #[test]
    fn capacity_checked() {
        let mut w = carrier(8); // 8 bits at 1 bpw
        assert!(embed(&mut w, &[0u8, 1u8], 1).is_err());
        assert!(extract(&w, 1, 2).is_err());
        assert!(embed(&mut w, &[0u8], 0).is_err());
        assert!(embed(&mut w, &[0u8], 17).is_err());
    }

    #[test]
    fn recovery_rate_bounds() {
        assert_eq!(bit_recovery_rate(&[0xAA], &[0xAA]), 1.0);
        assert_eq!(bit_recovery_rate(&[0xFF], &[0x00]), 0.0);
        assert_eq!(bit_recovery_rate(&[], &[]), 1.0);
    }
}
