//! Rotation-invariant sign/magnitude statistics channel — the attacker's
//! answer to symmetry defenses.
//!
//! The correlation channel of [`crate::correlation`] addresses pixels by
//! *weight position*, so a defender who re-parameterizes the network with
//! an exact ReLU symmetry (a compensated hidden-channel permutation, see
//! `qce-defense`) scrambles every image without moving accuracy at all.
//! This channel encodes into statistics that survive that symmetry:
//!
//! * **Carrier unit = sign of a group mean.** Each payload bit is the
//!   sign of the mean of [`GROUP_WEIGHTS`] consecutive weights inside one
//!   *encoding row*. A compensated permutation moves whole rows (or whole
//!   per-channel chunks), never individual weights, so groups travel
//!   intact and every bit survives — only the row *order* is lost.
//! * **Row order is re-learned from headers.** The first [`HEADER_BITS`]
//!   groups of every row spell the row's logical index, so the decoder
//!   recovers the permutation by reading the headers back, with a greedy
//!   stable fallback for rows whose header was damaged.
//! * **Global sign flips are voted away.** A defense (or an `Absolute`
//!   release convention) may invert every carrier sign at once; the
//!   decoder tries both polarities per tensor and keeps the one under
//!   which more headers parse to in-range row indices — the per-group
//!   polarity vote that the plain correlation decoder lacks.
//! * **Residual bit damage is paid from an ECC budget.** Each image's
//!   pixel payload is CRC-32 tagged and expanded by an [`Ecc`] code
//!   before encoding, so pruning or noise scrubs surface as
//!   [`ImageStatus::Degraded`] (corrected) or [`ImageStatus::Failed`]
//!   (CRC mismatch) instead of silently wrong pixels. Use
//!   [`Ecc::for_ber`] to size the budget to a measured bit-error rate.
//!
//! The encoding view of each tensor comes from
//! [`Network::weight_symmetries`]: tensors the symmetry permutes by rows
//! are read in natural row order, tensors it permutes by input chunks are
//! read *transposed* (one view-row per input channel), so every
//! compensated permutation the defender can apply becomes a pure row
//! permutation of the view that headers undo.
//!
//! Capacity is far below the correlation channel's (≈ one bit per
//! [`GROUP_WEIGHTS`] weights, minus headers, divided by the ECC
//! expansion), which is the price of rotation invariance — the arms-race
//! tournament in `qce-harness` measures both sides of that trade.

use qce_data::Image;
use qce_nn::{Network, Regularizer, WeightSymmetry};
use qce_telemetry::{counter, gauge};

use crate::ecc::{self, Ecc};
use crate::{AttackError, DecodeDiagnostics, ImageStatus, ResilientDecode, ResilientImage, Result};

/// Weights averaged per payload bit. Three is the smallest group whose
/// mean still votes down a single pruned (zeroed) member.
pub const GROUP_WEIGHTS: usize = 3;

/// Bits of every encoding row spent on the row's logical index.
pub const HEADER_BITS: usize = 8;

/// Default magnitude the regularizer pulls carrier weights toward.
pub const DEFAULT_BASE: f32 = 0.05;

/// Bits per encoded pixel (two pixels per payload byte).
const PIXEL_BITS: usize = 4;

/// One weight tensor's encoding view: `rows × row_len` scalars addressed
/// so that every compensated permutation is a row permutation.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TensorPlan {
    /// Weight-slot ordinal (diagnostics only).
    ordinal: usize,
    /// Tensor offset into the flat weight vector.
    offset: usize,
    /// Encoding-view rows.
    rows: usize,
    /// Scalars per encoding-view row.
    row_len: usize,
    /// Whether the view is the transpose of storage order
    /// ([`WeightSymmetry::PermutedInChunks`] tensors).
    transposed: bool,
    /// `dims[1] * kh * kw` of the stored tensor — the stored row stride,
    /// needed to invert the transposed view.
    stored_row_len: usize,
    /// `kh * kw` (1 for linear layers).
    spatial: usize,
}

impl TensorPlan {
    /// Usable bits per view row (header + payload).
    fn bits_per_row(&self) -> usize {
        self.row_len / GROUP_WEIGHTS
    }

    /// Payload bits per view row (after the header).
    fn payload_bits_per_row(&self) -> usize {
        self.bits_per_row().saturating_sub(HEADER_BITS)
    }

    /// Flat-weight index of view element `(row, col)`.
    fn flat_index(&self, row: usize, col: usize) -> usize {
        if self.transposed {
            // View row = input channel `row`; columns enumerate
            // (out-channel, spatial) pairs of that input slice.
            let o = col / self.spatial;
            let k = col % self.spatial;
            self.offset + o * self.stored_row_len + row * self.spatial + k
        } else {
            self.offset + row * self.row_len + col
        }
    }
}

/// The planned statistics channel: which tensors carry bits, how many
/// images fit, and the exact coded bit stream the regularizer trains in.
///
/// # Examples
///
/// ```
/// use qce_attack::ecc::Ecc;
/// use qce_attack::statsign::{StatSignDecoder, StatSignLayout, StatSignRegularizer};
/// use qce_data::SynthCifar;
/// use qce_nn::models::ResNetLite;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = ResNetLite::builder()
///     .input(1, 8).classes(4).stage_channels(&[12, 24]).blocks_per_stage(1)
///     .build(1)?;
/// let data = SynthCifar::new(8).rgb(false).generate(16, 3)?;
/// let layout = StatSignLayout::plan(&net, data.images(), Ecc::Hamming74)?;
/// assert!(layout.encoded_images() >= 1);
/// let _reg = StatSignRegularizer::new(&layout, 30.0)?;
/// let decoder = StatSignDecoder::new(layout);
/// let decode = decoder.decode_resilient(&net.flat_weights())?;
/// // An untrained network carries no payload: every slot is accounted
/// // for, none decodes cleanly.
/// assert_eq!(decode.images.len(), decoder.layout().encoded_images());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StatSignLayout {
    tensors: Vec<TensorPlan>,
    geometry: (usize, usize, usize),
    n_images: usize,
    payload_len: usize,
    block_bits: usize,
    ecc: Ecc,
    expected_flat_len: usize,
    expected_bits: Vec<bool>,
}

impl StatSignLayout {
    /// Plans the channel for `net` and encodes as many of `images` (in
    /// order, from index 0) as the capacity allows.
    ///
    /// # Errors
    ///
    /// [`AttackError::InconsistentImages`] for an empty or mixed-geometry
    /// image set, [`AttackError::InvalidGroups`] for an invalid ECC
    /// configuration, [`AttackError::NoCapacity`] when not even one coded
    /// image fits.
    pub fn plan(net: &Network, images: &[Image], ecc: Ecc) -> Result<StatSignLayout> {
        let geometry = check_images(images)?;
        let image_pixels = geometry.0 * geometry.1 * geometry.2;
        let payload_len = image_pixels.div_ceil(2);
        let block_bits = ecc::coded_len(payload_len, &ecc) * 8;
        // Validate the ECC configuration once, up front.
        ecc::encode(&vec![0u8; payload_len], &ecc)?;

        let tensors = plan_tensors(net);
        let capacity_bits: usize = tensors
            .iter()
            .map(|t| t.rows * t.payload_bits_per_row())
            .sum();
        let n_images = (capacity_bits / block_bits).min(images.len());
        if n_images == 0 {
            return Err(AttackError::NoCapacity {
                weights: capacity_bits / (PIXEL_BITS * 2),
                image_pixels,
            });
        }

        let mut expected_bits = Vec::with_capacity(n_images * block_bits);
        for image in &images[..n_images] {
            let coded = ecc::encode(&pack_pixels(image), &ecc)?;
            push_bits(&mut expected_bits, &coded);
        }

        Ok(StatSignLayout {
            tensors,
            geometry,
            n_images,
            payload_len,
            block_bits,
            ecc,
            expected_flat_len: net.flat_weights().len(),
            expected_bits,
        })
    }

    /// How many images of `image_pixels` pixels `net` can carry under
    /// `ecc` — what the flow's select stage asks before choosing targets.
    ///
    /// # Errors
    ///
    /// [`AttackError::InvalidGroups`] for an invalid ECC configuration or
    /// a zero pixel count.
    pub fn capacity_images(net: &Network, image_pixels: usize, ecc: &Ecc) -> Result<usize> {
        ecc.validate()?;
        if image_pixels == 0 {
            return Err(AttackError::InvalidGroups {
                reason: "statsign capacity needs a non-zero pixel count".to_string(),
            });
        }
        let block_bits = ecc::coded_len(image_pixels.div_ceil(2), ecc) * 8;
        let capacity_bits: usize = plan_tensors(net)
            .iter()
            .map(|t| t.rows * t.payload_bits_per_row())
            .sum();
        Ok(capacity_bits / block_bits)
    }

    /// Number of images the plan encodes.
    pub fn encoded_images(&self) -> usize {
        self.n_images
    }

    /// Image geometry `(channels, height, width)`.
    pub fn geometry(&self) -> (usize, usize, usize) {
        self.geometry
    }

    /// The ECC budget protecting each image.
    pub fn ecc(&self) -> Ecc {
        self.ecc
    }

    /// Coded bits each image occupies in the payload stream.
    pub fn block_bits(&self) -> usize {
        self.block_bits
    }

    /// Training targets for the channel: a dense `(targets, mask)` pair
    /// over the flat weight vector. Masked positions are pulled toward
    /// `±base`; every participating row gets its header even past the
    /// payload, so damaged-payload rows still identify themselves.
    #[must_use]
    pub fn targets(&self, base: f32) -> (Vec<f32>, Vec<bool>) {
        let mut targets = vec![0.0f32; self.expected_flat_len];
        let mut mask = vec![false; self.expected_flat_len];
        let mut cursor = 0usize;
        for t in &self.tensors {
            let bits = t.bits_per_row();
            for row in 0..t.rows {
                for g in 0..bits {
                    let bit = if g < HEADER_BITS {
                        (row >> g) & 1 == 1
                    } else if cursor < self.expected_bits.len() {
                        let b = self.expected_bits[cursor];
                        cursor += 1;
                        b
                    } else {
                        continue;
                    };
                    let value = if bit { base } else { -base };
                    for k in 0..GROUP_WEIGHTS {
                        let idx = t.flat_index(row, g * GROUP_WEIGHTS + k);
                        targets[idx] = value;
                        mask[idx] = true;
                    }
                }
            }
        }
        (targets, mask)
    }

    /// Raw (pre-ECC) bit-error rate of a released weight vector against
    /// the planned stream — the number [`Ecc::for_ber`] wants. Damaged
    /// (non-finite) groups count as errors.
    #[must_use]
    pub fn payload_ber(&self, flat_weights: &[f32]) -> f64 {
        if self.expected_bits.is_empty() {
            return 0.0;
        }
        let stream = read_stream(&self.tensors, flat_weights, self.expected_bits.len());
        let errors = stream
            .iter()
            .zip(&self.expected_bits)
            .filter(|(got, want)| got.map(|g| g != **want).unwrap_or(true))
            .count();
        errors as f64 / self.expected_bits.len() as f64
    }
}

/// White-box extraction for the statistics channel. Produces the same
/// [`ResilientDecode`] shape as [`crate::Decoder::decode_resilient`], so
/// the flow's resilient-report machinery works on either channel.
#[derive(Debug, Clone)]
pub struct StatSignDecoder {
    layout: StatSignLayout,
}

impl StatSignDecoder {
    /// Creates a decoder for a planned layout.
    pub fn new(layout: StatSignLayout) -> Self {
        StatSignDecoder { layout }
    }

    /// The layout this decoder extracts against.
    pub fn layout(&self) -> &StatSignLayout {
        &self.layout
    }

    /// Decodes every planned image: per-tensor polarity vote, header row
    /// reassembly, then per-image ECC + CRC verdicts.
    ///
    /// # Errors
    ///
    /// [`AttackError::LayoutMismatch`] if `flat_weights` does not match
    /// the planned network.
    pub fn decode_resilient(&self, flat_weights: &[f32]) -> Result<ResilientDecode> {
        let l = &self.layout;
        if flat_weights.len() != l.expected_flat_len {
            return Err(AttackError::LayoutMismatch {
                expected: l.expected_flat_len,
                actual: flat_weights.len(),
            });
        }

        let mut diagnostics = Vec::with_capacity(l.tensors.len());
        let mut stream: Vec<Option<bool>> = Vec::new();
        for (ti, t) in l.tensors.iter().enumerate() {
            let (bits, diag) = decode_tensor(ti, t, flat_weights);
            diagnostics.push(diag);
            stream.extend_from_slice(&bits);
        }

        let (c, h, w) = l.geometry;
        let mut images = Vec::with_capacity(l.n_images);
        for i in 0..l.n_images {
            let block = &stream[i * l.block_bits..(i + 1) * l.block_bits];
            images.push(decode_block(l, block, i, c, h, w));
        }

        gauge("decode.statsign_ber").set(l.payload_ber(flat_weights));
        let decode = ResilientDecode {
            images,
            diagnostics,
        };
        counter("decode.ok").incr(decode.ok_count() as u64);
        counter("decode.degraded").incr(decode.degraded_count() as u64);
        counter("decode.failed").incr(decode.failed_count() as u64);
        gauge("decode.confidence").set(f64::from(decode.mean_confidence()));
        Ok(decode)
    }
}

/// Decodes one image block: bits → coded bytes → ECC/CRC → pixels.
fn decode_block(
    l: &StatSignLayout,
    block: &[Option<bool>],
    index: usize,
    c: usize,
    h: usize,
    w: usize,
) -> ResilientImage {
    let damaged = block.iter().filter(|b| b.is_none()).count();
    let mut coded = vec![0u8; l.block_bits.div_ceil(8)];
    for (i, bit) in block.iter().enumerate() {
        if bit.unwrap_or(false) {
            coded[i / 8] |= 1 << (i % 8);
        }
    }
    let failed = |reason: String| ResilientImage {
        target_index: index,
        group: 0,
        status: ImageStatus::Failed { reason },
        image: None,
    };
    let (payload, report) = match ecc::decode(&coded, l.payload_len, &l.ecc) {
        Ok(v) => v,
        Err(e) => return failed(e.to_string()),
    };
    if !report.crc_ok {
        return failed(format!(
            "payload CRC mismatch ({} bits corrected, {damaged} carriers damaged)",
            report.corrected_bits
        ));
    }
    let pixels: Vec<f32> = (0..c * h * w)
        .map(|p| {
            let nibble = (payload[p / 2] >> ((p % 2) * PIXEL_BITS)) & 0xF;
            f32::from(nibble) * 17.0
        })
        .collect();
    let image = match Image::from_f32(&pixels, c, h, w) {
        Ok(img) => img,
        Err(e) => return failed(format!("pixel reassembly: {e}")),
    };
    let repaired = report.corrected_bits + damaged;
    ResilientImage {
        target_index: index,
        group: 0,
        status: if repaired == 0 {
            ImageStatus::Ok
        } else {
            ImageStatus::Degraded {
                repaired_pixels: repaired,
            }
        },
        image: Some(image),
    }
}

/// Reads one tensor's payload bits in logical-row order, resolving
/// polarity and row permutation from the headers.
fn decode_tensor(
    index: usize,
    t: &TensorPlan,
    flat: &[f32],
) -> (Vec<Option<bool>>, DecodeDiagnostics) {
    let bits = t.bits_per_row();
    // Raw group means: Some(sign bit) or None when every member was
    // non-finite.
    let mut raw: Vec<Vec<Option<bool>>> = Vec::with_capacity(t.rows);
    let mut finite_groups = 0usize;
    for row in 0..t.rows {
        let mut row_bits = Vec::with_capacity(bits);
        for g in 0..bits {
            let mut sum = 0.0f64;
            let mut n = 0usize;
            for k in 0..GROUP_WEIGHTS {
                let v = flat[t.flat_index(row, g * GROUP_WEIGHTS + k)];
                if v.is_finite() {
                    sum += f64::from(v);
                    n += 1;
                }
            }
            row_bits.push(if n == 0 {
                None
            } else {
                finite_groups += 1;
                Some(sum > 0.0)
            });
        }
        raw.push(row_bits);
    }

    // Per-tensor polarity vote: the polarity under which more headers
    // parse to in-range logical row indices wins (ties keep `false`).
    let headers = |flip: bool| -> Vec<Option<usize>> {
        raw.iter()
            .map(|row_bits| {
                let mut value = 0usize;
                for (b, bit) in row_bits.iter().take(HEADER_BITS).enumerate() {
                    value |= usize::from((*bit)? ^ flip) << b;
                }
                (value < t.rows).then_some(value)
            })
            .collect()
    };
    let count_valid = |hs: &[Option<usize>]| hs.iter().flatten().count();
    let (straight, flipped_hs) = (headers(false), headers(true));
    let flip = count_valid(&flipped_hs) > count_valid(&straight);
    let hs = if flip { flipped_hs } else { straight };

    // Header-claimed logical slots first, then a greedy stable fill for
    // rows whose header was damaged or duplicated.
    let mut phys_of_logical: Vec<Option<usize>> = vec![None; t.rows];
    let mut claimed_by_header = 0usize;
    let mut unclaimed = Vec::new();
    for (p, h) in hs.iter().enumerate() {
        match h {
            Some(h) if phys_of_logical[*h].is_none() => {
                phys_of_logical[*h] = Some(p);
                claimed_by_header += 1;
            }
            _ => unclaimed.push(p),
        }
    }
    let mut spare = unclaimed.into_iter();
    for slot in &mut phys_of_logical {
        if slot.is_none() {
            *slot = spare.next();
        }
    }

    let mut out = Vec::with_capacity(t.rows * t.payload_bits_per_row());
    for slot in &phys_of_logical {
        let p = slot.expect("every logical row has a physical partner");
        out.extend(
            raw[p][HEADER_BITS..bits]
                .iter()
                .map(|bit| bit.map(|b| b ^ flip)),
        );
    }
    let total_groups = t.rows * bits;
    let diag = DecodeDiagnostics {
        group: index,
        flipped: flip,
        confidence: if t.rows == 0 {
            0.0
        } else {
            claimed_by_header as f32 / t.rows as f32
        },
        finite_fraction: if total_groups == 0 {
            0.0
        } else {
            finite_groups as f32 / total_groups as f32
        },
        truncated: false,
    };
    (out, diag)
}

/// Reads the first `limit` payload-stream bits of `flat` without header
/// reassembly — the planner-side view [`StatSignLayout::payload_ber`]
/// compares against (encoding order, no permutation applied).
fn read_stream(tensors: &[TensorPlan], flat: &[f32], limit: usize) -> Vec<Option<bool>> {
    let mut out = Vec::with_capacity(limit);
    'outer: for t in tensors {
        let bits = t.bits_per_row();
        for row in 0..t.rows {
            for g in HEADER_BITS..bits {
                if out.len() == limit {
                    break 'outer;
                }
                let mut sum = 0.0f64;
                let mut n = 0usize;
                for k in 0..GROUP_WEIGHTS {
                    let v = flat[t.flat_index(row, g * GROUP_WEIGHTS + k)];
                    if v.is_finite() {
                        sum += f64::from(v);
                        n += 1;
                    }
                }
                out.push((n > 0).then_some(sum > 0.0));
            }
        }
    }
    out
}

/// The training-time penalty of the statistics channel: an L2 pull
/// `(λ/2n)·Σ (θᵢ − tᵢ)²` over the masked carrier weights, where the
/// targets `t` are the `±base` group patterns of
/// [`StatSignLayout::targets`].
#[derive(Debug, Clone)]
pub struct StatSignRegularizer {
    targets: Vec<f32>,
    mask: Vec<bool>,
    lambda: f32,
    active: usize,
}

impl StatSignRegularizer {
    /// Creates the regularizer with the [`DEFAULT_BASE`] magnitude.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidGroups`] for a non-positive lambda.
    pub fn new(layout: &StatSignLayout, lambda: f32) -> Result<Self> {
        Self::with_base(layout, lambda, DEFAULT_BASE)
    }

    /// Creates the regularizer with an explicit target magnitude.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidGroups`] for a non-positive or
    /// non-finite lambda or base.
    pub fn with_base(layout: &StatSignLayout, lambda: f32, base: f32) -> Result<Self> {
        if !(lambda > 0.0 && lambda.is_finite() && base > 0.0 && base.is_finite()) {
            return Err(AttackError::InvalidGroups {
                reason: "statsign regularizer needs positive finite lambda and base".to_string(),
            });
        }
        let (targets, mask) = layout.targets(base);
        let active = mask.iter().filter(|m| **m).count();
        Ok(StatSignRegularizer {
            targets,
            mask,
            lambda,
            active,
        })
    }

    /// Number of carrier weights the penalty acts on.
    pub fn carrier_weights(&self) -> usize {
        self.active
    }
}

impl Regularizer for StatSignRegularizer {
    fn apply(&mut self, net: &mut Network) -> qce_nn::Result<f32> {
        let flat = net.flat_weights();
        let n = flat.len().min(self.targets.len());
        let scale = self.lambda / self.active.max(1) as f32;
        let mut grad = vec![0.0f32; flat.len()];
        let mut penalty = 0.0f32;
        for i in 0..n {
            if self.mask[i] {
                let diff = flat[i] - self.targets[i];
                penalty += 0.5 * scale * diff * diff;
                grad[i] = scale * diff;
            }
        }
        net.add_flat_weight_grads(&grad)?;
        Ok(penalty)
    }
}

/// Builds the per-tensor encoding views. Tensors whose rows cannot hold a
/// header plus at least one payload bit, or whose row count exceeds the
/// header's address space, carry nothing and are skipped symmetrically by
/// planner and decoder.
fn plan_tensors(net: &Network) -> Vec<TensorPlan> {
    let slots = net.weight_slots();
    let symmetries = net.weight_symmetries();
    let mut out = Vec::new();
    for (slot, symmetry) in slots.iter().zip(&symmetries) {
        if slot.dims.is_empty() || slot.dims[0] == 0 || slot.len == 0 {
            continue;
        }
        let spatial: usize = slot.dims.iter().skip(2).product();
        let transposed = *symmetry == WeightSymmetry::PermutedInChunks && slot.dims.len() >= 2;
        let (rows, row_len, stored_row_len) = if transposed {
            let stored = slot.len / slot.dims[0];
            (slot.dims[1], slot.dims[0] * spatial, stored)
        } else {
            let row_len = slot.len / slot.dims[0];
            (slot.dims[0], row_len, row_len)
        };
        let plan = TensorPlan {
            ordinal: slot.ordinal,
            offset: slot.offset,
            rows,
            row_len,
            transposed,
            stored_row_len,
            spatial: spatial.max(1),
        };
        if plan.payload_bits_per_row() == 0 || rows > (1 << HEADER_BITS) || rows == 0 {
            continue;
        }
        out.push(plan);
    }
    out
}

/// Packs an image's pixels into the 4-bit-per-pixel payload bytes.
fn pack_pixels(image: &Image) -> Vec<u8> {
    let pixels = image.pixels();
    let mut payload = vec![0u8; pixels.len().div_ceil(2)];
    for (p, &px) in pixels.iter().enumerate() {
        // Round to the nearest of the 16 levels (255/15 = 17 apart).
        let nibble = ((u32::from(px) * 15 + 127) / 255) as u8;
        payload[p / 2] |= nibble << ((p % 2) * PIXEL_BITS);
    }
    payload
}

/// Appends a byte slice's bits (LSB-first, matching `qce_attack::ecc`).
fn push_bits(out: &mut Vec<bool>, bytes: &[u8]) {
    for &b in bytes {
        for i in 0..8 {
            out.push((b >> i) & 1 == 1);
        }
    }
}

/// Validates image-set geometry, returning `(channels, height, width)`.
fn check_images(images: &[Image]) -> Result<(usize, usize, usize)> {
    let Some(first) = images.first() else {
        return Err(AttackError::InconsistentImages {
            reason: "statsign channel needs at least one target image".to_string(),
        });
    };
    let geometry = (first.channels(), first.height(), first.width());
    for img in images {
        if (img.channels(), img.height(), img.width()) != geometry {
            return Err(AttackError::InconsistentImages {
                reason: "target images must share one geometry".to_string(),
            });
        }
    }
    Ok(geometry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qce_data::SynthCifar;
    use qce_nn::models::ResNetLite;

    fn net() -> Network {
        ResNetLite::builder()
            .input(1, 8)
            .classes(4)
            .stage_channels(&[12, 24])
            .blocks_per_stage(1)
            .build(1)
            .unwrap()
    }

    fn images(n: usize) -> Vec<Image> {
        SynthCifar::new(8)
            .rgb(false)
            .classes(4)
            .generate(n, 9)
            .unwrap()
            .images()
            .to_vec()
    }

    /// Writes the layout's exact targets into the network — a perfectly
    /// trained channel, without the training time.
    fn plant(net: &mut Network, layout: &StatSignLayout) {
        let (targets, mask) = layout.targets(DEFAULT_BASE);
        let mut flat = net.flat_weights();
        for i in 0..flat.len() {
            if mask[i] {
                flat[i] = targets[i];
            }
        }
        net.set_flat_weights(&flat).unwrap();
    }

    #[test]
    fn planted_payload_round_trips() {
        let mut net = net();
        let imgs = images(16);
        let layout = StatSignLayout::plan(&net, &imgs, Ecc::Hamming74).unwrap();
        assert!(layout.encoded_images() >= 2, "{}", layout.encoded_images());
        plant(&mut net, &layout);
        let n = layout.encoded_images();
        let decoder = StatSignDecoder::new(layout);
        let decode = decoder.decode_resilient(&net.flat_weights()).unwrap();
        assert_eq!(decode.ok_count(), n);
        for (slot, original) in decode.images.iter().zip(&imgs) {
            let img = slot.image.as_ref().unwrap();
            for (got, want) in img.pixels().iter().zip(original.pixels()) {
                // 4-bit pixels: exact up to the 17-level rounding step.
                assert!((i32::from(*got) - i32::from(*want)).abs() <= 9);
            }
        }
    }

    #[test]
    fn decode_survives_hidden_channel_permutation() {
        let mut net = net();
        let layout = StatSignLayout::plan(&net, &images(16), Ecc::Hamming74).unwrap();
        plant(&mut net, &layout);
        let n = layout.encoded_images();
        let moved = net.permute_hidden_channels(0xD15EA5E);
        assert!(moved > 0);
        let decode = StatSignDecoder::new(layout)
            .decode_resilient(&net.flat_weights())
            .unwrap();
        assert_eq!(
            decode.ok_count() + decode.degraded_count(),
            n,
            "permutation must not lose images: {:?}",
            decode.images.iter().map(|i| &i.status).collect::<Vec<_>>()
        );
    }

    #[test]
    fn decode_survives_a_global_sign_flip() {
        let mut net = net();
        let layout = StatSignLayout::plan(&net, &images(16), Ecc::Hamming74).unwrap();
        plant(&mut net, &layout);
        let n = layout.encoded_images();
        let flat: Vec<f32> = net.flat_weights().iter().map(|w| -w).collect();
        let decode = StatSignDecoder::new(layout)
            .decode_resilient(&flat)
            .unwrap();
        assert_eq!(decode.ok_count(), n);
        assert!(decode.diagnostics.iter().all(|d| d.flipped));
    }

    #[test]
    fn sparse_damage_degrades_instead_of_failing() {
        let mut net = net();
        let layout = StatSignLayout::plan(&net, &images(16), Ecc::Hamming74).unwrap();
        plant(&mut net, &layout);
        let mut flat = net.flat_weights();
        // Flip a few whole payload groups in distinct rows of the first
        // tensor (one bit error each); the stream positions land in
        // distinct 7-bit codewords, so Hamming(7,4) repairs them all.
        let t = &layout.tensors[0];
        for row in [0usize, 3, 6, 9] {
            for k in 0..GROUP_WEIGHTS {
                let idx = t.flat_index(row, HEADER_BITS * GROUP_WEIGHTS + k);
                flat[idx] = -flat[idx];
            }
        }
        let decode = StatSignDecoder::new(layout.clone())
            .decode_resilient(&flat)
            .unwrap();
        assert_eq!(decode.failed_count(), 0);
        assert!(decode.degraded_count() >= 1);
    }

    #[test]
    fn wholesale_damage_fails_the_crc_loudly() {
        let net = net();
        let layout = StatSignLayout::plan(&net, &images(16), Ecc::Hamming74).unwrap();
        // No planting: the untrained network is noise relative to the
        // plan, so CRCs must reject every image rather than emit garbage.
        let decode = StatSignDecoder::new(layout.clone())
            .decode_resilient(&net.flat_weights())
            .unwrap();
        assert_eq!(decode.failed_count(), layout.encoded_images());
        assert!(decode.images.iter().all(|i| i.image.is_none()));
        assert!(layout.payload_ber(&net.flat_weights()) > 0.2);
    }

    #[test]
    fn capacity_matches_plan_and_rejects_invalid_ecc() {
        let n = net();
        let capacity = StatSignLayout::capacity_images(&n, 64, &Ecc::Hamming74).unwrap();
        let layout = StatSignLayout::plan(&n, &images(capacity + 8), Ecc::Hamming74).unwrap();
        assert_eq!(layout.encoded_images(), capacity);
        assert!(StatSignLayout::capacity_images(&n, 64, &Ecc::Repetition { copies: 2 }).is_err());
        assert!(StatSignLayout::capacity_images(&n, 0, &Ecc::Hamming74).is_err());
    }

    #[test]
    fn transposed_views_cover_consuming_tensors() {
        let n = net();
        let plans = plan_tensors(&n);
        assert!(plans.iter().any(|t| t.transposed), "{plans:?}");
        // Every view must address distinct flat indices within bounds.
        let len = n.flat_weights().len();
        for t in &plans {
            let mut seen = std::collections::HashSet::new();
            for row in 0..t.rows {
                for col in 0..t.row_len {
                    let idx = t.flat_index(row, col);
                    assert!(idx < len);
                    assert!(seen.insert(idx), "duplicate flat index {idx} in {t:?}");
                }
            }
        }
    }

    #[test]
    fn regularizer_pulls_carriers_toward_targets() {
        let mut n = net();
        let layout = StatSignLayout::plan(&n, &images(16), Ecc::Hamming74).unwrap();
        let mut reg = StatSignRegularizer::new(&layout, 30.0).unwrap();
        assert!(reg.carrier_weights() > 0);
        let before = reg.apply(&mut n).unwrap();
        assert!(before > 0.0);
        // A perfectly planted channel has zero penalty.
        plant(&mut n, &layout);
        let after = reg.apply(&mut n).unwrap();
        assert!(after < before * 1e-3, "{after} vs {before}");
        assert!(StatSignRegularizer::new(&layout, 0.0).is_err());
    }
}
