//! Error-corrected LSB payloads: CRC-guarded interleaved repetition and
//! Hamming(7,4) coding over the [`crate::lsb`] channel.
//!
//! The raw LSB attack of §II-B dies to *any* perturbation of the released
//! weights. These codes buy it a measurable flip budget: the payload (plus
//! a CRC-32 integrity tag) is expanded into a redundant bit stream, block
//! interleaved so that a contiguous burst of damaged weights touches each
//! code block at most once, and embedded with the existing carrier
//! machinery. Extraction reverses the pipeline, corrects what the code can
//! correct, counts what it corrected, and verifies the CRC so the
//! adversary knows whether the recovered bytes are trustworthy.
//!
//! Guarantees (see the proptests): with [`Ecc::Repetition`] at `copies`
//! and frame bit-length `L`, any set of flips that hits each frame bit in
//! fewer than `⌈copies/2⌉` of its copies is corrected — in particular any
//! contiguous burst shorter than `L` bits. [`Ecc::Hamming74`] corrects one
//! flip per 7-bit codeword, i.e. any burst shorter than the codeword
//! count.

use crate::lsb;
use crate::{AttackError, Result};

/// The error-correcting code protecting an LSB payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ecc {
    /// Each frame bit is stored `copies` times (odd, ≥ 3), copy-major so
    /// the copies sit maximally far apart; decoded by majority vote.
    Repetition {
        /// Number of copies per bit.
        copies: usize,
    },
    /// Hamming(7,4): every payload nibble becomes a 7-bit codeword that
    /// corrects any single flipped bit; codewords are block interleaved.
    Hamming74,
}

impl Ecc {
    /// Checks the code configuration (repetition copy counts must be odd
    /// and at least 3).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidGroups`] describing the bad
    /// parameter.
    pub fn validate(&self) -> Result<()> {
        if let Ecc::Repetition { copies } = *self {
            if copies < 3 || copies % 2 == 0 {
                return Err(AttackError::InvalidGroups {
                    reason: format!("repetition copies {copies} must be odd and >= 3"),
                });
            }
        }
        Ok(())
    }

    /// Picks an ECC budget sized to a measured raw bit-error rate.
    ///
    /// The brackets come from the `for_ber_budgets_hold_at_their_rated_ber`
    /// test, which decodes a 32-byte payload under seeded random flips:
    ///
    /// | budget | expansion | measured ceiling (worst BER with CRC-clean decode) |
    /// |---|---|---|
    /// | [`Ecc::Hamming74`] | 1.75× | ~1% — blocks fail at two flips per 7-bit codeword (≈ 21·p²) |
    /// | `Repetition { copies: 5 }` | 5× | ~5% — per-bit failure ≈ 10·p³ |
    /// | `Repetition { copies: 9 }` | 9× | ~12% — majority of 9 needs 5 aligned flips |
    ///
    /// Above ~20% raw BER the channel is effectively random and no budget
    /// the carrier can afford recovers it; callers should treat the CRC
    /// failure as the answer.
    #[must_use]
    pub fn for_ber(ber: f64) -> Ecc {
        if ber <= 0.01 {
            Ecc::Hamming74
        } else if ber <= 0.05 {
            Ecc::Repetition { copies: 5 }
        } else {
            Ecc::Repetition { copies: 9 }
        }
    }

    /// Coded length in bits for a frame of `frame_bits` bits.
    fn coded_bits(&self, frame_bits: usize) -> usize {
        match *self {
            Ecc::Repetition { copies } => frame_bits * copies,
            // Frames are whole bytes, so frame_bits is a multiple of 4.
            Ecc::Hamming74 => frame_bits / 4 * 7,
        }
    }
}

/// What an error-corrected extraction found out about the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EccReport {
    /// Number of bit errors the code corrected.
    pub corrected_bits: usize,
    /// Whether the recovered payload's CRC-32 matched — the adversary's
    /// signal that the flip budget was not exceeded.
    pub crc_ok: bool,
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let low = crc & 1;
            crc >>= 1;
            if low == 1 {
                crc ^= 0xEDB8_8320;
            }
        }
    }
    !crc
}

fn bytes_to_bits(bytes: &[u8]) -> Vec<bool> {
    let mut bits = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in 0..8 {
            bits.push((b >> i) & 1 == 1);
        }
    }
    bits
}

fn bits_to_bytes(bits: &[bool]) -> Vec<u8> {
    let mut bytes = vec![0u8; bits.len().div_ceil(8)];
    for (i, &bit) in bits.iter().enumerate() {
        if bit {
            bytes[i / 8] |= 1 << (i % 8);
        }
    }
    bytes
}

/// Block interleaver: treats `bits` as a `rows × cols` matrix written
/// row-major and reads it out column-major, so the `cols` bits of one row
/// (codeword / copy set) end up `rows` positions apart.
fn interleave(bits: &[bool], cols: usize) -> Vec<bool> {
    let rows = bits.len() / cols;
    let mut out = Vec::with_capacity(bits.len());
    for c in 0..cols {
        for r in 0..rows {
            out.push(bits[r * cols + c]);
        }
    }
    out
}

fn deinterleave(bits: &[bool], cols: usize) -> Vec<bool> {
    let rows = bits.len() / cols;
    let mut out = vec![false; bits.len()];
    let mut pos = 0;
    for c in 0..cols {
        for r in 0..rows {
            out[r * cols + c] = bits[pos];
            pos += 1;
        }
    }
    out
}

/// Encodes one nibble (low 4 bits of `d`) into a 7-bit Hamming codeword
/// `[p1, p2, d1, p3, d2, d3, d4]`.
fn hamming_encode_nibble(d: u8) -> [bool; 7] {
    let d1 = d & 1 == 1;
    let d2 = (d >> 1) & 1 == 1;
    let d3 = (d >> 2) & 1 == 1;
    let d4 = (d >> 3) & 1 == 1;
    let p1 = d1 ^ d2 ^ d4;
    let p2 = d1 ^ d3 ^ d4;
    let p3 = d2 ^ d3 ^ d4;
    [p1, p2, d1, p3, d2, d3, d4]
}

/// Decodes a 7-bit codeword, correcting at most one flipped bit. Returns
/// the nibble and whether a correction happened.
fn hamming_decode_nibble(cw: &[bool]) -> (u8, bool) {
    let mut cw = [cw[0], cw[1], cw[2], cw[3], cw[4], cw[5], cw[6]];
    let s1 = cw[0] ^ cw[2] ^ cw[4] ^ cw[6];
    let s2 = cw[1] ^ cw[2] ^ cw[5] ^ cw[6];
    let s3 = cw[3] ^ cw[4] ^ cw[5] ^ cw[6];
    let syndrome = usize::from(s1) | usize::from(s2) << 1 | usize::from(s3) << 2;
    let corrected = syndrome != 0;
    if corrected {
        cw[syndrome - 1] = !cw[syndrome - 1];
    }
    let nibble =
        u8::from(cw[2]) | u8::from(cw[4]) << 1 | u8::from(cw[5]) << 2 | u8::from(cw[6]) << 3;
    (nibble, corrected)
}

/// Number of *coded* bytes [`encode`] produces for a `payload_len`-byte
/// payload (frame = payload + 4 CRC bytes).
pub fn coded_len(payload_len: usize, ecc: &Ecc) -> usize {
    ecc.coded_bits((payload_len + 4) * 8).div_ceil(8)
}

/// Expands `payload` into a CRC-guarded, ECC-coded, interleaved byte
/// stream ready for [`lsb::embed`].
///
/// # Errors
///
/// Returns [`AttackError::InvalidGroups`] for an invalid code
/// configuration or [`AttackError::InconsistentImages`] for an empty
/// payload.
pub fn encode(payload: &[u8], ecc: &Ecc) -> Result<Vec<u8>> {
    ecc.validate()?;
    if payload.is_empty() {
        return Err(AttackError::InconsistentImages {
            reason: "empty ECC payload".to_string(),
        });
    }
    let mut frame = payload.to_vec();
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    let frame_bits = bytes_to_bits(&frame);
    let coded = match *ecc {
        Ecc::Repetition { copies } => {
            // Copy-major: all first copies, then all second copies, … —
            // equivalent to a frame_bits × copies block interleave.
            let mut out = Vec::with_capacity(frame_bits.len() * copies);
            for _ in 0..copies {
                out.extend_from_slice(&frame_bits);
            }
            out
        }
        Ecc::Hamming74 => {
            let mut codewords = Vec::with_capacity(frame_bits.len() / 4 * 7);
            for chunk in frame.iter().flat_map(|&b| [b & 0xF, b >> 4]) {
                codewords.extend_from_slice(&hamming_encode_nibble(chunk));
            }
            interleave(&codewords, 7)
        }
    };
    Ok(bits_to_bytes(&coded))
}

/// Recovers a `payload_len`-byte payload from [`encode`] output, majority
/// voting / syndrome correcting as the code allows.
///
/// # Errors
///
/// Returns [`AttackError::InvalidGroups`] for an invalid code
/// configuration or [`AttackError::PayloadTooLarge`] if `coded` is shorter
/// than the code requires.
pub fn decode(coded: &[u8], payload_len: usize, ecc: &Ecc) -> Result<(Vec<u8>, EccReport)> {
    ecc.validate()?;
    let frame_len = payload_len + 4;
    let n_coded_bits = ecc.coded_bits(frame_len * 8);
    if coded.len() * 8 < n_coded_bits {
        return Err(AttackError::PayloadTooLarge {
            capacity_bits: coded.len() * 8,
            needed_bits: n_coded_bits,
        });
    }
    let bits = &bytes_to_bits(coded)[..n_coded_bits];
    let mut corrected_bits = 0usize;
    let frame_bits = match *ecc {
        Ecc::Repetition { copies } => {
            let l = frame_len * 8;
            (0..l)
                .map(|i| {
                    let votes = (0..copies).filter(|&c| bits[c * l + i]).count();
                    let bit = votes * 2 > copies;
                    // Minority copies were flips the vote overruled.
                    corrected_bits += if bit { copies - votes } else { votes };
                    bit
                })
                .collect::<Vec<bool>>()
        }
        Ecc::Hamming74 => {
            let codewords = deinterleave(bits, 7);
            let mut out = Vec::with_capacity(frame_len * 8);
            for cw in codewords.chunks_exact(7) {
                let (nibble, fixed) = hamming_decode_nibble(cw);
                corrected_bits += usize::from(fixed);
                for i in 0..4 {
                    out.push((nibble >> i) & 1 == 1);
                }
            }
            out
        }
    };
    let frame = bits_to_bytes(&frame_bits);
    let payload = frame[..payload_len].to_vec();
    let tag = u32::from_le_bytes([
        frame[payload_len],
        frame[payload_len + 1],
        frame[payload_len + 2],
        frame[payload_len + 3],
    ]);
    let crc_ok = crc32(&payload) == tag;
    Ok((
        payload,
        EccReport {
            corrected_bits,
            crc_ok,
        },
    ))
}

/// Embeds an ECC-protected `payload` into the low mantissa bits of
/// `weights` — [`encode`] piped into [`lsb::embed`].
///
/// # Errors
///
/// Propagates encoding and capacity errors.
pub fn embed_protected(
    weights: &mut [f32],
    payload: &[u8],
    bits_per_weight: u32,
    ecc: &Ecc,
) -> Result<()> {
    let coded = encode(payload, ecc)?;
    lsb::embed(weights, &coded, bits_per_weight)
}

/// Extracts and error-corrects a payload embedded with
/// [`embed_protected`].
///
/// # Errors
///
/// Propagates extraction and capacity errors.
pub fn extract_protected(
    weights: &[f32],
    bits_per_weight: u32,
    payload_len: usize,
    ecc: &Ecc,
) -> Result<(Vec<u8>, EccReport)> {
    let coded = lsb::extract(weights, bits_per_weight, coded_len(payload_len, ecc))?;
    decode(&coded, payload_len, ecc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 37 + 11) as u8).collect()
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(&[]), 0);
    }

    #[test]
    fn clean_round_trip_both_codes() {
        let data = payload(40);
        for ecc in [Ecc::Repetition { copies: 3 }, Ecc::Hamming74] {
            let coded = encode(&data, &ecc).unwrap();
            assert_eq!(coded.len(), coded_len(data.len(), &ecc));
            let (back, report) = decode(&coded, data.len(), &ecc).unwrap();
            assert_eq!(back, data, "{ecc:?}");
            assert!(report.crc_ok);
            assert_eq!(report.corrected_bits, 0);
        }
    }

    #[test]
    fn repetition_corrects_bursts() {
        let data = payload(32);
        let ecc = Ecc::Repetition { copies: 3 };
        let frame_bits = (data.len() + 4) * 8;
        let mut coded = encode(&data, &ecc).unwrap();
        // A burst shorter than the frame hits each bit's copies at most
        // once; flip a whole frame-length-minus-one window.
        for bit in 17..17 + frame_bits - 1 {
            coded[bit / 8] ^= 1 << (bit % 8);
        }
        let (back, report) = decode(&coded, data.len(), &ecc).unwrap();
        assert_eq!(back, data);
        assert!(report.crc_ok);
        assert_eq!(report.corrected_bits, frame_bits - 1);
    }

    #[test]
    fn hamming_corrects_one_flip_per_codeword() {
        let data = payload(16);
        let ecc = Ecc::Hamming74;
        let mut coded = encode(&data, &ecc).unwrap();
        let codewords = (data.len() + 4) * 2;
        // Interleaved layout: bit `i` of the stream belongs to codeword
        // `i % codewords`, so a burst of `codewords` bits hits each
        // codeword exactly once.
        for bit in 5..5 + codewords {
            coded[bit / 8] ^= 1 << (bit % 8);
        }
        let (back, report) = decode(&coded, data.len(), &ecc).unwrap();
        assert_eq!(back, data);
        assert!(report.crc_ok);
        assert_eq!(report.corrected_bits, codewords);
    }

    #[test]
    fn crc_flags_uncorrectable_damage() {
        let data = payload(24);
        let ecc = Ecc::Repetition { copies: 3 };
        let mut coded = encode(&data, &ecc).unwrap();
        let l = (data.len() + 4) * 8;
        // Hit the same frame bit in two of its three copies: the vote
        // flips the bit and the CRC catches it.
        for copy in 0..2 {
            let bit = copy * l + 9;
            coded[bit / 8] ^= 1 << (bit % 8);
        }
        let (back, report) = decode(&coded, data.len(), &ecc).unwrap();
        assert_ne!(back, data);
        assert!(!report.crc_ok);
    }

    #[test]
    fn protected_lsb_survives_a_weight_burst() {
        let data = payload(20);
        let ecc = Ecc::Repetition { copies: 3 };
        let mut rng = qce_tensor::init::seeded_rng(5);
        let mut weights: Vec<f32> = (0..4096)
            .map(|_| qce_tensor::init::standard_normal(&mut rng) * 0.1)
            .collect();
        embed_protected(&mut weights, &data, 2, &ecc).unwrap();
        // Zero a burst of carrier weights (e.g. a pruned filter): each
        // destroyed weight wipes its 2 payload bits.
        for w in weights[30..80].iter_mut() {
            *w = 0.0;
        }
        let (back, report) = extract_protected(&weights, 2, data.len(), &ecc).unwrap();
        assert_eq!(back, data);
        assert!(report.crc_ok);
        // The raw channel really was damaged.
        assert!(report.corrected_bits > 0);
    }

    #[test]
    fn hamming_flags_a_burst_longer_than_the_codeword_count() {
        let data = payload(16);
        let ecc = Ecc::Hamming74;
        let mut coded = encode(&data, &ecc).unwrap();
        let codewords = (data.len() + 4) * 2;
        // One codeword-count-sized burst is the exact repair ceiling; a
        // burst half again as long lands a second flip in some codewords,
        // which Hamming(7,4) miscorrects and the CRC must catch.
        for bit in 0..codewords + codewords / 2 {
            coded[bit / 8] ^= 1 << (bit % 8);
        }
        let (_, report) = decode(&coded, data.len(), &ecc).unwrap();
        assert!(!report.crc_ok);
    }

    /// Seeded random flips at rate `ber` over the coded stream — the
    /// measurement behind the [`Ecc::for_ber`] brackets.
    fn decodes_under_ber(ecc: Ecc, ber: f64, seed: u64) -> bool {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let data = payload(32);
        let mut coded = encode(&data, &ecc).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for bit in 0..coded.len() * 8 {
            if rng.random_bool(ber) {
                coded[bit / 8] ^= 1 << (bit % 8);
            }
        }
        let (back, report) = decode(&coded, data.len(), &ecc).unwrap();
        report.crc_ok && back == data
    }

    #[test]
    fn for_ber_budgets_hold_at_their_rated_ber() {
        // Ceilings are probabilistic: at the rated BER a budget must
        // decode the large majority of (seeded, deterministic) channel
        // draws, and comfortably below it all of them.
        let survival = |ecc: Ecc, ber: f64| -> usize {
            (0..10u64)
                .filter(|&s| decodes_under_ber(ecc, ber, s))
                .count()
        };
        assert_eq!(survival(Ecc::for_ber(0.002), 0.002), 10);
        assert!(survival(Ecc::for_ber(0.01), 0.01) >= 8);
        assert!(survival(Ecc::for_ber(0.04), 0.04) >= 8);
        assert!(survival(Ecc::for_ber(0.10), 0.10) >= 8);
        // The cheap budget must NOT be rated for the harsh channel —
        // otherwise the adaptive ladder is pointless.
        assert!(survival(Ecc::Hamming74, 0.10) <= 2);
    }

    #[test]
    fn validation_errors() {
        assert!(encode(&[], &Ecc::Hamming74).is_err());
        assert!(encode(&[1], &Ecc::Repetition { copies: 2 }).is_err());
        assert!(encode(&[1], &Ecc::Repetition { copies: 1 }).is_err());
        let coded = encode(&[1, 2], &Ecc::Hamming74).unwrap();
        assert!(decode(&coded[..2], 2, &Ecc::Hamming74).is_err());
    }
}
