//! Capacity planning: how much data fits in a model before training
//! starts.
//!
//! The §IV-A preprocessing "estimates the number of images that can be
//! encoded based on the parameter amount and image size"; these helpers
//! expose that estimate (and the resulting embedding rate) as a
//! first-class report so an adversary — or an auditor reasoning about
//! worst-case leakage — can compute it without building a layout.

use qce_nn::Network;

use crate::{AttackError, GroupSpec, Result};

/// The carrying capacity of a network under a given grouping.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityReport {
    /// Total `Weight`-kind scalars in the model.
    pub total_weights: usize,
    /// Weights inside groups with `λ > 0` (the usable carrier).
    pub encodable_weights: usize,
    /// Pixels per target image.
    pub image_pixels: usize,
    /// Whole images that fit (`⌊encodable / pixels⌋`).
    pub max_images: usize,
    /// Per-group `(weights, images)` breakdown, in spec order.
    pub per_group: Vec<(usize, usize)>,
}

impl CapacityReport {
    /// Fraction of the model's weights used as carrier.
    pub fn carrier_fraction(&self) -> f32 {
        if self.total_weights == 0 {
            return 0.0;
        }
        self.encodable_weights as f32 / self.total_weights as f32
    }

    /// Fraction of the encodable weights actually filled by whole images.
    pub fn utilization(&self) -> f32 {
        if self.encodable_weights == 0 {
            return 0.0;
        }
        (self.max_images * self.image_pixels) as f32 / self.encodable_weights as f32
    }

    /// Payload bits (8 per pixel) per carrier weight bit (32 per f32) —
    /// the embedding rate; 0.25 means one payload byte rides in every
    /// four carrier bytes.
    pub fn embedding_rate(&self) -> f32 {
        if self.encodable_weights == 0 {
            return 0.0;
        }
        (self.max_images * self.image_pixels * 8) as f32 / (self.encodable_weights * 32) as f32
    }
}

/// Computes the capacity of `net` under `specs` for `image_pixels`-pixel
/// targets.
///
/// # Errors
///
/// Returns [`AttackError::InvalidGroups`] for out-of-range ordinals or
/// [`AttackError::NoCapacity`] when `image_pixels` is zero.
///
/// # Examples
///
/// ```
/// use qce_attack::{capacity, GroupSpec};
/// use qce_nn::models::ResNetLite;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = ResNetLite::builder()
///     .input(3, 8).classes(4).stage_channels(&[8, 16]).blocks_per_stage(1)
///     .build(1)?;
/// let specs = GroupSpec::uniform(net.weight_slots().len(), 5.0);
/// let report = capacity::plan_capacity(&net, &specs, 192)?;
/// assert!(report.max_images > 0);
/// assert!(report.carrier_fraction() > 0.99); // uniform uses everything
/// # Ok(())
/// # }
/// ```
pub fn plan_capacity(
    net: &Network,
    specs: &[GroupSpec],
    image_pixels: usize,
) -> Result<CapacityReport> {
    if image_pixels == 0 {
        return Err(AttackError::NoCapacity {
            weights: net.num_weights(),
            image_pixels,
        });
    }
    let slots = net.weight_slots();
    let mut encodable = 0usize;
    let mut per_group = Vec::with_capacity(specs.len());
    for spec in specs {
        let mut weights = 0usize;
        for &o in &spec.ordinals {
            let slot = slots.get(o).ok_or_else(|| AttackError::InvalidGroups {
                reason: format!("ordinal {o} out of range ({} slots)", slots.len()),
            })?;
            weights += slot.len;
        }
        let images = if spec.lambda > 0.0 {
            weights / image_pixels
        } else {
            0
        };
        if spec.lambda > 0.0 {
            encodable += weights;
        }
        per_group.push((weights, images));
    }
    let max_images = per_group.iter().map(|&(_, n)| n).sum();
    Ok(CapacityReport {
        total_weights: net.num_weights(),
        encodable_weights: encodable,
        image_pixels,
        max_images,
        per_group,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qce_nn::models::ResNetLite;

    fn net() -> Network {
        ResNetLite::builder()
            .input(3, 8)
            .classes(4)
            .stage_channels(&[8, 16])
            .blocks_per_stage(1)
            .build(1)
            .unwrap()
    }

    #[test]
    fn uniform_capacity_counts_everything() {
        let n = net();
        let specs = GroupSpec::uniform(n.weight_slots().len(), 3.0);
        let r = plan_capacity(&n, &specs, 192).unwrap();
        assert_eq!(r.total_weights, n.num_weights());
        assert_eq!(r.encodable_weights, n.num_weights());
        assert_eq!(r.max_images, n.num_weights() / 192);
        assert!(r.utilization() > 0.9);
        assert!(r.embedding_rate() > 0.2 && r.embedding_rate() <= 0.25);
    }

    #[test]
    fn zero_lambda_groups_carry_nothing() {
        let n = net();
        let total = n.weight_slots().len();
        let specs = GroupSpec::paper_thirds(total, [0.0, 0.0, 5.0]);
        let r = plan_capacity(&n, &specs, 192).unwrap();
        assert_eq!(r.per_group[0].1, 0);
        assert_eq!(r.per_group[1].1, 0);
        assert!(r.per_group[2].1 > 0);
        assert!(r.carrier_fraction() < 1.0);
        // Group breakdown sums match.
        let group_weights: usize = r.per_group.iter().map(|&(w, _)| w).sum();
        assert_eq!(group_weights, r.total_weights);
    }

    #[test]
    fn capacity_matches_layout_plan() {
        // The capacity estimate and the actual layout agree.
        use crate::EncodingLayout;
        use qce_data::SynthCifar;
        let n = net();
        let total = n.weight_slots().len();
        let specs = GroupSpec::uniform(total, 2.0);
        let report = plan_capacity(&n, &specs, 192).unwrap();
        let images = SynthCifar::new(8)
            .generate(report.max_images + 50, 3)
            .unwrap();
        let layout = EncodingLayout::plan(&n, &specs, images.images()).unwrap();
        assert_eq!(layout.total_encoded_images(), report.max_images);
    }

    #[test]
    fn validation_errors() {
        let n = net();
        assert!(plan_capacity(&n, &GroupSpec::uniform(2, 1.0), 0).is_err());
        let bad = vec![GroupSpec::new(1.0, vec![999])];
        assert!(matches!(
            plan_capacity(&n, &bad, 192),
            Err(AttackError::InvalidGroups { .. })
        ));
    }

    #[test]
    fn empty_specs_have_zero_capacity() {
        let n = net();
        let r = plan_capacity(&n, &[], 192).unwrap();
        assert_eq!(r.max_images, 0);
        assert_eq!(r.carrier_fraction(), 0.0);
        assert_eq!(r.utilization(), 0.0);
        assert_eq!(r.embedding_rate(), 0.0);
    }
}
