use qce_nn::{Network, Regularizer};

use crate::correlation::{correlation_penalty, SignConvention};
use crate::EncodingLayout;

/// The malicious regularizer of the attack flow: Eq. 2's layer-wise
/// correlation term, packaged as an innocuous-looking
/// [`qce_nn::Regularizer`].
///
/// Per mini-batch it reads the network's flat weights, computes
/// `C = -Σ_k λ_k · ρ̂(θ_k, s_k) · P_k` over the planned groups, and
/// injects the analytic gradient back into the weight gradients. With a
/// single uniform group this is exactly the original CCS'17 attack
/// (Eq. 1).
///
/// # Examples
///
/// ```
/// use qce_attack::{CorrelationRegularizer, EncodingLayout, GroupSpec};
/// use qce_attack::correlation::SignConvention;
/// use qce_data::SynthCifar;
/// use qce_nn::models::ResNetLite;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = ResNetLite::builder()
///     .input(3, 8).classes(4).stage_channels(&[8, 16]).blocks_per_stage(1)
///     .build(1)?;
/// let data = SynthCifar::new(8).generate(30, 2)?;
/// let specs = GroupSpec::uniform(net.weight_slots().len(), 3.0);
/// let layout = EncodingLayout::plan(&net, &specs, data.images())?;
/// let reg = CorrelationRegularizer::new(layout, SignConvention::Positive);
/// assert_eq!(reg.layout().total_encoded_images(), reg.layout().encoded_images().len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CorrelationRegularizer {
    layout: EncodingLayout,
    sign: SignConvention,
    warmup: bool,
    ramp: f32,
    backoff: f32,
    last_penalty: f32,
    last_correlations: Vec<f32>,
}

impl CorrelationRegularizer {
    /// Creates the regularizer from a planned layout.
    pub fn new(layout: EncodingLayout, sign: SignConvention) -> Self {
        let n_groups = layout.groups().len();
        CorrelationRegularizer {
            layout,
            sign,
            warmup: false,
            ramp: 1.0,
            backoff: 1.0,
            last_penalty: 0.0,
            last_correlations: vec![0.0; n_groups],
        }
    }

    /// Enables the linear warmup ramp: epoch `e` of `E` trains at
    /// `λ·(e+1)/E`, so the task features form before the encoding
    /// pressure peaks. The final epoch always runs at full strength, so
    /// the released weights still reach the planned correlation.
    pub fn with_warmup(mut self) -> Self {
        self.warmup = true;
        self
    }

    /// Current multiplier on every group's `λ` (warmup ramp × divergence
    /// backoff).
    pub fn strength(&self) -> f32 {
        self.ramp * self.backoff
    }

    /// The encoding plan this regularizer drives.
    pub fn layout(&self) -> &EncodingLayout {
        &self.layout
    }

    /// The sign convention in use.
    pub fn sign(&self) -> SignConvention {
        self.sign
    }

    /// Penalty value of the most recent [`Regularizer::apply`] call.
    pub fn last_penalty(&self) -> f32 {
        self.last_penalty
    }

    /// Per-group Pearson correlations at the most recent apply (0 for
    /// groups that encode nothing).
    pub fn last_correlations(&self) -> &[f32] {
        &self.last_correlations
    }
}

impl Regularizer for CorrelationRegularizer {
    fn apply(&mut self, net: &mut Network) -> qce_nn::Result<f32> {
        let flat = net.flat_weights();
        let mut grad_acc = vec![0.0f32; flat.len()];
        let mut penalty = 0.0f32;
        for (gi, group) in self.layout.groups().iter().enumerate() {
            self.last_correlations[gi] = 0.0;
            if group.lambda() <= 0.0 || group.target().is_empty() {
                continue;
            }
            let stream = group.extract(&flat);
            let n = group.target().len().min(stream.len());
            let theta = &stream[..n];
            let s = &group.target()[..n];
            let lambda = group.lambda() * self.strength();
            let (c, grad) = correlation_penalty(theta, s, lambda, self.sign);
            self.last_correlations[gi] = crate::correlation::correlation(theta, s);
            let share = group.share();
            penalty += c * share;
            let scaled: Vec<f32> = grad.iter().map(|&g| g * share).collect();
            group.scatter_add(&scaled, &mut grad_acc);
        }
        net.add_flat_weight_grads(&grad_acc)?;
        self.last_penalty = penalty;
        // Per-group correlation gauges are observational diagnostics; the
        // gauge lookup walks a registry shard, so only pay for it while a
        // trace sink is attached or logging is at debug.
        if qce_telemetry::collect_enabled() {
            qce_telemetry::gauge("attack.penalty").set(f64::from(penalty));
            for (gi, rho) in self.last_correlations.iter().enumerate() {
                qce_telemetry::gauge(&format!("attack.rho.g{gi}")).set(f64::from(*rho));
            }
        }
        Ok(penalty)
    }

    fn on_epoch(&mut self, epoch: usize, total_epochs: usize) {
        if self.warmup {
            self.ramp = (epoch + 1) as f32 / total_epochs.max(1) as f32;
        }
    }

    fn on_divergence(&mut self) {
        self.backoff *= 0.5;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GroupSpec;
    use qce_data::SynthCifar;
    use qce_nn::models::ResNetLite;
    use qce_nn::{Mode, ParamKind};
    use qce_tensor::Tensor;

    fn setup(lambda: f32) -> (Network, CorrelationRegularizer) {
        let net = ResNetLite::builder()
            .input(3, 8)
            .classes(4)
            .stage_channels(&[8, 16])
            .blocks_per_stage(1)
            .build(1)
            .unwrap();
        let data = SynthCifar::new(8).generate(40, 2).unwrap();
        let specs = GroupSpec::uniform(net.weight_slots().len(), lambda);
        let layout = EncodingLayout::plan(&net, &specs, data.images()).unwrap();
        let reg = CorrelationRegularizer::new(layout, SignConvention::Positive);
        (net, reg)
    }

    #[test]
    fn apply_adds_weight_gradients_only() {
        let (mut net, mut reg) = setup(3.0);
        net.zero_grad();
        let penalty = reg.apply(&mut net).unwrap();
        assert!(penalty.abs() > 0.0 || reg.last_correlations()[0].abs() < 1e-3);
        let has_weight_grad = net
            .params()
            .iter()
            .filter(|p| p.kind() == ParamKind::Weight)
            .any(|p| p.grad().squared_norm() > 0.0);
        assert!(has_weight_grad);
        for p in net.params() {
            if p.kind() != ParamKind::Weight {
                assert_eq!(p.grad().squared_norm(), 0.0);
            }
        }
    }

    #[test]
    fn pure_regularizer_descent_encodes_images() {
        // Gradient-descend the penalty alone: correlation should approach 1.
        let (mut net, mut reg) = setup(1.0);
        for _ in 0..300 {
            net.zero_grad();
            reg.apply(&mut net).unwrap();
            let mut params = net.params_mut();
            for p in params.iter_mut() {
                if p.kind() == ParamKind::Weight {
                    let grad = p.grad().clone();
                    p.value_mut().axpy(-2.0, &grad).unwrap();
                }
            }
        }
        net.zero_grad();
        reg.apply(&mut net).unwrap();
        let rho = reg.last_correlations()[0];
        assert!(rho > 0.9, "correlation only reached {rho}");
        assert!(reg.last_penalty() < -0.8);
    }

    #[test]
    fn zero_lambda_is_inert() {
        let net0 = ResNetLite::builder()
            .input(3, 8)
            .classes(4)
            .stage_channels(&[8, 16])
            .blocks_per_stage(1)
            .build(1)
            .unwrap();
        let data = SynthCifar::new(8).generate(40, 2).unwrap();
        let total = net0.weight_slots().len();
        // Group 0 has lambda 0; group 1 carries the attack.
        let specs = vec![
            GroupSpec::new(0.0, (0..total / 2).collect()),
            GroupSpec::new(2.0, (total / 2..total).collect()),
        ];
        let layout = EncodingLayout::plan(&net0, &specs, data.images()).unwrap();
        let mut net = net0;
        let mut reg = CorrelationRegularizer::new(layout, SignConvention::Positive);
        net.zero_grad();
        reg.apply(&mut net).unwrap();
        // Group 0's weights received no gradient.
        let flat_grads: Vec<f32> = {
            let mut acc = Vec::new();
            for p in net.params() {
                if p.kind() == ParamKind::Weight {
                    acc.extend_from_slice(p.grad().as_slice());
                }
            }
            acc
        };
        let g0 = reg.layout().groups()[0].extract(&flat_grads);
        assert!(g0.iter().all(|&g| g == 0.0));
        let g1 = reg.layout().groups()[1].extract(&flat_grads);
        assert!(g1.iter().any(|&g| g != 0.0));
    }

    #[test]
    fn works_as_trainer_regularizer() {
        let (mut net, mut reg) = setup(2.0);
        // One forward/backward plus regularizer, as the trainer does.
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        net.zero_grad();
        let y = net.forward(&x, Mode::Train).unwrap();
        let out = qce_nn::loss::softmax_cross_entropy(&y, &[0, 1]).unwrap();
        net.backward(&out.grad).unwrap();
        let p = Regularizer::apply(&mut reg, &mut net).unwrap();
        assert!(p.is_finite());
    }
}
