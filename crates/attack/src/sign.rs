//! The sign encoding attack of §II-B: a penalty term that forces the
//! *sign* of each parameter to carry one payload bit.
//!
//! Capacity is one bit per parameter — far below the correlation attack's
//! eight-plus bits — but the encoding survives any quantization that
//! preserves signs, which makes it a useful robustness baseline in the
//! `ablations` bench.

use qce_nn::{Network, Regularizer};

use crate::{AttackError, Result};

/// Converts a byte payload to the ±1 sign targets of the penalty term
/// (bit 1 → +1, bit 0 → −1), LSB-first within each byte.
pub fn payload_to_signs(payload: &[u8]) -> Vec<f32> {
    let mut out = Vec::with_capacity(payload.len() * 8);
    for &byte in payload {
        for b in 0..8 {
            out.push(if (byte >> b) & 1 == 1 { 1.0 } else { -1.0 });
        }
    }
    out
}

/// Reads the payload back from weight signs (non-negative → bit 1).
///
/// # Errors
///
/// Returns [`AttackError::PayloadTooLarge`] if fewer than
/// `payload_len * 8` weights are available.
pub fn extract(weights: &[f32], payload_len: usize) -> Result<Vec<u8>> {
    let needed = payload_len * 8;
    if weights.len() < needed {
        return Err(AttackError::PayloadTooLarge {
            capacity_bits: weights.len(),
            needed_bits: needed,
        });
    }
    let mut payload = vec![0u8; payload_len];
    for (i, &w) in weights.iter().take(needed).enumerate() {
        if w >= 0.0 {
            payload[i / 8] |= 1 << (i % 8);
        }
    }
    Ok(payload)
}

/// The training-time penalty `P(θ, b) = (λ/n)·Σ max(0, m - θᵢ·bᵢ)`: a
/// hinge that pushes each of the first `n` weights toward the sign of its
/// payload bit with margin `m`.
///
/// A zero margin leaves encoded weights hugging zero, where the first
/// quantizer bin straddling the origin flips half the bits; the default
/// margin of 0.05 keeps the encoding robust to the codebook quantizers in
/// `qce-quant` (see the `attacks` integration test).
#[derive(Debug, Clone)]
pub struct SignEncodingRegularizer {
    signs: Vec<f32>,
    lambda: f32,
    margin: f32,
}

impl SignEncodingRegularizer {
    /// Creates the regularizer for a byte payload with the default margin
    /// of 0.05.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InconsistentImages`] for an empty payload or
    /// non-positive `lambda`.
    pub fn new(payload: &[u8], lambda: f32) -> Result<Self> {
        Self::with_margin(payload, lambda, 0.05)
    }

    /// Creates the regularizer with an explicit hinge margin.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InconsistentImages`] for an empty payload,
    /// non-positive `lambda` or negative `margin`.
    pub fn with_margin(payload: &[u8], lambda: f32, margin: f32) -> Result<Self> {
        if payload.is_empty() || lambda <= 0.0 || margin < 0.0 {
            return Err(AttackError::InconsistentImages {
                reason: "sign encoding needs a payload, positive lambda and non-negative margin"
                    .to_string(),
            });
        }
        Ok(SignEncodingRegularizer {
            signs: payload_to_signs(payload),
            lambda,
            margin,
        })
    }

    /// Number of payload bits.
    pub fn bits(&self) -> usize {
        self.signs.len()
    }

    /// The hinge margin.
    pub fn margin(&self) -> f32 {
        self.margin
    }
}

impl Regularizer for SignEncodingRegularizer {
    fn apply(&mut self, net: &mut Network) -> qce_nn::Result<f32> {
        let flat = net.flat_weights();
        let n = self.signs.len().min(flat.len());
        let mut grad = vec![0.0f32; flat.len()];
        let mut penalty = 0.0f32;
        let scale = self.lambda / n.max(1) as f32;
        for i in 0..n {
            let violation = self.margin - flat[i] * self.signs[i];
            if violation > 0.0 {
                penalty += scale * violation;
                grad[i] = -scale * self.signs[i];
            }
        }
        net.add_flat_weight_grads(&grad)?;
        Ok(penalty)
    }
}

/// Fraction of payload bits currently readable from the weights.
///
/// # Panics
///
/// Panics if `weights` is shorter than the payload needs.
pub fn sign_agreement(weights: &[f32], payload: &[u8]) -> f64 {
    let signs = payload_to_signs(payload);
    assert!(weights.len() >= signs.len());
    if signs.is_empty() {
        return 1.0;
    }
    let agree = signs
        .iter()
        .zip(weights.iter())
        .filter(|(&s, &w)| (w >= 0.0) == (s > 0.0))
        .count();
    agree as f64 / signs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use qce_nn::models::ResNetLite;
    use qce_nn::ParamKind;

    #[test]
    fn payload_sign_round_trip() {
        let payload = vec![0b1010_0101u8, 0xFF, 0x00];
        let signs = payload_to_signs(&payload);
        assert_eq!(signs.len(), 24);
        assert_eq!(signs[0], 1.0); // LSB of 0xA5 is 1
        assert_eq!(signs[1], -1.0);
        let back = extract(&signs, 3).unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn extract_capacity_checked() {
        assert!(extract(&[1.0; 7], 1).is_err());
    }

    #[test]
    fn regularizer_drives_signs_to_payload() {
        let mut net = ResNetLite::builder()
            .input(1, 8)
            .classes(2)
            .stage_channels(&[4, 8])
            .blocks_per_stage(1)
            .build(3)
            .unwrap();
        let payload: Vec<u8> = (0..64).map(|i| (i * 91 + 7) as u8).collect();
        let mut reg = SignEncodingRegularizer::new(&payload, 10.0).unwrap();
        let before = sign_agreement(&net.flat_weights(), &payload);
        for _ in 0..400 {
            net.zero_grad();
            reg.apply(&mut net).unwrap();
            let mut params = net.params_mut();
            for p in params.iter_mut() {
                if p.kind() == ParamKind::Weight {
                    let g = p.grad().clone();
                    p.value_mut().axpy(-0.5, &g).unwrap();
                }
            }
        }
        let after = sign_agreement(&net.flat_weights(), &payload);
        assert!(after > 0.99, "agreement {before} -> {after}");
        let extracted = extract(&net.flat_weights(), payload.len()).unwrap();
        assert_eq!(extracted, payload);
    }

    #[test]
    fn penalty_zero_when_aligned() {
        let payload = vec![0xFFu8]; // all +1 targets
        let mut reg = SignEncodingRegularizer::new(&payload, 5.0).unwrap();
        let mut net = ResNetLite::builder()
            .input(1, 8)
            .classes(2)
            .stage_channels(&[4])
            .blocks_per_stage(1)
            .build(4)
            .unwrap();
        // Force the first 8 weights positive with margin to spare.
        let mut flat = net.flat_weights();
        for w in flat.iter_mut().take(8) {
            *w = w.abs() + 0.1;
        }
        net.set_flat_weights(&flat).unwrap();
        net.zero_grad();
        let p = reg.apply(&mut net).unwrap();
        assert_eq!(p, 0.0);
    }

    #[test]
    fn constructor_validation() {
        assert!(SignEncodingRegularizer::new(&[], 1.0).is_err());
        assert!(SignEncodingRegularizer::new(&[1], 0.0).is_err());
        assert!(SignEncodingRegularizer::with_margin(&[1], 1.0, -0.1).is_err());
        assert_eq!(
            SignEncodingRegularizer::new(&[1], 1.0).unwrap().margin(),
            0.05
        );
    }
}
