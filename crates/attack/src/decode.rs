use qce_data::Image;
use qce_tensor::stats;

use crate::correlation::SignConvention;
use crate::{AttackError, EncodingLayout, Result};

/// One image extracted from a released model.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedImage {
    /// The reconstructed image.
    pub image: Image,
    /// Index of the group it was decoded from.
    pub group: usize,
    /// Index into the planner's target image list (identifies the original
    /// for evaluation).
    pub target_index: usize,
}

/// The white-box extraction step: given the released model's flat weights
/// and the (architecture-derived) [`EncodingLayout`], remap each encoded
/// weight chunk back to `[0, 255]` pixel values.
///
/// The remap is the paper's "simply remapping these parameters to values
/// in the range of [0, 255]": a linear map anchored at robust (0.5% /
/// 99.5%) percentiles of the group's encoded weight stream, which the
/// affine-invariance of the correlation objective makes exact up to noise.
///
/// # Examples
///
/// ```
/// use qce_attack::correlation::SignConvention;
/// use qce_attack::{Decoder, EncodingLayout, GroupSpec};
/// use qce_data::SynthCifar;
/// use qce_nn::models::ResNetLite;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = ResNetLite::builder()
///     .input(3, 8).classes(4).stage_channels(&[8, 16]).blocks_per_stage(1)
///     .build(1)?;
/// let data = SynthCifar::new(8).generate(30, 2)?;
/// let specs = GroupSpec::uniform(net.weight_slots().len(), 3.0);
/// let layout = EncodingLayout::plan(&net, &specs, data.images())?;
/// let decoder = Decoder::new(layout, SignConvention::Positive);
/// let decoded = decoder.decode(&net.flat_weights())?;
/// assert_eq!(decoded.len(), decoder.layout().total_encoded_images());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Decoder {
    layout: EncodingLayout,
    sign: SignConvention,
}

impl Decoder {
    /// Creates a decoder for a planned layout.
    pub fn new(layout: EncodingLayout, sign: SignConvention) -> Self {
        Decoder { layout, sign }
    }

    /// The layout this decoder extracts against.
    pub fn layout(&self) -> &EncodingLayout {
        &self.layout
    }

    /// The sign convention the encoder used.
    pub fn sign(&self) -> SignConvention {
        self.sign
    }

    /// Decodes every encoded image, assuming positive weight–pixel
    /// polarity (always correct under [`SignConvention::Positive`]).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::LayoutMismatch`] if `flat_weights` does not
    /// match the layout.
    pub fn decode(&self, flat_weights: &[f32]) -> Result<Vec<DecodedImage>> {
        self.layout.check_flat(flat_weights)?;
        let mut out = Vec::with_capacity(self.layout.total_encoded_images());
        for gi in 0..self.layout.groups().len() {
            out.extend(self.decode_group(flat_weights, gi, false)?);
        }
        Ok(out)
    }

    /// Decodes the images of one group with an explicit polarity (`flip =
    /// true` inverts the weight→pixel map, needed when
    /// [`SignConvention::Absolute`] trained an anti-correlated group).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::LayoutMismatch`] for a non-matching weight
    /// vector or [`AttackError::InvalidGroups`] for an unknown group.
    pub fn decode_group(
        &self,
        flat_weights: &[f32],
        group: usize,
        flip: bool,
    ) -> Result<Vec<DecodedImage>> {
        self.layout.check_flat(flat_weights)?;
        let g = self
            .layout
            .groups()
            .get(group)
            .ok_or_else(|| AttackError::InvalidGroups {
                reason: format!("group {group} out of range"),
            })?;
        let (c, h, w) = self.layout.geometry();
        let px = self.layout.image_pixels();
        let n_images = g.image_indices().len();
        if n_images == 0 {
            return Ok(Vec::new());
        }
        let stream = g.extract(flat_weights);
        let encoded = &stream[..(n_images * px).min(stream.len())];
        // Robust group-level affine anchors.
        let lo = stats::quantile(encoded, 0.005).unwrap_or(0.0);
        let hi = stats::quantile(encoded, 0.995).unwrap_or(1.0);
        let span = (hi - lo).max(f32::EPSILON);
        let mut out = Vec::with_capacity(n_images);
        for (k, &target_index) in g.image_indices().iter().enumerate() {
            let chunk = &encoded[k * px..(k + 1) * px];
            let pixels: Vec<f32> = chunk
                .iter()
                .map(|&wv| {
                    let t = ((wv - lo) / span).clamp(0.0, 1.0);
                    let t = if flip { 1.0 - t } else { t };
                    t * 255.0
                })
                .collect();
            let image =
                Image::from_f32(&pixels, c, h, w).map_err(|e| AttackError::InconsistentImages {
                    reason: format!("decoded image build failed: {e}"),
                })?;
            out.push(DecodedImage {
                image,
                group,
                target_index,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GroupSpec;
    use qce_data::SynthCifar;
    use qce_nn::models::ResNetLite;
    use qce_nn::Network;

    fn setup() -> (Network, EncodingLayout, Vec<Image>) {
        let net = ResNetLite::builder()
            .input(3, 8)
            .classes(4)
            .stage_channels(&[8, 16])
            .blocks_per_stage(1)
            .build(1)
            .unwrap();
        let data = SynthCifar::new(8).generate(40, 2).unwrap();
        let images = data.images().to_vec();
        let specs = GroupSpec::uniform(net.weight_slots().len(), 3.0);
        let layout = EncodingLayout::plan(&net, &specs, &images).unwrap();
        (net, layout, images)
    }

    /// Builds a flat weight vector that encodes the targets perfectly
    /// (affine map pixel -> weight), leaving other weights untouched.
    fn perfectly_encoded(net: &Network, layout: &EncodingLayout, scale: f32, offset: f32) -> Vec<f32> {
        let mut flat = net.flat_weights();
        for g in layout.groups() {
            let mut values = g.extract(&flat);
            for (i, &p) in g.target().iter().enumerate() {
                values[i] = scale * p + offset;
            }
            // Write back via scatter into a fresh buffer, then overwrite.
            let mut acc = vec![0.0f32; flat.len()];
            g.scatter_add(&values, &mut acc);
            for &(off, len) in g.flat_ranges() {
                flat[off..off + len].copy_from_slice(&acc[off..off + len]);
            }
        }
        flat
    }

    #[test]
    fn perfect_encoding_decodes_with_tiny_error() {
        let (net, layout, images) = setup();
        let flat = perfectly_encoded(&net, &layout, 0.001, -0.12);
        let decoder = Decoder::new(layout, SignConvention::Positive);
        let decoded = decoder.decode(&flat).unwrap();
        assert!(!decoded.is_empty());
        for d in &decoded {
            let orig = &images[d.target_index];
            let err: f32 = orig
                .to_f32()
                .iter()
                .zip(d.image.to_f32().iter())
                .map(|(a, b)| (a - b).abs())
                .sum::<f32>()
                / orig.num_pixels() as f32;
            assert!(err < 6.0, "image {} MAPE {err}", d.target_index);
        }
    }

    #[test]
    fn negative_scale_needs_flip() {
        let (net, layout, images) = setup();
        let flat = perfectly_encoded(&net, &layout, -0.001, 0.3);
        let decoder = Decoder::new(layout, SignConvention::Absolute);
        let straight = decoder.decode_group(&flat, 0, false).unwrap();
        let flipped = decoder.decode_group(&flat, 0, true).unwrap();
        let mape = |d: &DecodedImage| {
            let orig = &images[d.target_index];
            orig.to_f32()
                .iter()
                .zip(d.image.to_f32().iter())
                .map(|(a, b)| (a - b).abs())
                .sum::<f32>()
                / orig.num_pixels() as f32
        };
        assert!(mape(&flipped[0]) < 6.0);
        assert!(mape(&straight[0]) > mape(&flipped[0]));
    }

    #[test]
    fn decode_validates_layout() {
        let (_, layout, _) = setup();
        let decoder = Decoder::new(layout, SignConvention::Positive);
        assert!(matches!(
            decoder.decode(&[0.0, 1.0]),
            Err(AttackError::LayoutMismatch { .. })
        ));
    }

    #[test]
    fn decode_group_out_of_range() {
        let (net, layout, _) = setup();
        let decoder = Decoder::new(layout, SignConvention::Positive);
        assert!(decoder
            .decode_group(&net.flat_weights(), 99, false)
            .is_err());
    }

    #[test]
    fn decoded_geometry_matches_targets() {
        let (net, layout, images) = setup();
        let decoder = Decoder::new(layout, SignConvention::Positive);
        let decoded = decoder.decode(&net.flat_weights()).unwrap();
        for d in &decoded {
            assert_eq!(d.image.channels(), images[d.target_index].channels());
            assert_eq!(d.image.height(), images[d.target_index].height());
        }
    }
}
