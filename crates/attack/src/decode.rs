use qce_data::Image;
use qce_tensor::par::{self, Pool};
use qce_tensor::stats::{self, Histogram};

use crate::correlation::SignConvention;
use crate::{AttackError, EncodingLayout, Result};

/// One image extracted from a released model.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedImage {
    /// The reconstructed image.
    pub image: Image,
    /// Index of the group it was decoded from.
    pub group: usize,
    /// Index into the planner's target image list (identifies the original
    /// for evaluation).
    pub target_index: usize,
}

/// How well one image survived a perturbed release.
#[derive(Debug, Clone, PartialEq)]
pub enum ImageStatus {
    /// Every carrier weight was present and finite.
    Ok,
    /// Some carrier weights were missing or non-finite and were repaired
    /// with the group median before remapping.
    Degraded {
        /// Number of pixels decoded from repaired weights.
        repaired_pixels: usize,
    },
    /// The image could not be decoded at all.
    Failed {
        /// Why decoding gave up on this image.
        reason: String,
    },
}

impl ImageStatus {
    /// Whether an image was produced (possibly degraded).
    pub fn is_decoded(&self) -> bool {
        !matches!(self, ImageStatus::Failed { .. })
    }
}

/// One image slot of a resilient decode: always present, even when the
/// image itself could not be reconstructed.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientImage {
    /// Index into the planner's target image list.
    pub target_index: usize,
    /// Index of the group it was decoded from.
    pub group: usize,
    /// Decode outcome for this slot.
    pub status: ImageStatus,
    /// The reconstructed image (`None` only when `status` is `Failed`).
    pub image: Option<Image>,
}

/// Per-group diagnostics of a resilient decode.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeDiagnostics {
    /// Group index.
    pub group: usize,
    /// Whether the weight→pixel map was inverted (polarity disambiguation
    /// under [`SignConvention::Absolute`]).
    pub flipped: bool,
    /// Histogram agreement between the decoded pixels and the group's
    /// planned target stream, in `[0, 1]` (1 = identical 16-bin
    /// histograms). Low values signal a damaged or benign release.
    pub confidence: f32,
    /// Fraction of the group's carrier weights that were present and
    /// finite.
    pub finite_fraction: f32,
    /// Whether the released weight vector was shorter than the plan.
    pub truncated: bool,
}

/// Everything a [`Decoder::decode_resilient`] call produces: one entry per
/// planned image (decoded, degraded or failed) plus per-group diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientDecode {
    /// One slot per planned image, in encoding order.
    pub images: Vec<ResilientImage>,
    /// One diagnostics record per encoding group (groups that encode
    /// nothing are skipped).
    pub diagnostics: Vec<DecodeDiagnostics>,
}

impl ResilientDecode {
    /// Number of images decoded cleanly.
    pub fn ok_count(&self) -> usize {
        self.images
            .iter()
            .filter(|i| matches!(i.status, ImageStatus::Ok))
            .count()
    }

    /// Number of images decoded from repaired carriers.
    pub fn degraded_count(&self) -> usize {
        self.images
            .iter()
            .filter(|i| matches!(i.status, ImageStatus::Degraded { .. }))
            .count()
    }

    /// Number of image slots that produced nothing.
    pub fn failed_count(&self) -> usize {
        self.images
            .iter()
            .filter(|i| matches!(i.status, ImageStatus::Failed { .. }))
            .count()
    }

    /// Mean per-group confidence (0 when no group decoded).
    pub fn mean_confidence(&self) -> f32 {
        if self.diagnostics.is_empty() {
            return 0.0;
        }
        self.diagnostics.iter().map(|d| d.confidence).sum::<f32>() / self.diagnostics.len() as f32
    }

    /// The successfully decoded images as plain [`DecodedImage`]s.
    pub fn decoded(&self) -> Vec<DecodedImage> {
        self.images
            .iter()
            .filter_map(|r| {
                r.image.as_ref().map(|img| DecodedImage {
                    image: img.clone(),
                    group: r.group,
                    target_index: r.target_index,
                })
            })
            .collect()
    }
}

/// The white-box extraction step: given the released model's flat weights
/// and the (architecture-derived) [`EncodingLayout`], remap each encoded
/// weight chunk back to `[0, 255]` pixel values.
///
/// The remap is the paper's "simply remapping these parameters to values
/// in the range of [0, 255]": a linear map anchored at robust (0.5% /
/// 99.5%) percentiles of the group's encoded weight stream, which the
/// affine-invariance of the correlation objective makes exact up to noise.
///
/// # Examples
///
/// ```
/// use qce_attack::correlation::SignConvention;
/// use qce_attack::{Decoder, EncodingLayout, GroupSpec};
/// use qce_data::SynthCifar;
/// use qce_nn::models::ResNetLite;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = ResNetLite::builder()
///     .input(3, 8).classes(4).stage_channels(&[8, 16]).blocks_per_stage(1)
///     .build(1)?;
/// let data = SynthCifar::new(8).generate(30, 2)?;
/// let specs = GroupSpec::uniform(net.weight_slots().len(), 3.0);
/// let layout = EncodingLayout::plan(&net, &specs, data.images())?;
/// let decoder = Decoder::new(layout, SignConvention::Positive);
/// let decoded = decoder.decode(&net.flat_weights())?;
/// assert_eq!(decoded.len(), decoder.layout().total_encoded_images());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Decoder {
    layout: EncodingLayout,
    sign: SignConvention,
}

impl Decoder {
    /// Creates a decoder for a planned layout.
    pub fn new(layout: EncodingLayout, sign: SignConvention) -> Self {
        Decoder { layout, sign }
    }

    /// The layout this decoder extracts against.
    pub fn layout(&self) -> &EncodingLayout {
        &self.layout
    }

    /// The sign convention the encoder used.
    pub fn sign(&self) -> SignConvention {
        self.sign
    }

    /// Decodes every encoded image, assuming positive weight–pixel
    /// polarity (always correct under [`SignConvention::Positive`]).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::LayoutMismatch`] if `flat_weights` does not
    /// match the layout.
    pub fn decode(&self, flat_weights: &[f32]) -> Result<Vec<DecodedImage>> {
        self.layout.check_flat(flat_weights)?;
        let mut out = Vec::with_capacity(self.layout.total_encoded_images());
        for gi in 0..self.layout.groups().len() {
            out.extend(self.decode_group(flat_weights, gi, false)?);
        }
        Ok(out)
    }

    /// Decodes the images of one group with an explicit polarity (`flip =
    /// true` inverts the weight→pixel map, needed when
    /// [`SignConvention::Absolute`] trained an anti-correlated group).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::LayoutMismatch`] for a non-matching weight
    /// vector or [`AttackError::InvalidGroups`] for an unknown group.
    pub fn decode_group(
        &self,
        flat_weights: &[f32],
        group: usize,
        flip: bool,
    ) -> Result<Vec<DecodedImage>> {
        self.layout.check_flat(flat_weights)?;
        let g = self
            .layout
            .groups()
            .get(group)
            .ok_or_else(|| AttackError::InvalidGroups {
                reason: format!("group {group} out of range"),
            })?;
        let (c, h, w) = self.layout.geometry();
        let px = self.layout.image_pixels();
        let n_images = g.image_indices().len();
        if n_images == 0 {
            return Ok(Vec::new());
        }
        let stream = g.extract(flat_weights);
        let encoded = &stream[..(n_images * px).min(stream.len())];
        // Robust group-level affine anchors.
        let lo = stats::quantile(encoded, 0.005).unwrap_or(0.0);
        let hi = stats::quantile(encoded, 0.995).unwrap_or(1.0);
        let span = (hi - lo).max(f32::EPSILON);
        let mut out = Vec::with_capacity(n_images);
        for (k, &target_index) in g.image_indices().iter().enumerate() {
            let chunk = &encoded[k * px..(k + 1) * px];
            let pixels: Vec<f32> = chunk
                .iter()
                .map(|&wv| {
                    let t = ((wv - lo) / span).clamp(0.0, 1.0);
                    let t = if flip { 1.0 - t } else { t };
                    t * 255.0
                })
                .collect();
            let image =
                Image::from_f32(&pixels, c, h, w).map_err(|e| AttackError::InconsistentImages {
                    reason: format!("decoded image build failed: {e}"),
                })?;
            out.push(DecodedImage {
                image,
                group,
                target_index,
            });
        }
        Ok(out)
    }

    /// Decodes a possibly perturbed release without ever erroring or
    /// panicking: every planned image gets a slot with an explicit
    /// [`ImageStatus`], missing or non-finite carrier weights are repaired
    /// with the group median, and each group's polarity is disambiguated
    /// automatically by the sign of the correlation between the carrier
    /// stream and the group's planned target stream (required under
    /// [`SignConvention::Absolute`], and a safety net against
    /// sign-inverting defenses for `Positive` releases).
    ///
    /// Use this instead of [`Decoder::decode`] whenever the released
    /// weights may have been pruned, noised, bit-flipped or truncated.
    pub fn decode_resilient(&self, flat_weights: &[f32]) -> ResilientDecode {
        self.decode_resilient_with(Pool::global(), flat_weights)
    }

    /// [`Decoder::decode_resilient`] on an explicit pool.
    ///
    /// Groups are independent (each reads its own carrier ranges and
    /// writes its own image slots), so they are decoded in parallel and
    /// the per-group results are concatenated in group order — the output
    /// is identical to the serial scan for any thread count. This is the
    /// hot path of `robustness_sweep`, which re-decodes the same release
    /// dozens of times at escalating fault severities.
    pub fn decode_resilient_with(&self, pool: &Pool, flat_weights: &[f32]) -> ResilientDecode {
        let active: Vec<usize> = self
            .layout
            .groups()
            .iter()
            .enumerate()
            .filter(|(_, g)| !g.image_indices().is_empty())
            .map(|(gi, _)| gi)
            .collect();
        let mut results: Vec<Option<GroupResilientDecode>> = active.iter().map(|_| None).collect();
        let items: Vec<(usize, &mut Option<GroupResilientDecode>)> =
            active.into_iter().zip(results.iter_mut()).collect();
        par::for_each_item(
            pool,
            items,
            || (),
            |(), _, (gi, slot)| {
                *slot = Some(self.decode_group_resilient(flat_weights, gi));
            },
        );
        let mut images = Vec::with_capacity(self.layout.total_encoded_images());
        let mut diagnostics = Vec::with_capacity(results.len());
        for r in results {
            let (imgs, diag) = r.expect("active group decoded");
            images.extend(imgs);
            diagnostics.push(diag);
        }
        let out = ResilientDecode {
            images,
            diagnostics,
        };
        qce_telemetry::counter("decode.ok").incr(out.ok_count() as u64);
        qce_telemetry::counter("decode.degraded").incr(out.degraded_count() as u64);
        qce_telemetry::counter("decode.failed").incr(out.failed_count() as u64);
        qce_telemetry::gauge("decode.confidence").set(f64::from(out.mean_confidence()));
        out
    }

    /// Resiliently decodes one group (see [`Decoder::decode_resilient`]).
    fn decode_group_resilient(&self, flat_weights: &[f32], gi: usize) -> GroupResilientDecode {
        let (c, h, w) = self.layout.geometry();
        let px = self.layout.image_pixels();
        let g = &self.layout.groups()[gi];
        let mut images = Vec::with_capacity(g.image_indices().len());
        let diagnostics;
        {
            let (stream, complete) = g.extract_lossy(flat_weights);
            let n_images = g.image_indices().len();
            let encoded = &stream[..(n_images * px).min(stream.len())];

            // Repair: non-finite carriers take the group's finite median so
            // the affine anchors and their neighbours stay usable.
            let finite: Vec<f32> = encoded.iter().copied().filter(|v| v.is_finite()).collect();
            let finite_fraction = if encoded.is_empty() {
                0.0
            } else {
                finite.len() as f32 / encoded.len() as f32
            };
            let median = stats::quantile(&finite, 0.5).unwrap_or(0.0);
            let repaired: Vec<bool> = encoded.iter().map(|v| !v.is_finite()).collect();
            let clean: Vec<f32> = encoded
                .iter()
                .map(|&v| if v.is_finite() { v } else { median })
                .collect();

            let lo = stats::quantile(&finite, 0.005).unwrap_or(0.0);
            let hi = stats::quantile(&finite, 0.995).unwrap_or(1.0);
            let span = (hi - lo).max(f32::EPSILON);
            let remap = |v: f32, flip: bool| -> f32 {
                let t = ((v - lo) / span).clamp(0.0, 1.0);
                let t = if flip { 1.0 - t } else { t };
                t * 255.0
            };

            // Polarity: a per-group vote between both signs. Earlier
            // versions pinned `Positive` releases to the straight map, but
            // a defense that negates carrier tensors (or any
            // sign-inverting re-parameterization) hands even a
            // positive-convention release back inverted — the resilient
            // path must vote per group regardless of the training-time
            // convention. (The strict `decode` entry point keeps the
            // documented fixed-polarity assumption.) The vote follows the
            // sign of the positionwise correlation between the carrier
            // stream and the planned target stream: histogram agreement is
            // nearly mirror-symmetric for imperfectly trained carriers, so
            // scoring both maps by histogram turns the vote into a coin
            // flip exactly when the encoding is noisy. Ties (zero or
            // non-discriminative correlation) keep the straight map.
            let n = clean.len().min(g.target().len());
            let flipped = stats::pearson(&clean[..n], &g.target()[..n]) < 0.0;
            let confidence = {
                let pixels: Vec<f32> = clean.iter().map(|&v| remap(v, flipped)).collect();
                histogram_agreement(&pixels, g.target())
            };

            for (k, &target_index) in g.image_indices().iter().enumerate() {
                let start = k * px;
                let end = start + px;
                if start >= clean.len() {
                    images.push(ResilientImage {
                        target_index,
                        group: gi,
                        status: ImageStatus::Failed {
                            reason: "carrier stream exhausted".to_string(),
                        },
                        image: None,
                    });
                    continue;
                }
                let end = end.min(clean.len());
                let mut pixels: Vec<f32> = clean[start..end]
                    .iter()
                    .map(|&v| remap(v, flipped))
                    .collect();
                let mut repaired_pixels = repaired[start..end].iter().filter(|&&r| r).count();
                if pixels.len() < px {
                    repaired_pixels += px - pixels.len();
                    pixels.resize(px, remap(median, flipped));
                }
                if repaired_pixels >= px {
                    images.push(ResilientImage {
                        target_index,
                        group: gi,
                        status: ImageStatus::Failed {
                            reason: "no finite carrier weights for this image".to_string(),
                        },
                        image: None,
                    });
                    continue;
                }
                match Image::from_f32(&pixels, c, h, w) {
                    Ok(image) => images.push(ResilientImage {
                        target_index,
                        group: gi,
                        status: if repaired_pixels == 0 {
                            ImageStatus::Ok
                        } else {
                            ImageStatus::Degraded { repaired_pixels }
                        },
                        image: Some(image),
                    }),
                    Err(e) => images.push(ResilientImage {
                        target_index,
                        group: gi,
                        status: ImageStatus::Failed {
                            reason: format!("image build failed: {e}"),
                        },
                        image: None,
                    }),
                }
            }
            diagnostics = DecodeDiagnostics {
                group: gi,
                flipped,
                confidence,
                finite_fraction,
                truncated: !complete,
            };
        }
        (images, diagnostics)
    }
}

/// Per-group result of resilient decoding: the group's image slots (in
/// target order) and its single diagnostics record.
type GroupResilientDecode = (Vec<ResilientImage>, DecodeDiagnostics);

/// Agreement between two pixel-value samples as `1 − ½·L1` distance of
/// their normalized 16-bin histograms over `[0, 256)` — 1 for identical
/// distributions, 0 for disjoint ones.
fn histogram_agreement(decoded: &[f32], target: &[f32]) -> f32 {
    if decoded.is_empty() || target.is_empty() {
        return 0.0;
    }
    let a = Histogram::from_values(decoded, 16, 0.0, 256.0).probabilities();
    let b = Histogram::from_values(target, 16, 0.0, 256.0).probabilities();
    let l1: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum();
    (1.0 - 0.5 * l1).clamp(0.0, 1.0) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GroupSpec;
    use qce_data::SynthCifar;
    use qce_nn::models::ResNetLite;
    use qce_nn::Network;

    fn setup() -> (Network, EncodingLayout, Vec<Image>) {
        let net = ResNetLite::builder()
            .input(3, 8)
            .classes(4)
            .stage_channels(&[8, 16])
            .blocks_per_stage(1)
            .build(1)
            .unwrap();
        let data = SynthCifar::new(8).generate(40, 2).unwrap();
        let images = data.images().to_vec();
        let specs = GroupSpec::uniform(net.weight_slots().len(), 3.0);
        let layout = EncodingLayout::plan(&net, &specs, &images).unwrap();
        (net, layout, images)
    }

    /// Builds a flat weight vector whose carrier stream is `map(pixel)`,
    /// leaving other weights untouched.
    fn encoded_with(net: &Network, layout: &EncodingLayout, map: impl Fn(f32) -> f32) -> Vec<f32> {
        let mut flat = net.flat_weights();
        for g in layout.groups() {
            let mut values = g.extract(&flat);
            for (i, &p) in g.target().iter().enumerate() {
                values[i] = map(p);
            }
            // Write back via scatter into a fresh buffer, then overwrite.
            let mut acc = vec![0.0f32; flat.len()];
            g.scatter_add(&values, &mut acc);
            for &(off, len) in g.flat_ranges() {
                flat[off..off + len].copy_from_slice(&acc[off..off + len]);
            }
        }
        flat
    }

    /// Builds a flat weight vector that encodes the targets perfectly
    /// (affine map pixel -> weight), leaving other weights untouched.
    fn perfectly_encoded(
        net: &Network,
        layout: &EncodingLayout,
        scale: f32,
        offset: f32,
    ) -> Vec<f32> {
        encoded_with(net, layout, |p| scale * p + offset)
    }

    #[test]
    fn perfect_encoding_decodes_with_tiny_error() {
        let (net, layout, images) = setup();
        let flat = perfectly_encoded(&net, &layout, 0.001, -0.12);
        let decoder = Decoder::new(layout, SignConvention::Positive);
        let decoded = decoder.decode(&flat).unwrap();
        assert!(!decoded.is_empty());
        for d in &decoded {
            let orig = &images[d.target_index];
            let err: f32 = orig
                .to_f32()
                .iter()
                .zip(d.image.to_f32().iter())
                .map(|(a, b)| (a - b).abs())
                .sum::<f32>()
                / orig.num_pixels() as f32;
            assert!(err < 6.0, "image {} MAPE {err}", d.target_index);
        }
    }

    #[test]
    fn negative_scale_needs_flip() {
        let (net, layout, images) = setup();
        let flat = perfectly_encoded(&net, &layout, -0.001, 0.3);
        let decoder = Decoder::new(layout, SignConvention::Absolute);
        let straight = decoder.decode_group(&flat, 0, false).unwrap();
        let flipped = decoder.decode_group(&flat, 0, true).unwrap();
        let mape = |d: &DecodedImage| {
            let orig = &images[d.target_index];
            orig.to_f32()
                .iter()
                .zip(d.image.to_f32().iter())
                .map(|(a, b)| (a - b).abs())
                .sum::<f32>()
                / orig.num_pixels() as f32
        };
        assert!(mape(&flipped[0]) < 6.0);
        assert!(mape(&straight[0]) > mape(&flipped[0]));
    }

    #[test]
    fn decode_validates_layout() {
        let (_, layout, _) = setup();
        let decoder = Decoder::new(layout, SignConvention::Positive);
        assert!(matches!(
            decoder.decode(&[0.0, 1.0]),
            Err(AttackError::LayoutMismatch { .. })
        ));
    }

    #[test]
    fn decode_group_out_of_range() {
        let (net, layout, _) = setup();
        let decoder = Decoder::new(layout, SignConvention::Positive);
        assert!(decoder
            .decode_group(&net.flat_weights(), 99, false)
            .is_err());
    }

    #[test]
    fn resilient_decode_matches_plain_decode_on_clean_weights() {
        let (net, layout, _) = setup();
        let flat = perfectly_encoded(&net, &layout, 0.001, -0.12);
        let decoder = Decoder::new(layout, SignConvention::Positive);
        let plain = decoder.decode(&flat).unwrap();
        let resilient = decoder.decode_resilient(&flat);
        assert_eq!(resilient.failed_count(), 0);
        assert_eq!(resilient.degraded_count(), 0);
        assert_eq!(resilient.decoded(), plain);
        assert!(resilient.mean_confidence() > 0.9);
        assert!(!resilient.diagnostics[0].truncated);
        assert_eq!(resilient.diagnostics[0].finite_fraction, 1.0);
    }

    #[test]
    fn resilient_decode_identical_across_pools() {
        let (net, layout, _) = setup();
        let mut flat = perfectly_encoded(&net, &layout, 0.001, -0.12);
        // Damage the release so the repair/polarity paths run too.
        let px = layout.image_pixels();
        let (off0, _) = layout.groups()[0].flat_ranges()[0];
        for v in flat[off0..off0 + px / 2].iter_mut() {
            *v = f32::NAN;
        }
        let decoder = Decoder::new(layout, SignConvention::Absolute);
        let reference = decoder.decode_resilient_with(&Pool::serial(), &flat);
        for threads in [1usize, 2, 3, 8] {
            let out = decoder.decode_resilient_with(&Pool::with_threads(threads), &flat);
            assert_eq!(out, reference, "threads={threads}");
        }
    }

    #[test]
    fn resilient_decode_repairs_nan_and_reports_partial_results() {
        let (net, layout, images) = setup();
        let mut flat = perfectly_encoded(&net, &layout, 0.001, -0.12);
        // Poison one image's worth of carriers plus a few scattered ones.
        let px = layout.image_pixels();
        let (off0, _) = layout.groups()[0].flat_ranges()[0];
        for v in flat[off0..off0 + px].iter_mut() {
            *v = f32::NAN;
        }
        flat[off0 + px + 3] = f32::INFINITY;
        let decoder = Decoder::new(layout, SignConvention::Positive);
        let out = decoder.decode_resilient(&flat);
        assert_eq!(out.failed_count(), 1);
        assert!(out.degraded_count() >= 1);
        // The undamaged images still decode well.
        for r in &out.images {
            if let (ImageStatus::Ok, Some(img)) = (&r.status, &r.image) {
                let orig = &images[r.target_index];
                let err: f32 = orig
                    .to_f32()
                    .iter()
                    .zip(img.to_f32().iter())
                    .map(|(a, b)| (a - b).abs())
                    .sum::<f32>()
                    / orig.num_pixels() as f32;
                assert!(err < 8.0, "image {} error {err}", r.target_index);
            }
        }
    }

    #[test]
    fn resilient_decode_disambiguates_polarity_by_histogram() {
        let (net, layout, images) = setup();
        let flat = perfectly_encoded(&net, &layout, -0.001, 0.3);
        let decoder = Decoder::new(layout, SignConvention::Absolute);
        let out = decoder.decode_resilient(&flat);
        assert!(
            out.diagnostics[0].flipped,
            "anti-correlated group must flip"
        );
        let first = out.images[0].image.as_ref().unwrap();
        let orig = &images[out.images[0].target_index];
        let err: f32 = orig
            .to_f32()
            .iter()
            .zip(first.to_f32().iter())
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / orig.num_pixels() as f32;
        assert!(err < 8.0, "flipped decode error {err}");
    }

    #[test]
    fn resilient_decode_votes_polarity_even_under_positive_convention() {
        // Regression: a sign-flipping defense hands back a globally
        // negated release. The old resilient path trusted the `Positive`
        // training convention and decoded every image inverted; the
        // polarity vote must now flip each group back.
        let (net, layout, images) = setup();
        let flat: Vec<f32> = perfectly_encoded(&net, &layout, 0.001, -0.12)
            .iter()
            .map(|w| -w)
            .collect();
        let decoder = Decoder::new(layout, SignConvention::Positive);
        let out = decoder.decode_resilient(&flat);
        assert!(out.diagnostics.iter().all(|d| d.flipped));
        assert_eq!(out.failed_count(), 0);
        for r in &out.images {
            let img = r.image.as_ref().unwrap();
            let orig = &images[r.target_index];
            let err: f32 = orig
                .to_f32()
                .iter()
                .zip(img.to_f32().iter())
                .map(|(a, b)| (a - b).abs())
                .sum::<f32>()
                / orig.num_pixels() as f32;
            assert!(
                err < 8.0,
                "image {} decoded inverted (MAPE {err})",
                r.target_index
            );
        }
    }

    #[test]
    fn resilient_decode_keeps_polarity_on_skewed_monotone_encodings() {
        // Regression: an imperfectly trained carrier stream is positively
        // correlated with its targets, but its value *distribution* is
        // skewed relative to the target histogram, so a histogram-shape
        // score can prefer the mirrored map and invert every image. The
        // vote must follow the positionwise correlation sign instead.
        let (net, layout, images) = setup();
        // Convex squash: monotone increasing in the pixel (correlation
        // strongly positive) but piles carrier mass into the low bins.
        let flat = encoded_with(&net, &layout, |p| {
            let t = p / 255.0;
            0.001 * (t * t * 255.0) - 0.12
        });
        let decoder = Decoder::new(layout, SignConvention::Absolute);
        let out = decoder.decode_resilient(&flat);
        assert!(
            out.diagnostics.iter().all(|d| !d.flipped),
            "positively correlated groups must not flip: {:?}",
            out.diagnostics
        );
        // The squash is distortion, not inversion: decoded images must
        // still track their targets far better than an inverted decode
        // would (inverting costs ~128 MAPE on mid-gray content).
        for r in &out.images {
            let img = r.image.as_ref().unwrap();
            let orig = &images[r.target_index];
            let err: f32 = orig
                .to_f32()
                .iter()
                .zip(img.to_f32().iter())
                .map(|(a, b)| (a - b).abs())
                .sum::<f32>()
                / orig.num_pixels() as f32;
            assert!(
                err < 80.0,
                "image {} decoded inverted (MAPE {err})",
                r.target_index
            );
        }
    }

    #[test]
    fn resilient_decode_survives_truncated_and_garbage_weights() {
        let (net, layout, _) = setup();
        let flat = perfectly_encoded(&net, &layout, 0.001, -0.12);
        let decoder = Decoder::new(layout, SignConvention::Positive);
        // Half the release missing: no panic, statuses explain the damage.
        let out = decoder.decode_resilient(&flat[..flat.len() / 2]);
        assert_eq!(out.images.len(), decoder.layout().total_encoded_images());
        assert!(out.diagnostics[0].truncated);
        // Entirely missing release: everything fails, still no panic.
        let empty = decoder.decode_resilient(&[]);
        assert_eq!(empty.failed_count(), empty.images.len());
        assert!(empty.images.iter().all(|r| r.image.is_none()));
    }

    #[test]
    fn resilient_decode_handles_empty_and_tiny_groups() {
        // Group 0: single 1-element-slot group with λ > 0 (encodes nothing —
        // capacity below one image); group 1: λ = 0; group 2: the carrier.
        let (net, _, images) = setup();
        let total = net.weight_slots().len();
        let specs = vec![
            crate::GroupSpec::new(1.0, vec![0]),
            crate::GroupSpec::new(0.0, vec![1]),
            crate::GroupSpec::new(3.0, (2..total).collect()),
        ];
        let layout = EncodingLayout::plan(&net, &specs, &images).unwrap();
        // The λ = 0 group never encodes; the tiny group may or may not fit
        // one image — either way nothing is allowed to panic.
        assert!(layout.groups()[1].image_indices().is_empty());
        let decoder = Decoder::new(layout, SignConvention::Positive);
        let flat = net.flat_weights();
        let plain = decoder.decode(&flat).unwrap();
        let out = decoder.decode_resilient(&flat);
        assert_eq!(out.images.len(), plain.len());
    }

    #[test]
    fn decoded_geometry_matches_targets() {
        let (net, layout, images) = setup();
        let decoder = Decoder::new(layout, SignConvention::Positive);
        let decoded = decoder.decode(&net.flat_weights()).unwrap();
        for d in &decoded {
            assert_eq!(d.image.channels(), images[d.target_index].channels());
            assert_eq!(d.image.height(), images[d.target_index].height());
        }
    }
}
