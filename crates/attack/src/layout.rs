use qce_data::Image;
use qce_nn::Network;

use crate::{AttackError, Result};

/// One layer group of the layer-wise regularization (Eq. 2): a set of
/// weight-slot ordinals sharing a correlation rate `λ_k`.
///
/// Weight-slot ordinals are the 0-based indices of convolution /
/// fully-connected weight tensors in forward order, as reported by
/// [`Network::weight_slots`]. The paper's CIFAR evaluation uses three
/// groups (early convs / mid convs / the rest) with `λ_1 = λ_2 = 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSpec {
    /// Correlation rate `λ_k` (0 disables encoding for the group).
    pub lambda: f32,
    /// Weight-slot ordinals belonging to this group.
    pub ordinals: Vec<usize>,
}

impl GroupSpec {
    /// Creates a group from a rate and ordinal list.
    pub fn new(lambda: f32, ordinals: Vec<usize>) -> Self {
        GroupSpec { lambda, ordinals }
    }

    /// Splits `total` ordinals into the paper's three groups by fraction:
    /// the first ~35% of weight tensors form group 1, the next ~12% group
    /// 2, and the rest group 3 (mirroring layers 1–12 / 13–16 / 17–34 of
    /// ResNet-34).
    pub fn paper_thirds(total: usize, lambdas: [f32; 3]) -> Vec<GroupSpec> {
        let g1_end = (total as f32 * 0.35).round() as usize;
        let g2_end = (total as f32 * 0.47).round() as usize;
        let g1_end = g1_end.min(total);
        let g2_end = g2_end.clamp(g1_end, total);
        vec![
            GroupSpec::new(lambdas[0], (0..g1_end).collect()),
            GroupSpec::new(lambdas[1], (g1_end..g2_end).collect()),
            GroupSpec::new(lambdas[2], (g2_end..total).collect()),
        ]
    }

    /// A single group covering every weight tensor with one uniform rate —
    /// the original CCS'17 attack (Eq. 1).
    pub fn uniform(total: usize, lambda: f32) -> Vec<GroupSpec> {
        vec![GroupSpec::new(lambda, (0..total).collect())]
    }
}

/// The planned layout of one group: where its weights live in the flat
/// weight vector and which target images it encodes.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupLayout {
    lambda: f32,
    ordinals: Vec<usize>,
    flat_ranges: Vec<(usize, usize)>,
    weight_len: usize,
    image_indices: Vec<usize>,
    target: Vec<f32>,
    share: f32,
}

impl GroupLayout {
    /// The group's correlation rate `λ_k`.
    pub fn lambda(&self) -> f32 {
        self.lambda
    }

    /// The weight-slot ordinals in this group.
    pub fn ordinals(&self) -> &[usize] {
        &self.ordinals
    }

    /// Total number of weights in the group.
    pub fn weight_len(&self) -> usize {
        self.weight_len
    }

    /// Indices (into the planner's target image list) of the images this
    /// group encodes, in encoding order.
    pub fn image_indices(&self) -> &[usize] {
        &self.image_indices
    }

    /// The concatenated pixel targets (`[0, 255]` as `f32`) this group's
    /// leading weights correlate against.
    pub fn target(&self) -> &[f32] {
        &self.target
    }

    /// The parameter share `P_k = ℓ_k / ℓ` of Eq. 2.
    pub fn share(&self) -> f32 {
        self.share
    }

    /// `(offset, len)` ranges of this group's weights in the network's
    /// flat weight vector, in ordinal order.
    pub fn flat_ranges(&self) -> &[(usize, usize)] {
        &self.flat_ranges
    }

    /// Gathers this group's weight stream from a flat weight vector.
    ///
    /// # Panics
    ///
    /// Panics if `flat` is shorter than the layout expects (callers
    /// validate via [`EncodingLayout::expected_flat_len`]).
    pub fn extract(&self, flat: &[f32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.weight_len);
        for &(offset, len) in &self.flat_ranges {
            out.extend_from_slice(&flat[offset..offset + len]);
        }
        out
    }

    /// Gathers this group's weight stream from a weight vector that may be
    /// shorter than planned — the resilient counterpart of
    /// [`GroupLayout::extract`] for perturbed or truncated releases. The
    /// stream always has the planned length: positions beyond `flat` are
    /// filled with `NaN` so later image chunks keep their offsets, and the
    /// second return value is `true` only when nothing was missing.
    pub fn extract_lossy(&self, flat: &[f32]) -> (Vec<f32>, bool) {
        let mut out = Vec::with_capacity(self.weight_len);
        let mut complete = true;
        for &(offset, len) in &self.flat_ranges {
            let available = flat.len().saturating_sub(offset).min(len);
            if available > 0 {
                out.extend_from_slice(&flat[offset..offset + available]);
            }
            if available < len {
                complete = false;
                out.extend(std::iter::repeat_n(f32::NAN, len - available));
            }
        }
        (out, complete)
    }

    /// Scatters `values` (one per group weight, stream order) back into a
    /// flat-sized accumulation buffer, adding elementwise — the inverse of
    /// [`GroupLayout::extract`] for gradient injection and for synthesizing
    /// encoded weight vectors in tests.
    pub fn scatter_add(&self, values: &[f32], flat_acc: &mut [f32]) {
        let mut pos = 0;
        for &(offset, len) in &self.flat_ranges {
            let take = len.min(values.len().saturating_sub(pos));
            for i in 0..take {
                flat_acc[offset + i] += values[pos + i];
            }
            pos += len;
            if pos >= values.len() {
                break;
            }
        }
    }
}

/// The full encoding plan: which target image goes into which weights of
/// which group.
///
/// Built once by the malicious training algorithm (and rebuilt identically
/// by the adversary at extraction time — it depends only on the
/// architecture and the selected target images, both of which the
/// adversary knows).
///
/// # Examples
///
/// ```
/// use qce_attack::{EncodingLayout, GroupSpec};
/// use qce_data::SynthCifar;
/// use qce_nn::models::ResNetLite;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = ResNetLite::builder()
///     .input(3, 8).classes(4).stage_channels(&[8, 16]).blocks_per_stage(1)
///     .build(1)?;
/// let data = SynthCifar::new(8).generate(50, 2)?;
/// let specs = GroupSpec::uniform(net.weight_slots().len(), 3.0);
/// let layout = EncodingLayout::plan(&net, &specs, data.images())?;
/// assert!(layout.total_encoded_images() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EncodingLayout {
    groups: Vec<GroupLayout>,
    image_pixels: usize,
    geometry: (usize, usize, usize),
    expected_flat_len: usize,
}

impl EncodingLayout {
    /// Plans the encoding: groups claim their weight ranges from the
    /// network's slot layout, then target images are dealt out
    /// sequentially to groups with `λ > 0` until each group's pixel
    /// capacity (`⌊ℓ_k / image_pixels⌋` images) or the image list is
    /// exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidGroups`] for unknown or duplicated
    /// ordinals, [`AttackError::InconsistentImages`] for an empty or
    /// mixed-geometry image list, and [`AttackError::NoCapacity`] if not a
    /// single image fits any encoding group.
    pub fn plan(net: &Network, specs: &[GroupSpec], images: &[Image]) -> Result<Self> {
        let first = images.first().ok_or(AttackError::InconsistentImages {
            reason: "no target images".to_string(),
        })?;
        let geometry = (first.channels(), first.height(), first.width());
        if images
            .iter()
            .any(|i| (i.channels(), i.height(), i.width()) != geometry)
        {
            return Err(AttackError::InconsistentImages {
                reason: "mixed image geometry".to_string(),
            });
        }
        let image_pixels = first.num_pixels();
        let slots = net.weight_slots();
        let mut used = vec![false; slots.len()];
        let mut groups = Vec::with_capacity(specs.len());
        let total_correlated: usize = specs
            .iter()
            .flat_map(|s| s.ordinals.iter())
            .map(|&o| slots.get(o).map(|slot| slot.len).unwrap_or(0))
            .sum();

        let mut next_image = 0usize;
        for spec in specs {
            let mut flat_ranges = Vec::with_capacity(spec.ordinals.len());
            let mut weight_len = 0usize;
            for &o in &spec.ordinals {
                let slot = slots.get(o).ok_or_else(|| AttackError::InvalidGroups {
                    reason: format!("ordinal {o} out of range ({} slots)", slots.len()),
                })?;
                if used[o] {
                    return Err(AttackError::InvalidGroups {
                        reason: format!("ordinal {o} appears in two groups"),
                    });
                }
                used[o] = true;
                flat_ranges.push((slot.offset, slot.len));
                weight_len += slot.len;
            }
            let mut image_indices = Vec::new();
            let mut target = Vec::new();
            if spec.lambda > 0.0 {
                let capacity = weight_len / image_pixels;
                while image_indices.len() < capacity && next_image < images.len() {
                    image_indices.push(next_image);
                    target.extend(images[next_image].to_f32());
                    next_image += 1;
                }
            }
            let share = if total_correlated > 0 {
                weight_len as f32 / total_correlated as f32
            } else {
                0.0
            };
            groups.push(GroupLayout {
                lambda: spec.lambda,
                ordinals: spec.ordinals.clone(),
                flat_ranges,
                weight_len,
                image_indices,
                target,
                share,
            });
        }
        if groups.iter().all(|g| g.image_indices.is_empty()) {
            return Err(AttackError::NoCapacity {
                weights: groups.iter().map(|g| g.weight_len).sum(),
                image_pixels,
            });
        }
        Ok(EncodingLayout {
            groups,
            image_pixels,
            geometry,
            expected_flat_len: net.num_weights(),
        })
    }

    /// The planned groups, in spec order.
    pub fn groups(&self) -> &[GroupLayout] {
        &self.groups
    }

    /// Pixels per target image.
    pub fn image_pixels(&self) -> usize {
        self.image_pixels
    }

    /// Target image geometry `(channels, height, width)`.
    pub fn geometry(&self) -> (usize, usize, usize) {
        self.geometry
    }

    /// The flat weight-vector length this layout was planned against.
    pub fn expected_flat_len(&self) -> usize {
        self.expected_flat_len
    }

    /// Total number of images the plan encodes.
    pub fn total_encoded_images(&self) -> usize {
        self.groups.iter().map(|g| g.image_indices.len()).sum()
    }

    /// `(group index, image-list index)` of every encoded image, in
    /// encoding order.
    pub fn encoded_images(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.total_encoded_images());
        for (gi, g) in self.groups.iter().enumerate() {
            for &ii in &g.image_indices {
                out.push((gi, ii));
            }
        }
        out
    }

    /// Validates a flat weight vector against the layout.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::LayoutMismatch`] if the lengths differ.
    pub fn check_flat(&self, flat: &[f32]) -> Result<()> {
        if flat.len() != self.expected_flat_len {
            return Err(AttackError::LayoutMismatch {
                expected: self.expected_flat_len,
                actual: flat.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qce_data::SynthCifar;
    use qce_nn::models::ResNetLite;

    fn net() -> Network {
        ResNetLite::builder()
            .input(3, 8)
            .classes(4)
            .stage_channels(&[8, 16])
            .blocks_per_stage(1)
            .build(1)
            .unwrap()
    }

    fn images(n: usize) -> Vec<Image> {
        SynthCifar::new(8).generate(n, 3).unwrap().images().to_vec()
    }

    #[test]
    fn uniform_spec_covers_everything() {
        let n = net();
        let total = n.weight_slots().len();
        let specs = GroupSpec::uniform(total, 5.0);
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].ordinals.len(), total);
    }

    #[test]
    fn paper_thirds_partition() {
        let specs = GroupSpec::paper_thirds(34, [0.0, 0.0, 10.0]);
        let all: Vec<usize> = specs.iter().flat_map(|s| s.ordinals.clone()).collect();
        assert_eq!(all, (0..34).collect::<Vec<_>>());
        assert_eq!(specs[0].ordinals.len(), 12); // 35% of 34
        assert_eq!(specs[1].ordinals.len(), 4); // next 12%
        assert_eq!(specs[2].ordinals.len(), 18);
    }

    #[test]
    fn plan_assigns_images_in_order_and_respects_capacity() {
        let n = net();
        let imgs = images(100);
        let total = n.weight_slots().len();
        let layout = EncodingLayout::plan(&n, &GroupSpec::uniform(total, 3.0), &imgs).unwrap();
        let g = &layout.groups()[0];
        let capacity = g.weight_len() / layout.image_pixels();
        assert_eq!(g.image_indices().len(), capacity.min(100));
        // Images are assigned sequentially from the front of the list.
        assert_eq!(g.image_indices()[0], 0);
        assert_eq!(
            g.target().len(),
            g.image_indices().len() * layout.image_pixels()
        );
    }

    #[test]
    fn zero_lambda_groups_encode_nothing() {
        let n = net();
        let imgs = images(50);
        let total = n.weight_slots().len();
        let specs = GroupSpec::paper_thirds(total, [0.0, 0.0, 3.0]);
        let layout = EncodingLayout::plan(&n, &specs, &imgs).unwrap();
        assert!(layout.groups()[0].image_indices().is_empty());
        assert!(layout.groups()[1].image_indices().is_empty());
        assert!(!layout.groups()[2].image_indices().is_empty());
        // Shares sum to 1 over all groups.
        let share_sum: f32 = layout.groups().iter().map(|g| g.share()).sum();
        assert!((share_sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn extract_and_scatter_round_trip() {
        let n = net();
        let imgs = images(20);
        let total = n.weight_slots().len();
        let layout = EncodingLayout::plan(&n, &GroupSpec::uniform(total, 1.0), &imgs).unwrap();
        let flat = n.flat_weights();
        let g = &layout.groups()[0];
        let stream = g.extract(&flat);
        assert_eq!(stream.len(), g.weight_len());
        // Scatter the stream into a zero buffer and re-extract: identity.
        let mut acc = vec![0.0f32; flat.len()];
        g.scatter_add(&stream, &mut acc);
        let back = g.extract(&acc);
        assert_eq!(back, stream);
    }

    #[test]
    fn extract_lossy_pads_missing_with_nan() {
        let n = net();
        let imgs = images(20);
        let total = n.weight_slots().len();
        let layout = EncodingLayout::plan(&n, &GroupSpec::uniform(total, 1.0), &imgs).unwrap();
        let flat = n.flat_weights();
        let g = &layout.groups()[0];
        // Complete vector: identical to extract.
        let (full, complete) = g.extract_lossy(&flat);
        assert!(complete);
        assert_eq!(full, g.extract(&flat));
        // Truncated vector: planned length is preserved, tail is NaN.
        let (lossy, complete) = g.extract_lossy(&flat[..flat.len() / 2]);
        assert!(!complete);
        assert_eq!(lossy.len(), g.weight_len());
        assert!(lossy.last().unwrap().is_nan());
        // Empty vector never panics.
        let (all_nan, complete) = g.extract_lossy(&[]);
        assert!(!complete);
        assert!(all_nan.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn plan_validation_errors() {
        let n = net();
        let imgs = images(10);
        let total = n.weight_slots().len();
        // Out-of-range ordinal.
        let bad = vec![GroupSpec::new(1.0, vec![total + 5])];
        assert!(matches!(
            EncodingLayout::plan(&n, &bad, &imgs),
            Err(AttackError::InvalidGroups { .. })
        ));
        // Duplicate ordinal across groups.
        let dup = vec![
            GroupSpec::new(1.0, vec![0, 1]),
            GroupSpec::new(1.0, vec![1, 2]),
        ];
        assert!(matches!(
            EncodingLayout::plan(&n, &dup, &imgs),
            Err(AttackError::InvalidGroups { .. })
        ));
        // No images.
        assert!(matches!(
            EncodingLayout::plan(&n, &GroupSpec::uniform(total, 1.0), &[]),
            Err(AttackError::InconsistentImages { .. })
        ));
        // All lambdas zero -> nothing encodable.
        let zeros = GroupSpec::uniform(total, 0.0);
        assert!(matches!(
            EncodingLayout::plan(&n, &zeros, &imgs),
            Err(AttackError::NoCapacity { .. })
        ));
    }

    #[test]
    fn check_flat_validates_length() {
        let n = net();
        let imgs = images(10);
        let total = n.weight_slots().len();
        let layout = EncodingLayout::plan(&n, &GroupSpec::uniform(total, 1.0), &imgs).unwrap();
        assert!(layout.check_flat(&n.flat_weights()).is_ok());
        assert!(layout.check_flat(&[0.0]).is_err());
    }

    #[test]
    fn encoded_images_enumeration() {
        let n = net();
        let imgs = images(100);
        let total = n.weight_slots().len();
        let layout = EncodingLayout::plan(&n, &GroupSpec::uniform(total, 2.0), &imgs).unwrap();
        let enumerated = layout.encoded_images();
        assert_eq!(enumerated.len(), layout.total_encoded_images());
        assert!(enumerated.iter().all(|&(g, _)| g == 0));
    }
}
