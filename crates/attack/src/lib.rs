//! Training-data encoding attacks from the DAC'20 paper and its
//! background (Song et al., CCS'17).
//!
//! The star of the crate is the **correlated value encoding attack**: a
//! training-loss regularizer that maximizes the Pearson correlation
//! between selected model weights and a stream of secret pixel values, so
//! that the released model's weights *are* (an affine image of) the
//! training data. The pieces:
//!
//! * [`correlation`] — the penalty `C(θ, s)` of Eq. 1 and its analytic
//!   gradient.
//! * [`EncodingLayout`] — which images map onto which weight tensors, via
//!   the paper's layer groups (Eq. 2 assigns a correlation rate `λ_k` and
//!   parameter share `P_k` per group; the evaluation sets `λ_1 = λ_2 = 0`
//!   and encodes everything into group 3).
//! * [`CorrelationRegularizer`] — the [`qce_nn::Regularizer`] that plugs
//!   the layer-wise term into an otherwise normal training loop.
//! * [`Decoder`] — the white-box extraction step: remap released weights
//!   back to `[0, 255]` pixels, per group, per image chunk.
//! * [`lsb`] / [`sign`] — the two weaker baselines of §II-B, implemented
//!   to make "quantization trivially defeats LSB encoding" a measurable
//!   claim instead of a remark.
//! * [`statsign`] — the rotation-invariant hardened channel: payload bits
//!   ride the signs of weight-group means with per-row index headers, so
//!   the encoding survives the compensated channel permutations a
//!   `qce-defense` data holder applies before release.
//!
//! # Examples
//!
//! Encode-decode round trip on synthetic "perfectly correlated" weights:
//!
//! ```
//! use qce_attack::correlation::{correlation_penalty, SignConvention};
//!
//! let s = vec![10.0, 250.0, 80.0, 170.0];
//! // Weights already perfectly correlated with s.
//! let theta: Vec<f32> = s.iter().map(|&p| 0.01 * p - 2.0).collect();
//! let (c, _grad) = correlation_penalty(&theta, &s, 1.0, SignConvention::Positive);
//! assert!((c - (-1.0)).abs() < 1e-5); // penalty = -λ·ρ = -1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decode;
mod error;
mod layout;
mod regularizer;

pub mod capacity;
pub mod correlation;
pub mod ecc;
pub mod lsb;
pub mod payload;
pub mod sign;
pub mod statsign;

pub use decode::{
    DecodeDiagnostics, DecodedImage, Decoder, ImageStatus, ResilientDecode, ResilientImage,
};
pub use error::AttackError;
pub use layout::{EncodingLayout, GroupLayout, GroupSpec};
pub use regularizer::CorrelationRegularizer;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, AttackError>;
