use std::fmt;

use qce_nn::NnError;

/// Error type for attack planning, regularization and extraction.
#[derive(Debug)]
#[non_exhaustive]
pub enum AttackError {
    /// A layout references a weight-slot ordinal the network does not have,
    /// or ordinals overlap between groups.
    InvalidGroups {
        /// Why the grouping is rejected.
        reason: String,
    },
    /// No images fit the available weight capacity.
    NoCapacity {
        /// Weights available for encoding.
        weights: usize,
        /// Pixels needed for one image.
        image_pixels: usize,
    },
    /// The provided weight vector does not match the layout.
    LayoutMismatch {
        /// Expected flat weight length.
        expected: usize,
        /// Provided length.
        actual: usize,
    },
    /// Target images have inconsistent geometry.
    InconsistentImages {
        /// Why the image set is rejected.
        reason: String,
    },
    /// A wrapped network error.
    Nn(NnError),
    /// An LSB/sign payload does not fit the carrier.
    PayloadTooLarge {
        /// Bits available in the carrier.
        capacity_bits: usize,
        /// Bits required by the payload.
        needed_bits: usize,
    },
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::InvalidGroups { reason } => write!(f, "invalid layer groups: {reason}"),
            AttackError::NoCapacity {
                weights,
                image_pixels,
            } => write!(
                f,
                "no capacity: {weights} weights cannot hold one {image_pixels}-pixel image"
            ),
            AttackError::LayoutMismatch { expected, actual } => {
                write!(
                    f,
                    "weight vector length {actual}, layout expects {expected}"
                )
            }
            AttackError::InconsistentImages { reason } => {
                write!(f, "inconsistent target images: {reason}")
            }
            AttackError::Nn(e) => write!(f, "network error during attack: {e}"),
            AttackError::PayloadTooLarge {
                capacity_bits,
                needed_bits,
            } => write!(
                f,
                "payload of {needed_bits} bits exceeds carrier capacity {capacity_bits}"
            ),
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttackError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for AttackError {
    fn from(e: NnError) -> Self {
        AttackError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        assert!(AttackError::NoCapacity {
            weights: 10,
            image_pixels: 100
        }
        .to_string()
        .contains("capacity"));
        let e = AttackError::from(NnError::InvalidConfig {
            reason: "x".to_string(),
        });
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AttackError>();
    }
}
