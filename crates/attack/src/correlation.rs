//! The correlated-value-encoding penalty `C(θ, s)` (Eq. 1 of the paper)
//! and its analytic gradient.
//!
//! With `ρ` the Pearson correlation between weights `θ` and secret values
//! `s`, the malicious regularizer is `C = -λ·|ρ|` (the paper's form) or
//! `C = -λ·ρ` ([`SignConvention::Positive`], the form a practical
//! adversary prefers because it fixes the decoding polarity). Minimizing
//! the total loss therefore pushes `|ρ| → 1`, i.e. the weights become an
//! affine image of the secret data.
//!
//! The gradient is derived in closed form: with `A = Σ(θᵢ-θ̄)(sᵢ-s̄)`,
//! `B = ‖θ-θ̄‖`, `D = ‖s-s̄‖` and `ρ = A/(B·D)`,
//!
//! ```text
//! ∂ρ/∂θᵢ = (sᵢ - s̄)/(B·D) - ρ·(θᵢ - θ̄)/B²
//! ```
//!
//! and `∂C/∂θᵢ = -λ·sign(ρ)·∂ρ/∂θᵢ` (with `sign(ρ) ≡ 1` under the
//! positive convention).

/// Which functional form of the correlation penalty to optimize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SignConvention {
    /// `C = -λ·ρ`: drives the correlation positive, so the decoder knows
    /// the polarity. The adversary authors the training code, so nothing
    /// stops them from choosing this — it is the default.
    #[default]
    Positive,
    /// `C = -λ·|ρ|`: the paper's literal Eq. 1. The trained polarity
    /// depends on initialization; evaluation resolves it per group by
    /// trying both (both leak the data equally).
    Absolute,
}

/// Computes the penalty `C(θ, s)` and its gradient `∂C/∂θ`.
///
/// Returns `(0, zeros)` when either vector is constant or shorter than 2
/// elements — a constant carrier holds no data, and the gradient of `ρ`
/// is undefined there.
///
/// # Panics
///
/// Panics if `theta` and `s` differ in length.
pub fn correlation_penalty(
    theta: &[f32],
    s: &[f32],
    lambda: f32,
    sign: SignConvention,
) -> (f32, Vec<f32>) {
    assert_eq!(theta.len(), s.len(), "theta and s must have equal lengths");
    let n = theta.len();
    if n < 2 {
        return (0.0, vec![0.0; n]);
    }
    let mean_t: f64 = theta.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
    let mean_s: f64 = s.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
    let mut a = 0.0f64;
    let mut bb = 0.0f64;
    let mut dd = 0.0f64;
    for (&t, &sv) in theta.iter().zip(s.iter()) {
        let dt = t as f64 - mean_t;
        let ds = sv as f64 - mean_s;
        a += dt * ds;
        bb += dt * dt;
        dd += ds * ds;
    }
    if bb == 0.0 || dd == 0.0 {
        return (0.0, vec![0.0; n]);
    }
    let b = bb.sqrt();
    let d = dd.sqrt();
    let rho = a / (b * d);
    let (penalty, outer) = match sign {
        SignConvention::Positive => (-(lambda as f64) * rho, -(lambda as f64)),
        SignConvention::Absolute => {
            let sgn = if rho >= 0.0 { 1.0 } else { -1.0 };
            (-(lambda as f64) * rho.abs(), -(lambda as f64) * sgn)
        }
    };
    let inv_bd = 1.0 / (b * d);
    let rho_over_bb = rho / bb;
    let grad: Vec<f32> = theta
        .iter()
        .zip(s.iter())
        .map(|(&t, &sv)| {
            let dt = t as f64 - mean_t;
            let ds = sv as f64 - mean_s;
            (outer * (ds * inv_bd - rho_over_bb * dt)) as f32
        })
        .collect();
    (penalty as f32, grad)
}

/// The Pearson correlation `ρ(θ, s)` alone (0 for degenerate inputs) —
/// used for reporting how strongly a released model still carries its
/// secret.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn correlation(theta: &[f32], s: &[f32]) -> f32 {
    qce_tensor::stats::pearson(theta, s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_pair(n: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let mut rng = qce_tensor::init::seeded_rng(seed);
        let theta: Vec<f32> = (0..n)
            .map(|_| qce_tensor::init::standard_normal(&mut rng) * 0.2)
            .collect();
        let s: Vec<f32> = (0..n)
            .map(|_| 128.0 + 60.0 * qce_tensor::init::standard_normal(&mut rng))
            .collect();
        (theta, s)
    }

    #[test]
    fn penalty_at_perfect_correlation() {
        let s = vec![0.0, 50.0, 100.0, 200.0, 255.0];
        let theta: Vec<f32> = s.iter().map(|&p| 0.002 * p - 0.3).collect();
        let (c, _) = correlation_penalty(&theta, &s, 2.0, SignConvention::Positive);
        assert!((c + 2.0).abs() < 1e-5);
        // Anti-correlated under Absolute still gives -λ.
        let anti: Vec<f32> = s.iter().map(|&p| -0.002 * p).collect();
        let (ca, _) = correlation_penalty(&anti, &s, 2.0, SignConvention::Absolute);
        assert!((ca + 2.0).abs() < 1e-5);
        // ...but +λ·ρ = +2 under Positive (penalized).
        let (cp, _) = correlation_penalty(&anti, &s, 2.0, SignConvention::Positive);
        assert!((cp - 2.0).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_difference_positive() {
        let (mut theta, s) = random_pair(40, 1);
        let (_, grad) = correlation_penalty(&theta, &s, 3.0, SignConvention::Positive);
        let eps = 1e-3;
        for probe in [0usize, 13, 39] {
            let orig = theta[probe];
            theta[probe] = orig + eps;
            let (hi, _) = correlation_penalty(&theta, &s, 3.0, SignConvention::Positive);
            theta[probe] = orig - eps;
            let (lo, _) = correlation_penalty(&theta, &s, 3.0, SignConvention::Positive);
            theta[probe] = orig;
            let fd = (hi - lo) / (2.0 * eps);
            assert!(
                (fd - grad[probe]).abs() < 1e-3,
                "probe {probe}: fd={fd} an={}",
                grad[probe]
            );
        }
    }

    #[test]
    fn gradient_matches_finite_difference_absolute() {
        let (mut theta, s) = random_pair(30, 2);
        let (_, grad) = correlation_penalty(&theta, &s, 1.5, SignConvention::Absolute);
        let eps = 1e-3;
        for probe in [2usize, 17, 29] {
            let orig = theta[probe];
            theta[probe] = orig + eps;
            let (hi, _) = correlation_penalty(&theta, &s, 1.5, SignConvention::Absolute);
            theta[probe] = orig - eps;
            let (lo, _) = correlation_penalty(&theta, &s, 1.5, SignConvention::Absolute);
            theta[probe] = orig;
            let fd = (hi - lo) / (2.0 * eps);
            assert!(
                (fd - grad[probe]).abs() < 1e-3,
                "probe {probe}: fd={fd} an={}",
                grad[probe]
            );
        }
    }

    #[test]
    fn gradient_descent_drives_correlation_up() {
        let (mut theta, s) = random_pair(200, 3);
        let before = correlation(&theta, &s);
        for _ in 0..200 {
            let (_, grad) = correlation_penalty(&theta, &s, 1.0, SignConvention::Positive);
            for (t, g) in theta.iter_mut().zip(grad.iter()) {
                *t -= 0.5 * g;
            }
        }
        let after = correlation(&theta, &s);
        assert!(after > before, "{before} -> {after}");
        assert!(after > 0.95, "correlation only reached {after}");
    }

    #[test]
    fn degenerate_inputs_are_zero() {
        let (c, g) = correlation_penalty(
            &[1.0, 1.0, 1.0],
            &[1.0, 2.0, 3.0],
            5.0,
            SignConvention::Positive,
        );
        assert_eq!(c, 0.0);
        assert!(g.iter().all(|&x| x == 0.0));
        let (c2, g2) = correlation_penalty(&[1.0], &[2.0], 5.0, SignConvention::Positive);
        assert_eq!(c2, 0.0);
        assert_eq!(g2.len(), 1);
    }

    #[test]
    fn penalty_scale_invariant_in_s() {
        // Pearson correlation is affine-invariant in s: scaling the pixel
        // range must not change the penalty.
        let (theta, s) = random_pair(64, 4);
        let s_scaled: Vec<f32> = s.iter().map(|&p| 3.0 * p + 17.0).collect();
        let (c1, _) = correlation_penalty(&theta, &s, 1.0, SignConvention::Positive);
        let (c2, _) = correlation_penalty(&theta, &s_scaled, 1.0, SignConvention::Positive);
        assert!((c1 - c2).abs() < 1e-5);
    }

    #[test]
    fn penalty_bounded_by_lambda() {
        let (theta, s) = random_pair(128, 5);
        for conv in [SignConvention::Positive, SignConvention::Absolute] {
            let (c, _) = correlation_penalty(&theta, &s, 4.0, conv);
            assert!(c.abs() <= 4.0 + 1e-5);
        }
    }
}
