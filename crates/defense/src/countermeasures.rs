//! The individual countermeasures behind [`DefenseKind`](crate::DefenseKind).

use rand::rngs::StdRng;
use rand::Rng;

use qce_nn::{Network, ParamKind, TrainConfig, Trainer, WeightSymmetry};
use qce_quant::{quantize_network, KMeansQuantizer};
use qce_tensor::init::standard_normal;
use qce_tensor::stats;

use crate::plan::RotationMode;
use crate::{Defense, DefenseContext, DefenseError, Result};

/// Hidden-channel re-parameterization (see [`RotationMode`]).
#[derive(Debug, Clone, Copy)]
pub struct Rotation {
    /// Permutation (exact symmetry) or QR blend (lossy rotation).
    pub mode: RotationMode,
}

impl Defense for Rotation {
    fn name(&self) -> &'static str {
        "rotation"
    }

    fn apply(&self, net: &mut Network, _ctx: &DefenseContext<'_>, rng: &mut StdRng) -> Result<()> {
        match self.mode {
            RotationMode::Permute => {
                let moved = net.permute_hidden_channels(rng.next_u64());
                qce_telemetry::counter("defense.rotation_channels").incr(moved as u64);
                Ok(())
            }
            RotationMode::QrBlend { strength } => qr_blend(net, strength, rng),
        }
    }
}

/// Blends every residual block's hidden basis toward a random orthogonal
/// rotation: the producing convolution's rows are mixed by
/// `M = (1-s)·I + s·Q` and the consuming convolution's input chunks by
/// `M⁻¹`. Exact on the linear path; lossy through batch-norm and ReLU.
fn qr_blend(net: &mut Network, strength: f32, rng: &mut StdRng) -> Result<()> {
    if strength == 0.0 {
        return Ok(());
    }
    let slots = net.weight_slots();
    let syms = net.weight_symmetries();
    let mut flat = net.flat_weights();
    // Inverse mix pending for the next consuming (PermutedInChunks) slot,
    // keyed by the hidden channel count it must match.
    let mut pending: Option<(usize, Vec<Vec<f64>>)> = None;
    for (slot, sym) in slots.iter().zip(&syms) {
        match sym {
            WeightSymmetry::PermutedRows => {
                let channels = slot.dims[0];
                let q = random_orthogonal(channels, rng);
                let mut mix = vec![vec![0.0f64; channels]; channels];
                for (o, row) in mix.iter_mut().enumerate() {
                    for (c, m) in row.iter_mut().enumerate() {
                        let id = if o == c { 1.0 } else { 0.0 };
                        *m = f64::from(1.0 - strength) * id + f64::from(strength) * q[o][c];
                    }
                }
                let inverse = invert(&mix).ok_or_else(|| DefenseError::InvalidDefense {
                    reason: format!("QR blend at strength {strength} produced a singular mix"),
                })?;
                let tensor = &mut flat[slot.offset..slot.offset + slot.len];
                mix_chunks(tensor, &mix, slot.len / channels, 1);
                pending = Some((channels, inverse));
            }
            WeightSymmetry::PermutedInChunks => {
                let (channels, inverse) =
                    pending.take().ok_or_else(|| DefenseError::InvalidDefense {
                        reason: "consuming tensor without a producing partner".to_string(),
                    })?;
                debug_assert_eq!(slot.dims[1], channels);
                // h' = M·h, so compensate with chunk'[j] = Σ_i chunk[i]·M⁻¹[i][j]
                // — i.e. mix chunks by (M⁻¹)ᵀ.
                let inv_t = transpose(&inverse);
                let rows = slot.dims[0];
                let chunk = slot.len / (rows * channels);
                let tensor = &mut flat[slot.offset..slot.offset + slot.len];
                mix_chunks(tensor, &inv_t, chunk, rows);
            }
            WeightSymmetry::Fixed => {}
        }
    }
    net.set_flat_weights(&flat)?;
    Ok(())
}

/// A random `n × n` orthogonal matrix: QR of a Gaussian matrix by
/// modified Gram–Schmidt (rows of the result are the orthonormal basis).
fn random_orthogonal(n: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let mut q: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..n).map(|_| f64::from(standard_normal(rng))).collect())
        .collect();
    for i in 0..n {
        let (done, rest) = q.split_at_mut(i);
        let qi = &mut rest[0];
        for qj in done.iter() {
            let dot: f64 = qi.iter().zip(qj.iter()).map(|(x, y)| x * y).sum();
            for (x, y) in qi.iter_mut().zip(qj.iter()) {
                *x -= dot * y;
            }
        }
        let norm: f64 = qi.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-9 {
            // Degenerate draw (vanishing probability): fall back to the
            // standard basis vector, which stays orthogonal to the rest.
            for (k, x) in qi.iter_mut().enumerate() {
                *x = if k == i { 1.0 } else { 0.0 };
            }
        } else {
            for x in qi.iter_mut() {
                *x /= norm;
            }
        }
    }
    q
}

/// Gauss–Jordan inverse with partial pivoting; `None` if singular.
fn invert(m: &[Vec<f64>]) -> Option<Vec<Vec<f64>>> {
    let n = m.len();
    let mut a: Vec<Vec<f64>> = m
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let mut wide = row.clone();
            wide.extend((0..n).map(|j| if i == j { 1.0 } else { 0.0 }));
            wide
        })
        .collect();
    for col in 0..n {
        let pivot = (col..n).max_by(|&x, &y| {
            a[x][col]
                .abs()
                .partial_cmp(&a[y][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-9 {
            return None;
        }
        a.swap(col, pivot);
        let p = a[col][col];
        for v in &mut a[col] {
            *v /= p;
        }
        let pivot_row = a[col].clone();
        for (row, wide) in a.iter_mut().enumerate() {
            if row == col {
                continue;
            }
            let factor = wide[col];
            if factor == 0.0 {
                continue;
            }
            for (x, y) in wide.iter_mut().zip(pivot_row.iter()) {
                *x -= factor * y;
            }
        }
    }
    Some(a.into_iter().map(|row| row[n..].to_vec()).collect())
}

fn transpose(m: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = m.len();
    (0..n).map(|j| (0..n).map(|i| m[i][j]).collect()).collect()
}

/// Mixes channel chunks in place: within each of `rows` runs of
/// `mix.len()` chunks of `chunk` scalars, the new chunk `o` is
/// `Σ_c mix[o][c] · old chunk c`.
fn mix_chunks(data: &mut [f32], mix: &[Vec<f64>], chunk: usize, rows: usize) {
    let channels = mix.len();
    let run = channels * chunk;
    debug_assert_eq!(data.len(), rows * run);
    let mut scratch = vec![0.0f64; run];
    for r in 0..rows {
        let base = r * run;
        scratch.iter_mut().for_each(|v| *v = 0.0);
        for (o, row) in mix.iter().enumerate() {
            for (c, &m) in row.iter().enumerate() {
                if m == 0.0 {
                    continue;
                }
                for k in 0..chunk {
                    scratch[o * chunk + k] += m * f64::from(data[base + c * chunk + k]);
                }
            }
        }
        for (dst, &src) in data[base..base + run].iter_mut().zip(&scratch) {
            *dst = src as f32;
        }
    }
}

/// Short defensive retraining on clean data, eroding planted payload
/// gradients. Requires [`DefenseContext::with_data`].
#[derive(Debug, Clone, Copy)]
pub struct FinetuneScrub {
    /// Retraining epochs (0 is a no-op).
    pub epochs: usize,
    /// Learning rate of the scrubbing pass.
    pub lr: f32,
}

impl Defense for FinetuneScrub {
    fn name(&self) -> &'static str {
        "finetune-scrub"
    }

    fn apply(&self, net: &mut Network, ctx: &DefenseContext<'_>, rng: &mut StdRng) -> Result<()> {
        if self.epochs == 0 {
            return Ok(());
        }
        let (x, labels) = match (ctx.train_x, ctx.train_labels) {
            (Some(x), Some(labels)) => (x, labels),
            _ => {
                return Err(DefenseError::MissingData {
                    defense: "finetune-scrub",
                })
            }
        };
        let config = TrainConfig {
            epochs: self.epochs,
            batch_size: ctx.effective_batch_size(),
            lr: self.lr,
            shuffle_seed: rng.next_u64(),
            verbose: false,
            ..TrainConfig::default()
        };
        Trainer::new(config).fit(net, x, labels, None)?;
        Ok(())
    }
}

/// Magnitude pruning via [`qce_quant::prune::magnitude_prune`].
#[derive(Debug, Clone, Copy)]
pub struct PruneScrub {
    /// Fraction of weights to zero, in `[0, 1)`.
    pub fraction: f32,
}

impl Defense for PruneScrub {
    fn name(&self) -> &'static str {
        "prune-scrub"
    }

    fn apply(&self, net: &mut Network, _ctx: &DefenseContext<'_>, _rng: &mut StdRng) -> Result<()> {
        if self.fraction == 0.0 {
            return Ok(());
        }
        qce_quant::prune::magnitude_prune(net, self.fraction)?;
        Ok(())
    }
}

/// Defender-chosen k-means re-quantization: annihilates LSB payloads and
/// re-draws target-correlated cluster boundaries.
#[derive(Debug, Clone, Copy)]
pub struct Requantize {
    /// Codebook width in bits, `1..=16`.
    pub bits: u32,
}

impl Defense for Requantize {
    fn name(&self) -> &'static str {
        "requantize"
    }

    fn apply(&self, net: &mut Network, _ctx: &DefenseContext<'_>, _rng: &mut StdRng) -> Result<()> {
        let q = KMeansQuantizer::new(1usize << self.bits)?;
        quantize_network(net, &q)?;
        Ok(())
    }
}

/// Zero-mean Gaussian noise with σ = `fraction` of each tensor's own
/// weight standard deviation (migrated from `qce::defense::noise_weights`).
#[derive(Debug, Clone, Copy)]
pub struct NoiseWeights {
    /// Noise σ as a fraction of the per-tensor weight σ.
    pub fraction: f32,
}

impl Defense for NoiseWeights {
    fn name(&self) -> &'static str {
        "noise-weights"
    }

    fn apply(&self, net: &mut Network, _ctx: &DefenseContext<'_>, rng: &mut StdRng) -> Result<()> {
        if self.fraction == 0.0 {
            return Ok(());
        }
        for p in net.params_mut() {
            if p.kind() != ParamKind::Weight {
                continue;
            }
            let std = stats::std_dev(p.value().as_slice());
            if std <= 0.0 {
                continue;
            }
            let sigma = self.fraction * std;
            for w in p.value_mut().as_mut_slice() {
                *w += sigma * standard_normal(rng);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DefenseKind, DefensePlan};
    use qce_nn::models::ResNetLite;
    use qce_nn::Mode;
    use qce_tensor::{init, Tensor};
    use rand::SeedableRng;

    fn net(seed: u64) -> Network {
        ResNetLite::builder()
            .input(1, 8)
            .classes(2)
            .stage_channels(&[4, 8])
            .blocks_per_stage(1)
            .build(seed)
            .unwrap()
    }

    fn eval(net: &mut Network, x: &Tensor) -> Vec<f32> {
        net.forward(x, Mode::Eval).unwrap().as_slice().to_vec()
    }

    #[test]
    fn permute_rotation_preserves_function_and_moves_weights() {
        let mut n = net(1);
        let x = init::uniform(&[2, 1, 8, 8], -1.0, 1.0, &mut init::seeded_rng(2));
        let before_out = eval(&mut n, &x);
        let before_w = n.flat_weights();
        let plan = DefensePlan::new(5).with(DefenseKind::Rotation {
            mode: RotationMode::Permute,
        });
        plan.apply(&mut n, &DefenseContext::empty()).unwrap();
        assert_ne!(n.flat_weights(), before_w);
        for (a, b) in before_out.iter().zip(eval(&mut n, &x)) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn qr_blend_zero_is_identity_and_small_strength_bounded() {
        let mut n = net(3);
        let x = init::uniform(&[2, 1, 8, 8], -1.0, 1.0, &mut init::seeded_rng(4));
        let before_w = n.flat_weights();
        let before_out = eval(&mut n, &x);
        let mut rng = StdRng::seed_from_u64(9);
        qr_blend(&mut n, 0.0, &mut rng).unwrap();
        assert_eq!(n.flat_weights(), before_w);
        qr_blend(&mut n, 0.3, &mut rng).unwrap();
        assert_ne!(n.flat_weights(), before_w);
        let after_out = eval(&mut n, &x);
        // Lossy but sane: outputs stay finite and in the same ballpark.
        let drift: f32 = before_out
            .iter()
            .zip(&after_out)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(drift.is_finite());
    }

    #[test]
    fn qr_blend_compensates_the_linear_path() {
        // With mix M on producing rows and (M⁻¹)ᵀ on consuming chunks,
        // the composition Σ_i chunk'[i]·row'[i] must be unchanged. Verify
        // on the raw matrices, independent of BN/ReLU.
        let mut rng = StdRng::seed_from_u64(11);
        let n = 6;
        let q = random_orthogonal(n, &mut rng);
        // Orthogonality: Q·Qᵀ = I.
        for i in 0..n {
            for j in 0..n {
                let dot: f64 = (0..n).map(|k| q[i][k] * q[j][k]).sum();
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((dot - want).abs() < 1e-9, "Q row dot {i},{j} = {dot}");
            }
        }
        let s = 0.7f64;
        let mix: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| if i == j { 1.0 - s } else { 0.0 } + s * q[i][j])
                    .collect()
            })
            .collect();
        let inv = invert(&mix).unwrap();
        for (i, mrow) in mix.iter().enumerate() {
            for j in 0..n {
                let dot: f64 = mrow
                    .iter()
                    .zip(inv.iter())
                    .map(|(m, irow)| m * irow[j])
                    .sum();
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((dot - want).abs() < 1e-8, "M·M⁻¹ at {i},{j} = {dot}");
            }
        }
    }

    #[test]
    fn invert_rejects_singular() {
        let singular = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(invert(&singular).is_none());
    }

    #[test]
    fn finetune_scrub_needs_data_and_moves_weights_with_it() {
        let mut n = net(5);
        let scrub = FinetuneScrub {
            epochs: 1,
            lr: 0.01,
        };
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            scrub.apply(&mut n, &DefenseContext::empty(), &mut rng),
            Err(DefenseError::MissingData {
                defense: "finetune-scrub"
            })
        ));
        let x = init::uniform(&[16, 1, 8, 8], -1.0, 1.0, &mut init::seeded_rng(6));
        let labels: Vec<usize> = (0..16).map(|i| i % 2).collect();
        let before = n.flat_weights();
        scrub
            .apply(&mut n, &DefenseContext::with_data(&x, &labels, 8), &mut rng)
            .unwrap();
        assert_ne!(n.flat_weights(), before);
    }

    #[test]
    fn prune_scrub_zeroes_small_weights() {
        let mut n = net(7);
        let plan = DefensePlan::new(0).with(DefenseKind::PruneScrub { fraction: 0.5 });
        plan.apply(&mut n, &DefenseContext::empty()).unwrap();
        let flat = n.flat_weights();
        let zeros = flat.iter().filter(|w| **w == 0.0).count();
        assert!(
            zeros as f32 >= 0.4 * flat.len() as f32,
            "only {zeros}/{} zeroed",
            flat.len()
        );
    }

    #[test]
    fn requantize_coarsens_each_tensor() {
        let mut n = net(8);
        let plan = DefensePlan::new(0).with(DefenseKind::Requantize { bits: 2 });
        plan.apply(&mut n, &DefenseContext::empty()).unwrap();
        for slot in n.weight_slots() {
            let flat = n.flat_weights();
            let mut vals: Vec<u32> = flat[slot.offset..slot.offset + slot.len]
                .iter()
                .map(|w| w.to_bits())
                .collect();
            vals.sort_unstable();
            vals.dedup();
            assert!(
                vals.len() <= 4,
                "slot {} has {} levels",
                slot.ordinal,
                vals.len()
            );
        }
    }

    #[test]
    fn plans_reproduce_exactly_per_seed() {
        let plan = DefensePlan::new(21)
            .with(DefenseKind::Rotation {
                mode: RotationMode::Permute,
            })
            .with(DefenseKind::NoiseWeights { fraction: 0.05 });
        let mut a = net(9);
        let mut b = net(9);
        plan.apply(&mut a, &DefenseContext::empty()).unwrap();
        plan.apply(&mut b, &DefenseContext::empty()).unwrap();
        assert_eq!(a.flat_weights(), b.flat_weights());
        let mut c = net(9);
        DefensePlan::new(22)
            .with(DefenseKind::Rotation {
                mode: RotationMode::Permute,
            })
            .with(DefenseKind::NoiseWeights { fraction: 0.05 })
            .apply(&mut c, &DefenseContext::empty())
            .unwrap();
        assert_ne!(a.flat_weights(), c.flat_weights());
    }
}
