//! Seeded, ordered composition of defenses — the defender's analogue of
//! `qce::faults::FaultPlan`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use qce_nn::Network;

use crate::countermeasures::{FinetuneScrub, NoiseWeights, PruneScrub, Requantize, Rotation};
use crate::{Defense, DefenseContext, DefenseError, Result};

/// How the [`Rotation`] defense re-parameterizes hidden channels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RotationMode {
    /// Compensated random channel permutation — the network's *exact*
    /// ReLU symmetry. Function-preserving up to float summation order;
    /// all-or-nothing (no severity knob).
    Permute,
    /// Blend each hidden basis toward a random orthogonal rotation
    /// obtained by QR (Gram–Schmidt) of a Gaussian matrix:
    /// `M = (1-s)·I + s·Q`, compensated on the consuming convolution by
    /// `M⁻¹`. Exact for the linear path but *lossy* through batch-norm
    /// and ReLU — a measured trade-off, not a free action.
    QrBlend {
        /// Blend strength `s` in `[0, 1]` (0 is the identity).
        strength: f32,
    },
}

/// One countermeasure family, parameterized by its strength.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DefenseKind {
    /// Hidden-channel re-parameterization (see [`RotationMode`]).
    Rotation {
        /// Permutation (exact symmetry) or QR blend (lossy rotation).
        mode: RotationMode,
    },
    /// Short defensive retraining on clean data from the
    /// [`DefenseContext`].
    FinetuneScrub {
        /// Retraining epochs (0 is a no-op).
        epochs: usize,
        /// Learning rate of the scrubbing pass.
        lr: f32,
    },
    /// Magnitude pruning: zero the smallest-|w| `fraction` per tensor.
    PruneScrub {
        /// Fraction of weights to zero, in `[0, 1)`.
        fraction: f32,
    },
    /// Defender-chosen k-means re-quantization at `bits`
    /// (levels = `2^bits`).
    Requantize {
        /// Codebook width in bits, `1..=16`.
        bits: u32,
    },
    /// Zero-mean Gaussian noise with σ = `fraction` of each tensor's own
    /// weight standard deviation.
    NoiseWeights {
        /// Noise σ as a fraction of the per-tensor weight σ.
        fraction: f32,
    },
}

impl DefenseKind {
    /// The severity parameter (0 means the defense is a no-op).
    /// All-or-nothing defenses ([`RotationMode::Permute`],
    /// [`DefenseKind::Requantize`]) report 1.
    pub fn severity(&self) -> f64 {
        match *self {
            DefenseKind::Rotation {
                mode: RotationMode::Permute,
            }
            | DefenseKind::Requantize { .. } => 1.0,
            DefenseKind::Rotation {
                mode: RotationMode::QrBlend { strength },
            } => f64::from(strength),
            DefenseKind::FinetuneScrub { epochs, .. } => epochs as f64,
            DefenseKind::PruneScrub { fraction } | DefenseKind::NoiseWeights { fraction } => {
                f64::from(fraction)
            }
        }
    }

    /// The defense with its severity multiplied by `factor` (fractions
    /// clamp below their validity ceiling). All-or-nothing defenses —
    /// permutation rotation and re-quantization — are returned
    /// unchanged: there is no partial permutation.
    pub fn scaled(&self, factor: f32) -> DefenseKind {
        match *self {
            DefenseKind::Rotation {
                mode: RotationMode::Permute,
            }
            | DefenseKind::Requantize { .. } => *self,
            DefenseKind::Rotation {
                mode: RotationMode::QrBlend { strength },
            } => DefenseKind::Rotation {
                mode: RotationMode::QrBlend {
                    strength: (strength * factor).min(1.0),
                },
            },
            DefenseKind::FinetuneScrub { epochs, lr } => DefenseKind::FinetuneScrub {
                epochs: ((epochs as f32) * factor).round() as usize,
                lr,
            },
            DefenseKind::PruneScrub { fraction } => DefenseKind::PruneScrub {
                fraction: (fraction * factor).min(0.99),
            },
            DefenseKind::NoiseWeights { fraction } => DefenseKind::NoiseWeights {
                fraction: fraction * factor,
            },
        }
    }

    /// Validates the defense's parameters.
    ///
    /// # Errors
    ///
    /// Returns [`DefenseError::InvalidDefense`] for out-of-range
    /// parameters.
    pub fn validate(&self) -> Result<()> {
        let invalid = |reason: String| Err(DefenseError::InvalidDefense { reason });
        match *self {
            DefenseKind::Rotation {
                mode: RotationMode::Permute,
            } => Ok(()),
            DefenseKind::Rotation {
                mode: RotationMode::QrBlend { strength },
            } => {
                if !strength.is_finite() || !(0.0..=1.0).contains(&strength) {
                    invalid(format!("QR blend strength {strength} outside [0, 1]"))
                } else {
                    Ok(())
                }
            }
            DefenseKind::FinetuneScrub { epochs, lr } => {
                if epochs > 0 && (!lr.is_finite() || lr <= 0.0) {
                    invalid(format!(
                        "fine-tune scrub lr {lr} must be positive and finite"
                    ))
                } else {
                    Ok(())
                }
            }
            DefenseKind::PruneScrub { fraction } => {
                if !fraction.is_finite() || !(0.0..1.0).contains(&fraction) {
                    invalid(format!("prune fraction {fraction} outside [0, 1)"))
                } else {
                    Ok(())
                }
            }
            DefenseKind::Requantize { bits } => {
                if bits == 0 || bits > 16 {
                    invalid(format!("requantize bits {bits} outside 1..=16"))
                } else {
                    Ok(())
                }
            }
            DefenseKind::NoiseWeights { fraction } => {
                if !fraction.is_finite() || fraction < 0.0 {
                    invalid(format!("noise fraction {fraction} must be non-negative"))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Builds the runnable countermeasure for this kind.
    pub fn instantiate(&self) -> Box<dyn Defense> {
        match *self {
            DefenseKind::Rotation { mode } => Box::new(Rotation { mode }),
            DefenseKind::FinetuneScrub { epochs, lr } => Box::new(FinetuneScrub { epochs, lr }),
            DefenseKind::PruneScrub { fraction } => Box::new(PruneScrub { fraction }),
            DefenseKind::Requantize { bits } => Box::new(Requantize { bits }),
            DefenseKind::NoiseWeights { fraction } => Box::new(NoiseWeights { fraction }),
        }
    }

    /// Short stable name (matches [`Defense::name`]).
    pub fn name(&self) -> &'static str {
        match *self {
            DefenseKind::Rotation { .. } => "rotation",
            DefenseKind::FinetuneScrub { .. } => "finetune-scrub",
            DefenseKind::PruneScrub { .. } => "prune-scrub",
            DefenseKind::Requantize { .. } => "requantize",
            DefenseKind::NoiseWeights { .. } => "noise-weights",
        }
    }
}

/// A seeded, ordered list of defenses applied to a released model.
///
/// Each defense draws from its own seed-derived RNG (like
/// `qce::faults::FaultPlan`), so plans compose independently of each
/// other's draw counts and reproduce exactly.
///
/// # Examples
///
/// ```
/// use qce_defense::{DefenseKind, DefensePlan};
///
/// let plan = DefensePlan::new(3)
///     .with(DefenseKind::PruneScrub { fraction: 0.2 })
///     .with(DefenseKind::NoiseWeights { fraction: 0.05 });
/// assert!(!plan.is_benign());
/// assert!(plan.scaled(0.0).is_benign());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefensePlan {
    seed: u64,
    defenses: Vec<DefenseKind>,
}

impl DefensePlan {
    /// Creates an empty plan; all randomness derives from `seed`.
    pub fn new(seed: u64) -> Self {
        DefensePlan {
            seed,
            defenses: Vec::new(),
        }
    }

    /// Appends a defense (applied in insertion order).
    #[must_use]
    pub fn with(mut self, defense: DefenseKind) -> Self {
        self.defenses.push(defense);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The defenses in application order.
    pub fn defenses(&self) -> &[DefenseKind] {
        &self.defenses
    }

    /// The plan with every scalable severity multiplied by `factor`
    /// (same seed; see [`DefenseKind::scaled`] for the all-or-nothing
    /// exceptions).
    pub fn scaled(&self, factor: f32) -> DefensePlan {
        DefensePlan {
            seed: self.seed,
            defenses: self.defenses.iter().map(|d| d.scaled(factor)).collect(),
        }
    }

    /// Whether every defense is a no-op (empty plan or all severities
    /// zero). Plans containing a permutation rotation or a
    /// re-quantization are never benign.
    pub fn is_benign(&self) -> bool {
        self.defenses.iter().all(|d| d.severity() == 0.0)
    }

    /// Validates every defense in the plan.
    ///
    /// # Errors
    ///
    /// Returns the first [`DefenseError::InvalidDefense`].
    pub fn validate(&self) -> Result<()> {
        for d in &self.defenses {
            d.validate()?;
        }
        Ok(())
    }

    /// Each defense gets its own RNG so plans compose independently of
    /// each other's draw counts (and severity scaling stays nested).
    fn rng_for(&self, defense_index: usize) -> StdRng {
        StdRng::seed_from_u64(
            self.seed ^ (defense_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }

    /// Applies the plan to a released float network in place.
    ///
    /// # Errors
    ///
    /// Returns [`DefenseError::InvalidDefense`] for out-of-range
    /// parameters, [`DefenseError::MissingData`] when a defense needs
    /// training data `ctx` does not carry, or propagates weight-surgery
    /// failures.
    pub fn apply(&self, net: &mut Network, ctx: &DefenseContext<'_>) -> Result<()> {
        self.validate()?;
        for (di, kind) in self.defenses.iter().enumerate() {
            if kind.severity() == 0.0 {
                continue;
            }
            let defense = kind.instantiate();
            let _span = qce_telemetry::span!("defense.apply", name = defense.name());
            let mut rng = self.rng_for(di);
            defense.apply(net, ctx, &mut rng)?;
            qce_telemetry::counter("defense.applied").incr(1);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_is_multiplicative_and_clamped() {
        let k = DefenseKind::PruneScrub { fraction: 0.4 };
        assert_eq!(k.scaled(2.0), DefenseKind::PruneScrub { fraction: 0.8 });
        assert_eq!(k.scaled(10.0), DefenseKind::PruneScrub { fraction: 0.99 });
        let n = DefenseKind::NoiseWeights { fraction: 0.1 };
        assert!(matches!(
            n.scaled(3.0),
            DefenseKind::NoiseWeights { fraction } if (fraction - 0.3).abs() < 1e-6
        ));
        let f = DefenseKind::FinetuneScrub {
            epochs: 2,
            lr: 0.01,
        };
        assert_eq!(
            f.scaled(1.6),
            DefenseKind::FinetuneScrub {
                epochs: 3,
                lr: 0.01
            }
        );
    }

    #[test]
    fn all_or_nothing_defenses_ignore_scaling() {
        let r = DefenseKind::Rotation {
            mode: RotationMode::Permute,
        };
        assert_eq!(r.scaled(0.0), r);
        assert_eq!(r.severity(), 1.0);
        let q = DefenseKind::Requantize { bits: 4 };
        assert_eq!(q.scaled(0.5), q);
        assert_eq!(q.severity(), 1.0);
    }

    #[test]
    fn benignness_tracks_severity() {
        assert!(DefensePlan::new(1).is_benign());
        let plan = DefensePlan::new(1)
            .with(DefenseKind::NoiseWeights { fraction: 0.1 })
            .with(DefenseKind::PruneScrub { fraction: 0.2 });
        assert!(!plan.is_benign());
        assert!(plan.scaled(0.0).is_benign());
        // Permutation rotation cannot be scaled away.
        let rot = DefensePlan::new(1).with(DefenseKind::Rotation {
            mode: RotationMode::Permute,
        });
        assert!(!rot.scaled(0.0).is_benign());
    }

    #[test]
    fn validation_rejects_out_of_range_parameters() {
        for bad in [
            DefenseKind::Rotation {
                mode: RotationMode::QrBlend { strength: 1.5 },
            },
            DefenseKind::Rotation {
                mode: RotationMode::QrBlend { strength: f32::NAN },
            },
            DefenseKind::FinetuneScrub { epochs: 1, lr: 0.0 },
            DefenseKind::PruneScrub { fraction: 1.0 },
            DefenseKind::Requantize { bits: 0 },
            DefenseKind::Requantize { bits: 17 },
            DefenseKind::NoiseWeights { fraction: -0.1 },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be rejected");
            assert!(DefensePlan::new(0).with(bad).validate().is_err());
        }
        // Epochs 0 tolerates any lr (the defense is a no-op).
        assert!(DefenseKind::FinetuneScrub { epochs: 0, lr: 0.0 }
            .validate()
            .is_ok());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(
            DefenseKind::Rotation {
                mode: RotationMode::Permute
            }
            .name(),
            "rotation"
        );
        assert_eq!(DefenseKind::Requantize { bits: 2 }.name(), "requantize");
    }
}
