//! Data-holder countermeasures against weight-encoded payloads — the
//! defender's half of the arms race.
//!
//! The DAC'20 attack smuggles training images into a released model's
//! weights (sign, LSB or correlation encodings). A data holder who
//! suspects the training pipeline can perturb the model *before* release
//! to destroy such payloads while keeping task accuracy. This crate
//! packages those perturbations as composable [`Defense`] objects driven
//! by a seeded [`DefensePlan`], mirroring the fault-injection
//! architecture of `qce::faults`:
//!
//! * [`Rotation`] — re-parameterize every residual block's hidden
//!   channel space. In [`RotationMode::Permute`] mode this applies the
//!   network's *exact* ReLU symmetry (a compensated channel
//!   permutation): task function is preserved up to float summation
//!   order, but any position-addressed payload is scrambled. The
//!   [`RotationMode::QrBlend`] mode blends each hidden basis toward a
//!   random orthogonal (QR-derived) rotation; it is deliberately
//!   *lossy* (batch-norm and ReLU do not commute with general
//!   rotations) and exists to measure the accuracy/decorrelation
//!   trade-off of non-symmetry rotations.
//! * [`FinetuneScrub`] — a short defensive retraining pass on clean
//!   data, eroding gradients the attacker's regularizer planted.
//! * [`PruneScrub`] — magnitude pruning via
//!   [`qce_quant::prune::magnitude_prune`].
//! * [`Requantize`] — defender-chosen k-means re-quantization,
//!   annihilating LSB payloads and re-drawing an attacker's
//!   target-correlated cluster boundaries.
//! * [`NoiseWeights`] — per-tensor σ-scaled Gaussian noise (migrated
//!   from `qce::defense::noise_weights`).
//!
//! Every draw derives from the plan seed (each defense gets an
//! independent RNG), so a plan is reproducible and composes
//! deterministically — the property the tournament goldens in
//! `qce-harness` rely on.
//!
//! # Examples
//!
//! ```
//! use qce_defense::{DefenseContext, DefenseKind, DefensePlan, RotationMode};
//! use qce_nn::models::ResNetLite;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut net = ResNetLite::builder()
//!     .input(1, 8).classes(2).stage_channels(&[4]).blocks_per_stage(1)
//!     .build(1)?;
//! let before = net.flat_weights();
//! let plan = DefensePlan::new(7)
//!     .with(DefenseKind::Rotation { mode: RotationMode::Permute })
//!     .with(DefenseKind::NoiseWeights { fraction: 0.05 });
//! plan.apply(&mut net, &DefenseContext::empty())?;
//! assert_ne!(net.flat_weights(), before);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;

use qce_nn::{Network, NnError};
use qce_quant::QuantError;
use qce_tensor::Tensor;

mod countermeasures;
mod plan;

pub use countermeasures::{FinetuneScrub, NoiseWeights, PruneScrub, Requantize, Rotation};
pub use plan::{DefenseKind, DefensePlan, RotationMode};

/// Error type of defense application.
#[derive(Debug)]
#[non_exhaustive]
pub enum DefenseError {
    /// A defense's parameter is out of range.
    InvalidDefense {
        /// Why the defense is rejected.
        reason: String,
    },
    /// A defense needs clean training data the [`DefenseContext`] does
    /// not carry.
    MissingData {
        /// Which defense demanded the data.
        defense: &'static str,
    },
    /// Defensive retraining or weight surgery failed inside `qce-nn`.
    Nn(NnError),
    /// Re-quantization or pruning failed inside `qce-quant`.
    Quant(QuantError),
}

impl std::fmt::Display for DefenseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DefenseError::InvalidDefense { reason } => write!(f, "invalid defense: {reason}"),
            DefenseError::MissingData { defense } => {
                write!(
                    f,
                    "defense `{defense}` needs clean training data in the DefenseContext"
                )
            }
            DefenseError::Nn(e) => write!(f, "defense (network): {e}"),
            DefenseError::Quant(e) => write!(f, "defense (quantization): {e}"),
        }
    }
}

impl std::error::Error for DefenseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DefenseError::Nn(e) => Some(e),
            DefenseError::Quant(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for DefenseError {
    fn from(e: NnError) -> Self {
        DefenseError::Nn(e)
    }
}

impl From<QuantError> for DefenseError {
    fn from(e: QuantError) -> Self {
        DefenseError::Quant(e)
    }
}

/// Convenience alias for defense results.
pub type Result<T> = std::result::Result<T, DefenseError>;

/// Resources a defender has on hand while scrubbing a model.
///
/// Only [`FinetuneScrub`] consumes the training data; every other
/// defense works from the weights alone, so [`DefenseContext::empty`]
/// suffices for them.
#[derive(Debug, Default, Clone, Copy)]
pub struct DefenseContext<'a> {
    /// Clean images `[N, C, H, W]` the defender trusts.
    pub train_x: Option<&'a Tensor>,
    /// Class labels aligned with `train_x`.
    pub train_labels: Option<&'a [usize]>,
    /// Mini-batch size for defensive retraining (0 falls back to 32).
    pub batch_size: usize,
}

impl<'a> DefenseContext<'a> {
    /// A context with no training data (weight-only defenses).
    pub fn empty() -> Self {
        DefenseContext::default()
    }

    /// A context carrying clean training data for [`FinetuneScrub`].
    pub fn with_data(x: &'a Tensor, labels: &'a [usize], batch_size: usize) -> Self {
        DefenseContext {
            train_x: Some(x),
            train_labels: Some(labels),
            batch_size,
        }
    }

    /// Effective mini-batch size (0 falls back to 32).
    pub fn effective_batch_size(&self) -> usize {
        if self.batch_size == 0 {
            32
        } else {
            self.batch_size
        }
    }
}

/// One countermeasure applied to a released float network in place.
///
/// Implementations draw all randomness from the `rng` argument (seeded
/// per-defense by [`DefensePlan`]) so identical plans reproduce
/// identical released weights.
pub trait Defense {
    /// Short stable name (used in telemetry counters and reports).
    fn name(&self) -> &'static str;

    /// Perturbs `net` in place.
    ///
    /// # Errors
    ///
    /// Returns [`DefenseError`] when parameters are out of range, when
    /// required [`DefenseContext`] resources are missing, or when the
    /// underlying weight surgery fails.
    fn apply(&self, net: &mut Network, ctx: &DefenseContext<'_>, rng: &mut StdRng) -> Result<()>;
}
