//! Property-based tests of the quantization invariants (DESIGN.md §6)
//! and of compute-backend determinism (DESIGN.md "Compute backend &
//! determinism"): fits and bulk assignments must be bit-for-bit equal
//! between the serial reference and every parallel pool.

use proptest::prelude::*;
use qce_quant::{
    pack, Codebook, KMeansQuantizer, LinearQuantizer, Quantizer, TargetCorrelatedQuantizer,
    WeightedEntropyQuantizer,
};
use qce_tensor::par::Pool;

fn weights_strategy() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, 64..512)
}

fn check_codebook_invariants(cb: &Codebook, weights: &[f32]) -> Result<(), TestCaseError> {
    // Boundaries non-decreasing.
    prop_assert!(cb.boundaries().windows(2).all(|w| w[0] <= w[1]));
    // Quantization is idempotent and uses only representatives.
    let q = cb.quantize(weights);
    prop_assert_eq!(cb.quantize(&q), q.clone());
    for v in &q {
        prop_assert!(cb.representatives().contains(v));
    }
    // Distinct output values bounded by levels.
    let mut d = q.clone();
    d.sort_by(f32::total_cmp);
    d.dedup();
    prop_assert!(d.len() <= cb.levels());
    // assign/decode round trip equals quantize.
    let decoded = cb.decode(&cb.assign(weights)).unwrap();
    prop_assert_eq!(decoded, q);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn linear_codebook_invariants(weights in weights_strategy(), levels in 2usize..33) {
        let cb = LinearQuantizer::new(levels).unwrap().fit(&weights).unwrap();
        check_codebook_invariants(&cb, &weights)?;
    }

    #[test]
    fn kmeans_codebook_invariants(weights in weights_strategy(), levels in 2usize..17) {
        let cb = KMeansQuantizer::new(levels).unwrap().fit(&weights).unwrap();
        check_codebook_invariants(&cb, &weights)?;
    }

    #[test]
    fn weq_codebook_invariants(weights in weights_strategy(), levels in 2usize..33) {
        let cb = WeightedEntropyQuantizer::new(levels).unwrap().fit(&weights).unwrap();
        check_codebook_invariants(&cb, &weights)?;
    }

    #[test]
    fn target_correlated_codebook_invariants(
        weights in weights_strategy(),
        pixels in prop::collection::vec(0u8..=255, 64..512),
        levels in 2usize..33,
    ) {
        let q = TargetCorrelatedQuantizer::new(levels, &pixels).unwrap();
        let cb = q.fit(&weights).unwrap();
        check_codebook_invariants(&cb, &weights)?;
    }

    #[test]
    fn target_correlated_occupancy_tracks_histogram(
        seed in 0u64..500,
        levels in 2usize..17,
    ) {
        // Large uniform weight sample so rounding error is relatively small.
        let mut rng = qce_tensor::init::seeded_rng(seed);
        use rand::RngExt;
        let weights: Vec<f32> = (0..20_000).map(|_| rng.random_range(-1.0f32..1.0)).collect();
        let pixels: Vec<u8> = (0..4096).map(|_| rng.random_range(0u32..256) as u8).collect();
        let q = TargetCorrelatedQuantizer::new(levels, &pixels).unwrap();
        let cb = q.fit(&weights).unwrap();
        let occ = cb.occupancy(&weights);
        for (i, (&o, &h)) in occ.iter().zip(q.histogram()).enumerate() {
            let expected = h * weights.len() as f64;
            prop_assert!(
                (o as f64 - expected).abs() <= weights.len() as f64 * 0.02 + 2.0,
                "cluster {i}: {o} vs {expected}"
            );
        }
    }

    #[test]
    fn kmeans_never_worse_mse_than_linear(seed in 0u64..200) {
        let mut rng = qce_tensor::init::seeded_rng(seed);
        let weights: Vec<f32> = (0..2000)
            .map(|_| qce_tensor::init::standard_normal(&mut rng))
            .collect();
        let mse = |cb: &Codebook| -> f64 {
            weights.iter().map(|&w| {
                let (_, r) = cb.quantize_value(w);
                ((w - r) as f64).powi(2)
            }).sum::<f64>() / weights.len() as f64
        };
        let lin = LinearQuantizer::new(8).unwrap().fit(&weights).unwrap();
        let km = KMeansQuantizer::new(8).unwrap().fit(&weights).unwrap();
        prop_assert!(mse(&km) <= mse(&lin) * 1.05, "kmeans {} linear {}", mse(&km), mse(&lin));
    }

    #[test]
    fn pack_round_trip(
        indices in prop::collection::vec(0u32..16, 0..300),
        extra_bits in 0u32..3,
    ) {
        let bits = 4 + extra_bits;
        let bytes = pack::pack(&indices, bits).unwrap();
        prop_assert_eq!(bytes.len(), pack::packed_len(indices.len(), bits));
        let back = pack::unpack(&bytes, bits, indices.len()).unwrap();
        prop_assert_eq!(back, indices);
    }

    #[test]
    fn quantizer_fit_bitwise_equal_across_pools(
        weights in prop::collection::vec(-10.0f32..10.0, 64..4000),
        levels in 2usize..33,
        pixel_seed in 0u64..1000,
    ) {
        let mut rng = qce_tensor::init::seeded_rng(pixel_seed);
        use rand::RngExt;
        let pixels: Vec<u8> = (0..512).map(|_| rng.random_range(0u32..256) as u8).collect();
        let quantizers: Vec<Box<dyn Quantizer>> = vec![
            Box::new(LinearQuantizer::new(levels).unwrap()),
            Box::new(KMeansQuantizer::new(levels).unwrap()),
            Box::new(WeightedEntropyQuantizer::new(levels).unwrap()),
            Box::new(TargetCorrelatedQuantizer::new(levels, &pixels).unwrap()),
        ];
        for q in &quantizers {
            let reference = q.fit_with(&Pool::serial(), &weights).unwrap();
            for threads in [1usize, 2, 3, 8] {
                let cb = q.fit_with(&Pool::with_threads(threads), &weights).unwrap();
                let reps_eq = cb.representatives().iter().zip(reference.representatives())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                let bounds_eq = cb.boundaries().iter().zip(reference.boundaries())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                prop_assert!(
                    reps_eq && bounds_eq,
                    "{} fit differs at threads={}", q.name(), threads
                );
            }
        }
    }

    #[test]
    fn bulk_assignment_bitwise_equal_across_pools(
        weights in prop::collection::vec(-10.0f32..10.0, 64..40_000),
        levels in 2usize..33,
    ) {
        let cb = KMeansQuantizer::new(levels).unwrap().fit_with(&Pool::serial(), &weights).unwrap();
        let scalar_idx: Vec<u32> = weights.iter().map(|&w| cb.assign_value(w) as u32).collect();
        for threads in [1usize, 2, 3, 8] {
            let pool = Pool::with_threads(threads);
            prop_assert_eq!(&cb.assign_with(&pool, &weights), &scalar_idx, "threads={}", threads);
            let q = cb.quantize_with(&pool, &weights);
            let d = cb.decode_with(&pool, &scalar_idx).unwrap();
            let same = q.iter().zip(&d).all(|(a, b)| a.to_bits() == b.to_bits());
            prop_assert!(same, "quantize/decode disagree at threads={}", threads);
        }
    }

    #[test]
    fn codebook_assign_bitwise_equal_across_simd_levels(
        levels in 2usize..33,
        seed in 0u64..500,
    ) {
        use qce_tensor::simd::{self, Level};
        // Lengths 1..=17 hit every remainder class of the 8-wide AVX2
        // rank_count body; 40_000 exercises the chunked parallel path.
        let mut lens: Vec<usize> = (1..=17).collect();
        lens.push(40_000);
        let mut rng = qce_tensor::init::seeded_rng(seed);
        use rand::RngExt;
        let all: Vec<f32> = (0..40_000).map(|_| rng.random_range(-10.0..10.0)).collect();
        let cb = KMeansQuantizer::new(levels).unwrap().fit_with(&Pool::serial(), &all).unwrap();
        let simd_levels = if simd::detect() == Level::Avx2 {
            vec![Level::Scalar, Level::Avx2]
        } else {
            vec![Level::Scalar]
        };
        for &len in &lens {
            let w = &all[..len];
            let want: Vec<u32> = w.iter().map(|&x| cb.assign_value(x) as u32).collect();
            for &lvl in &simd_levels {
                let prev = simd::set_active(lvl);
                for threads in [1usize, 2, 4] {
                    let pool = Pool::with_threads(threads);
                    let got = cb.assign_with(&pool, w);
                    if got != want {
                        simd::set_active(prev);
                        prop_assert!(false, "assign len={} level={} threads={}", len, lvl.name(), threads);
                    }
                    let q = cb.quantize_with(&pool, w);
                    let same = q.iter().zip(&want)
                        .all(|(a, &i)| a.to_bits() == cb.representatives()[i as usize].to_bits());
                    if !same {
                        simd::set_active(prev);
                        prop_assert!(false, "quantize len={} level={} threads={}", len, lvl.name(), threads);
                    }
                }
                simd::set_active(prev);
            }
        }
    }

    #[test]
    fn quantization_error_bounded_by_range(weights in weights_strategy(), levels in 2usize..17) {
        let cb = LinearQuantizer::new(levels).unwrap().fit(&weights).unwrap();
        let lo = weights.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = weights.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let bin = (hi - lo) / levels as f32;
        for &w in &weights {
            let (_, r) = cb.quantize_value(w);
            // Linear quantization error is at most one bin width.
            prop_assert!((w - r).abs() <= bin + 1e-4);
        }
    }
}
