use qce_tensor::par::{self, Pool};
use qce_tensor::stats::Histogram;

use crate::{Codebook, QuantError, Result};

/// A boundary-selection strategy that fits a [`Codebook`] to a weight
/// vector.
///
/// All implementations share the same output contract: `levels()` clusters
/// whose boundaries are non-decreasing, fitted to (and typically spanning)
/// the input range. They differ only in *where* the boundaries go — which
/// is the entire design space the paper's quantization attack exploits.
pub trait Quantizer {
    /// Short name for reports (e.g. `"weq"`).
    fn name(&self) -> &'static str;

    /// Number of clusters this quantizer produces.
    fn levels(&self) -> usize;

    /// Fits a codebook to `weights` using an explicit compute pool.
    ///
    /// The dominant cost of every fit is sorting the weight vector; the
    /// pool parallelises that sort (and nothing else), and because the
    /// sort key is IEEE total order the sorted array — and therefore the
    /// fitted codebook — is bit-for-bit identical for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::EmptyWeights`] for empty input or
    /// [`QuantError::InvalidLevels`] when the configuration cannot produce
    /// a valid codebook (e.g. more clusters than weights).
    fn fit_with(&self, pool: &Pool, weights: &[f32]) -> Result<Codebook>;

    /// Fits a codebook to `weights` on the global pool.
    ///
    /// # Errors
    ///
    /// Same contract as [`Quantizer::fit_with`].
    fn fit(&self, weights: &[f32]) -> Result<Codebook> {
        self.fit_with(Pool::global(), weights)
    }
}

fn check_common(levels: usize, weights: &[f32]) -> Result<()> {
    if weights.is_empty() {
        return Err(QuantError::EmptyWeights);
    }
    if levels < 2 {
        return Err(QuantError::InvalidLevels {
            levels,
            reason: "need at least 2 clusters".to_string(),
        });
    }
    if levels > weights.len() {
        return Err(QuantError::InvalidLevels {
            levels,
            reason: format!("more clusters than weights ({})", weights.len()),
        });
    }
    Ok(())
}

fn sorted_with(pool: &Pool, weights: &[f32]) -> Vec<f32> {
    let mut s = weights.to_vec();
    par::sort_f32(pool, &mut s);
    s
}

/// Builds a codebook from sorted weights and cluster start indices
/// `starts` (length `l`, non-decreasing, `starts[0] == 0`). Empty clusters
/// inherit their lower boundary's value as representative.
fn codebook_from_partition(s: &[f32], starts: &[usize]) -> Result<Codebook> {
    let l = starts.len();
    let n = s.len();
    let mut reps = Vec::with_capacity(l);
    let mut bounds = Vec::with_capacity(l);
    for i in 0..l {
        let lo = starts[i].min(n - 1);
        let hi = if i + 1 < l { starts[i + 1] } else { n };
        bounds.push(s[lo]);
        if hi > starts[i] {
            let seg = &s[starts[i]..hi];
            reps.push(seg.iter().sum::<f32>() / seg.len() as f32);
        } else {
            reps.push(s[lo]);
        }
    }
    Codebook::new(reps, bounds)
}

/// Equal-width (linear) quantizer — deep-compression-style linear centroid
/// initialization over the weight range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinearQuantizer {
    levels: usize,
}

impl LinearQuantizer {
    /// Creates a linear quantizer with `levels` clusters.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidLevels`] for fewer than 2 levels.
    pub fn new(levels: usize) -> Result<Self> {
        if levels < 2 {
            return Err(QuantError::InvalidLevels {
                levels,
                reason: "need at least 2 clusters".to_string(),
            });
        }
        Ok(LinearQuantizer { levels })
    }
}

impl Quantizer for LinearQuantizer {
    fn name(&self) -> &'static str {
        "linear"
    }

    fn levels(&self) -> usize {
        self.levels
    }

    fn fit_with(&self, pool: &Pool, weights: &[f32]) -> Result<Codebook> {
        check_common(self.levels, weights)?;
        let s = sorted_with(pool, weights);
        let (lo, hi) = (s[0], s[s.len() - 1]);
        if lo == hi {
            // Degenerate constant vector: all clusters collapse onto it.
            return Codebook::new(vec![lo; self.levels], vec![lo; self.levels]);
        }
        let width = (hi - lo) / self.levels as f32;
        let bounds: Vec<f32> = (0..self.levels).map(|i| lo + width * i as f32).collect();
        let reps: Vec<f32> = (0..self.levels)
            .map(|i| lo + width * (i as f32 + 0.5))
            .collect();
        Codebook::new(reps, bounds)
    }
}

/// 1-D k-means (Lloyd) quantizer initialized from the linear grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KMeansQuantizer {
    levels: usize,
    iterations: usize,
}

impl KMeansQuantizer {
    /// Creates a k-means quantizer with `levels` clusters and the default
    /// 25 Lloyd iterations.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidLevels`] for fewer than 2 levels.
    pub fn new(levels: usize) -> Result<Self> {
        Self::with_iterations(levels, 25)
    }

    /// Creates a k-means quantizer with an explicit iteration budget.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidLevels`] for fewer than 2 levels.
    pub fn with_iterations(levels: usize, iterations: usize) -> Result<Self> {
        if levels < 2 {
            return Err(QuantError::InvalidLevels {
                levels,
                reason: "need at least 2 clusters".to_string(),
            });
        }
        Ok(KMeansQuantizer { levels, iterations })
    }
}

impl Quantizer for KMeansQuantizer {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn levels(&self) -> usize {
        self.levels
    }

    fn fit_with(&self, pool: &Pool, weights: &[f32]) -> Result<Codebook> {
        check_common(self.levels, weights)?;
        let s = sorted_with(pool, weights);
        let n = s.len();
        let (lo, hi) = (s[0], s[n - 1]);
        if lo == hi {
            return Codebook::new(vec![lo; self.levels], vec![lo; self.levels]);
        }
        let width = (hi - lo) / self.levels as f32;
        let mut centers: Vec<f32> = (0..self.levels)
            .map(|i| lo + width * (i as f32 + 0.5))
            .collect();

        // In sorted 1-D data the optimal assignment boundaries are the
        // midpoints between adjacent centers, so each Lloyd step is two
        // linear scans.
        let mut starts = vec![0usize; self.levels];
        let mut iters_run = 0u64;
        let mut last_max_move = 0.0f32;
        for _ in 0..self.iterations {
            iters_run += 1;
            // Assignment: cluster i covers values in
            // [mid(i-1, i), mid(i, i+1)).
            starts[0] = 0;
            for i in 1..self.levels {
                let mid = 0.5 * (centers[i - 1] + centers[i]);
                starts[i] = s.partition_point(|&w| w < mid).max(starts[i - 1]);
            }
            // Update.
            let mut moved = false;
            let mut max_move = 0.0f32;
            for i in 0..self.levels {
                let hi_idx = if i + 1 < self.levels {
                    starts[i + 1]
                } else {
                    n
                };
                if hi_idx > starts[i] {
                    let seg = &s[starts[i]..hi_idx];
                    let mean = seg.iter().sum::<f32>() / seg.len() as f32;
                    let delta = (mean - centers[i]).abs();
                    max_move = max_move.max(delta);
                    if delta > 1e-7 {
                        moved = true;
                    }
                    centers[i] = mean;
                }
            }
            last_max_move = max_move;
            if !moved {
                break;
            }
        }
        qce_telemetry::counter("quant.kmeans.fits").incr(1);
        qce_telemetry::counter("quant.kmeans.iterations").incr(iters_run);
        qce_telemetry::gauge("quant.kmeans.last_max_move").set(f64::from(last_max_move));
        // Final boundaries from the final centers.
        starts[0] = 0;
        for i in 1..self.levels {
            let mid = 0.5 * (centers[i - 1] + centers[i]);
            starts[i] = s.partition_point(|&w| w < mid).max(starts[i - 1]);
        }
        codebook_from_partition(&s, &starts)
    }
}

/// Weighted-entropy quantizer (Park et al., CVPR'17) — the paper's defense
/// baseline.
///
/// Each weight carries importance `w²`; clusters partition the sorted
/// weight sequence into segments of (approximately) equal total
/// importance, which is the partition that maximizes the weighted entropy
/// `-Σ P_k log P_k` of cluster importance shares. Representatives are
/// importance-weighted cluster means. The net effect: many narrow clusters
/// at large magnitudes, few wide ones near zero — which *reshapes* the
/// pixel-like weight distribution of a correlation-attacked model
/// (Fig. 3a) and thereby destroys both its accuracy and its encoded data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightedEntropyQuantizer {
    levels: usize,
}

impl WeightedEntropyQuantizer {
    /// Creates a weighted-entropy quantizer with `levels` clusters.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidLevels`] for fewer than 2 levels.
    pub fn new(levels: usize) -> Result<Self> {
        if levels < 2 {
            return Err(QuantError::InvalidLevels {
                levels,
                reason: "need at least 2 clusters".to_string(),
            });
        }
        Ok(WeightedEntropyQuantizer { levels })
    }

    /// Creates a quantizer for a bit width (`levels = 2^bits`).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidLevels`] for `bits == 0` or
    /// `bits > 16`.
    pub fn from_bits(bits: u32) -> Result<Self> {
        if bits == 0 || bits > 16 {
            return Err(QuantError::InvalidLevels {
                levels: 0,
                reason: format!("bit width {bits} outside 1..=16"),
            });
        }
        Self::new(1usize << bits)
    }
}

impl Quantizer for WeightedEntropyQuantizer {
    fn name(&self) -> &'static str {
        "weq"
    }

    fn levels(&self) -> usize {
        self.levels
    }

    fn fit_with(&self, pool: &Pool, weights: &[f32]) -> Result<Codebook> {
        check_common(self.levels, weights)?;
        let s = sorted_with(pool, weights);
        let n = s.len();
        // Cumulative importance along the sorted sequence.
        let total: f64 = s.iter().map(|&w| (w as f64) * (w as f64)).sum();
        if total == 0.0 {
            // All-zero weights degenerate to the constant codebook.
            return Codebook::new(vec![0.0; self.levels], vec![0.0; self.levels]);
        }
        let mut starts = Vec::with_capacity(self.levels);
        starts.push(0usize);
        let mut acc = 0.0f64;
        let mut next_cut = total / self.levels as f64;
        for (i, &w) in s.iter().enumerate() {
            acc += (w as f64) * (w as f64);
            while starts.len() < self.levels && acc >= next_cut {
                starts.push((i + 1).min(n - 1));
                next_cut = total * (starts.len() as f64) / self.levels as f64;
            }
        }
        while starts.len() < self.levels {
            starts.push(n - 1);
        }

        // Importance-weighted representatives.
        let mut reps = Vec::with_capacity(self.levels);
        let mut bounds = Vec::with_capacity(self.levels);
        for i in 0..self.levels {
            let lo = starts[i];
            let hi = if i + 1 < self.levels {
                starts[i + 1]
            } else {
                n
            };
            bounds.push(s[lo.min(n - 1)]);
            if hi > lo {
                let seg = &s[lo..hi];
                let imp: f64 = seg.iter().map(|&w| (w as f64) * (w as f64)).sum();
                if imp > 0.0 {
                    let wm: f64 = seg
                        .iter()
                        .map(|&w| (w as f64) * (w as f64) * (w as f64))
                        .sum::<f64>()
                        / imp;
                    reps.push(wm as f32);
                } else {
                    reps.push(seg.iter().sum::<f32>() / seg.len() as f32);
                }
            } else {
                reps.push(s[lo.min(n - 1)]);
            }
        }
        Codebook::new(reps, bounds)
    }
}

/// Target-correlated quantizer — Algorithm 1 of the paper.
///
/// Cluster occupancies are set proportional to the histogram of the
/// *target images' pixel values*: bin `i` of the pixel histogram `H`
/// (over `[0, 256)` with `l` bins) claims `H[i] · ℓ` of the sorted
/// weights. Because the correlation attack has already pushed the weight
/// distribution toward the pixel distribution, this boundary choice keeps
/// the quantized weight histogram aligned with the encoded data (Fig. 3b)
/// — preserving both decoding quality and accuracy.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetCorrelatedQuantizer {
    levels: usize,
    histogram: Vec<f64>,
}

impl TargetCorrelatedQuantizer {
    /// Creates the quantizer from the correlation-target pixel stream.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidLevels`] for fewer than 2 levels or
    /// [`QuantError::EmptyWeights`] for an empty target stream.
    pub fn new(levels: usize, target_pixels: &[u8]) -> Result<Self> {
        if levels < 2 {
            return Err(QuantError::InvalidLevels {
                levels,
                reason: "need at least 2 clusters".to_string(),
            });
        }
        if target_pixels.is_empty() {
            return Err(QuantError::EmptyWeights);
        }
        let values: Vec<f32> = target_pixels.iter().map(|&p| p as f32).collect();
        let hist = Histogram::from_values(&values, levels, 0.0, 256.0);
        Ok(TargetCorrelatedQuantizer {
            levels,
            histogram: hist.probabilities(),
        })
    }

    /// The normalized target pixel histogram driving the cluster sizes.
    pub fn histogram(&self) -> &[f64] {
        &self.histogram
    }
}

impl Quantizer for TargetCorrelatedQuantizer {
    fn name(&self) -> &'static str {
        "target_correlated"
    }

    fn levels(&self) -> usize {
        self.levels
    }

    fn fit_with(&self, pool: &Pool, weights: &[f32]) -> Result<Codebook> {
        check_common(self.levels, weights)?;
        let s = sorted_with(pool, weights);
        let n = s.len();
        // Algorithm 1 lines 4-7: b_i = b_{i-1} + H[i-1] * n, accumulated in
        // float and rounded so that b_l == n exactly.
        let mut starts = Vec::with_capacity(self.levels);
        let mut acc = 0.0f64;
        for i in 0..self.levels {
            starts.push((acc.round() as usize).min(n - 1));
            acc += self.histogram[i] * n as f64;
        }
        // Enforce monotonicity after rounding.
        for i in 1..self.levels {
            if starts[i] < starts[i - 1] {
                starts[i] = starts[i - 1];
            }
        }
        codebook_from_partition(&s, &starts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    fn random_weights(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = qce_tensor::init::seeded_rng(seed);
        (0..n)
            .map(|_| qce_tensor::init::standard_normal(&mut rng) * 0.1)
            .collect()
    }

    #[test]
    fn linear_splits_range_evenly() {
        let w: Vec<f32> = (0..100).map(|i| i as f32 / 99.0).collect();
        let cb = LinearQuantizer::new(4).unwrap().fit(&w).unwrap();
        assert_eq!(cb.levels(), 4);
        let b = cb.boundaries();
        assert!((b[1] - 0.25).abs() < 1e-5);
        assert!((b[2] - 0.5).abs() < 1e-5);
        // Quantization error bounded by half a bin.
        for &x in &w {
            let (_, r) = cb.quantize_value(x);
            assert!((x - r).abs() <= 0.125 + 1e-5);
        }
    }

    #[test]
    fn linear_handles_constant_vector() {
        let cb = LinearQuantizer::new(4).unwrap().fit(&[0.5; 10]).unwrap();
        assert_eq!(cb.quantize(&[0.5; 3]), vec![0.5; 3]);
    }

    #[test]
    fn kmeans_handles_single_distinct_value() {
        // A constant tensor collapses every cluster onto the one value and
        // must round-trip losslessly (regression: a released model can
        // legitimately ship an all-equal tensor, e.g. after pruning).
        let cb = KMeansQuantizer::new(4).unwrap().fit(&[-0.25; 16]).unwrap();
        assert_eq!(cb.levels(), 4);
        assert_eq!(cb.quantize(&[-0.25; 5]), vec![-0.25; 5]);
        let idx = cb.assign(&[-0.25; 5]);
        assert_eq!(cb.decode(&idx).unwrap(), vec![-0.25; 5]);
    }

    #[test]
    fn kmeans_reduces_mse_vs_linear() {
        let w = random_weights(5000, 1);
        let lin = LinearQuantizer::new(8).unwrap().fit(&w).unwrap();
        let km = KMeansQuantizer::new(8).unwrap().fit(&w).unwrap();
        let mse = |cb: &Codebook| -> f32 {
            w.iter()
                .map(|&x| {
                    let (_, r) = cb.quantize_value(x);
                    (x - r).powi(2)
                })
                .sum::<f32>()
                / w.len() as f32
        };
        assert!(
            mse(&km) < mse(&lin),
            "kmeans {} linear {}",
            mse(&km),
            mse(&lin)
        );
    }

    #[test]
    fn kmeans_finds_obvious_clusters() {
        let mut w = vec![0.0f32; 50];
        w.extend(vec![10.0f32; 50]);
        let cb = KMeansQuantizer::new(2).unwrap().fit(&w).unwrap();
        let reps = cb.representatives();
        assert!((reps[0] - 0.0).abs() < 1e-4);
        assert!((reps[1] - 10.0).abs() < 1e-4);
    }

    #[test]
    fn weq_equalizes_cluster_importance() {
        let w = random_weights(20_000, 2);
        let cb = WeightedEntropyQuantizer::new(8).unwrap().fit(&w).unwrap();
        // Importance per cluster should be roughly equal.
        let mut imp = [0.0f64; 8];
        for &x in &w {
            imp[cb.assign_value(x)] += (x as f64) * (x as f64);
        }
        let total: f64 = imp.iter().sum();
        for (i, &v) in imp.iter().enumerate() {
            let share = v / total;
            assert!(
                (share - 0.125).abs() < 0.05,
                "cluster {i} importance share {share}"
            );
        }
    }

    #[test]
    fn weq_concentrates_clusters_at_large_magnitudes() {
        let w = random_weights(20_000, 3);
        let cb = WeightedEntropyQuantizer::new(16).unwrap().fit(&w).unwrap();
        // The occupancy of the middle clusters should dominate: few weights
        // live in the many extreme clusters.
        let occ = cb.occupancy(&w);
        let mid: usize = occ[6..10].iter().sum();
        let edges: usize = occ[..2].iter().sum::<usize>() + occ[14..].iter().sum::<usize>();
        assert!(mid > edges * 5, "mid={mid} edges={edges}");
    }

    #[test]
    fn weq_from_bits() {
        assert_eq!(WeightedEntropyQuantizer::from_bits(4).unwrap().levels(), 16);
        assert!(WeightedEntropyQuantizer::from_bits(0).is_err());
        assert!(WeightedEntropyQuantizer::from_bits(17).is_err());
    }

    #[test]
    fn weq_all_zero_weights() {
        let cb = WeightedEntropyQuantizer::new(4)
            .unwrap()
            .fit(&[0.0; 10])
            .unwrap();
        assert_eq!(cb.quantize(&[0.0]), vec![0.0]);
    }

    #[test]
    fn target_correlated_matches_pixel_histogram() {
        // Target pixels: 75% low values, 25% high values, 2 levels.
        let mut pixels = vec![10u8; 750];
        pixels.extend(vec![200u8; 250]);
        let q = TargetCorrelatedQuantizer::new(2, &pixels).unwrap();
        assert!((q.histogram()[0] - 0.75).abs() < 1e-9);

        let w = random_weights(10_000, 4);
        let cb = q.fit(&w).unwrap();
        let occ = cb.occupancy(&w);
        // Cluster occupancy should follow the pixel histogram.
        let share0 = occ[0] as f64 / w.len() as f64;
        assert!((share0 - 0.75).abs() < 0.02, "share0 {share0}");
    }

    #[test]
    fn target_correlated_occupancy_within_rounding() {
        let mut pixels = Vec::new();
        for v in 0..=255u8 {
            for _ in 0..(v as usize % 7 + 1) {
                pixels.push(v);
            }
        }
        let q = TargetCorrelatedQuantizer::new(16, &pixels).unwrap();
        let w = random_weights(50_000, 5);
        let cb = q.fit(&w).unwrap();
        let occ = cb.occupancy(&w);
        for (i, (&o, &h)) in occ.iter().zip(q.histogram()).enumerate() {
            let expected = h * w.len() as f64;
            assert!(
                (o as f64 - expected).abs() <= w.len() as f64 * 0.01 + 2.0,
                "cluster {i}: occupancy {o} vs expected {expected}"
            );
        }
    }

    #[test]
    fn validation_errors() {
        assert!(LinearQuantizer::new(1).is_err());
        assert!(KMeansQuantizer::new(0).is_err());
        assert!(WeightedEntropyQuantizer::new(1).is_err());
        assert!(TargetCorrelatedQuantizer::new(1, &[1]).is_err());
        assert!(TargetCorrelatedQuantizer::new(4, &[]).is_err());
        let q = LinearQuantizer::new(4).unwrap();
        assert!(q.fit(&[]).is_err());
        assert!(q.fit(&[1.0, 2.0]).is_err()); // more levels than weights
    }

    #[test]
    fn all_quantizers_produce_valid_codebooks_on_random_data() {
        let w = random_weights(3000, 6);
        let pixels: Vec<u8> = (0..1000).map(|i| (i % 256) as u8).collect();
        let quantizers: Vec<Box<dyn Quantizer>> = vec![
            Box::new(LinearQuantizer::new(16).unwrap()),
            Box::new(KMeansQuantizer::new(16).unwrap()),
            Box::new(WeightedEntropyQuantizer::new(16).unwrap()),
            Box::new(TargetCorrelatedQuantizer::new(16, &pixels).unwrap()),
        ];
        for q in &quantizers {
            let cb = q.fit(&w).unwrap();
            assert_eq!(cb.levels(), 16, "{}", q.name());
            let quantized = cb.quantize(&w);
            // Idempotence.
            assert_eq!(cb.quantize(&quantized), quantized, "{}", q.name());
            // At most 16 distinct values.
            let mut distinct: Vec<f32> = quantized.clone();
            distinct.sort_by(f32::total_cmp);
            distinct.dedup();
            assert!(distinct.len() <= 16, "{}", q.name());
        }
    }

    #[test]
    fn quantizer_trait_is_object_safe() {
        fn _takes(_: &dyn Quantizer) {}
    }

    #[test]
    fn deterministic_fit() {
        let w = random_weights(1000, 7);
        let q = WeightedEntropyQuantizer::new(8).unwrap();
        assert_eq!(q.fit(&w).unwrap(), q.fit(&w).unwrap());
    }

    #[test]
    fn random_weights_helper_is_seeded() {
        let mut rng = qce_tensor::init::seeded_rng(0);
        let _: f32 = rng.random_range(0.0..1.0); // RngExt import used
        assert_eq!(random_weights(10, 8), random_weights(10, 8));
    }
}
