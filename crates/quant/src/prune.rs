//! Magnitude pruning — the *other* hardware-oriented compression the
//! paper's introduction names (Han et al.'s deep compression pipeline is
//! pruning + quantization).
//!
//! Pruning interacts with the correlation attack differently than
//! quantization: it zeroes the smallest-magnitude weights, which under
//! the attack correspond to a *band of pixel values* (the ones the affine
//! map sends near zero) rather than uniformly distributed noise. The
//! `ablations` bench measures how reconstruction quality decays with
//! sparsity.

use qce_nn::{Network, ParamKind};

use crate::{QuantError, Result};

/// Which weights were pruned, per weight tensor (forward order).
#[derive(Debug, Clone, PartialEq)]
pub struct PruneMask {
    masks: Vec<Vec<bool>>,
    sparsity: f32,
}

impl PruneMask {
    /// Per-tensor keep/prune masks (`true` = pruned to zero).
    pub fn masks(&self) -> &[Vec<bool>] {
        &self.masks
    }

    /// The requested global sparsity.
    pub fn sparsity(&self) -> f32 {
        self.sparsity
    }

    /// Total number of pruned weights.
    pub fn pruned_count(&self) -> usize {
        self.masks
            .iter()
            .map(|m| m.iter().filter(|&&x| x).count())
            .sum()
    }

    /// Total number of weights covered by the mask.
    pub fn total(&self) -> usize {
        self.masks.iter().map(Vec::len).sum()
    }

    /// Re-zeroes the pruned positions (e.g. after fine-tuning steps that
    /// might have revived them).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::AssignmentMismatch`] if the network layout no
    /// longer matches.
    pub fn reapply(&self, net: &mut Network) -> Result<()> {
        let mut mask_iter = self.masks.iter();
        for p in net.params_mut() {
            if p.kind() != ParamKind::Weight {
                continue;
            }
            let mask = mask_iter.next().ok_or(QuantError::AssignmentMismatch {
                expected: 0,
                actual: p.len(),
            })?;
            if mask.len() != p.len() {
                return Err(QuantError::AssignmentMismatch {
                    expected: mask.len(),
                    actual: p.len(),
                });
            }
            for (w, &pruned) in p.value_mut().as_mut_slice().iter_mut().zip(mask.iter()) {
                if pruned {
                    *w = 0.0;
                }
            }
        }
        Ok(())
    }
}

/// Prunes the smallest-magnitude fraction `sparsity` of each weight
/// tensor to zero, in place, and returns the mask.
///
/// Per-tensor (rather than global) thresholds are the standard practice:
/// layers have very different weight scales and a global threshold would
/// wipe out the small-scale layers entirely.
///
/// # Errors
///
/// Returns [`QuantError::InvalidLevels`] if `sparsity` is outside
/// `[0, 1)`.
///
/// # Examples
///
/// ```
/// use qce_nn::models::ResNetLite;
/// use qce_quant::prune::magnitude_prune;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut net = ResNetLite::builder()
///     .input(1, 8).classes(2).stage_channels(&[4]).blocks_per_stage(1)
///     .build(1)?;
/// let mask = magnitude_prune(&mut net, 0.5)?;
/// assert!(mask.pruned_count() >= mask.total() * 2 / 5);
/// # Ok(())
/// # }
/// ```
pub fn magnitude_prune(net: &mut Network, sparsity: f32) -> Result<PruneMask> {
    if !(0.0..1.0).contains(&sparsity) {
        return Err(QuantError::InvalidLevels {
            levels: 0,
            reason: format!("sparsity {sparsity} outside [0, 1)"),
        });
    }
    let mut masks = Vec::new();
    for p in net.params_mut() {
        if p.kind() != ParamKind::Weight {
            continue;
        }
        let values = p.value().as_slice().to_vec();
        let prune_n = ((values.len() as f32) * sparsity).round() as usize;
        let mut mask = vec![false; values.len()];
        if prune_n > 0 {
            let mut order: Vec<usize> = (0..values.len()).collect();
            order.sort_by(|&a, &b| values[a].abs().total_cmp(&values[b].abs()));
            for &i in order.iter().take(prune_n) {
                mask[i] = true;
            }
            let pv = p.value_mut().as_mut_slice();
            for (w, &pruned) in pv.iter_mut().zip(mask.iter()) {
                if pruned {
                    *w = 0.0;
                }
            }
        }
        masks.push(mask);
    }
    Ok(PruneMask { masks, sparsity })
}

/// Fraction of `Weight`-kind scalars that are exactly zero.
pub fn measured_sparsity(net: &Network) -> f32 {
    let mut zeros = 0usize;
    let mut total = 0usize;
    for p in net.params() {
        if p.kind() == ParamKind::Weight {
            total += p.len();
            zeros += p.value().as_slice().iter().filter(|&&w| w == 0.0).count();
        }
    }
    if total == 0 {
        0.0
    } else {
        zeros as f32 / total as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qce_nn::models::ResNetLite;

    fn net() -> Network {
        ResNetLite::builder()
            .input(1, 8)
            .classes(2)
            .stage_channels(&[4, 8])
            .blocks_per_stage(1)
            .build(21)
            .unwrap()
    }

    #[test]
    fn prunes_requested_fraction_per_tensor() {
        let mut n = net();
        let mask = magnitude_prune(&mut n, 0.3).unwrap();
        let measured = measured_sparsity(&n);
        assert!((measured - 0.3).abs() < 0.05, "sparsity {measured}");
        assert_eq!(mask.total(), n.num_weights());
        assert_eq!(mask.sparsity(), 0.3);
    }

    #[test]
    fn prunes_smallest_magnitudes_first() {
        let mut n = net();
        let before = n.flat_weights();
        magnitude_prune(&mut n, 0.5).unwrap();
        let after = n.flat_weights();
        // Every surviving weight has magnitude >= every pruned weight's
        // original magnitude... per tensor; check the global weaker form:
        // the mean |w| of survivors exceeds the mean |w| of pruned.
        let mut survivor = 0.0f64;
        let mut survivor_n = 0usize;
        let mut pruned = 0.0f64;
        let mut pruned_n = 0usize;
        for (b, a) in before.iter().zip(after.iter()) {
            if *a == 0.0 && *b != 0.0 {
                pruned += b.abs() as f64;
                pruned_n += 1;
            } else if *a != 0.0 {
                survivor += b.abs() as f64;
                survivor_n += 1;
            }
        }
        assert!(survivor / survivor_n as f64 > pruned / pruned_n as f64);
    }

    #[test]
    fn zero_sparsity_is_identity() {
        let mut n = net();
        let before = n.flat_weights();
        let mask = magnitude_prune(&mut n, 0.0).unwrap();
        assert_eq!(n.flat_weights(), before);
        assert_eq!(mask.pruned_count(), 0);
    }

    #[test]
    fn reapply_rezeros_revived_weights() {
        let mut n = net();
        let mask = magnitude_prune(&mut n, 0.4).unwrap();
        // Revive everything.
        let ones = vec![1.0f32; n.num_weights()];
        n.set_flat_weights(&ones).unwrap();
        mask.reapply(&mut n).unwrap();
        let measured = measured_sparsity(&n);
        assert!((measured - 0.4).abs() < 0.05);
    }

    #[test]
    fn invalid_sparsity_rejected() {
        let mut n = net();
        assert!(magnitude_prune(&mut n, 1.0).is_err());
        assert!(magnitude_prune(&mut n, -0.1).is_err());
    }

    #[test]
    fn reapply_rejects_mismatched_network() {
        let mut a = net();
        let mask = magnitude_prune(&mut a, 0.2).unwrap();
        let mut other = ResNetLite::builder()
            .input(1, 8)
            .classes(2)
            .stage_channels(&[6])
            .blocks_per_stage(1)
            .build(5)
            .unwrap();
        assert!(mask.reapply(&mut other).is_err());
    }
}
