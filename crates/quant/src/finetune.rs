use qce_nn::loss::softmax_cross_entropy;
use qce_nn::{gather_batch, Mode, Network, ParamKind, Regularizer, TrainingHistory};
use qce_tensor::Tensor;
use rand::seq::SliceRandom;

use crate::{QuantError, QuantizedNetwork, Result};

/// Hyper-parameters for quantization-aware fine-tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct FinetuneConfig {
    /// Number of fine-tuning epochs (papers use "light" fine-tuning; 1–3).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate for the shared-centroid updates.
    pub lr: f32,
    /// Momentum on the centroid velocity.
    pub momentum: f32,
    /// Seed for the per-epoch shuffle.
    pub shuffle_seed: u64,
    /// Print one line per epoch to stderr.
    pub verbose: bool,
}

impl Default for FinetuneConfig {
    fn default() -> Self {
        FinetuneConfig {
            epochs: 2,
            batch_size: 32,
            lr: 0.01,
            momentum: 0.9,
            shuffle_seed: 0xf17e,
            verbose: false,
        }
    }
}

/// Quantization-aware fine-tuning with shared centroids (deep-compression
/// style).
///
/// Cluster assignments stay **fixed**; each step averages the gradients of
/// all weights sharing a centroid, moves the centroid by SGD with
/// momentum, and rewrites the member weights — so the model never leaves
/// its quantized representation. Non-`Weight` parameters (biases, batch
/// norm) train normally, which is how quantized deployments recover
/// accuracy in practice.
///
/// When the malicious `regularizer` is passed (the adversary authors the
/// whole training algorithm, including this step), the correlation
/// gradient joins the centroid updates — keeping the encoded data aligned
/// through accuracy recovery.
///
/// # Errors
///
/// Returns [`QuantError::AssignmentMismatch`] if `qnet` does not match
/// `net`, or propagates training errors.
pub fn finetune(
    net: &mut Network,
    qnet: &mut QuantizedNetwork,
    x: &Tensor,
    labels: &[usize],
    config: &FinetuneConfig,
    mut regularizer: Option<&mut dyn Regularizer>,
) -> Result<TrainingHistory> {
    let n = x.dims()[0];
    if labels.len() != n {
        return Err(QuantError::Nn(qce_nn::NnError::SampleLabelMismatch {
            samples: n,
            labels: labels.len(),
        }));
    }
    // Validate alignment once up front.
    {
        let weight_lens: Vec<usize> = net
            .params()
            .iter()
            .filter(|p| p.kind() == ParamKind::Weight)
            .map(|p| p.len())
            .collect();
        if weight_lens.len() != qnet.slots().len()
            || weight_lens
                .iter()
                .zip(qnet.slots())
                .any(|(&l, s)| l != s.len())
        {
            return Err(QuantError::AssignmentMismatch {
                expected: qnet.num_weights(),
                actual: weight_lens.iter().sum(),
            });
        }
    }

    // Per-slot, per-cluster centroid velocities.
    let mut velocities: Vec<Vec<f32>> = qnet
        .slots()
        .iter()
        .map(|s| vec![0.0; s.codebook.levels()])
        .collect();
    // Separate velocities for the non-weight parameters.
    let mut other_velocities: Vec<Vec<f32>> = net
        .params()
        .iter()
        .filter(|p| p.kind() != ParamKind::Weight)
        .map(|p| vec![0.0; p.len()])
        .collect();

    let mut rng = qce_tensor::init::seeded_rng(config.shuffle_seed);
    let mut order: Vec<usize> = (0..n).collect();
    let mut history = TrainingHistory::default();

    for epoch in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f64;
        let mut penalty_sum = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size.max(1)) {
            let bx = gather_batch(x, chunk)?;
            let by: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
            net.zero_grad();
            let logits = net.forward(&bx, Mode::Train)?;
            let out = softmax_cross_entropy(&logits, &by)?;
            net.backward(&out.grad)?;
            if let Some(reg) = regularizer.as_deref_mut() {
                penalty_sum += reg.apply(net)? as f64;
            }
            centroid_step(net, qnet, &mut velocities, &mut other_velocities, config)?;
            loss_sum += out.loss as f64;
            batches += 1;
        }
        let mean_loss = (loss_sum / batches as f64) as f32;
        history.epoch_losses.push(mean_loss);
        history
            .epoch_penalties
            .push((penalty_sum / batches as f64) as f32);
        let level = if config.verbose {
            qce_telemetry::Level::Progress
        } else {
            qce_telemetry::Level::Debug
        };
        qce_telemetry::log_line(
            level,
            &format!("finetune epoch {epoch}: loss={mean_loss:.4}"),
        );
    }
    Ok(history)
}

/// One shared-centroid SGD step plus a plain SGD step on non-weight
/// parameters.
fn centroid_step(
    net: &mut Network,
    qnet: &mut QuantizedNetwork,
    velocities: &mut [Vec<f32>],
    other_velocities: &mut [Vec<f32>],
    config: &FinetuneConfig,
) -> Result<()> {
    let mut slot_idx = 0usize;
    let mut other_idx = 0usize;
    for p in net.params_mut() {
        if p.kind() == ParamKind::Weight {
            let slot = &mut qnet.slots_mut()[slot_idx];
            let vel = &mut velocities[slot_idx];
            let levels = slot.codebook.levels();
            // Average gradient per cluster.
            let mut grad_sum = vec![0.0f64; levels];
            let mut count = vec![0u32; levels];
            for (&g, &a) in p.grad().as_slice().iter().zip(slot.assignment.iter()) {
                grad_sum[a as usize] += g as f64;
                count[a as usize] += 1;
            }
            // Move the representatives.
            let mut reps = slot.codebook.representatives().to_vec();
            for k in 0..levels {
                if count[k] == 0 {
                    continue;
                }
                let mean_grad = (grad_sum[k] / count[k] as f64) as f32;
                vel[k] = config.momentum * vel[k] + mean_grad;
                reps[k] -= config.lr * vel[k];
            }
            // Keep representatives consistent with the (unchanged)
            // boundaries: clamp ordering so the codebook stays valid.
            slot.codebook = crate::Codebook::new(reps, slot.codebook.boundaries().to_vec())
                .map_err(|e| match e {
                    QuantError::InvalidCodebook { reason } => {
                        QuantError::InvalidCodebook { reason }
                    }
                    other => other,
                })?;
            // Rewrite member weights from the moved centroids.
            let decoded = slot.codebook.decode(&slot.assignment)?;
            p.value_mut().as_mut_slice().copy_from_slice(&decoded);
            slot_idx += 1;
        } else {
            let vel = &mut other_velocities[other_idx];
            let grad = p.grad().as_slice().to_vec();
            let pv = p.value_mut().as_mut_slice();
            for i in 0..pv.len() {
                vel[i] = config.momentum * vel[i] + grad[i];
                pv[i] -= config.lr * vel[i];
            }
            other_idx += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{quantize_network, LinearQuantizer};
    use qce_nn::accuracy;
    use qce_nn::models::ResNetLite;

    fn toy() -> (Network, Tensor, Vec<usize>) {
        let data = qce_data_free_toy();
        let net = ResNetLite::builder()
            .input(1, 8)
            .classes(2)
            .stage_channels(&[4, 8])
            .blocks_per_stage(1)
            .build(5)
            .unwrap();
        (net, data.0, data.1)
    }

    /// Tiny two-class problem: bright-top vs bright-bottom images.
    fn qce_data_free_toy() -> (Tensor, Vec<usize>) {
        let mut rng = qce_tensor::init::seeded_rng(3);
        let n = 64;
        let mut data = Vec::with_capacity(n * 64);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            for y in 0..8 {
                for _x in 0..8 {
                    let bright = if (class == 0) == (y < 4) { 0.9 } else { 0.1 };
                    data.push(bright + 0.05 * qce_tensor::init::standard_normal(&mut rng));
                }
            }
            labels.push(class);
        }
        (Tensor::from_vec(data, &[n, 1, 8, 8]).unwrap(), labels)
    }

    #[test]
    fn finetune_improves_quantized_accuracy_and_stays_quantized() {
        let (mut net, x, y) = toy();
        // Train briefly first.
        let mut trainer = qce_nn::Trainer::new(qce_nn::TrainConfig {
            epochs: 6,
            batch_size: 16,
            lr: 0.05,
            ..qce_nn::TrainConfig::default()
        });
        trainer.fit(&mut net, &x, &y, None).unwrap();
        let acc_before_quant = accuracy(&mut net, &x, &y, 32).unwrap();

        // Aggressive 2-level quantization hurts.
        let mut qnet = quantize_network(&mut net, &LinearQuantizer::new(2).unwrap()).unwrap();
        let acc_quant = accuracy(&mut net, &x, &y, 32).unwrap();

        // Fine-tune.
        let cfg = FinetuneConfig {
            epochs: 6,
            batch_size: 16,
            lr: 0.02,
            ..FinetuneConfig::default()
        };
        finetune(&mut net, &mut qnet, &x, &y, &cfg, None).unwrap();
        let acc_after = accuracy(&mut net, &x, &y, 32).unwrap();
        assert!(
            acc_after >= acc_quant,
            "finetune hurt: {acc_quant} -> {acc_after} (float {acc_before_quant})"
        );

        // Model is still quantized: each tensor has at most `levels`
        // distinct values.
        for (slot, p) in qnet.slots().iter().zip(
            net.params()
                .into_iter()
                .filter(|p| p.kind() == ParamKind::Weight),
        ) {
            let mut d: Vec<f32> = p.value().as_slice().to_vec();
            d.sort_by(f32::total_cmp);
            d.dedup();
            assert!(d.len() <= slot.codebook.levels());
        }
    }

    #[test]
    fn finetune_validates_alignment() {
        let (mut net, x, y) = toy();
        let mut other = ResNetLite::builder()
            .input(1, 8)
            .classes(2)
            .stage_channels(&[6])
            .blocks_per_stage(1)
            .build(9)
            .unwrap();
        let mut qnet = quantize_network(&mut other, &LinearQuantizer::new(4).unwrap()).unwrap();
        let cfg = FinetuneConfig::default();
        assert!(matches!(
            finetune(&mut net, &mut qnet, &x, &y, &cfg, None),
            Err(QuantError::AssignmentMismatch { .. })
        ));
    }

    #[test]
    fn finetune_validates_labels() {
        let (mut net, x, _) = toy();
        let mut qnet = quantize_network(&mut net, &LinearQuantizer::new(4).unwrap()).unwrap();
        let cfg = FinetuneConfig::default();
        assert!(finetune(&mut net, &mut qnet, &x, &[0, 1], &cfg, None).is_err());
    }

    #[test]
    fn regularizer_participates_in_finetuning() {
        struct Probe {
            calls: usize,
        }
        impl Regularizer for Probe {
            fn apply(&mut self, _net: &mut Network) -> qce_nn::Result<f32> {
                self.calls += 1;
                Ok(0.25)
            }
        }
        let (mut net, x, y) = toy();
        let mut qnet = quantize_network(&mut net, &LinearQuantizer::new(4).unwrap()).unwrap();
        let mut probe = Probe { calls: 0 };
        let cfg = FinetuneConfig {
            epochs: 1,
            batch_size: 16,
            ..FinetuneConfig::default()
        };
        let hist = finetune(&mut net, &mut qnet, &x, &y, &cfg, Some(&mut probe)).unwrap();
        assert_eq!(probe.calls, 4);
        assert!((hist.epoch_penalties[0] - 0.25).abs() < 1e-6);
    }
}
