//! Packed deployment format for quantized models — the artifact a
//! resource-limited device would actually flash, and therefore the
//! artifact the adversary reads in the compressed-release threat model.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "QCEQ" | version u16 | slot count u32
//! per slot: levels u16 | weight count u32
//!           representatives (levels x f32) | boundaries (levels x f32)
//!           packed assignment (ceil(count * bits / 8) bytes,
//!           bits = Codebook::bits())
//! ```

use std::io::{Read, Write};

use qce_nn::Network;

use crate::{pack, Codebook, QuantError, QuantizedNetwork, QuantizedSlot, Result};

const MAGIC: &[u8; 4] = b"QCEQ";
const VERSION: u16 = 1;

fn io_err(e: std::io::Error) -> QuantError {
    QuantError::InvalidPacking {
        reason: format!("deployment io failed: {e}"),
    }
}

/// Serializes a quantized model into the packed deployment format.
///
/// Note the `W: Write` bound is by value; pass `&mut file` to keep using
/// the writer afterwards.
///
/// # Errors
///
/// Returns [`QuantError::InvalidPacking`] wrapping any I/O failure.
pub fn write_deployment<W: Write>(qnet: &QuantizedNetwork, mut writer: W) -> Result<()> {
    writer.write_all(MAGIC).map_err(io_err)?;
    writer.write_all(&VERSION.to_le_bytes()).map_err(io_err)?;
    writer
        .write_all(&(qnet.slots().len() as u32).to_le_bytes())
        .map_err(io_err)?;
    for slot in qnet.slots() {
        let levels = slot.codebook.levels();
        writer
            .write_all(&(levels as u16).to_le_bytes())
            .map_err(io_err)?;
        writer
            .write_all(&(slot.len() as u32).to_le_bytes())
            .map_err(io_err)?;
        for &r in slot.codebook.representatives() {
            writer.write_all(&r.to_le_bytes()).map_err(io_err)?;
        }
        for &v in slot.codebook.boundaries() {
            writer.write_all(&v.to_le_bytes()).map_err(io_err)?;
        }
        let packed = pack::pack(&slot.assignment, slot.codebook.bits())?;
        writer.write_all(&packed).map_err(io_err)?;
    }
    Ok(())
}

fn read_exact<R: Read, const N: usize>(reader: &mut R) -> Result<[u8; N]> {
    let mut buf = [0u8; N];
    reader.read_exact(&mut buf).map_err(io_err)?;
    Ok(buf)
}

fn read_f32s<R: Read>(reader: &mut R, n: usize) -> Result<Vec<f32>> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(f32::from_le_bytes(read_exact::<R, 4>(reader)?));
    }
    Ok(out)
}

/// Reads a deployment produced by [`write_deployment`] back into a
/// [`QuantizedNetwork`] handle.
///
/// Note the `R: Read` bound is by value; pass `&mut file` to keep using
/// the reader afterwards.
///
/// # Errors
///
/// Returns [`QuantError::InvalidPacking`] for malformed input or
/// [`QuantError::InvalidCodebook`] when stored codebooks are inconsistent.
pub fn read_deployment<R: Read>(mut reader: R) -> Result<QuantizedNetwork> {
    if &read_exact::<R, 4>(&mut reader)? != MAGIC {
        return Err(QuantError::InvalidPacking {
            reason: "bad magic, not a qce deployment".to_string(),
        });
    }
    let version = u16::from_le_bytes(read_exact::<R, 2>(&mut reader)?);
    if version != VERSION {
        return Err(QuantError::InvalidPacking {
            reason: format!("unsupported deployment version {version}"),
        });
    }
    let slot_count = u32::from_le_bytes(read_exact::<R, 4>(&mut reader)?) as usize;
    let mut slots = Vec::with_capacity(slot_count);
    let mut max_levels = 2usize;
    for _ in 0..slot_count {
        let levels = u16::from_le_bytes(read_exact::<R, 2>(&mut reader)?) as usize;
        let count = u32::from_le_bytes(read_exact::<R, 4>(&mut reader)?) as usize;
        let representatives = read_f32s(&mut reader, levels)?;
        let boundaries = read_f32s(&mut reader, levels)?;
        let codebook = Codebook::new(representatives, boundaries)?;
        let packed_len = pack::packed_len(count, codebook.bits());
        let mut packed = vec![0u8; packed_len];
        reader.read_exact(&mut packed).map_err(io_err)?;
        let assignment = pack::unpack(&packed, codebook.bits(), count)?;
        if let Some(&bad) = assignment.iter().find(|&&a| a as usize >= levels) {
            return Err(QuantError::InvalidPacking {
                reason: format!("assignment index {bad} exceeds {levels} levels"),
            });
        }
        max_levels = max_levels.max(levels);
        slots.push(QuantizedSlot {
            codebook,
            assignment,
        });
    }
    Ok(QuantizedNetwork::from_slots(slots, max_levels))
}

/// Convenience: deploys a quantized network to bytes, reads it back, and
/// writes the decoded weights into `net` — the device-side "flash"
/// operation.
///
/// # Errors
///
/// Propagates serialization and layout errors.
pub fn flash_round_trip(qnet: &QuantizedNetwork, net: &mut Network) -> Result<Vec<u8>> {
    let mut bytes = Vec::new();
    write_deployment(qnet, &mut bytes)?;
    let restored = read_deployment(bytes.as_slice())?;
    restored.reapply(net)?;
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{quantize_network, LinearQuantizer};
    use qce_nn::models::ResNetLite;

    fn quantized() -> (Network, QuantizedNetwork) {
        let mut net = ResNetLite::builder()
            .input(1, 8)
            .classes(3)
            .stage_channels(&[4, 8])
            .blocks_per_stage(1)
            .build(31)
            .unwrap();
        let qnet = quantize_network(&mut net, &LinearQuantizer::new(16).unwrap()).unwrap();
        (net, qnet)
    }

    #[test]
    fn round_trip_restores_exact_weights() {
        let (mut net, qnet) = quantized();
        let expected = net.flat_weights();
        // Corrupt then flash back.
        let zeros = vec![0.0f32; net.num_weights()];
        net.set_flat_weights(&zeros).unwrap();
        let bytes = flash_round_trip(&qnet, &mut net).unwrap();
        assert_eq!(net.flat_weights(), expected);
        // Deployment is much smaller than float weights.
        assert!(bytes.len() < net.num_weights() * 4 / 2);
    }

    #[test]
    fn deployment_size_matches_accounting() {
        let (_, qnet) = quantized();
        let mut bytes = Vec::new();
        write_deployment(&qnet, &mut bytes).unwrap();
        // Within a few percent of the compressed_bits() estimate plus
        // headers.
        let estimated = qnet.compressed_bits() / 8;
        assert!(
            (bytes.len() as i64 - estimated as i64).unsigned_abs() < 2048,
            "file {} vs estimate {estimated}",
            bytes.len()
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(read_deployment(&b"XXXX"[..]).is_err());
        let (_, qnet) = quantized();
        let mut bytes = Vec::new();
        write_deployment(&qnet, &mut bytes).unwrap();
        bytes[4] = 0xFF; // corrupt version
        assert!(read_deployment(bytes.as_slice()).is_err());
        let mut truncated = Vec::new();
        write_deployment(&qnet, &mut truncated).unwrap();
        truncated.truncate(truncated.len() - 10);
        assert!(read_deployment(truncated.as_slice()).is_err());
    }

    #[test]
    fn read_back_equals_original_handle() {
        let (_, qnet) = quantized();
        let mut bytes = Vec::new();
        write_deployment(&qnet, &mut bytes).unwrap();
        let restored = read_deployment(bytes.as_slice()).unwrap();
        assert_eq!(restored.slots().len(), qnet.slots().len());
        for (a, b) in restored.slots().iter().zip(qnet.slots()) {
            assert_eq!(a.assignment, b.assignment);
            assert_eq!(a.codebook.representatives(), b.codebook.representatives());
        }
    }
}
