use crate::{QuantError, Result};

/// A fitted quantization codebook: `l` clusters defined by sorted lower
/// boundaries `v_0..v_{l-1}` (with an implicit `v_l = +∞`) and one
/// representative value `r_i` per cluster.
///
/// A weight `w` belongs to cluster `i` when `v_i <= w < v_{i+1}`; weights
/// below `v_0` clamp into cluster 0 (this can only happen when quantizing
/// data the codebook was not fitted on).
///
/// # Examples
///
/// ```
/// use qce_quant::Codebook;
///
/// # fn main() -> Result<(), qce_quant::QuantError> {
/// let cb = Codebook::new(vec![-0.5, 0.5], vec![-1.0, 0.0])?;
/// assert_eq!(cb.quantize_value(-0.2), (0, -0.5));
/// assert_eq!(cb.quantize_value(0.7), (1, 0.5));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Codebook {
    representatives: Vec<f32>,
    boundaries: Vec<f32>,
}

impl Codebook {
    /// Creates a codebook from `l` representatives and `l` lower
    /// boundaries.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidCodebook`] if the lengths differ, the
    /// codebook is empty, boundaries are not non-decreasing, or any value
    /// is non-finite.
    pub fn new(representatives: Vec<f32>, boundaries: Vec<f32>) -> Result<Self> {
        if representatives.is_empty() {
            return Err(QuantError::InvalidCodebook {
                reason: "no clusters".to_string(),
            });
        }
        if representatives.len() != boundaries.len() {
            return Err(QuantError::InvalidCodebook {
                reason: format!(
                    "{} representatives but {} boundaries",
                    representatives.len(),
                    boundaries.len()
                ),
            });
        }
        if boundaries.windows(2).any(|w| w[0] > w[1]) {
            return Err(QuantError::InvalidCodebook {
                reason: "boundaries must be non-decreasing".to_string(),
            });
        }
        if representatives
            .iter()
            .chain(boundaries.iter())
            .any(|v| !v.is_finite())
        {
            return Err(QuantError::InvalidCodebook {
                reason: "non-finite value".to_string(),
            });
        }
        Ok(Codebook {
            representatives,
            boundaries,
        })
    }

    /// Number of clusters.
    pub fn levels(&self) -> usize {
        self.representatives.len()
    }

    /// The per-cluster representative values, in cluster order.
    pub fn representatives(&self) -> &[f32] {
        &self.representatives
    }

    /// The per-cluster lower boundaries, in cluster order.
    pub fn boundaries(&self) -> &[f32] {
        &self.boundaries
    }

    /// Replaces the representative values (fine-tune drift and centroid
    /// jitter move representatives while assignments stay fixed). The
    /// boundaries are untouched, so subsequent [`Codebook::assign`] calls
    /// still partition by the original fit.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidCodebook`] if the length differs from
    /// [`Codebook::levels`] or any value is non-finite.
    pub fn set_representatives(&mut self, representatives: Vec<f32>) -> Result<()> {
        if representatives.len() != self.representatives.len() {
            return Err(QuantError::InvalidCodebook {
                reason: format!(
                    "{} representatives for a {}-level codebook",
                    representatives.len(),
                    self.representatives.len()
                ),
            });
        }
        if representatives.iter().any(|v| !v.is_finite()) {
            return Err(QuantError::InvalidCodebook {
                reason: "non-finite value".to_string(),
            });
        }
        self.representatives = representatives;
        Ok(())
    }

    /// Cluster index for `w` (binary search over the boundaries).
    pub fn assign_value(&self, w: f32) -> usize {
        // partition_point returns the count of boundaries <= w; the cluster
        // is that count minus one, clamped at 0.
        let count = self.boundaries.partition_point(|&b| b <= w);
        count.saturating_sub(1)
    }

    /// `(cluster index, representative)` for `w`.
    pub fn quantize_value(&self, w: f32) -> (usize, f32) {
        let idx = self.assign_value(w);
        (idx, self.representatives[idx])
    }

    /// Quantizes a full weight vector to representatives.
    pub fn quantize(&self, weights: &[f32]) -> Vec<f32> {
        weights
            .iter()
            .map(|&w| self.representatives[self.assign_value(w)])
            .collect()
    }

    /// Cluster index of every weight.
    pub fn assign(&self, weights: &[f32]) -> Vec<u32> {
        weights
            .iter()
            .map(|&w| self.assign_value(w) as u32)
            .collect()
    }

    /// Reconstructs weight values from cluster indices.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::AssignmentMismatch`] if any index is out of
    /// range.
    pub fn decode(&self, indices: &[u32]) -> Result<Vec<f32>> {
        let l = self.levels() as u32;
        if let Some(&bad) = indices.iter().find(|&&i| i >= l) {
            return Err(QuantError::AssignmentMismatch {
                expected: self.levels(),
                actual: bad as usize,
            });
        }
        Ok(indices
            .iter()
            .map(|&i| self.representatives[i as usize])
            .collect())
    }

    /// Per-cluster occupancy counts for a weight vector.
    pub fn occupancy(&self, weights: &[f32]) -> Vec<usize> {
        let mut counts = vec![0usize; self.levels()];
        for &w in weights {
            counts[self.assign_value(w)] += 1;
        }
        counts
    }

    /// Minimum number of bits needed to store one cluster index.
    pub fn bits(&self) -> u32 {
        (self.levels().max(2) as u32 - 1).ilog2() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cb() -> Codebook {
        Codebook::new(vec![-1.0, 0.0, 1.0], vec![-2.0, -0.5, 0.5]).unwrap()
    }

    #[test]
    fn validation() {
        assert!(Codebook::new(vec![], vec![]).is_err());
        assert!(Codebook::new(vec![1.0], vec![1.0, 2.0]).is_err());
        assert!(Codebook::new(vec![1.0, 2.0], vec![1.0, 0.0]).is_err());
        assert!(Codebook::new(vec![f32::NAN], vec![0.0]).is_err());
        assert!(Codebook::new(vec![1.0], vec![f32::INFINITY]).is_err());
    }

    #[test]
    fn assignment_boundaries() {
        let cb = cb();
        assert_eq!(cb.assign_value(-3.0), 0); // below v_0 clamps
        assert_eq!(cb.assign_value(-2.0), 0);
        assert_eq!(cb.assign_value(-0.5), 1); // boundary belongs to upper cluster
        assert_eq!(cb.assign_value(0.49), 1);
        assert_eq!(cb.assign_value(0.5), 2);
        assert_eq!(cb.assign_value(99.0), 2); // implicit +inf top
    }

    #[test]
    fn quantize_idempotent() {
        let cb = cb();
        let w = vec![-1.7, -0.2, 0.3, 2.0, -0.5];
        let q1 = cb.quantize(&w);
        let q2 = cb.quantize(&q1);
        assert_eq!(q1, q2);
    }

    #[test]
    fn assign_decode_round_trip() {
        let cb = cb();
        let w = vec![-1.7, -0.2, 0.3, 2.0];
        let idx = cb.assign(&w);
        let decoded = cb.decode(&idx).unwrap();
        assert_eq!(decoded, cb.quantize(&w));
        assert!(cb.decode(&[3]).is_err());
    }

    #[test]
    fn occupancy_counts() {
        let cb = cb();
        let w = vec![-1.0, -1.0, 0.0, 1.0];
        assert_eq!(cb.occupancy(&w), vec![2, 1, 1]);
    }

    #[test]
    fn set_representatives_validates() {
        let mut cb = cb();
        assert!(cb.set_representatives(vec![0.0, 1.0]).is_err());
        assert!(cb.set_representatives(vec![0.0, f32::NAN, 1.0]).is_err());
        cb.set_representatives(vec![-2.0, 0.5, 3.0]).unwrap();
        assert_eq!(cb.quantize_value(0.7), (2, 3.0));
        // Boundaries are untouched by the swap.
        assert_eq!(cb.assign_value(-3.0), 0);
    }

    #[test]
    fn bits_per_level() {
        assert_eq!(cb().bits(), 2);
        let two = Codebook::new(vec![0.0, 1.0], vec![0.0, 0.5]).unwrap();
        assert_eq!(two.bits(), 1);
        let sixteen = Codebook::new(
            (0..16).map(|i| i as f32).collect(),
            (0..16).map(|i| i as f32).collect(),
        )
        .unwrap();
        assert_eq!(sixteen.bits(), 4);
    }
}
