use qce_tensor::par::{self, Pool};
use qce_tensor::{simd, tune};

use crate::{QuantError, Result};

/// Minimum elements per bulk assign/quantize/decode task. The actual
/// chunk comes from [`tune::TuneProfile::bulk_chunk`] (a few tasks per
/// detected core, floored here so few-core hosts never pay per-task
/// dispatch for tiny slices). Chunking is derived from detected hardware
/// only — never from the thread count — and these paths are pure
/// per-element gathers with no accumulation, so any chunking yields the
/// same output bytes under any pool.
const BULK_CHUNK_FLOOR: usize = 16 * 1024;

/// Elements per task for the bulk paths, from the startup tune profile.
fn bulk_chunk(len: usize) -> usize {
    tune::profile().bulk_chunk(len, BULK_CHUNK_FLOOR)
}

/// Codebooks at or below this many levels use the branchless linear
/// count in bulk assignment; larger ones binary-search per element.
const BRANCHLESS_MAX_LEVELS: usize = 64;

/// A fitted quantization codebook: `l` clusters defined by sorted lower
/// boundaries `v_0..v_{l-1}` (with an implicit `v_l = +∞`) and one
/// representative value `r_i` per cluster.
///
/// A weight `w` belongs to cluster `i` when `v_i <= w < v_{i+1}`; weights
/// below `v_0` clamp into cluster 0 (this can only happen when quantizing
/// data the codebook was not fitted on).
///
/// # Examples
///
/// ```
/// use qce_quant::Codebook;
///
/// # fn main() -> Result<(), qce_quant::QuantError> {
/// let cb = Codebook::new(vec![-0.5, 0.5], vec![-1.0, 0.0])?;
/// assert_eq!(cb.quantize_value(-0.2), (0, -0.5));
/// assert_eq!(cb.quantize_value(0.7), (1, 0.5));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Codebook {
    representatives: Vec<f32>,
    boundaries: Vec<f32>,
}

impl Codebook {
    /// Creates a codebook from `l` representatives and `l` lower
    /// boundaries.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidCodebook`] if the lengths differ, the
    /// codebook is empty, boundaries are not non-decreasing, or any value
    /// is non-finite.
    pub fn new(representatives: Vec<f32>, boundaries: Vec<f32>) -> Result<Self> {
        if representatives.is_empty() {
            return Err(QuantError::InvalidCodebook {
                reason: "no clusters".to_string(),
            });
        }
        if representatives.len() != boundaries.len() {
            return Err(QuantError::InvalidCodebook {
                reason: format!(
                    "{} representatives but {} boundaries",
                    representatives.len(),
                    boundaries.len()
                ),
            });
        }
        if boundaries.windows(2).any(|w| w[0] > w[1]) {
            return Err(QuantError::InvalidCodebook {
                reason: "boundaries must be non-decreasing".to_string(),
            });
        }
        if representatives
            .iter()
            .chain(boundaries.iter())
            .any(|v| !v.is_finite())
        {
            return Err(QuantError::InvalidCodebook {
                reason: "non-finite value".to_string(),
            });
        }
        Ok(Codebook {
            representatives,
            boundaries,
        })
    }

    /// Number of clusters.
    pub fn levels(&self) -> usize {
        self.representatives.len()
    }

    /// The per-cluster representative values, in cluster order.
    pub fn representatives(&self) -> &[f32] {
        &self.representatives
    }

    /// The per-cluster lower boundaries, in cluster order.
    pub fn boundaries(&self) -> &[f32] {
        &self.boundaries
    }

    /// Replaces the representative values (fine-tune drift and centroid
    /// jitter move representatives while assignments stay fixed). The
    /// boundaries are untouched, so subsequent [`Codebook::assign`] calls
    /// still partition by the original fit.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidCodebook`] if the length differs from
    /// [`Codebook::levels`] or any value is non-finite.
    pub fn set_representatives(&mut self, representatives: Vec<f32>) -> Result<()> {
        if representatives.len() != self.representatives.len() {
            return Err(QuantError::InvalidCodebook {
                reason: format!(
                    "{} representatives for a {}-level codebook",
                    representatives.len(),
                    self.representatives.len()
                ),
            });
        }
        if representatives.iter().any(|v| !v.is_finite()) {
            return Err(QuantError::InvalidCodebook {
                reason: "non-finite value".to_string(),
            });
        }
        self.representatives = representatives;
        Ok(())
    }

    /// Cluster index for `w` (binary search over the boundaries).
    pub fn assign_value(&self, w: f32) -> usize {
        // partition_point returns the count of boundaries <= w; the cluster
        // is that count minus one, clamped at 0.
        let count = self.boundaries.partition_point(|&b| b <= w);
        count.saturating_sub(1)
    }

    /// Branchless [`Codebook::assign_value`]: the scalar reference for
    /// the bulk paths' `simd::rank_count` call.
    ///
    /// Counting `boundaries[1..]` entries `<= w` over non-decreasing
    /// boundaries gives exactly `partition_point(<= w) - 1` when `w` is
    /// at or above the first boundary, and 0 when it clamps below — the
    /// same cluster, with no data-dependent branch in the loop.
    #[cfg(test)]
    fn assign_value_branchless(&self, w: f32) -> usize {
        let mut idx = 0usize;
        for &b in &self.boundaries[1..] {
            idx += usize::from(b <= w);
        }
        idx
    }

    fn assign_chunk(&self, src: &[f32], dst: &mut [u32]) {
        if self.levels() <= BRANCHLESS_MAX_LEVELS {
            // `rank_count` over `boundaries[1..]` is exactly
            // `assign_value_branchless` (count of boundaries <= w), with
            // the threshold loop vectorised 8 elements at a time when
            // SIMD dispatch is active. Pure integer counting, so the
            // indices are identical at every SIMD level.
            simd::rank_count(&self.boundaries[1..], src, dst);
        } else {
            for (&w, d) in src.iter().zip(dst.iter_mut()) {
                *d = self.assign_value(w) as u32;
            }
        }
    }

    /// `(cluster index, representative)` for `w`.
    pub fn quantize_value(&self, w: f32) -> (usize, f32) {
        let idx = self.assign_value(w);
        (idx, self.representatives[idx])
    }

    /// Quantizes a full weight vector to representatives.
    pub fn quantize(&self, weights: &[f32]) -> Vec<f32> {
        self.quantize_with(Pool::global(), weights)
    }

    /// [`Codebook::quantize`] on an explicit pool.
    ///
    /// Internally this is [`Codebook::assign_with`]'s SIMD rank-count
    /// followed by a representative gather, per task chunk; the gather is
    /// a pure table lookup so the output bits equal
    /// `representatives[assign_value(w)]` exactly.
    pub fn quantize_with(&self, pool: &Pool, weights: &[f32]) -> Vec<f32> {
        let chunk = bulk_chunk(weights.len());
        let mut out = vec![0.0f32; weights.len()];
        let items: Vec<(&[f32], &mut [f32])> = weights
            .chunks(chunk.max(1))
            .zip(out.chunks_mut(chunk.max(1)))
            .collect();
        par::for_each_item(
            pool,
            items,
            || vec![0u32; chunk],
            |idx_scratch, _, (src, dst)| {
                let idx = &mut idx_scratch[..src.len()];
                self.assign_chunk(src, idx);
                for (&i, d) in idx.iter().zip(dst.iter_mut()) {
                    *d = self.representatives[i as usize];
                }
            },
        );
        out
    }

    /// Cluster index of every weight.
    pub fn assign(&self, weights: &[f32]) -> Vec<u32> {
        self.assign_with(Pool::global(), weights)
    }

    /// [`Codebook::assign`] on an explicit pool.
    ///
    /// Assignment is a pure per-element gather — no accumulation at all —
    /// so any chunking of the input yields the same indices; the tuned
    /// chunk split just bounds per-task granularity.
    pub fn assign_with(&self, pool: &Pool, weights: &[f32]) -> Vec<u32> {
        let chunk = bulk_chunk(weights.len()).max(1);
        let mut out = vec![0u32; weights.len()];
        let items: Vec<(&[f32], &mut [u32])> =
            weights.chunks(chunk).zip(out.chunks_mut(chunk)).collect();
        par::for_each_item(
            pool,
            items,
            || (),
            |(), _, (src, dst)| {
                self.assign_chunk(src, dst);
            },
        );
        out
    }

    /// Reconstructs weight values from cluster indices.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::AssignmentMismatch`] if any index is out of
    /// range.
    pub fn decode(&self, indices: &[u32]) -> Result<Vec<f32>> {
        self.decode_with(Pool::global(), indices)
    }

    /// [`Codebook::decode`] on an explicit pool.
    ///
    /// # Errors
    ///
    /// Same contract as [`Codebook::decode`].
    pub fn decode_with(&self, pool: &Pool, indices: &[u32]) -> Result<Vec<f32>> {
        let l = self.levels() as u32;
        if let Some(&bad) = indices.iter().find(|&&i| i >= l) {
            return Err(QuantError::AssignmentMismatch {
                expected: self.levels(),
                actual: bad as usize,
            });
        }
        let chunk = bulk_chunk(indices.len()).max(1);
        let mut out = vec![0.0f32; indices.len()];
        let items: Vec<(&[u32], &mut [f32])> =
            indices.chunks(chunk).zip(out.chunks_mut(chunk)).collect();
        par::for_each_item(
            pool,
            items,
            || (),
            |(), _, (src, dst)| {
                for (&i, d) in src.iter().zip(dst.iter_mut()) {
                    *d = self.representatives[i as usize];
                }
            },
        );
        Ok(out)
    }

    /// Per-cluster occupancy counts for a weight vector.
    pub fn occupancy(&self, weights: &[f32]) -> Vec<usize> {
        let mut counts = vec![0usize; self.levels()];
        for &w in weights {
            counts[self.assign_value(w)] += 1;
        }
        counts
    }

    /// Minimum number of bits needed to store one cluster index.
    pub fn bits(&self) -> u32 {
        (self.levels().max(2) as u32 - 1).ilog2() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cb() -> Codebook {
        Codebook::new(vec![-1.0, 0.0, 1.0], vec![-2.0, -0.5, 0.5]).unwrap()
    }

    #[test]
    fn validation() {
        assert!(Codebook::new(vec![], vec![]).is_err());
        assert!(Codebook::new(vec![1.0], vec![1.0, 2.0]).is_err());
        assert!(Codebook::new(vec![1.0, 2.0], vec![1.0, 0.0]).is_err());
        assert!(Codebook::new(vec![f32::NAN], vec![0.0]).is_err());
        assert!(Codebook::new(vec![1.0], vec![f32::INFINITY]).is_err());
    }

    #[test]
    fn assignment_boundaries() {
        let cb = cb();
        assert_eq!(cb.assign_value(-3.0), 0); // below v_0 clamps
        assert_eq!(cb.assign_value(-2.0), 0);
        assert_eq!(cb.assign_value(-0.5), 1); // boundary belongs to upper cluster
        assert_eq!(cb.assign_value(0.49), 1);
        assert_eq!(cb.assign_value(0.5), 2);
        assert_eq!(cb.assign_value(99.0), 2); // implicit +inf top
    }

    #[test]
    fn quantize_idempotent() {
        let cb = cb();
        let w = vec![-1.7, -0.2, 0.3, 2.0, -0.5];
        let q1 = cb.quantize(&w);
        let q2 = cb.quantize(&q1);
        assert_eq!(q1, q2);
    }

    #[test]
    fn assign_decode_round_trip() {
        let cb = cb();
        let w = vec![-1.7, -0.2, 0.3, 2.0];
        let idx = cb.assign(&w);
        let decoded = cb.decode(&idx).unwrap();
        assert_eq!(decoded, cb.quantize(&w));
        assert!(cb.decode(&[3]).is_err());
    }

    #[test]
    fn occupancy_counts() {
        let cb = cb();
        let w = vec![-1.0, -1.0, 0.0, 1.0];
        assert_eq!(cb.occupancy(&w), vec![2, 1, 1]);
    }

    #[test]
    fn set_representatives_validates() {
        let mut cb = cb();
        assert!(cb.set_representatives(vec![0.0, 1.0]).is_err());
        assert!(cb.set_representatives(vec![0.0, f32::NAN, 1.0]).is_err());
        cb.set_representatives(vec![-2.0, 0.5, 3.0]).unwrap();
        assert_eq!(cb.quantize_value(0.7), (2, 3.0));
        // Boundaries are untouched by the swap.
        assert_eq!(cb.assign_value(-3.0), 0);
    }

    #[test]
    fn bulk_paths_match_scalar_assignment() {
        use rand::RngExt;
        let mut rng = qce_tensor::init::seeded_rng(9);
        // 3-level codebook exercises the branchless path; 100 levels the
        // binary-search path.
        let wide = Codebook::new(
            (0..100).map(|i| i as f32).collect(),
            (0..100).map(|i| i as f32 * 0.1 - 5.0).collect(),
        )
        .unwrap();
        for book in [cb(), wide] {
            let w: Vec<f32> = (0..70_000).map(|_| rng.random_range(-6.0..6.0)).collect();
            let scalar: Vec<u32> = w.iter().map(|&x| book.assign_value(x) as u32).collect();
            // The branchless counting formulation (and hence rank_count)
            // must agree with the binary search on every element.
            for &x in w.iter().take(1000) {
                assert_eq!(book.assign_value_branchless(x), book.assign_value(x));
            }
            for threads in [1, 2, 3, 8] {
                let pool = Pool::with_threads(threads);
                assert_eq!(book.assign_with(&pool, &w), scalar, "threads={threads}");
                let q = book.quantize_with(&pool, &w);
                let dec = book.decode_with(&pool, &scalar).unwrap();
                for ((a, b), &idx) in q.iter().zip(&dec).zip(&scalar) {
                    assert_eq!(a.to_bits(), book.representatives()[idx as usize].to_bits());
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn bits_per_level() {
        assert_eq!(cb().bits(), 2);
        let two = Codebook::new(vec![0.0, 1.0], vec![0.0, 0.5]).unwrap();
        assert_eq!(two.bits(), 1);
        let sixteen = Codebook::new(
            (0..16).map(|i| i as f32).collect(),
            (0..16).map(|i| i as f32).collect(),
        )
        .unwrap();
        assert_eq!(sixteen.bits(), 4);
    }
}
