//! Canonical Huffman coding of cluster indices — the third stage of the
//! deep-compression pipeline the paper's introduction cites (pruning +
//! quantization + Huffman coding, Han et al.).
//!
//! Quantized-weight assignments are highly non-uniform (weighted-entropy
//! quantization concentrates most weights in a few clusters; the
//! target-correlated quantizer mirrors the pixel histogram), so entropy
//! coding the indices buys a further size reduction beyond fixed-width
//! [`pack`](crate::pack)ing. [`HuffmanCode::fit`] builds a canonical code
//! from observed frequencies; encode/decode round-trips exactly and the
//! tests pin the coded size to within one bit per symbol of the entropy
//! bound.

use std::collections::BinaryHeap;

use crate::{QuantError, Result};

/// A canonical Huffman code over the symbols `0..alphabet`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HuffmanCode {
    /// Code length in bits per symbol (0 for symbols that never occur).
    lengths: Vec<u8>,
    /// Canonical codewords, MSB-first in the low bits.
    codes: Vec<u32>,
}

impl HuffmanCode {
    /// Builds a canonical Huffman code from symbol frequencies
    /// (`frequencies[s]` = number of occurrences of symbol `s`).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidPacking`] if no symbol has a non-zero
    /// frequency, or if the alphabet exceeds 2¹⁶ symbols.
    pub fn fit(frequencies: &[u64]) -> Result<Self> {
        if frequencies.len() > 1 << 16 {
            return Err(QuantError::InvalidPacking {
                reason: format!("alphabet {} exceeds 2^16", frequencies.len()),
            });
        }
        let present: Vec<usize> = frequencies
            .iter()
            .enumerate()
            .filter(|(_, &f)| f > 0)
            .map(|(s, _)| s)
            .collect();
        if present.is_empty() {
            return Err(QuantError::InvalidPacking {
                reason: "no symbols with non-zero frequency".to_string(),
            });
        }
        let mut lengths = vec![0u8; frequencies.len()];
        if present.len() == 1 {
            // A one-symbol alphabet still needs one bit per symbol to be
            // decodable by length.
            lengths[present[0]] = 1;
        } else {
            // Standard two-queue-free heap construction over (weight, id).
            #[derive(PartialEq, Eq)]
            struct Node {
                weight: u64,
                id: usize,
            }
            impl Ord for Node {
                fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                    // Reverse for a min-heap; tie-break on id for
                    // determinism.
                    other.weight.cmp(&self.weight).then(other.id.cmp(&self.id))
                }
            }
            impl PartialOrd for Node {
                fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                    Some(self.cmp(other))
                }
            }
            // Tree nodes: leaves are 0..n, internal nodes appended after.
            let mut parents: Vec<usize> = vec![usize::MAX; present.len()];
            let mut weights: Vec<u64> = present.iter().map(|&s| frequencies[s]).collect();
            let mut heap: BinaryHeap<Node> = weights
                .iter()
                .enumerate()
                .map(|(id, &weight)| Node { weight, id })
                .collect();
            while heap.len() > 1 {
                let a = heap.pop().expect("len > 1");
                let b = heap.pop().expect("len > 1");
                let id = weights.len();
                let weight = a.weight + b.weight;
                weights.push(weight);
                parents.push(usize::MAX);
                parents[a.id] = id;
                parents[b.id] = id;
                heap.push(Node { weight, id });
            }
            for (leaf, &symbol) in present.iter().enumerate() {
                let mut depth = 0u8;
                let mut node = leaf;
                while parents[node] != usize::MAX {
                    node = parents[node];
                    depth += 1;
                }
                lengths[symbol] = depth;
            }
        }
        Self::from_lengths(lengths)
    }

    /// Builds the canonical codewords from code lengths.
    fn from_lengths(lengths: Vec<u8>) -> Result<Self> {
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        if max_len > 32 {
            return Err(QuantError::InvalidPacking {
                reason: format!("code length {max_len} exceeds 32 bits"),
            });
        }
        // Sort symbols by (length, symbol) and assign increasing codes.
        let mut order: Vec<usize> = (0..lengths.len()).filter(|&s| lengths[s] > 0).collect();
        order.sort_by_key(|&s| (lengths[s], s));
        let mut codes = vec![0u32; lengths.len()];
        let mut code = 0u32;
        let mut prev_len = 0u8;
        for &s in &order {
            code <<= lengths[s] - prev_len;
            codes[s] = code;
            code += 1;
            prev_len = lengths[s];
        }
        Ok(HuffmanCode { lengths, codes })
    }

    /// Per-symbol code lengths in bits (0 = symbol absent).
    pub fn lengths(&self) -> &[u8] {
        &self.lengths
    }

    /// Coded size in bits for the given symbol frequencies.
    pub fn coded_bits(&self, frequencies: &[u64]) -> u64 {
        frequencies
            .iter()
            .zip(self.lengths.iter())
            .map(|(&f, &l)| f * u64::from(l))
            .sum()
    }

    /// Encodes a symbol sequence into a bitstream (MSB-first per code).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidPacking`] if a symbol is outside the
    /// alphabet or has no code.
    pub fn encode(&self, symbols: &[u32]) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        let mut bit_buf = 0u64;
        let mut bit_count = 0u8;
        for &s in symbols {
            let s = s as usize;
            let len = *self
                .lengths
                .get(s)
                .ok_or_else(|| QuantError::InvalidPacking {
                    reason: format!("symbol {s} outside alphabet"),
                })?;
            if len == 0 {
                return Err(QuantError::InvalidPacking {
                    reason: format!("symbol {s} has no code"),
                });
            }
            bit_buf = (bit_buf << len) | u64::from(self.codes[s]);
            bit_count += len;
            while bit_count >= 8 {
                bit_count -= 8;
                out.push((bit_buf >> bit_count) as u8);
            }
        }
        if bit_count > 0 {
            out.push((bit_buf << (8 - bit_count)) as u8);
        }
        Ok(out)
    }

    /// Decodes `n` symbols from a bitstream produced by
    /// [`HuffmanCode::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidPacking`] if the stream is exhausted
    /// or contains an invalid codeword.
    pub fn decode(&self, bytes: &[u8], n: usize) -> Result<Vec<u32>> {
        // Build a (length, code) -> symbol lookup.
        let mut by_len: Vec<Vec<(u32, u32)>> = vec![Vec::new(); 33];
        for (s, (&len, &code)) in self.lengths.iter().zip(self.codes.iter()).enumerate() {
            if len > 0 {
                by_len[len as usize].push((code, s as u32));
            }
        }
        for v in &mut by_len {
            v.sort_unstable();
        }
        let mut out = Vec::with_capacity(n);
        let mut code = 0u32;
        let mut len = 0usize;
        let mut bit_pos = 0usize;
        let total_bits = bytes.len() * 8;
        while out.len() < n {
            if bit_pos >= total_bits {
                return Err(QuantError::InvalidPacking {
                    reason: "bitstream exhausted".to_string(),
                });
            }
            let bit = (bytes[bit_pos / 8] >> (7 - bit_pos % 8)) & 1;
            code = (code << 1) | u32::from(bit);
            len += 1;
            bit_pos += 1;
            if len > 32 {
                return Err(QuantError::InvalidPacking {
                    reason: "invalid codeword".to_string(),
                });
            }
            if let Ok(idx) = by_len[len].binary_search_by_key(&code, |&(c, _)| c) {
                out.push(by_len[len][idx].1);
                code = 0;
                len = 0;
            }
        }
        Ok(out)
    }
}

/// Frequency table of a symbol sequence over `alphabet` symbols.
///
/// # Panics
///
/// Panics if any symbol is `>= alphabet`.
pub fn frequencies(symbols: &[u32], alphabet: usize) -> Vec<u64> {
    let mut freq = vec![0u64; alphabet];
    for &s in symbols {
        freq[s as usize] += 1;
    }
    freq
}

/// Shannon entropy (bits/symbol) of a frequency table.
pub fn entropy_bits(frequencies: &[u64]) -> f64 {
    let total: u64 = frequencies.iter().sum();
    if total == 0 {
        return 0.0;
    }
    frequencies
        .iter()
        .filter(|&&f| f > 0)
        .map(|&f| {
            let p = f as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    fn skewed_symbols(n: usize, seed: u64) -> Vec<u32> {
        // Geometric-ish distribution over 16 symbols.
        let mut rng = qce_tensor::init::seeded_rng(seed);
        (0..n)
            .map(|_| {
                let mut s = 0u32;
                while s < 15 && rng.random_range(0.0f32..1.0) < 0.5 {
                    s += 1;
                }
                s
            })
            .collect()
    }

    #[test]
    fn round_trip_skewed() {
        let symbols = skewed_symbols(5000, 1);
        let freq = frequencies(&symbols, 16);
        let code = HuffmanCode::fit(&freq).unwrap();
        let bytes = code.encode(&symbols).unwrap();
        let decoded = code.decode(&bytes, symbols.len()).unwrap();
        assert_eq!(decoded, symbols);
    }

    #[test]
    fn coded_size_within_one_bit_of_entropy() {
        let symbols = skewed_symbols(20_000, 2);
        let freq = frequencies(&symbols, 16);
        let code = HuffmanCode::fit(&freq).unwrap();
        let coded = code.coded_bits(&freq) as f64 / symbols.len() as f64;
        let h = entropy_bits(&freq);
        assert!(coded >= h - 1e-9, "coded {coded} below entropy {h}");
        assert!(coded < h + 1.0, "coded {coded} vs entropy {h}");
        // And strictly better than 4-bit fixed-width packing for this
        // skewed source.
        assert!(coded < 4.0, "no gain over fixed width: {coded}");
    }

    #[test]
    fn uniform_source_approaches_fixed_width() {
        let symbols: Vec<u32> = (0..4096u32).map(|i| i % 16).collect();
        let freq = frequencies(&symbols, 16);
        let code = HuffmanCode::fit(&freq).unwrap();
        let coded = code.coded_bits(&freq) as f64 / symbols.len() as f64;
        assert!((coded - 4.0).abs() < 1e-9);
        let bytes = code.encode(&symbols).unwrap();
        assert_eq!(code.decode(&bytes, symbols.len()).unwrap(), symbols);
    }

    #[test]
    fn single_symbol_alphabet() {
        let symbols = vec![3u32; 100];
        let freq = frequencies(&symbols, 8);
        let code = HuffmanCode::fit(&freq).unwrap();
        let bytes = code.encode(&symbols).unwrap();
        assert_eq!(bytes.len(), 13); // 100 bits -> 13 bytes
        assert_eq!(code.decode(&bytes, 100).unwrap(), symbols);
    }

    #[test]
    fn kraft_inequality_holds() {
        let symbols = skewed_symbols(3000, 3);
        let freq = frequencies(&symbols, 16);
        let code = HuffmanCode::fit(&freq).unwrap();
        let kraft: f64 = code
            .lengths()
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-i32::from(l)))
            .sum();
        assert!(kraft <= 1.0 + 1e-12, "kraft sum {kraft}");
    }

    #[test]
    fn prefix_free_codes() {
        let symbols = skewed_symbols(1000, 4);
        let freq = frequencies(&symbols, 16);
        let code = HuffmanCode::fit(&freq).unwrap();
        let entries: Vec<(u8, u32)> = code
            .lengths()
            .iter()
            .enumerate()
            .filter(|(_, &l)| l > 0)
            .map(|(s, &l)| (l, code.codes[s]))
            .collect();
        for (i, &(la, ca)) in entries.iter().enumerate() {
            for &(lb, cb) in entries.iter().skip(i + 1) {
                let (short, long) = if la <= lb {
                    ((la, ca), (lb, cb))
                } else {
                    ((lb, cb), (la, ca))
                };
                if short.0 == long.0 {
                    assert_ne!(
                        short.1, long.1,
                        "duplicate codeword {:b} at length {}",
                        short.1, short.0
                    );
                } else {
                    let prefix = long.1 >> (long.0 - short.0);
                    assert!(
                        prefix != short.1,
                        "codeword {:b}/{} is a prefix of {:b}/{}",
                        short.1,
                        short.0,
                        long.1,
                        long.0
                    );
                }
            }
        }
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(HuffmanCode::fit(&[0, 0, 0]).is_err());
        let code = HuffmanCode::fit(&[10, 5]).unwrap();
        assert!(code.encode(&[7]).is_err()); // outside alphabet
        let bytes = code.encode(&[0, 1, 0]).unwrap();
        assert!(code.decode(&bytes, 100).is_err()); // stream too short
    }

    #[test]
    fn deterministic_construction() {
        let freq = vec![100u64, 50, 25, 25, 10, 1];
        assert_eq!(
            HuffmanCode::fit(&freq).unwrap(),
            HuffmanCode::fit(&freq).unwrap()
        );
    }
}
