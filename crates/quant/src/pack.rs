//! Bit-packing of cluster indices — the storage format a deployed
//! quantized model would actually ship, used by the compression-ratio
//! accounting.

use crate::{QuantError, Result};

/// Packs cluster indices into a little-endian bitstream with `bits` bits
/// per index.
///
/// # Errors
///
/// Returns [`QuantError::InvalidPacking`] if `bits` is outside `1..=16` or
/// any index needs more than `bits` bits.
///
/// # Examples
///
/// ```
/// use qce_quant::pack::{pack, unpack};
///
/// # fn main() -> Result<(), qce_quant::QuantError> {
/// let indices = vec![3, 0, 2, 1, 3];
/// let bytes = pack(&indices, 2)?;
/// assert_eq!(bytes.len(), 2); // ceil(5 * 2 / 8)
/// assert_eq!(unpack(&bytes, 2, 5)?, indices);
/// # Ok(())
/// # }
/// ```
pub fn pack(indices: &[u32], bits: u32) -> Result<Vec<u8>> {
    if !(1..=16).contains(&bits) {
        return Err(QuantError::InvalidPacking {
            reason: format!("bits {bits} outside 1..=16"),
        });
    }
    let max = if bits == 32 {
        u32::MAX
    } else {
        (1u32 << bits) - 1
    };
    if let Some(&bad) = indices.iter().find(|&&i| i > max) {
        return Err(QuantError::InvalidPacking {
            reason: format!("index {bad} does not fit in {bits} bits"),
        });
    }
    let total_bits = indices.len() * bits as usize;
    let mut bytes = vec![0u8; total_bits.div_ceil(8)];
    let mut bit_pos = 0usize;
    for &idx in indices {
        for b in 0..bits {
            if (idx >> b) & 1 == 1 {
                bytes[bit_pos / 8] |= 1 << (bit_pos % 8);
            }
            bit_pos += 1;
        }
    }
    Ok(bytes)
}

/// Unpacks `n` indices of `bits` bits each from a bitstream produced by
/// [`pack`].
///
/// # Errors
///
/// Returns [`QuantError::InvalidPacking`] if `bits` is out of range or the
/// byte buffer is too short for `n` indices.
pub fn unpack(bytes: &[u8], bits: u32, n: usize) -> Result<Vec<u32>> {
    if !(1..=16).contains(&bits) {
        return Err(QuantError::InvalidPacking {
            reason: format!("bits {bits} outside 1..=16"),
        });
    }
    let needed = (n * bits as usize).div_ceil(8);
    if bytes.len() < needed {
        return Err(QuantError::InvalidPacking {
            reason: format!("{} bytes given, {needed} needed", bytes.len()),
        });
    }
    let mut out = Vec::with_capacity(n);
    let mut bit_pos = 0usize;
    for _ in 0..n {
        let mut v = 0u32;
        for b in 0..bits {
            if (bytes[bit_pos / 8] >> (bit_pos % 8)) & 1 == 1 {
                v |= 1 << b;
            }
            bit_pos += 1;
        }
        out.push(v);
    }
    Ok(out)
}

/// Packed size in bytes for `n` indices at `bits` bits each.
pub fn packed_len(n: usize, bits: u32) -> usize {
    (n * bits as usize).div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_various_bit_widths() {
        for bits in [1u32, 2, 3, 4, 5, 7, 8, 11, 16] {
            let max = (1u64 << bits) as u32 - 1;
            let indices: Vec<u32> = (0..100).map(|i| (i * 37) % (max + 1)).collect();
            let bytes = pack(&indices, bits).unwrap();
            assert_eq!(bytes.len(), packed_len(100, bits));
            assert_eq!(unpack(&bytes, bits, 100).unwrap(), indices, "bits={bits}");
        }
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(pack(&[4], 2).is_err());
        assert!(pack(&[0], 0).is_err());
        assert!(pack(&[0], 17).is_err());
        assert!(unpack(&[0u8], 4, 3).is_err()); // needs 2 bytes
        assert!(unpack(&[0u8], 0, 1).is_err());
    }

    #[test]
    fn empty_input() {
        assert_eq!(pack(&[], 4).unwrap().len(), 0);
        assert_eq!(unpack(&[], 4, 0).unwrap().len(), 0);
    }

    #[test]
    fn four_bit_packs_two_per_byte() {
        let bytes = pack(&[0xA, 0x5], 4).unwrap();
        assert_eq!(bytes, vec![0x5A]);
    }
}
