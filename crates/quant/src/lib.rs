//! Weight quantizers for the `qce` workspace, including the
//! target-correlated quantizer of the DAC'20 paper (Algorithm 1).
//!
//! All quantizers share the same mechanics: a [`Codebook`] (sorted cluster
//! boundaries plus one representative value per cluster) produced by a
//! [`Quantizer`] fitted to a weight vector. They differ *only* in how they
//! choose the boundaries:
//!
//! * [`LinearQuantizer`] — equal-width clusters over the weight range
//!   (deep-compression-style linear centroid initialization).
//! * [`KMeansQuantizer`] — 1-D Lloyd iterations from the linear init.
//! * [`WeightedEntropyQuantizer`] — the paper's defense baseline
//!   (Park et al., CVPR'17): clusters of equal total *importance*
//!   (importance = w²), which concentrates clusters on large-magnitude
//!   weights and reshapes an attacked model's weight distribution
//!   (Fig. 3a).
//! * [`TargetCorrelatedQuantizer`] — Algorithm 1: cluster occupancies
//!   proportional to the *histogram of the target images' pixels*, so the
//!   quantized weights keep the encoded-data distribution (Fig. 3b).
//!
//! [`quantize_network`] applies a quantizer per weight tensor and returns
//! a [`QuantizedNetwork`] handle; [`finetune`] then recovers accuracy with
//! shared-centroid gradient updates that never un-quantize the model; and
//! [`pack`] bit-packs cluster indices to measure the deployment-size win.
//!
//! # Examples
//!
//! ```
//! use qce_quant::{LinearQuantizer, Quantizer};
//!
//! # fn main() -> Result<(), qce_quant::QuantError> {
//! let weights = vec![-1.0, -0.5, 0.0, 0.5, 1.0];
//! let codebook = LinearQuantizer::new(4)?.fit(&weights)?;
//! let q = codebook.quantize(&weights);
//! assert_eq!(codebook.levels(), 4);
//! assert!(q.iter().all(|v| codebook.representatives().contains(v)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codebook;
mod error;
mod finetune;
mod network;
mod quantizers;

pub mod deploy;
pub mod huffman;
pub mod pack;
pub mod prune;

pub use codebook::Codebook;
pub use error::QuantError;
pub use finetune::{finetune, FinetuneConfig};
pub use network::{quantize_network, quantize_network_with, QuantizedNetwork, QuantizedSlot};
pub use quantizers::{
    KMeansQuantizer, LinearQuantizer, Quantizer, TargetCorrelatedQuantizer,
    WeightedEntropyQuantizer,
};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, QuantError>;
