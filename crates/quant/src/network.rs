use qce_nn::{Network, ParamKind};
use qce_tensor::par::Pool;

use crate::{Codebook, QuantError, Quantizer, Result};

/// One quantized weight tensor: its fitted codebook and the per-weight
/// cluster assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedSlot {
    /// The fitted codebook.
    pub codebook: Codebook,
    /// Cluster index of every weight in the tensor, in storage order.
    pub assignment: Vec<u32>,
}

impl QuantizedSlot {
    /// Number of weights in this slot.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Whether the slot is empty.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }
}

/// The quantized state of a network's `Weight`-kind parameters: one
/// [`QuantizedSlot`] per weight tensor, in forward order.
///
/// The handle is what fine-tuning needs to keep the model quantized
/// (assignments stay fixed, only representatives move) and what the
/// deployment-size accounting in [`pack`](crate::pack) consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedNetwork {
    slots: Vec<QuantizedSlot>,
    requested_levels: usize,
}

impl QuantizedNetwork {
    /// The per-tensor quantization slots, in forward order.
    pub fn slots(&self) -> &[QuantizedSlot] {
        &self.slots
    }

    /// Mutable access to the slots — fine-tuning updates representatives,
    /// and fault injection perturbs codebooks and assignments in place.
    /// Call [`QuantizedNetwork::reapply`] afterwards to propagate the
    /// mutation into a network's weights.
    pub fn slots_mut(&mut self) -> &mut [QuantizedSlot] {
        &mut self.slots
    }

    /// Rebuilds a handle from deserialized slots (deployment reader).
    pub(crate) fn from_slots(slots: Vec<QuantizedSlot>, requested_levels: usize) -> Self {
        QuantizedNetwork {
            slots,
            requested_levels,
        }
    }

    /// The level budget the quantizer was asked for (small tensors may use
    /// fewer levels).
    pub fn requested_levels(&self) -> usize {
        self.requested_levels
    }

    /// Total number of quantized weights.
    pub fn num_weights(&self) -> usize {
        self.slots.iter().map(QuantizedSlot::len).sum()
    }

    /// Rewrites the network's weights from the stored assignments and
    /// (possibly fine-tuned) representatives.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::AssignmentMismatch`] if the network layout no
    /// longer matches this handle.
    pub fn reapply(&self, net: &mut Network) -> Result<()> {
        let mut slot_iter = self.slots.iter();
        for p in net.params_mut() {
            if p.kind() != ParamKind::Weight {
                continue;
            }
            let slot = slot_iter.next().ok_or(QuantError::AssignmentMismatch {
                expected: 0,
                actual: p.len(),
            })?;
            if slot.len() != p.len() {
                return Err(QuantError::AssignmentMismatch {
                    expected: slot.len(),
                    actual: p.len(),
                });
            }
            let decoded = slot.codebook.decode(&slot.assignment)?;
            p.value_mut().as_mut_slice().copy_from_slice(&decoded);
        }
        if slot_iter.next().is_some() {
            return Err(QuantError::AssignmentMismatch {
                expected: self.slots.len(),
                actual: self.slots.len() - 1,
            });
        }
        Ok(())
    }

    /// Size of the quantized weight payload in bits: packed indices plus
    /// one 32-bit float per codebook entry.
    pub fn compressed_bits(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| {
                s.len() as u64 * u64::from(s.codebook.bits()) + 32 * s.codebook.levels() as u64
            })
            .sum()
    }

    /// Compression ratio versus 32-bit floats (e.g. ≈8 for 4-bit levels).
    pub fn compression_ratio(&self) -> f64 {
        let original = self.num_weights() as f64 * 32.0;
        if original == 0.0 {
            return 1.0;
        }
        original / self.compressed_bits() as f64
    }

    /// Size of the weight payload in bits with per-slot Huffman coding of
    /// the cluster indices (deep compression's third stage), including
    /// codebook values and code lengths as overhead.
    ///
    /// # Errors
    ///
    /// Propagates Huffman construction errors (cannot happen for slots
    /// produced by [`quantize_network`]).
    pub fn huffman_bits(&self) -> Result<u64> {
        let mut total = 0u64;
        for slot in &self.slots {
            let freq = crate::huffman::frequencies(&slot.assignment, slot.codebook.levels());
            let code = crate::huffman::HuffmanCode::fit(&freq)?;
            // Coded indices + representatives (f32) + code lengths (u8).
            total += code.coded_bits(&freq)
                + 32 * slot.codebook.levels() as u64
                + 8 * slot.codebook.levels() as u64;
        }
        Ok(total)
    }
}

/// Builds a lossless "exact" codebook for a tensor with at most
/// `level budget` distinct values (tiny projection convs etc.).
fn exact_codebook(values: &[f32]) -> Result<Codebook> {
    let mut distinct = values.to_vec();
    distinct.sort_by(f32::total_cmp);
    distinct.dedup();
    Codebook::new(distinct.clone(), distinct)
}

/// Quantizes every `Weight`-kind tensor of `net` in place with a codebook
/// fitted per tensor, returning the [`QuantizedNetwork`] handle.
///
/// Tensors smaller than the quantizer's level budget get a lossless exact
/// codebook instead (they already fit the bit budget), so the whole model
/// is always representable at the requested bit width.
///
/// # Errors
///
/// Propagates quantizer fitting errors.
///
/// # Examples
///
/// ```
/// use qce_nn::models::ResNetLite;
/// use qce_quant::{quantize_network, LinearQuantizer};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut net = ResNetLite::builder()
///     .input(1, 8)
///     .classes(2)
///     .stage_channels(&[4])
///     .blocks_per_stage(1)
///     .build(1)?;
/// let q = quantize_network(&mut net, &LinearQuantizer::new(16)?)?;
/// assert_eq!(q.num_weights(), net.num_weights());
/// # Ok(())
/// # }
/// ```
pub fn quantize_network(net: &mut Network, quantizer: &dyn Quantizer) -> Result<QuantizedNetwork> {
    quantize_network_with(Pool::global(), net, quantizer)
}

/// [`quantize_network`] on an explicit compute pool.
///
/// The pool accelerates the per-tensor codebook fit (a sort) and the bulk
/// assign/decode passes; every step is a fixed-order or order-free
/// computation, so the deployed weights are bit-for-bit identical for any
/// thread count.
///
/// # Errors
///
/// Same contract as [`quantize_network`].
pub fn quantize_network_with(
    pool: &Pool,
    net: &mut Network,
    quantizer: &dyn Quantizer,
) -> Result<QuantizedNetwork> {
    let _span = qce_telemetry::span!(
        "quant.network",
        quantizer = quantizer.name(),
        levels = quantizer.levels()
    );
    let mut slots = Vec::new();
    for p in net.params_mut() {
        if p.kind() != ParamKind::Weight {
            continue;
        }
        let values = p.value().as_slice().to_vec();
        let exact = values.len() < quantizer.levels();
        let codebook = if exact {
            exact_codebook(&values)?
        } else {
            quantizer.fit_with(pool, &values)?
        };
        let assignment = codebook.assign_with(pool, &values);
        let quantized = codebook.decode_with(pool, &assignment)?;
        p.value_mut().as_mut_slice().copy_from_slice(&quantized);
        qce_telemetry::counter("quant.slots").incr(1);
        if exact {
            qce_telemetry::counter("quant.exact_slots").incr(1);
        }
        // The occupancy scan walks every assignment; only pay for it while
        // trace collection is on.
        if qce_telemetry::collect_enabled() {
            let levels = codebook.levels().max(1);
            let mut used = vec![false; levels];
            for &a in &assignment {
                if let Some(u) = used.get_mut(a as usize) {
                    *u = true;
                }
            }
            let occupied = used.iter().filter(|&&u| u).count();
            qce_telemetry::histogram("quant.slot_occupancy", &[0.25, 0.5, 0.75, 0.9, 1.0])
                .record(occupied as f64 / levels as f64);
        }
        slots.push(QuantizedSlot {
            codebook,
            assignment,
        });
    }
    Ok(QuantizedNetwork {
        slots,
        requested_levels: quantizer.levels(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearQuantizer;
    use qce_nn::models::ResNetLite;

    fn net() -> Network {
        ResNetLite::builder()
            .input(1, 8)
            .classes(3)
            .stage_channels(&[4, 8])
            .blocks_per_stage(1)
            .build(11)
            .unwrap()
    }

    #[test]
    fn quantize_limits_distinct_values_per_tensor() {
        let mut n = net();
        let q = quantize_network(&mut n, &LinearQuantizer::new(8).unwrap()).unwrap();
        assert_eq!(q.num_weights(), n.num_weights());
        assert_eq!(q.requested_levels(), 8);
        for (slot, p) in q.slots().iter().zip(
            n.params()
                .into_iter()
                .filter(|p| p.kind() == ParamKind::Weight),
        ) {
            let mut distinct: Vec<f32> = p.value().as_slice().to_vec();
            distinct.sort_by(f32::total_cmp);
            distinct.dedup();
            assert!(distinct.len() <= slot.codebook.levels());
        }
    }

    #[test]
    fn reapply_restores_quantized_values() {
        let mut n = net();
        let q = quantize_network(&mut n, &LinearQuantizer::new(8).unwrap()).unwrap();
        let quantized = n.flat_weights();
        // Perturb, then reapply.
        let perturbed: Vec<f32> = quantized.iter().map(|&w| w + 0.1).collect();
        n.set_flat_weights(&perturbed).unwrap();
        q.reapply(&mut n).unwrap();
        assert_eq!(n.flat_weights(), quantized);
    }

    #[test]
    fn reapply_rejects_wrong_network() {
        let mut a = net();
        let q = quantize_network(&mut a, &LinearQuantizer::new(4).unwrap()).unwrap();
        let mut other = ResNetLite::builder()
            .input(1, 8)
            .classes(3)
            .stage_channels(&[6, 8])
            .blocks_per_stage(1)
            .build(1)
            .unwrap();
        assert!(q.reapply(&mut other).is_err());
    }

    #[test]
    fn compression_ratio_near_bit_budget() {
        let mut n = net();
        let q = quantize_network(&mut n, &LinearQuantizer::new(16).unwrap()).unwrap();
        let ratio = q.compression_ratio();
        // 4-bit indices give at most 8x; the tiny test model's per-tensor
        // codebook overhead (16 floats per slot) eats a chunk of that.
        assert!(ratio > 3.0 && ratio <= 8.0, "ratio {ratio}");
    }

    #[test]
    fn small_tensors_get_exact_codebooks() {
        // Levels larger than the smallest tensor forces the fallback.
        let mut n = net();
        let before = n.flat_weights();
        let q = quantize_network(&mut n, &LinearQuantizer::new(512).unwrap()).unwrap();
        // Exact slots are lossless.
        let exact_slots: Vec<_> = q.slots().iter().filter(|s| s.len() < 512).collect();
        assert!(!exact_slots.is_empty(), "test requires a small tensor");
        // All weights of the network are close to original where exact.
        let after = n.flat_weights();
        assert_eq!(before.len(), after.len());
    }
}
