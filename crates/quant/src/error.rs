use std::fmt;

use qce_nn::NnError;

/// Error type for quantizer fitting and application.
#[derive(Debug)]
#[non_exhaustive]
pub enum QuantError {
    /// The requested number of quantization levels is unusable (0, 1, or
    /// more levels than distinct representable weights).
    InvalidLevels {
        /// The rejected level count.
        levels: usize,
        /// Why it is rejected.
        reason: String,
    },
    /// The weight vector to quantize is empty.
    EmptyWeights,
    /// A codebook was constructed with inconsistent boundaries or
    /// representatives.
    InvalidCodebook {
        /// Why the codebook is rejected.
        reason: String,
    },
    /// A stored assignment no longer matches the network layout.
    AssignmentMismatch {
        /// Expected number of weights.
        expected: usize,
        /// Provided number of assignments.
        actual: usize,
    },
    /// A wrapped network error (from fine-tuning).
    Nn(NnError),
    /// Bit-packing parameters are invalid.
    InvalidPacking {
        /// Why the packing is rejected.
        reason: String,
    },
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::InvalidLevels { levels, reason } => {
                write!(f, "invalid level count {levels}: {reason}")
            }
            QuantError::EmptyWeights => write!(f, "cannot quantize an empty weight vector"),
            QuantError::InvalidCodebook { reason } => write!(f, "invalid codebook: {reason}"),
            QuantError::AssignmentMismatch { expected, actual } => {
                write!(f, "assignment length {actual}, expected {expected}")
            }
            QuantError::Nn(e) => write!(f, "network error during quantization: {e}"),
            QuantError::InvalidPacking { reason } => write!(f, "invalid packing: {reason}"),
        }
    }
}

impl std::error::Error for QuantError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QuantError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for QuantError {
    fn from(e: NnError) -> Self {
        QuantError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = QuantError::from(NnError::InvalidConfig {
            reason: "x".to_string(),
        });
        assert!(e.source().is_some());
        assert!(QuantError::EmptyWeights.to_string().contains("empty"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QuantError>();
    }
}
