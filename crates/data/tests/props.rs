//! Property-based tests of the data layer (DESIGN.md §6).

use proptest::prelude::*;
use qce_data::select::StdBand;
use qce_data::{select, Image, SynthCifar};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn image_f32_round_trip(px in prop::collection::vec(any::<u8>(), 48)) {
        let img = Image::new(px.clone(), 3, 4, 4).unwrap();
        let back = Image::from_f32(&img.to_f32(), 3, 4, 4).unwrap();
        prop_assert_eq!(back.pixels(), &px[..]);
    }

    #[test]
    fn from_f32_always_clamps(values in prop::collection::vec(-1e6f32..1e6, 16)) {
        let img = Image::from_f32(&values, 1, 4, 4).unwrap();
        // No panic and every pixel is a valid byte by construction.
        prop_assert_eq!(img.num_pixels(), 16);
    }

    #[test]
    fn grayscale_preserves_geometry_and_range(px in prop::collection::vec(any::<u8>(), 48)) {
        let img = Image::new(px, 3, 4, 4).unwrap();
        let gray = img.to_grayscale();
        prop_assert_eq!(gray.channels(), 1);
        prop_assert_eq!(gray.height(), 4);
        // Rec.601 luma of bytes stays in byte range (guaranteed by types),
        // and is bounded by the max input channel value + rounding.
        let max_in = img.pixels().iter().copied().max().unwrap_or(0);
        let max_out = gray.pixels().iter().copied().max().unwrap_or(0);
        prop_assert!(max_out <= max_in.saturating_add(1));
    }

    #[test]
    fn split_partitions_dataset(n in 10usize..100, frac in 0.2f32..0.8, seed in 0u64..100) {
        let data = SynthCifar::new(8).classes(5).generate(n, seed).unwrap();
        prop_assume!(((n as f32) * frac).round() as usize > 0);
        prop_assume!((((n as f32) * frac).round() as usize) < n);
        let (train, test) = data.split(frac, seed).unwrap();
        prop_assert_eq!(train.len() + test.len(), n);
        prop_assert_eq!(train.classes(), 5);
    }

    #[test]
    fn band_selection_respects_band(seed in 0u64..50, min in 10.0f32..60.0, width in 5.0f32..40.0) {
        let data = SynthCifar::new(8).generate(200, seed).unwrap();
        let band = StdBand::new(min, min + width).unwrap();
        for &i in &select::candidates_in_band(&data, band) {
            prop_assert!(band.contains(data.image(i).pixel_std()));
        }
    }

    #[test]
    fn pixel_stream_concatenates_in_order(seed in 0u64..50) {
        let data = SynthCifar::new(8).generate(10, seed).unwrap();
        let stream = data.pixel_stream(&[2, 0]).unwrap();
        let expected: Vec<u8> = data.image(2).pixels().iter()
            .chain(data.image(0).pixels().iter()).copied().collect();
        prop_assert_eq!(stream, expected);
    }

    #[test]
    fn generator_std_matches_contrast_ordering(seed in 0u64..30) {
        // Higher-contrast generators produce higher mean per-image std.
        let low = SynthCifar::new(8).contrast_range(0.1, 0.2).generate(50, seed).unwrap();
        let high = SynthCifar::new(8).contrast_range(0.8, 1.0).generate(50, seed).unwrap();
        let mean = |d: &qce_data::Dataset| -> f32 {
            let stds = d.pixel_stds();
            stds.iter().sum::<f32>() / stds.len() as f32
        };
        prop_assert!(mean(&high) > mean(&low));
    }
}
