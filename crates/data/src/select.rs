//! Data pre-processing of the attack flow (§IV-A of the paper).
//!
//! The correlated value encoding attack reshapes the weight distribution
//! toward the distribution of the encoded pixels (Fig. 2a). To minimize
//! the fight between the task loss and the correlation term, the
//! malicious training algorithm first *selects which images to encode*:
//! it clusters the training images by per-image pixel standard deviation,
//! computes the dataset mean `std_mean`, keeps candidates inside the band
//! `[floor(std_mean), floor(std_mean) + d]`, estimates how many images fit
//! in the target parameters, and samples that many candidates.

use rand::seq::SliceRandom;

use crate::{DataError, Dataset, Result};

/// A half-open per-image pixel-std band `[min, max)` used to filter
/// encoding candidates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StdBand {
    /// Inclusive lower edge.
    pub min: f32,
    /// Exclusive upper edge.
    pub max: f32,
}

impl StdBand {
    /// Creates a band from explicit edges.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] if `min >= max`.
    pub fn new(min: f32, max: f32) -> Result<Self> {
        if min >= max {
            return Err(DataError::InvalidConfig {
                reason: format!("std band [{min}, {max}) is empty"),
            });
        }
        Ok(StdBand { min, max })
    }

    /// Whether `std` falls inside the band.
    pub fn contains(&self, std: f32) -> bool {
        std >= self.min && std < self.max
    }
}

/// The paper's band rule: `std_min = floor(std_mean)`,
/// `std_max = std_min + d`.
///
/// # Errors
///
/// Returns [`DataError::EmptySelection`] for an empty dataset or
/// [`DataError::InvalidConfig`] for non-positive `d`.
pub fn band_around_mean(dataset: &Dataset, d: f32) -> Result<StdBand> {
    if dataset.is_empty() {
        return Err(DataError::EmptySelection { stage: "band" });
    }
    if d <= 0.0 {
        return Err(DataError::InvalidConfig {
            reason: format!("band width d={d} must be positive"),
        });
    }
    let stds = dataset.pixel_stds();
    let mean = stds.iter().sum::<f32>() / stds.len() as f32;
    let min = mean.floor();
    StdBand::new(min, min + d)
}

/// Indices of dataset images whose pixel std falls inside `band`.
pub fn candidates_in_band(dataset: &Dataset, band: StdBand) -> Vec<usize> {
    dataset
        .pixel_stds()
        .iter()
        .enumerate()
        .filter(|(_, &s)| band.contains(s))
        .map(|(i, _)| i)
        .collect()
}

/// Result of the full §IV-A target-selection procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetSelection {
    /// Dataset indices of the selected correlation targets, in selection
    /// order (this order defines the encoding layout).
    pub indices: Vec<usize>,
    /// The std band that filtered the candidates.
    pub band: StdBand,
    /// How many images the capacity estimate allowed.
    pub capacity_images: usize,
    /// Size of the candidate pool before sampling.
    pub candidate_pool: usize,
}

/// Runs the full §IV-A procedure: band around the dataset std mean with
/// width `d`, capacity estimate from `capacity_pixels` (the number of
/// weights available for encoding), and seeded sampling of the final
/// target set.
///
/// # Errors
///
/// Returns [`DataError::EmptySelection`] if no image falls inside the
/// band or the capacity allows zero images, and propagates band errors.
///
/// # Examples
///
/// ```
/// use qce_data::{select, SynthCifar};
///
/// # fn main() -> Result<(), qce_data::DataError> {
/// let data = SynthCifar::new(16).generate(300, 7)?;
/// let sel = select::select_targets(&data, 5.0, 10 * 768, 1)?;
/// assert!(sel.indices.len() <= 10);
/// # Ok(())
/// # }
/// ```
pub fn select_targets(
    dataset: &Dataset,
    d: f32,
    capacity_pixels: usize,
    seed: u64,
) -> Result<TargetSelection> {
    let band = band_around_mean(dataset, d)?;
    select_targets_in_band(dataset, band, capacity_pixels, seed)
}

/// Same as [`select_targets`] but with an explicit band (the evaluation
/// section of the paper fixes the CIFAR band to `[50, 55]`).
///
/// # Errors
///
/// Same conditions as [`select_targets`].
pub fn select_targets_in_band(
    dataset: &Dataset,
    band: StdBand,
    capacity_pixels: usize,
    seed: u64,
) -> Result<TargetSelection> {
    let mut candidates = candidates_in_band(dataset, band);
    if candidates.is_empty() {
        return Err(DataError::EmptySelection {
            stage: "candidates",
        });
    }
    let per_image = dataset.image(candidates[0]).num_pixels();
    let capacity_images = capacity_pixels / per_image;
    if capacity_images == 0 {
        return Err(DataError::EmptySelection { stage: "capacity" });
    }
    let candidate_pool = candidates.len();
    let mut rng = qce_tensor::init::seeded_rng(seed);
    candidates.shuffle(&mut rng);
    candidates.truncate(capacity_images);
    Ok(TargetSelection {
        indices: candidates,
        band,
        capacity_images,
        candidate_pool,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Image, SynthCifar};

    fn dataset_with_stds(stds: &[u8]) -> Dataset {
        // Image with two pixel values v±k has std k.
        let images = stds
            .iter()
            .map(|&k| Image::new(vec![128 - k, 128 + k, 128 - k, 128 + k], 1, 2, 2).unwrap())
            .collect();
        let labels = vec![0; stds.len()];
        Dataset::new(images, labels, 1).unwrap()
    }

    #[test]
    fn std_band_contains() {
        let b = StdBand::new(50.0, 55.0).unwrap();
        assert!(b.contains(50.0));
        assert!(b.contains(54.9));
        assert!(!b.contains(55.0));
        assert!(StdBand::new(5.0, 5.0).is_err());
    }

    #[test]
    fn band_around_mean_uses_floor() {
        let d = dataset_with_stds(&[10, 20, 30]); // mean std = 20
        let band = band_around_mean(&d, 5.0).unwrap();
        assert_eq!(band.min, 20.0);
        assert_eq!(band.max, 25.0);
    }

    #[test]
    fn candidates_filtered_by_band() {
        let d = dataset_with_stds(&[10, 22, 23, 40]);
        let band = StdBand::new(20.0, 25.0).unwrap();
        assert_eq!(candidates_in_band(&d, band), vec![1, 2]);
    }

    #[test]
    fn capacity_limits_selection() {
        let d = dataset_with_stds(&[20, 21, 22, 23, 24]);
        let band = StdBand::new(15.0, 30.0).unwrap();
        // Each image has 4 pixels; capacity of 9 pixels -> 2 images.
        let sel = select_targets_in_band(&d, band, 9, 1).unwrap();
        assert_eq!(sel.capacity_images, 2);
        assert_eq!(sel.indices.len(), 2);
        assert_eq!(sel.candidate_pool, 5);
    }

    #[test]
    fn selection_is_deterministic() {
        let data = SynthCifar::new(8).generate(100, 4).unwrap();
        let a = select_targets(&data, 8.0, 20 * 192, 9).unwrap();
        let b = select_targets(&data, 8.0, 20 * 192, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn selected_images_have_in_band_std() {
        let data = SynthCifar::new(16).generate(400, 5).unwrap();
        let sel = select_targets(&data, 6.0, 50 * 768, 2).unwrap();
        for &i in &sel.indices {
            assert!(sel.band.contains(data.image(i).pixel_std()));
        }
    }

    #[test]
    fn errors_on_empty_outcomes() {
        let d = dataset_with_stds(&[10, 11]);
        let band = StdBand::new(100.0, 110.0).unwrap();
        assert!(matches!(
            select_targets_in_band(&d, band, 100, 0),
            Err(DataError::EmptySelection {
                stage: "candidates"
            })
        ));
        let band2 = StdBand::new(5.0, 15.0).unwrap();
        assert!(matches!(
            select_targets_in_band(&d, band2, 3, 0), // capacity < 1 image
            Err(DataError::EmptySelection { stage: "capacity" })
        ));
        assert!(band_around_mean(&d, -1.0).is_err());
    }
}
