//! Synthetic image datasets and the data-preprocessing stage of the
//! DAC'20 quantized correlation encoding attack.
//!
//! The paper evaluates on CIFAR-10 and FaceScrub; neither is shippable
//! with an offline reproduction, so this crate provides procedurally
//! generated substitutes with the two properties the attack actually
//! depends on (see `DESIGN.md` §2):
//!
//! 1. **Learnability** — class-conditioned structure a small CNN separates
//!    with high accuracy ([`SynthCifar`], [`SynthFaces`]).
//! 2. **A controllable per-image pixel-std spectrum** — the §IV-A
//!    preprocessing clusters images by pixel standard deviation and picks
//!    targets from a band around the dataset mean; the generators spread
//!    per-image contrast so every band of Fig. 2(b) is populated
//!    ([`select`]).
//!
//! [`Image`] is the 8-bit pixel container (planar CHW), [`Dataset`] pairs
//! images with labels and converts to training tensors, and [`io`] writes
//! PGM/PPM files for visual inspection of reconstructed images (Fig. 5).
//!
//! # Examples
//!
//! ```
//! use qce_data::{select, SynthCifar};
//!
//! # fn main() -> Result<(), qce_data::DataError> {
//! let data = SynthCifar::new(16).rgb(true).generate(200, 1)?;
//! let sel = select::select_targets(&data, 5.0, 20 * 16 * 16 * 3, 2)?;
//! assert!(!sel.indices.is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod error;
mod image;

pub mod augment;
pub mod io;
pub mod select;
pub mod synth;

pub use dataset::Dataset;
pub use error::DataError;
pub use image::Image;
pub use synth::{SynthCifar, SynthFaces};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DataError>;
