use qce_tensor::stats;

use crate::{DataError, Result};

/// An 8-bit image stored planar (CHW): all of channel 0, then channel 1, …
///
/// Planar layout matches the `[C, H, W]` tensor convention of `qce-nn`
/// and, more importantly, the *pixel stream* convention of the encoding
/// attack: [`Image::pixels`] flattened in this order is exactly the
/// secret vector `s` the correlation regularizer couples to the weights.
///
/// # Examples
///
/// ```
/// use qce_data::Image;
///
/// # fn main() -> Result<(), qce_data::DataError> {
/// let img = Image::new(vec![0, 128, 255, 64], 1, 2, 2)?;
/// assert_eq!(img.num_pixels(), 4);
/// assert!(img.pixel_std() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    pixels: Vec<u8>,
    channels: usize,
    height: usize,
    width: usize,
}

impl Image {
    /// Creates an image from a planar CHW pixel buffer.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidDimensions`] if the buffer length is not
    /// `channels * height * width`, or if any dimension is zero.
    pub fn new(pixels: Vec<u8>, channels: usize, height: usize, width: usize) -> Result<Self> {
        let expected = channels * height * width;
        if expected == 0 {
            return Err(DataError::InvalidDimensions {
                expected: 1,
                actual: 0,
            });
        }
        if pixels.len() != expected {
            return Err(DataError::InvalidDimensions {
                expected,
                actual: pixels.len(),
            });
        }
        Ok(Image {
            pixels,
            channels,
            height,
            width,
        })
    }

    /// Creates an all-zero (black) image.
    pub fn black(channels: usize, height: usize, width: usize) -> Result<Self> {
        Image::new(vec![0; channels * height * width], channels, height, width)
    }

    /// Rebuilds an image from `f32` values, clamping to `[0, 255]` and
    /// rounding — the decoder-side inverse of [`Image::to_f32`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Image::new`].
    pub fn from_f32(values: &[f32], channels: usize, height: usize, width: usize) -> Result<Self> {
        let pixels = values
            .iter()
            .map(|&v| v.clamp(0.0, 255.0).round() as u8)
            .collect();
        Image::new(pixels, channels, height, width)
    }

    /// The planar CHW pixel buffer.
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total number of 8-bit pixel values (`channels * height * width`).
    pub fn num_pixels(&self) -> usize {
        self.pixels.len()
    }

    /// Reads pixel `(c, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn at(&self, c: usize, y: usize, x: usize) -> u8 {
        assert!(c < self.channels && y < self.height && x < self.width);
        self.pixels[(c * self.height + y) * self.width + x]
    }

    /// Pixel values as `f32` in `[0, 255]`, planar order.
    pub fn to_f32(&self) -> Vec<f32> {
        self.pixels.iter().map(|&p| p as f32).collect()
    }

    /// Pixel values normalized to `[0, 1]`, planar order (the network
    /// input convention).
    pub fn to_f32_normalized(&self) -> Vec<f32> {
        self.pixels.iter().map(|&p| p as f32 / 255.0).collect()
    }

    /// Population standard deviation of all pixel values — the per-image
    /// statistic §IV-A clusters on.
    pub fn pixel_std(&self) -> f32 {
        stats::std_dev(&self.to_f32())
    }

    /// Mean of all pixel values.
    pub fn pixel_mean(&self) -> f32 {
        stats::mean(&self.to_f32())
    }

    /// Converts to single-channel grayscale using the Rec.601 luma weights
    /// (identity for already-gray images).
    pub fn to_grayscale(&self) -> Image {
        if self.channels == 1 {
            return self.clone();
        }
        let plane = self.height * self.width;
        let mut gray = vec![0u8; plane];
        for (i, g) in gray.iter_mut().enumerate() {
            let (r, gg, b) = if self.channels >= 3 {
                (
                    self.pixels[i] as f32,
                    self.pixels[plane + i] as f32,
                    self.pixels[2 * plane + i] as f32,
                )
            } else {
                let v = self.pixels[i] as f32;
                (v, v, v)
            };
            *g = (0.299 * r + 0.587 * gg + 0.114 * b)
                .round()
                .clamp(0.0, 255.0) as u8;
        }
        Image {
            pixels: gray,
            channels: 1,
            height: self.height,
            width: self.width,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_dimensions() {
        assert!(Image::new(vec![0; 12], 3, 2, 2).is_ok());
        assert!(matches!(
            Image::new(vec![0; 11], 3, 2, 2),
            Err(DataError::InvalidDimensions {
                expected: 12,
                actual: 11
            })
        ));
        assert!(Image::new(vec![], 0, 2, 2).is_err());
    }

    #[test]
    fn indexing_planar_layout() {
        let img = Image::new((0..12).collect(), 3, 2, 2).unwrap();
        assert_eq!(img.at(0, 0, 0), 0);
        assert_eq!(img.at(0, 1, 1), 3);
        assert_eq!(img.at(1, 0, 0), 4);
        assert_eq!(img.at(2, 1, 1), 11);
    }

    #[test]
    fn f32_round_trip() {
        let img = Image::new(vec![0, 100, 200, 255], 1, 2, 2).unwrap();
        let f = img.to_f32();
        let back = Image::from_f32(&f, 1, 2, 2).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn from_f32_clamps() {
        let img = Image::from_f32(&[-10.0, 300.0, 127.4, 127.6], 1, 2, 2).unwrap();
        assert_eq!(img.pixels(), &[0, 255, 127, 128]);
    }

    #[test]
    fn normalized_range() {
        let img = Image::new(vec![0, 255], 1, 1, 2).unwrap();
        assert_eq!(img.to_f32_normalized(), vec![0.0, 1.0]);
    }

    #[test]
    fn pixel_statistics() {
        let flat = Image::new(vec![100; 9], 1, 3, 3).unwrap();
        assert_eq!(flat.pixel_std(), 0.0);
        assert_eq!(flat.pixel_mean(), 100.0);
        let contrasty = Image::new(vec![0, 255, 0, 255], 1, 2, 2).unwrap();
        assert!(contrasty.pixel_std() > 100.0);
    }

    #[test]
    fn grayscale_conversion() {
        // Pure red: gray = 0.299 * 255 ≈ 76.
        let mut pixels = vec![0u8; 12];
        for p in pixels.iter_mut().take(4) {
            *p = 255;
        }
        let img = Image::new(pixels, 3, 2, 2).unwrap();
        let gray = img.to_grayscale();
        assert_eq!(gray.channels(), 1);
        assert_eq!(gray.pixels()[0], 76);
        // Gray of gray is identity.
        assert_eq!(gray.to_grayscale(), gray);
    }
}
