//! Deterministic image augmentations — the standard training-pipeline
//! stage a "seemingly normal" malicious algorithm would also contain.
//!
//! Augmentation interacts with the attack in one subtle way the tests
//! pin down: the encoding targets must be the *original* images (the
//! adversary wants to steal data, not augmented copies), so the flow
//! selects targets before augmentation. These helpers operate on
//! [`Image`]s and [`Dataset`]s and are deterministic given a seed.

use rand::{Rng, RngExt};

use crate::{DataError, Dataset, Image, Result};

/// Horizontally mirrors an image.
pub fn flip_horizontal(image: &Image) -> Image {
    let (c, h, w) = (image.channels(), image.height(), image.width());
    let mut pixels = vec![0u8; c * h * w];
    for ch in 0..c {
        for y in 0..h {
            for x in 0..w {
                pixels[(ch * h + y) * w + x] = image.at(ch, y, w - 1 - x);
            }
        }
    }
    Image::new(pixels, c, h, w).expect("geometry preserved")
}

/// Shifts an image by `(dx, dy)` pixels, filling vacated pixels with the
/// image mean (a neutral pad that keeps per-image statistics stable).
pub fn translate(image: &Image, dx: i32, dy: i32) -> Image {
    let (c, h, w) = (image.channels(), image.height(), image.width());
    let fill = image.pixel_mean().round().clamp(0.0, 255.0) as u8;
    let mut pixels = vec![fill; c * h * w];
    for ch in 0..c {
        for y in 0..h {
            let sy = y as i32 - dy;
            if sy < 0 || sy >= h as i32 {
                continue;
            }
            for x in 0..w {
                let sx = x as i32 - dx;
                if sx < 0 || sx >= w as i32 {
                    continue;
                }
                pixels[(ch * h + y) * w + x] = image.at(ch, sy as usize, sx as usize);
            }
        }
    }
    Image::new(pixels, c, h, w).expect("geometry preserved")
}

/// Scales pixel contrast around the image mean by `factor`, clamping to
/// the byte range.
pub fn adjust_contrast(image: &Image, factor: f32) -> Image {
    let mean = image.pixel_mean();
    let values: Vec<f32> = image
        .to_f32()
        .iter()
        .map(|&p| (p - mean) * factor + mean)
        .collect();
    Image::from_f32(&values, image.channels(), image.height(), image.width())
        .expect("geometry preserved")
}

/// Configuration of [`augment_dataset`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AugmentConfig {
    /// Probability of a horizontal flip.
    pub flip_probability: f32,
    /// Maximum absolute translation in pixels (uniform in both axes).
    pub max_translate: i32,
    /// Contrast factor range `[lo, hi]` (1.0 = unchanged).
    pub contrast: (f32, f32),
}

impl Default for AugmentConfig {
    fn default() -> Self {
        AugmentConfig {
            flip_probability: 0.5,
            max_translate: 2,
            contrast: (0.9, 1.1),
        }
    }
}

/// Produces an augmented copy of `dataset`: every image receives a
/// randomly sampled (seeded) flip/translate/contrast combination; labels
/// are preserved.
///
/// # Errors
///
/// Returns [`DataError::InvalidConfig`] for an invalid configuration
/// (negative probability/translation or inverted contrast range).
pub fn augment_dataset(dataset: &Dataset, config: AugmentConfig, seed: u64) -> Result<Dataset> {
    if !(0.0..=1.0).contains(&config.flip_probability)
        || config.max_translate < 0
        || config.contrast.0 > config.contrast.1
        || config.contrast.0 <= 0.0
    {
        return Err(DataError::InvalidConfig {
            reason: format!("invalid augmentation config {config:?}"),
        });
    }
    let mut rng = qce_tensor::init::seeded_rng(seed);
    let images = dataset
        .images()
        .iter()
        .map(|img| augment_one(img, &config, &mut rng))
        .collect();
    Dataset::new(images, dataset.labels().to_vec(), dataset.classes())
}

fn augment_one<R: Rng + RngExt>(image: &Image, config: &AugmentConfig, rng: &mut R) -> Image {
    let mut out = image.clone();
    if config.flip_probability > 0.0 && rng.random_range(0.0f32..1.0) < config.flip_probability {
        out = flip_horizontal(&out);
    }
    if config.max_translate > 0 {
        let dx = rng.random_range(-config.max_translate..=config.max_translate);
        let dy = rng.random_range(-config.max_translate..=config.max_translate);
        if dx != 0 || dy != 0 {
            out = translate(&out, dx, dy);
        }
    }
    if config.contrast != (1.0, 1.0) {
        let f = rng.random_range(config.contrast.0..=config.contrast.1);
        out = adjust_contrast(&out, f);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SynthCifar;

    fn img() -> Image {
        Image::new((0..48).map(|i| (i * 5) as u8).collect(), 3, 4, 4).unwrap()
    }

    #[test]
    fn flip_is_involution() {
        let a = img();
        assert_eq!(flip_horizontal(&flip_horizontal(&a)), a);
        assert_ne!(flip_horizontal(&a), a);
        // Leftmost column becomes rightmost.
        assert_eq!(flip_horizontal(&a).at(0, 0, 3), a.at(0, 0, 0));
    }

    #[test]
    fn translate_moves_content() {
        let a = img();
        let t = translate(&a, 1, 0);
        assert_eq!(t.at(0, 0, 1), a.at(0, 0, 0));
        // Zero shift is identity.
        assert_eq!(translate(&a, 0, 0), a);
        // Full shift leaves only fill.
        let gone = translate(&a, 4, 0);
        let fill = a.pixel_mean().round() as u8;
        assert!(gone.pixels().iter().all(|&p| p == fill));
    }

    #[test]
    fn contrast_changes_std_monotonically() {
        let a = img();
        let low = adjust_contrast(&a, 0.5);
        let high = adjust_contrast(&a, 1.5);
        assert!(low.pixel_std() < a.pixel_std());
        assert!(high.pixel_std() > a.pixel_std());
        // Mean approximately preserved.
        assert!((low.pixel_mean() - a.pixel_mean()).abs() < 3.0);
    }

    #[test]
    fn augment_dataset_preserves_labels_and_geometry() {
        let d = SynthCifar::new(8).classes(3).generate(30, 1).unwrap();
        let a = augment_dataset(&d, AugmentConfig::default(), 2).unwrap();
        assert_eq!(a.labels(), d.labels());
        assert_eq!(a.image(0).channels(), d.image(0).channels());
        assert_ne!(a, d); // something actually changed
                          // Deterministic given the seed.
        let b = augment_dataset(&d, AugmentConfig::default(), 2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_configs_rejected() {
        let d = SynthCifar::new(8).generate(5, 1).unwrap();
        let bad = AugmentConfig {
            contrast: (1.5, 0.5),
            ..AugmentConfig::default()
        };
        assert!(augment_dataset(&d, bad, 0).is_err());
        let bad2 = AugmentConfig {
            flip_probability: 1.5,
            ..AugmentConfig::default()
        };
        assert!(augment_dataset(&d, bad2, 0).is_err());
    }

    #[test]
    fn no_op_config_is_identity() {
        let d = SynthCifar::new(8).generate(10, 3).unwrap();
        let cfg = AugmentConfig {
            flip_probability: 0.0,
            max_translate: 0,
            contrast: (1.0, 1.0),
        };
        assert_eq!(augment_dataset(&d, cfg, 0).unwrap(), d);
    }
}
