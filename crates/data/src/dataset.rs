use qce_tensor::Tensor;
use rand::seq::SliceRandom;

use crate::{DataError, Image, Result};

/// A labelled image dataset with uniform image geometry.
///
/// # Examples
///
/// ```
/// use qce_data::{Dataset, Image};
///
/// # fn main() -> Result<(), qce_data::DataError> {
/// let images = vec![
///     Image::black(1, 2, 2)?,
///     Image::new(vec![255; 4], 1, 2, 2)?,
/// ];
/// let data = Dataset::new(images, vec![0, 1], 2)?;
/// let x = data.to_tensor();
/// assert_eq!(x.dims(), &[2, 1, 2, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    images: Vec<Image>,
    labels: Vec<usize>,
    classes: usize,
}

impl Dataset {
    /// Creates a dataset from images and labels.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidLabels`] if lengths disagree, a label is
    /// `>= classes`, or image geometries are inconsistent.
    pub fn new(images: Vec<Image>, labels: Vec<usize>, classes: usize) -> Result<Self> {
        if images.len() != labels.len() {
            return Err(DataError::InvalidLabels {
                reason: format!("{} images but {} labels", images.len(), labels.len()),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
            return Err(DataError::InvalidLabels {
                reason: format!("label {bad} >= {classes} classes"),
            });
        }
        if let Some(first) = images.first() {
            let geom = (first.channels(), first.height(), first.width());
            if images
                .iter()
                .any(|i| (i.channels(), i.height(), i.width()) != geom)
            {
                return Err(DataError::InvalidLabels {
                    reason: "inconsistent image geometry".to_string(),
                });
            }
        }
        Ok(Dataset {
            images,
            labels,
            classes,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The images, in order.
    pub fn images(&self) -> &[Image] {
        &self.images
    }

    /// The labels, in order.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Image `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn image(&self, i: usize) -> &Image {
        &self.images[i]
    }

    /// Label of image `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Stacks all images into a `[N, C, H, W]` tensor normalized to
    /// `[0, 1]` — the network input convention.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn to_tensor(&self) -> Tensor {
        assert!(!self.images.is_empty(), "cannot tensorize an empty dataset");
        let (c, h, w) = (
            self.images[0].channels(),
            self.images[0].height(),
            self.images[0].width(),
        );
        let mut data = Vec::with_capacity(self.images.len() * c * h * w);
        for img in &self.images {
            data.extend(img.to_f32_normalized());
        }
        Tensor::from_vec(data, &[self.images.len(), c, h, w])
            .expect("geometry validated at construction")
    }

    /// Converts every image to grayscale, returning a new dataset.
    pub fn to_grayscale(&self) -> Dataset {
        Dataset {
            images: self.images.iter().map(Image::to_grayscale).collect(),
            labels: self.labels.clone(),
            classes: self.classes,
        }
    }

    /// Returns the sub-dataset selected by `indices` (duplicates allowed).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] if any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Result<Dataset> {
        let mut images = Vec::with_capacity(indices.len());
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            if i >= self.len() {
                return Err(DataError::InvalidConfig {
                    reason: format!("subset index {i} out of range for {} samples", self.len()),
                });
            }
            images.push(self.images[i].clone());
            labels.push(self.labels[i]);
        }
        Ok(Dataset {
            images,
            labels,
            classes: self.classes,
        })
    }

    /// Shuffles (seeded) and splits into `(train, test)` with
    /// `train_fraction` of the samples in the training half.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] if the fraction is outside
    /// `(0, 1)` or either side would be empty.
    pub fn split(&self, train_fraction: f32, seed: u64) -> Result<(Dataset, Dataset)> {
        if !(0.0..1.0).contains(&train_fraction) || train_fraction == 0.0 {
            return Err(DataError::InvalidConfig {
                reason: format!("train fraction {train_fraction} outside (0, 1)"),
            });
        }
        let n_train = ((self.len() as f32) * train_fraction).round() as usize;
        if n_train == 0 || n_train >= self.len() {
            return Err(DataError::InvalidConfig {
                reason: "split would produce an empty side".to_string(),
            });
        }
        let mut order: Vec<usize> = (0..self.len()).collect();
        let mut rng = qce_tensor::init::seeded_rng(seed);
        order.shuffle(&mut rng);
        let train = self.subset(&order[..n_train])?;
        let test = self.subset(&order[n_train..])?;
        Ok((train, test))
    }

    /// Per-image pixel standard deviations, in dataset order.
    pub fn pixel_stds(&self) -> Vec<f32> {
        self.images.iter().map(Image::pixel_std).collect()
    }

    /// Number of samples per class, indexed by class label.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Iterates `(image, label)` pairs in dataset order.
    pub fn iter(&self) -> impl Iterator<Item = (&Image, usize)> + '_ {
        self.images.iter().zip(self.labels.iter().copied())
    }

    /// Concatenated planar pixel stream of the images selected by
    /// `indices` — the secret vector `s` the attack encodes.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] if any index is out of range.
    pub fn pixel_stream(&self, indices: &[usize]) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        for &i in indices {
            if i >= self.len() {
                return Err(DataError::InvalidConfig {
                    reason: format!("stream index {i} out of range"),
                });
            }
            out.extend_from_slice(self.images[i].pixels());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(n: usize) -> Dataset {
        let images = (0..n)
            .map(|i| Image::new(vec![(i % 256) as u8; 4], 1, 2, 2).unwrap())
            .collect();
        let labels = (0..n).map(|i| i % 3).collect();
        Dataset::new(images, labels, 3).unwrap()
    }

    #[test]
    fn construction_validation() {
        let img = Image::black(1, 2, 2).unwrap();
        assert!(Dataset::new(vec![img.clone()], vec![0, 1], 2).is_err());
        assert!(Dataset::new(vec![img.clone()], vec![5], 2).is_err());
        let other = Image::black(1, 3, 3).unwrap();
        assert!(Dataset::new(vec![img, other], vec![0, 0], 2).is_err());
    }

    #[test]
    fn to_tensor_normalizes() {
        let img = Image::new(vec![0, 51, 102, 255], 1, 2, 2).unwrap();
        let d = Dataset::new(vec![img], vec![0], 1).unwrap();
        let t = d.to_tensor();
        assert_eq!(t.dims(), &[1, 1, 2, 2]);
        assert!((t.as_slice()[1] - 0.2).abs() < 1e-6);
        assert_eq!(t.as_slice()[3], 1.0);
    }

    #[test]
    fn subset_and_pixel_stream() {
        let d = make(5);
        let s = d.subset(&[4, 0]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.label(0), 1); // 4 % 3
        let stream = d.pixel_stream(&[1, 2]).unwrap();
        assert_eq!(stream, vec![1, 1, 1, 1, 2, 2, 2, 2]);
        assert!(d.subset(&[9]).is_err());
        assert!(d.pixel_stream(&[9]).is_err());
    }

    #[test]
    fn split_partitions_everything() {
        let d = make(10);
        let (train, test) = d.split(0.7, 1).unwrap();
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        assert!(d.split(0.0, 1).is_err());
        assert!(d.split(1.0, 1).is_err());
    }

    #[test]
    fn split_is_deterministic() {
        let d = make(20);
        let (a, _) = d.split(0.5, 9).unwrap();
        let (b, _) = d.split(0.5, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn grayscale_dataset() {
        let images = vec![Image::new(vec![10; 12], 3, 2, 2).unwrap()];
        let d = Dataset::new(images, vec![0], 1).unwrap();
        let g = d.to_grayscale();
        assert_eq!(g.image(0).channels(), 1);
        assert_eq!(g.classes(), 1);
    }

    #[test]
    fn pixel_stds_length() {
        let d = make(4);
        assert_eq!(d.pixel_stds().len(), 4);
    }

    #[test]
    fn class_counts_and_iter() {
        let d = make(7); // labels cycle 0,1,2
        assert_eq!(d.class_counts(), vec![3, 2, 2]);
        let pairs: Vec<(u8, usize)> = d.iter().map(|(img, l)| (img.pixels()[0], l)).collect();
        assert_eq!(pairs.len(), 7);
        assert_eq!(pairs[3], (3, 0));
    }
}
