use std::fmt;

/// Error type for dataset construction, selection and image I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum DataError {
    /// An image was constructed with inconsistent dimensions.
    InvalidDimensions {
        /// Expected pixel-buffer length (`channels * height * width`).
        expected: usize,
        /// Provided length.
        actual: usize,
    },
    /// The number of images and labels disagree, or a label exceeds the
    /// declared class count.
    InvalidLabels {
        /// Why the labels are rejected.
        reason: String,
    },
    /// A selection stage produced (or was asked for) an empty result.
    EmptySelection {
        /// Which stage failed.
        stage: &'static str,
    },
    /// Generator or selection parameters are infeasible.
    InvalidConfig {
        /// Why the configuration is rejected.
        reason: String,
    },
    /// An image file could not be written.
    Io(std::io::Error),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::InvalidDimensions { expected, actual } => {
                write!(f, "pixel buffer length {actual}, expected {expected}")
            }
            DataError::InvalidLabels { reason } => write!(f, "invalid labels: {reason}"),
            DataError::EmptySelection { stage } => {
                write!(f, "selection stage {stage} produced no items")
            }
            DataError::InvalidConfig { reason } => write!(f, "invalid config: {reason}"),
            DataError::Io(e) => write!(f, "image io failed: {e}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(DataError::InvalidDimensions {
            expected: 10,
            actual: 5
        }
        .to_string()
        .contains("10"));
        assert!(DataError::EmptySelection { stage: "band" }
            .to_string()
            .contains("band"));
    }

    #[test]
    fn io_error_has_source() {
        use std::error::Error;
        let e = DataError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataError>();
    }
}
