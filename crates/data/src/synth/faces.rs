use rand::{Rng, RngExt, SeedableRng};

use crate::synth::to_pixel;
use crate::{DataError, Dataset, Image, Result};

/// Procedural face-like image generator standing in for FaceScrub.
///
/// Each *identity* gets deterministic facial geometry (oval proportions,
/// eye spacing and size, mouth width and curvature, brow position, skin
/// and background tone); each *sample* of an identity adds small pose,
/// lighting and noise jitter. The images have exactly the structured
/// texture the SSIM metric of Table IV is sensitive to — an attack that
/// garbles them scores low SSIM, one that preserves them scores high.
///
/// # Examples
///
/// ```
/// use qce_data::SynthFaces;
///
/// # fn main() -> Result<(), qce_data::DataError> {
/// let data = SynthFaces::new(16, 40).generate(200, 9)?;
/// assert_eq!(data.classes(), 40);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SynthFaces {
    size: usize,
    identities: usize,
    noise: f32,
}

/// Deterministic per-identity facial geometry, in normalized face
/// coordinates (the face oval is roughly `[-1, 1]²`).
#[derive(Debug, Clone, Copy)]
struct FaceGeometry {
    oval_a: f32,
    oval_b: f32,
    eye_dx: f32,
    eye_y: f32,
    eye_r: f32,
    brow_y: f32,
    brow_w: f32,
    mouth_y: f32,
    mouth_w: f32,
    mouth_h: f32,
    skin: f32,
    background: f32,
}

impl FaceGeometry {
    fn for_identity(identity: usize, seed: u64) -> Self {
        // Each identity derives its own RNG stream so geometry is stable
        // regardless of how many samples are generated.
        let mut rng =
            rand::rngs::StdRng::seed_from_u64(seed ^ (identity as u64).wrapping_mul(0x9e37_79b9));
        FaceGeometry {
            oval_a: rng.random_range(0.62..0.80),
            oval_b: rng.random_range(0.78..0.95),
            eye_dx: rng.random_range(0.24..0.38),
            eye_y: rng.random_range(-0.32..-0.18),
            eye_r: rng.random_range(0.06..0.12),
            brow_y: rng.random_range(-0.52..-0.40),
            brow_w: rng.random_range(0.14..0.26),
            mouth_y: rng.random_range(0.34..0.52),
            mouth_w: rng.random_range(0.20..0.38),
            mouth_h: rng.random_range(0.045..0.10),
            skin: rng.random_range(150.0..215.0),
            background: rng.random_range(25.0..80.0),
        }
    }
}

impl SynthFaces {
    /// Creates a generator for square grayscale `size`×`size` face images
    /// with `identities` distinct classes.
    pub fn new(size: usize, identities: usize) -> Self {
        SynthFaces {
            size,
            identities,
            noise: 5.0,
        }
    }

    /// Overrides the additive pixel-noise standard deviation.
    pub fn noise(mut self, noise: f32) -> Self {
        self.noise = noise;
        self
    }

    /// Generates `n` labelled face images deterministically from `seed`,
    /// cycling through identities.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] for zero size/identities/n.
    pub fn generate(&self, n: usize, seed: u64) -> Result<Dataset> {
        if self.size == 0 || self.identities == 0 || n == 0 {
            return Err(DataError::InvalidConfig {
                reason: "size, identities and n must be non-zero".to_string(),
            });
        }
        let mut rng = qce_tensor::init::seeded_rng(seed.wrapping_add(1));
        let geometries: Vec<FaceGeometry> = (0..self.identities)
            .map(|id| FaceGeometry::for_identity(id, seed))
            .collect();
        let mut images = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let identity = i % self.identities;
            images.push(self.render(&geometries[identity], &mut rng)?);
            labels.push(identity);
        }
        Dataset::new(images, labels, self.identities)
    }

    fn render<R: Rng + RngExt>(&self, g: &FaceGeometry, rng: &mut R) -> Result<Image> {
        let s = self.size as f32;
        // Per-sample jitter.
        let dx: f32 = rng.random_range(-0.06..0.06);
        let dy: f32 = rng.random_range(-0.06..0.06);
        let light: f32 = rng.random_range(-14.0..14.0);
        let contrast: f32 = rng.random_range(0.85..1.15);

        let soft = 8.0 / s; // edge softness in normalized units
        let smoothstep = |edge: f32, v: f32| -> f32 {
            // 1 inside (v < edge), 0 outside, soft in between.
            let t = ((edge - v) / soft + 0.5).clamp(0.0, 1.0);
            t * t * (3.0 - 2.0 * t)
        };

        let mut pixels = vec![0u8; self.size * self.size];
        for y in 0..self.size {
            for x in 0..self.size {
                // Normalized coordinates in [-1, 1], face-centered.
                let u = 2.0 * (x as f32 + 0.5) / s - 1.0 - dx;
                let v = 2.0 * (y as f32 + 0.5) / s - 1.0 - dy;

                // Face oval mask.
                let oval = ((u / g.oval_a).powi(2) + (v / g.oval_b).powi(2)).sqrt();
                let face = smoothstep(1.0, oval);
                let mut val = g.background * (1.0 - face) + g.skin * face;

                // Simple top-left lighting gradient on the face.
                val += face * 14.0 * (-u - v) / 2.0;

                // Eyes (dark disks) with pupils.
                for side in [-1.0f32, 1.0] {
                    let eu = u - side * g.eye_dx;
                    let ev = v - g.eye_y;
                    let d = (eu * eu + ev * ev).sqrt();
                    let eye = smoothstep(g.eye_r, d);
                    val = val * (1.0 - eye) + 55.0 * eye;
                    let pupil = smoothstep(g.eye_r * 0.45, d);
                    val = val * (1.0 - pupil) + 15.0 * pupil;
                }

                // Brows (dark horizontal bars above the eyes).
                for side in [-1.0f32, 1.0] {
                    let bu = (u - side * g.eye_dx).abs();
                    let bv = (v - g.brow_y).abs();
                    let brow = smoothstep(g.brow_w, bu) * smoothstep(0.035, bv);
                    val = val * (1.0 - 0.8 * brow) + 40.0 * 0.8 * brow;
                }

                // Nose (subtle vertical ridge shading).
                let nose = smoothstep(0.05, u.abs()) * smoothstep(0.22, (v - 0.08).abs());
                val -= 18.0 * nose;

                // Mouth (dark ellipse).
                let mu = u / g.mouth_w;
                let mv = (v - g.mouth_y) / g.mouth_h;
                let mouth = smoothstep(1.0, (mu * mu + mv * mv).sqrt());
                val = val * (1.0 - mouth) + 60.0 * mouth;

                let noise = self.noise * qce_tensor::init::standard_normal(rng);
                let centered = (val - 128.0) * contrast + 128.0;
                pixels[y * self.size + x] = to_pixel(centered + light + noise);
            }
        }
        Image::new(pixels, 1, self.size, self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_deterministic_and_labelled() {
        let g = SynthFaces::new(16, 5);
        let a = g.generate(20, 3).unwrap();
        let b = g.generate(20, 3).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.label(7), 2);
        assert_eq!(a.image(0).channels(), 1);
    }

    #[test]
    fn identities_are_distinct_but_samples_of_one_identity_are_similar() {
        let d = SynthFaces::new(16, 4).generate(40, 1).unwrap();
        let mad = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f32>() / a.len() as f32
        };
        // Same identity (samples 0 and 4): small difference.
        let same = mad(&d.image(0).to_f32(), &d.image(4).to_f32());
        // Different identities (samples 0 and 1): larger difference.
        let diff = mad(&d.image(0).to_f32(), &d.image(1).to_f32());
        assert!(
            diff > same,
            "identities not distinct: same={same} diff={diff}"
        );
    }

    #[test]
    fn faces_have_structure() {
        let d = SynthFaces::new(16, 3).generate(3, 2).unwrap();
        // A face image is neither flat nor pure noise: std well above the
        // noise floor.
        assert!(d.image(0).pixel_std() > 20.0);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(SynthFaces::new(0, 5).generate(1, 0).is_err());
        assert!(SynthFaces::new(8, 0).generate(1, 0).is_err());
        assert!(SynthFaces::new(8, 5).generate(0, 0).is_err());
    }
}
