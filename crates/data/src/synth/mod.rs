//! Procedural dataset generators.
//!
//! [`SynthCifar`] replaces CIFAR-10 and [`SynthFaces`] replaces FaceScrub
//! in the reproduction; see the crate docs and `DESIGN.md` for why the
//! substitution preserves the attack-relevant behaviour.

mod cifar;
mod faces;

pub use cifar::SynthCifar;
pub use faces::SynthFaces;

/// Clamps an `f32` into the `u8` pixel range with rounding.
pub(crate) fn to_pixel(v: f32) -> u8 {
    v.round().clamp(0.0, 255.0) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_pixel_clamps_and_rounds() {
        assert_eq!(to_pixel(-3.0), 0);
        assert_eq!(to_pixel(255.9), 255);
        assert_eq!(to_pixel(127.5), 128);
    }
}
