use rand::{Rng, RngExt};

use crate::synth::to_pixel;
use crate::{DataError, Dataset, Image, Result};

/// Procedural 10-class image generator standing in for CIFAR-10.
///
/// Each class is a distinct mixture of oriented gratings and radial rings
/// with a class-specific color tint; per-image phase, translation,
/// contrast and noise jitter make the task non-trivial while keeping it
/// easily separable by a small CNN. The per-image contrast factor is drawn
/// from a wide range so the dataset's per-image pixel-std spectrum spans
/// the bands the §IV-A preprocessing analyzes (roughly 10–90).
///
/// # Examples
///
/// ```
/// use qce_data::SynthCifar;
///
/// # fn main() -> Result<(), qce_data::DataError> {
/// let data = SynthCifar::new(16).generate(100, 42)?;
/// assert_eq!(data.len(), 100);
/// assert_eq!(data.classes(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SynthCifar {
    size: usize,
    rgb: bool,
    classes: usize,
    contrast_lo: f32,
    contrast_hi: f32,
    noise: f32,
}

impl SynthCifar {
    /// Creates a generator for square `size`×`size` RGB images, 10 classes.
    pub fn new(size: usize) -> Self {
        SynthCifar {
            size,
            rgb: true,
            classes: 10,
            contrast_lo: 0.12,
            contrast_hi: 1.0,
            noise: 30.0,
        }
    }

    /// Chooses RGB (3-channel) or grayscale (1-channel) output.
    pub fn rgb(mut self, rgb: bool) -> Self {
        self.rgb = rgb;
        self
    }

    /// Overrides the class count (default 10).
    pub fn classes(mut self, classes: usize) -> Self {
        self.classes = classes;
        self
    }

    /// Overrides the per-image contrast range, which controls the
    /// pixel-std spectrum (`std ≈ contrast * 85`).
    pub fn contrast_range(mut self, lo: f32, hi: f32) -> Self {
        self.contrast_lo = lo;
        self.contrast_hi = hi;
        self
    }

    /// Overrides the additive pixel-noise standard deviation.
    pub fn noise(mut self, noise: f32) -> Self {
        self.noise = noise;
        self
    }

    /// Generates `n` labelled images deterministically from `seed`.
    ///
    /// Labels cycle through the classes so every class is (near-)equally
    /// represented.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] for zero size/classes/samples
    /// or an inverted contrast range.
    pub fn generate(&self, n: usize, seed: u64) -> Result<Dataset> {
        if self.size == 0 || self.classes == 0 || n == 0 {
            return Err(DataError::InvalidConfig {
                reason: "size, classes and n must be non-zero".to_string(),
            });
        }
        if self.contrast_lo >= self.contrast_hi || self.contrast_lo <= 0.0 {
            return Err(DataError::InvalidConfig {
                reason: format!(
                    "contrast range [{}, {}] invalid",
                    self.contrast_lo, self.contrast_hi
                ),
            });
        }
        let mut rng = qce_tensor::init::seeded_rng(seed);
        let channels = if self.rgb { 3 } else { 1 };
        let mut images = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % self.classes;
            images.push(self.render(class, channels, &mut rng)?);
            labels.push(class);
        }
        Dataset::new(images, labels, self.classes)
    }

    /// Renders one image of `class`.
    fn render<R: Rng + RngExt>(&self, class: usize, channels: usize, rng: &mut R) -> Result<Image> {
        let s = self.size as f32;
        let k = class as f32;
        // Class-specific texture parameters.
        let theta = k * std::f32::consts::PI / self.classes as f32;
        let freq = 2.0 + (class % 3) as f32; // cycles per image
        let ring_freq = 3.0 + (class % 4) as f32;
        let mix = 0.35 + 0.5 * ((class % 5) as f32 / 4.0); // grating vs rings

        // Per-image jitter. Orientation and frequency jitter approach the
        // class spacing, so boundary samples are genuinely ambiguous and a
        // small CNN lands near 90% rather than memorizing the generator.
        let phase: f32 = rng.random_range(0.0..std::f32::consts::TAU);
        let dx: f32 = rng.random_range(-2.0..2.0);
        let dy: f32 = rng.random_range(-2.0..2.0);
        let theta = theta + rng.random_range(-0.17..0.17);
        let (cos_t, sin_t) = (theta.cos(), theta.sin());
        let freq = freq * rng.random_range(0.78..1.28);
        let mix = (mix + rng.random_range(-0.22..0.22)).clamp(0.0, 1.0);
        let contrast: f32 = rng.random_range(self.contrast_lo..self.contrast_hi);
        let brightness: f32 = rng.random_range(-12.0..12.0);
        let amplitude = 215.0 * contrast;

        // Class tint per channel (grayscale uses channel 0 only).
        let tint: Vec<f32> = (0..channels)
            .map(|c| 0.80 + 0.20 * (k * 2.399 + c as f32 * 2.1).sin())
            .collect();

        let plane = self.size * self.size;
        let mut pixels = vec![0u8; channels * plane];
        for y in 0..self.size {
            for x in 0..self.size {
                let u = (x as f32 + dx) / s - 0.5;
                let v = (y as f32 + dy) / s - 0.5;
                let along = u * cos_t + v * sin_t;
                let grating = (std::f32::consts::TAU * freq * along + phase).sin();
                let r = (u * u + v * v).sqrt();
                let rings = (std::f32::consts::TAU * ring_freq * r + phase).cos();
                let pattern = mix * grating + (1.0 - mix) * rings;
                let noise = self.noise * qce_tensor::init::standard_normal(rng);
                for (c, &t) in tint.iter().enumerate() {
                    let val = 128.0 + brightness + t * amplitude * pattern + noise;
                    pixels[c * plane + y * self.size + x] = to_pixel(val);
                }
            }
        }
        Image::new(pixels, channels, self.size, self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let g = SynthCifar::new(8);
        let a = g.generate(20, 5).unwrap();
        let b = g.generate(20, 5).unwrap();
        assert_eq!(a, b);
        let c = g.generate(20, 6).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn labels_cycle_through_classes() {
        let d = SynthCifar::new(8).generate(25, 1).unwrap();
        assert_eq!(d.label(0), 0);
        assert_eq!(d.label(9), 9);
        assert_eq!(d.label(10), 0);
    }

    #[test]
    fn grayscale_option() {
        let d = SynthCifar::new(8).rgb(false).generate(5, 1).unwrap();
        assert_eq!(d.image(0).channels(), 1);
        let d3 = SynthCifar::new(8).generate(5, 1).unwrap();
        assert_eq!(d3.image(0).channels(), 3);
    }

    #[test]
    fn std_spectrum_is_wide() {
        let d = SynthCifar::new(16).generate(400, 2).unwrap();
        let stds = d.pixel_stds();
        let lo = stds.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = stds.iter().cloned().fold(0.0f32, f32::max);
        assert!(lo < 30.0, "min std {lo}");
        assert!(hi > 60.0, "max std {hi}");
    }

    #[test]
    fn classes_are_visually_distinct() {
        // Mean absolute pixel difference between class exemplars with the
        // same jitter seed should be large.
        let d = SynthCifar::new(16)
            .contrast_range(0.9, 1.0)
            .generate(10, 3)
            .unwrap();
        let a = d.image(0).to_f32();
        let b = d.image(1).to_f32();
        let mad: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum::<f32>() / a.len() as f32;
        assert!(mad > 20.0, "classes look identical, mad={mad}");
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(SynthCifar::new(0).generate(1, 0).is_err());
        assert!(SynthCifar::new(8).generate(0, 0).is_err());
        assert!(SynthCifar::new(8)
            .contrast_range(0.9, 0.1)
            .generate(1, 0)
            .is_err());
    }
}
