//! Binary PGM/PPM export for visual inspection of reconstructed images
//! (the Fig. 5 deliverable writes decoded faces with these helpers).

use std::io::Write;
use std::path::Path;

use crate::{Image, Result};

/// Writes a grayscale image as binary PGM (P5). Multi-channel images are
/// converted to grayscale first.
///
/// # Errors
///
/// Returns [`DataError::Io`](crate::DataError::Io) if the file cannot be
/// written.
pub fn write_pgm<P: AsRef<Path>>(image: &Image, path: P) -> Result<()> {
    let gray = image.to_grayscale();
    let mut file = std::fs::File::create(path)?;
    write!(file, "P5\n{} {}\n255\n", gray.width(), gray.height())?;
    file.write_all(gray.pixels())?;
    Ok(())
}

/// Writes a 3-channel image as binary PPM (P6). Grayscale images are
/// replicated across channels.
///
/// # Errors
///
/// Returns [`DataError::Io`](crate::DataError::Io) if the file cannot be
/// written.
pub fn write_ppm<P: AsRef<Path>>(image: &Image, path: P) -> Result<()> {
    let (w, h) = (image.width(), image.height());
    let plane = w * h;
    let mut interleaved = Vec::with_capacity(3 * plane);
    for i in 0..plane {
        if image.channels() >= 3 {
            interleaved.push(image.pixels()[i]);
            interleaved.push(image.pixels()[plane + i]);
            interleaved.push(image.pixels()[2 * plane + i]);
        } else {
            let v = image.pixels()[i];
            interleaved.extend_from_slice(&[v, v, v]);
        }
    }
    let mut file = std::fs::File::create(path)?;
    write!(file, "P6\n{w} {h}\n255\n")?;
    file.write_all(&interleaved)?;
    Ok(())
}

/// Tiles a row of equally-sized grayscale images into one image — used to
/// build the side-by-side Fig. 5 comparison strips.
///
/// # Errors
///
/// Returns [`DataError::InvalidConfig`](crate::DataError::InvalidConfig)
/// if the images are empty or differ in geometry.
pub fn tile_row(images: &[Image]) -> Result<Image> {
    use crate::DataError;
    let first = images
        .first()
        .ok_or(DataError::EmptySelection { stage: "tile" })?;
    let (h, w) = (first.height(), first.width());
    let grays: Vec<Image> = images.iter().map(Image::to_grayscale).collect();
    if grays.iter().any(|g| g.height() != h || g.width() != w) {
        return Err(DataError::InvalidConfig {
            reason: "tile_row requires equal image sizes".to_string(),
        });
    }
    let total_w = w * grays.len();
    let mut pixels = vec![0u8; h * total_w];
    for (k, g) in grays.iter().enumerate() {
        for y in 0..h {
            for x in 0..w {
                pixels[y * total_w + k * w + x] = g.pixels()[y * w + x];
            }
        }
    }
    Image::new(pixels, 1, h, total_w)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("qce-io-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn pgm_round_trip_header() {
        let img = Image::new(vec![0, 64, 128, 255], 1, 2, 2).unwrap();
        let path = tmpdir().join("a.pgm");
        write_pgm(&img, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P5\n2 2\n255\n"));
        assert_eq!(&bytes[bytes.len() - 4..], &[0, 64, 128, 255]);
    }

    #[test]
    fn ppm_interleaves_channels() {
        let img = Image::new(vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12], 3, 2, 2).unwrap();
        let path = tmpdir().join("b.ppm");
        write_ppm(&img, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let body = &bytes[bytes.len() - 12..];
        assert_eq!(body, &[1, 5, 9, 2, 6, 10, 3, 7, 11, 4, 8, 12]);
    }

    #[test]
    fn ppm_replicates_grayscale() {
        let img = Image::new(vec![7, 8], 1, 1, 2).unwrap();
        let path = tmpdir().join("c.ppm");
        write_ppm(&img, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[bytes.len() - 6..], &[7, 7, 7, 8, 8, 8]);
    }

    #[test]
    fn tile_row_concatenates_horizontally() {
        let a = Image::new(vec![1, 2, 3, 4], 1, 2, 2).unwrap();
        let b = Image::new(vec![5, 6, 7, 8], 1, 2, 2).unwrap();
        let t = tile_row(&[a, b]).unwrap();
        assert_eq!(t.width(), 4);
        assert_eq!(t.height(), 2);
        assert_eq!(t.pixels(), &[1, 2, 5, 6, 3, 4, 7, 8]);
    }

    #[test]
    fn tile_row_validates() {
        assert!(tile_row(&[]).is_err());
        let a = Image::black(1, 2, 2).unwrap();
        let b = Image::black(1, 3, 3).unwrap();
        assert!(tile_row(&[a, b]).is_err());
    }
}
