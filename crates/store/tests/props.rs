//! Property-based tests of the artifact format: serialization is the
//! identity under round trip, and damage is always detected, never
//! silently decoded.

use proptest::prelude::*;
use qce_store::codec::{ByteReader, ByteWriter};
use qce_store::{persist, section_kind, Artifact, StoreError};

// Arbitrary f32 bit patterns — including NaNs, infinities, subnormals and
// signed zeros — exercised through the bitwise round-trip contract.
fn f32_bits() -> impl Strategy<Value = f32> {
    any::<u32>().prop_map(f32::from_bits)
}

fn ascii_string() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 0..24)
        .prop_map(|v| v.into_iter().map(|b| char::from(b & 0x7F)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn artifact_round_trip_is_identity(
        kinds in prop::collection::vec(any::<u16>(), 0..6),
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..256), 6),
    ) {
        let mut artifact = Artifact::new();
        for (kind, payload) in kinds.iter().zip(&payloads) {
            artifact.push(*kind, payload.clone());
        }
        let back = Artifact::from_bytes(&artifact.to_bytes()).unwrap();
        prop_assert_eq!(back, artifact);
    }

    #[test]
    fn single_bit_flips_never_decode_cleanly(
        payload in prop::collection::vec(any::<u8>(), 1..128),
        flip in any::<usize>(),
    ) {
        let mut artifact = Artifact::new();
        artifact.push(section_kind::NETWORK, payload);
        let bytes = artifact.to_bytes();
        let bit = flip % (bytes.len() * 8);
        let mut damaged = bytes.clone();
        damaged[bit / 8] ^= 1 << (bit % 8);
        // Any single-bit flip anywhere — header, table, or payload —
        // must surface as an error (and so as a cache miss), never as a
        // cleanly decoded artifact with different contents.
        prop_assert!(Artifact::from_bytes(&damaged).is_err());
    }

    #[test]
    fn truncation_never_decodes_cleanly(
        payload in prop::collection::vec(any::<u8>(), 0..128),
        cut in any::<usize>(),
    ) {
        let mut artifact = Artifact::new();
        artifact.push(section_kind::TRAINING_HISTORY, payload);
        let bytes = artifact.to_bytes();
        let len = cut % bytes.len();
        prop_assert!(Artifact::from_bytes(&bytes[..len]).is_err());
    }

    #[test]
    fn index_list_round_trip_is_identity(
        indices in prop::collection::vec(any::<u32>(), 0..64)
    ) {
        let indices: Vec<usize> = indices.into_iter().map(|i| i as usize).collect();
        let back = persist::indices_from_bytes(&persist::indices_to_bytes(&indices)).unwrap();
        prop_assert_eq!(back, indices);
    }

    #[test]
    fn history_round_trip_is_bitwise(
        losses in prop::collection::vec(f32_bits(), 0..32),
        penalties in prop::collection::vec(f32_bits(), 0..32),
        rollbacks in any::<u16>(),
    ) {
        let h = qce_nn::TrainingHistory {
            epoch_losses: losses,
            epoch_penalties: penalties,
            rollbacks: rollbacks as usize,
        };
        let back = persist::history_from_bytes(&persist::history_to_bytes(&h)).unwrap();
        // Bitwise comparison: NaN payloads and signed zeros must survive.
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&back.epoch_losses), bits(&h.epoch_losses));
        prop_assert_eq!(bits(&back.epoch_penalties), bits(&h.epoch_penalties));
        prop_assert_eq!(back.rollbacks, h.rollbacks);
    }

    #[test]
    fn codec_scalars_round_trip_bitwise(
        a in any::<u64>(),
        b in f32_bits(),
        c in any::<u64>(),
        s in ascii_string(),
    ) {
        let c = f64::from_bits(c);
        let mut w = ByteWriter::new();
        w.put_u64(a).put_f32(b).put_f64(c).put_str(&s);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        prop_assert_eq!(r.u64().unwrap(), a);
        prop_assert_eq!(r.f32().unwrap().to_bits(), b.to_bits());
        prop_assert_eq!(r.f64().unwrap().to_bits(), c.to_bits());
        prop_assert_eq!(r.str().unwrap(), s);
        r.expect_empty().unwrap();
    }

    #[test]
    fn corrupt_error_reports_the_damaged_kind(
        kind in section_kind::DOWNSTREAM_BASE..u16::MAX,
        payload in prop::collection::vec(any::<u8>(), 8..64),
    ) {
        let mut artifact = Artifact::new();
        artifact.push(kind, payload);
        let mut bytes = artifact.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x80;
        match Artifact::from_bytes(&bytes) {
            Err(StoreError::Corrupt { kind: reported, .. }) => prop_assert_eq!(reported, kind),
            other => prop_assert!(false, "expected Corrupt, got {:?}", other),
        }
    }
}
