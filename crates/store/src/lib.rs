//! Versioned binary artifacts and a content-addressed stage cache for
//! the qce attack flow.
//!
//! The attack pipeline (select → train → quantize → evaluate) is
//! expensive at the front and cheap at the back, and every stage is a
//! deterministic function of the run configuration and seed. This crate
//! turns that determinism into checkpoint/resume: each completed stage
//! is serialized into a self-verifying [`Artifact`] file and stored in a
//! [`StageCache`] keyed by `(config hash, seed, stage name)`. A later
//! run with the same key loads the artifact instead of recomputing —
//! bit-for-bit identical to the cold run, because the artifacts store
//! IEEE-754 bit patterns, not decimal approximations.
//!
//! Three layers, bottom up:
//!
//! - [`codec`] — little-endian payload primitives ([`codec::ByteWriter`]
//!   / [`codec::ByteReader`]) shared by every section codec, including
//!   downstream crates that serialize their own types.
//! - [`mod@format`] — the `QCES` container: magic, format version, a
//!   section table, and a CRC-32 per section (the same CRC-32 that
//!   guards LSB-encoded payloads in `qce-attack`). [`Artifact`] is
//!   fully verified on read.
//! - [`cache`] — [`StageCache`], the content-addressed directory of
//!   artifacts with atomic writes and miss-on-corruption semantics,
//!   plus [`CacheKey`]. Activated for flows via the `QCE_CACHE`
//!   environment variable.
//!
//! [`persist`] holds the typed payload codecs for the workspace types
//! this crate sits above: trained networks, quantized networks, index
//! lists, and training histories. The `qce` flow crate defines its own
//! stage-report codec on top of [`codec`] with a tag from the
//! [`section_kind::DOWNSTREAM_BASE`] range.
//!
//! # Example: checkpointing a payload
//!
//! ```
//! use qce_store::{Artifact, CacheKey, StageCache, section_kind};
//!
//! # fn main() -> Result<(), qce_store::StoreError> {
//! # let dir = std::env::temp_dir().join(format!("qce-store-doc-{}", std::process::id()));
//! let cache = StageCache::at(&dir);
//! let key = CacheKey::new(0x1234, 7, "select");
//!
//! // Cold: miss, compute, store.
//! assert!(cache.load(&key).is_none());
//! let mut artifact = Artifact::new();
//! artifact.push(section_kind::INDEX_LIST, qce_store::persist::indices_to_bytes(&[3, 1, 4]));
//! cache.store(&key, &artifact)?;
//!
//! // Warm: verified hit.
//! let cached = cache.load(&key).expect("hit");
//! let indices = qce_store::persist::indices_from_bytes(
//!     cached.require(section_kind::INDEX_LIST)?,
//! )?;
//! assert_eq!(indices, vec![3, 1, 4]);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod codec;
pub mod digest;
mod error;
pub mod format;
pub mod persist;

pub use cache::{parse_byte_budget, CacheKey, StageCache, CACHE_ENV, CACHE_MAX_BYTES_ENV};
pub use digest::{digest_bytes, digest_f32s, digest_indices, Digester};
pub use error::{Result, StoreError};
pub use format::{peek_version, section_kind, Artifact, Section, FORMAT_VERSION, MAGIC};
