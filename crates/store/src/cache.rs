//! The content-addressed on-disk stage cache.
//!
//! A cache entry is one [`Artifact`] file whose name is derived from
//! *what produced it*: the FNV-1a hash of the flow configuration, the
//! run seed, and the stage name. Because every stage of the flow is a
//! deterministic function of (config, seed, dataset-generation seed),
//! two runs with the same key would compute bit-identical artifacts —
//! which is exactly what makes loading one instead safe.
//!
//! Failure policy: a probe ([`StageCache::load`]) *never* errors. A
//! missing file is a miss (`store.miss`); a file that fails magic,
//! version, structural, or CRC validation is counted as `store.corrupt`
//! and treated as a miss, so a damaged cache degrades to recomputation,
//! never to a wrong result. Writes go through a temp file in the cache
//! directory followed by an atomic rename, so a killed run can leave at
//! most a stale `*.tmp.*` file behind — never a torn artifact under a
//! live key.
//!
//! # Bounding the directory
//!
//! Left alone the cache grows without bound — every distinct (config,
//! seed, dataset) triple adds a full set of stage artifacts, which is
//! exactly wrong for a long-running server. A byte budget (the
//! `QCE_CACHE_MAX_BYTES` variable, or [`StageCache::with_max_bytes`])
//! turns the directory into an LRU: loads touch the artifact's mtime,
//! and after each store the oldest artifacts are deleted (counted as
//! `store.evict`) until the directory fits the budget again. The entry
//! just written always survives, even when it alone exceeds the budget
//! — the flow that produced it still gets to resume from it.
//!
//! *Miss-after-evict semantics*: eviction deletes whole artifacts, so a
//! later probe for an evicted key is an ordinary `store.miss` and the
//! stage is recomputed (bit-identically, by the determinism contract)
//! and re-stored. An undersized budget therefore costs recompute time,
//! never correctness.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::SystemTime;

use crate::{Artifact, Result, StoreError};

/// Environment variable naming the cache directory.
///
/// When set (and non-empty), [`StageCache::from_env`] returns a cache
/// rooted there; the flow then reuses completed stages across runs.
pub const CACHE_ENV: &str = "QCE_CACHE";

/// Environment variable bounding the cache directory, in bytes.
///
/// Accepts a plain byte count or a `K`/`M`/`G` suffix (powers of 1024,
/// case-insensitive): `QCE_CACHE_MAX_BYTES=256M`. Unset, empty or
/// unparsable values leave the cache unbounded. Only consulted by
/// [`StageCache::from_env`]; programmatic caches use
/// [`StageCache::with_max_bytes`].
pub const CACHE_MAX_BYTES_ENV: &str = "QCE_CACHE_MAX_BYTES";

/// Identifies one cached stage result.
///
/// # Examples
///
/// ```
/// use qce_store::CacheKey;
///
/// let key = CacheKey::new(0xdead_beef, 7, "evaluate:TargetCorrelated 4-bit");
/// assert_eq!(
///     key.file_name(),
///     "00000000deadbeef-s7-evaluate-targetcorrelated-4-bit.qcs"
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    /// FNV-1a hash of the run configuration (the same value the
    /// telemetry `RunManifest` records as `config_hash`).
    pub config_hash: u64,
    /// The run's master seed.
    pub seed: u64,
    /// Stage name, e.g. `train` or `evaluate:uncompressed`.
    pub stage: String,
}

impl CacheKey {
    /// A key for `stage` under (`config_hash`, `seed`).
    pub fn new(config_hash: u64, seed: u64, stage: impl Into<String>) -> Self {
        CacheKey {
            config_hash,
            seed,
            stage: stage.into(),
        }
    }

    /// The artifact file name this key addresses:
    /// `{config_hash:016x}-s{seed}-{stage}.qcs`, with the stage
    /// lower-cased and every non-alphanumeric run collapsed to `-` so
    /// arbitrary stage labels stay filesystem-safe.
    #[must_use]
    pub fn file_name(&self) -> String {
        let mut stage = String::with_capacity(self.stage.len());
        let mut last_dash = false;
        for c in self.stage.chars() {
            if c.is_ascii_alphanumeric() {
                stage.extend(c.to_lowercase());
                last_dash = false;
            } else if !last_dash {
                stage.push('-');
                last_dash = true;
            }
        }
        format!("{:016x}-s{}-{}.qcs", self.config_hash, self.seed, stage)
    }
}

/// Cached telemetry handles — registry lookups happen once per process.
struct CacheStats {
    hit: qce_telemetry::Counter,
    miss: qce_telemetry::Counter,
    corrupt: qce_telemetry::Counter,
    write: qce_telemetry::Counter,
    evict: qce_telemetry::Counter,
}

fn cache_stats() -> &'static CacheStats {
    use std::sync::OnceLock;
    static STATS: OnceLock<CacheStats> = OnceLock::new();
    STATS.get_or_init(|| CacheStats {
        hit: qce_telemetry::counter("store.hit"),
        miss: qce_telemetry::counter("store.miss"),
        corrupt: qce_telemetry::counter("store.corrupt"),
        write: qce_telemetry::counter("store.write"),
        evict: qce_telemetry::counter("store.evict"),
    })
}

/// Parses a byte budget: a plain integer, optionally suffixed with
/// `K`/`M`/`G` (powers of 1024, case-insensitive). Returns `None` for
/// anything unparsable, zero, or overflowing. This is the grammar of
/// [`CACHE_MAX_BYTES_ENV`], exported so CLI flags accept the same
/// spellings.
pub fn parse_byte_budget(raw: &str) -> Option<u64> {
    let s = raw.trim();
    if s.is_empty() {
        return None;
    }
    let (digits, multiplier) = match s.as_bytes()[s.len() - 1].to_ascii_uppercase() {
        b'K' => (&s[..s.len() - 1], 1u64 << 10),
        b'M' => (&s[..s.len() - 1], 1u64 << 20),
        b'G' => (&s[..s.len() - 1], 1u64 << 30),
        _ => (s, 1),
    };
    let value: u64 = digits.trim().parse().ok()?;
    let budget = value.checked_mul(multiplier)?;
    (budget > 0).then_some(budget)
}

/// A content-addressed artifact cache rooted at one directory.
///
/// # Examples
///
/// ```no_run
/// use qce_store::{Artifact, CacheKey, StageCache, section_kind};
///
/// # fn main() -> Result<(), qce_store::StoreError> {
/// let cache = StageCache::at("/tmp/qce-cache");
/// let key = CacheKey::new(1, 7, "select");
/// if cache.load(&key).is_none() {
///     let mut artifact = Artifact::new();
///     artifact.push(section_kind::INDEX_LIST, vec![]);
///     cache.store(&key, &artifact)?;
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageCache {
    dir: PathBuf,
    max_bytes: Option<u64>,
}

impl StageCache {
    /// A cache rooted at `dir` (created lazily on first write),
    /// unbounded unless [`StageCache::with_max_bytes`] is applied.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        StageCache {
            dir: dir.into(),
            max_bytes: None,
        }
    }

    /// Bounds the cache directory to `max_bytes` of artifacts, enforced
    /// by LRU eviction after every store (see the module docs). A zero
    /// budget is treated as unbounded.
    #[must_use]
    pub fn with_max_bytes(mut self, max_bytes: u64) -> Self {
        self.max_bytes = (max_bytes > 0).then_some(max_bytes);
        self
    }

    /// The cache named by the `QCE_CACHE` environment variable, or
    /// `None` when the variable is unset or empty. The byte budget, if
    /// any, comes from `QCE_CACHE_MAX_BYTES`.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        let cache = match std::env::var(CACHE_ENV) {
            Ok(dir) if !dir.trim().is_empty() => StageCache::at(dir.trim()),
            _ => return None,
        };
        match std::env::var(CACHE_MAX_BYTES_ENV) {
            Ok(raw) => match parse_byte_budget(&raw) {
                Some(budget) => Some(cache.with_max_bytes(budget)),
                None => {
                    if !raw.trim().is_empty() {
                        qce_telemetry::debug!(
                            "[store] ignoring unparsable {CACHE_MAX_BYTES_ENV}={raw:?}"
                        );
                    }
                    Some(cache)
                }
            },
            Err(_) => Some(cache),
        }
    }

    /// The cache's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The byte budget, or `None` when the cache is unbounded.
    #[must_use]
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    /// The artifact path `key` addresses (whether or not it exists).
    #[must_use]
    pub fn path_for(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Probes the cache: returns the verified artifact on a hit, `None`
    /// otherwise.
    ///
    /// Increments `store.hit` on success. A missing file increments
    /// `store.miss`; a file that exists but fails verification (wrong
    /// magic or format version, truncation, CRC mismatch) increments
    /// `store.corrupt` *and* `store.miss` — corruption is a reason for a
    /// miss, never an error the caller has to handle.
    #[must_use]
    pub fn load(&self, key: &CacheKey) -> Option<Artifact> {
        let stats = cache_stats();
        let path = self.path_for(key);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(_) => {
                stats.miss.incr(1);
                return None;
            }
        };
        match Artifact::from_bytes(&bytes) {
            Ok(artifact) => {
                stats.hit.incr(1);
                // Recency bookkeeping for a bounded cache: refresh the
                // mtime so eviction is least-recently-*used*, not
                // least-recently-written. Best-effort — a read-only
                // directory degrades to FIFO, never to an error.
                if self.max_bytes.is_some() {
                    let _ = std::fs::OpenOptions::new()
                        .append(true)
                        .open(&path)
                        .and_then(|f| {
                            f.set_times(std::fs::FileTimes::new().set_modified(SystemTime::now()))
                        });
                }
                Some(artifact)
            }
            Err(e) => {
                stats.corrupt.incr(1);
                stats.miss.incr(1);
                qce_telemetry::debug!(
                    "[store] discarding corrupt cache artifact {}: {e}",
                    path.display()
                );
                None
            }
        }
    }

    /// Writes `artifact` under `key` atomically: the bytes go to a
    /// process-unique temp file in the cache directory, which is then
    /// renamed over the final path. Readers therefore observe either the
    /// old entry, or the complete new one — never a torn write.
    ///
    /// Increments `store.write` on success.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the directory cannot be created
    /// or the file cannot be written/renamed.
    pub fn store(&self, key: &CacheKey, artifact: &Artifact) -> Result<PathBuf> {
        static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| StoreError::io(format!("creating cache dir {}", self.dir.display()), e))?;
        let path = self.path_for(key);
        let tmp = self.dir.join(format!(
            "{}.tmp.{}.{}",
            key.file_name(),
            std::process::id(),
            WRITE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let bytes = artifact.to_bytes();
        std::fs::write(&tmp, &bytes)
            .map_err(|e| StoreError::io(format!("writing {}", tmp.display()), e))?;
        if let Err(e) = std::fs::rename(&tmp, &path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(StoreError::io(
                format!("renaming {} over {}", tmp.display(), path.display()),
                e,
            ));
        }
        cache_stats().write.incr(1);
        if let Some(budget) = self.max_bytes {
            self.enforce_budget(budget, &path);
        }
        Ok(path)
    }

    /// Deletes least-recently-used `.qcs` artifacts until the directory
    /// fits `budget` bytes again, never touching `just_written` (the
    /// entry whose store triggered enforcement). Counts one
    /// `store.evict` per deleted artifact. Best-effort throughout: scan
    /// or unlink failures are logged and skipped — a flaky filesystem
    /// must degrade to an oversized cache, not a failed flow.
    fn enforce_budget(&self, budget: u64, just_written: &Path) {
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(rd) => rd,
            Err(e) => {
                qce_telemetry::debug!(
                    "[store] cache eviction scan failed for {}: {e}",
                    self.dir.display()
                );
                return;
            }
        };
        // (mtime, name, path, len) per artifact; name breaks mtime ties
        // deterministically on coarse-clock filesystems.
        let mut artifacts = Vec::new();
        let mut total: u64 = 0;
        for entry in entries.filter_map(|e| e.ok()) {
            let path = entry.path();
            if path.extension().is_none_or(|ext| ext != "qcs") {
                continue;
            }
            let Ok(meta) = entry.metadata() else { continue };
            if !meta.is_file() {
                continue;
            }
            total = total.saturating_add(meta.len());
            if path != just_written {
                let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                artifacts.push((mtime, entry.file_name(), path, meta.len()));
            }
        }
        if total <= budget {
            return;
        }
        artifacts.sort();
        for (_, _, path, len) in artifacts {
            if total <= budget {
                break;
            }
            match std::fs::remove_file(&path) {
                Ok(()) => {
                    total = total.saturating_sub(len);
                    cache_stats().evict.incr(1);
                    qce_telemetry::debug!("[store] evicted cache artifact {}", path.display());
                }
                Err(e) => qce_telemetry::debug!(
                    "[store] cache eviction failed for {}: {e}",
                    path.display()
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::section_kind;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_cache(tag: &str) -> StageCache {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "qce-store-test-{}-{}-{}",
            tag,
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        StageCache::at(dir)
    }

    fn artifact() -> Artifact {
        let mut a = Artifact::new();
        a.push(section_kind::INDEX_LIST, vec![4, 5, 6]);
        a
    }

    #[test]
    fn file_names_are_sanitized_and_stable() {
        let key = CacheKey::new(0xABCD, 3, "quantize:KMeans 4-bit");
        assert_eq!(
            key.file_name(),
            "000000000000abcd-s3-quantize-kmeans-4-bit.qcs"
        );
        // Distinct stages, seeds and hashes address distinct files.
        assert_ne!(
            CacheKey::new(1, 1, "train").file_name(),
            CacheKey::new(1, 1, "select").file_name()
        );
        assert_ne!(
            CacheKey::new(1, 1, "train").file_name(),
            CacheKey::new(1, 2, "train").file_name()
        );
        assert_ne!(
            CacheKey::new(1, 1, "train").file_name(),
            CacheKey::new(2, 1, "train").file_name()
        );
    }

    #[test]
    fn store_then_load_round_trips() {
        let cache = temp_cache("roundtrip");
        let key = CacheKey::new(11, 7, "train");
        let hit0 = cache_stats().hit.get();
        let miss0 = cache_stats().miss.get();
        assert!(cache.load(&key).is_none());
        assert_eq!(cache_stats().miss.get() - miss0, 1);
        let path = cache.store(&key, &artifact()).unwrap();
        assert!(path.ends_with(key.file_name()));
        assert_eq!(cache.load(&key).unwrap(), artifact());
        assert_eq!(cache_stats().hit.get() - hit0, 1);
        // No temp files survive a successful store.
        let leftovers: Vec<_> = std::fs::read_dir(cache.dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn corrupt_file_is_a_counted_miss() {
        let cache = temp_cache("corrupt");
        let key = CacheKey::new(12, 7, "train");
        let path = cache.store(&key, &artifact()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        *bytes.last_mut().unwrap() ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let corrupt0 = cache_stats().corrupt.get();
        assert!(cache.load(&key).is_none());
        assert_eq!(cache_stats().corrupt.get() - corrupt0, 1);
        // Truncated file: also a miss.
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(cache.load(&key).is_none());
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    /// Backdates an entry's mtime so LRU ordering is controlled by the
    /// test instead of the filesystem clock's resolution.
    fn backdate(cache: &StageCache, key: &CacheKey, seconds_ago: u64) {
        let when = SystemTime::now() - std::time::Duration::from_secs(seconds_ago);
        std::fs::OpenOptions::new()
            .append(true)
            .open(cache.path_for(key))
            .unwrap()
            .set_times(std::fs::FileTimes::new().set_modified(when))
            .unwrap();
    }

    #[test]
    fn parse_byte_budget_accepts_suffixes_and_rejects_junk() {
        assert_eq!(parse_byte_budget("1024"), Some(1024));
        assert_eq!(parse_byte_budget(" 2K "), Some(2048));
        assert_eq!(parse_byte_budget("3m"), Some(3 << 20));
        assert_eq!(parse_byte_budget("1G"), Some(1 << 30));
        assert_eq!(parse_byte_budget(""), None);
        assert_eq!(parse_byte_budget("0"), None);
        assert_eq!(parse_byte_budget("lots"), None);
        assert_eq!(parse_byte_budget("999999999999999999G"), None);
    }

    #[test]
    fn eviction_removes_oldest_entries_and_counts_them() {
        let one = artifact().to_bytes().len() as u64;
        // Budget for exactly two artifacts.
        let cache = temp_cache("evict").with_max_bytes(2 * one);
        let keys: Vec<CacheKey> = (0..3).map(|s| CacheKey::new(20, s, "train")).collect();
        let evict0 = cache_stats().evict.get();
        cache.store(&keys[0], &artifact()).unwrap();
        backdate(&cache, &keys[0], 300);
        cache.store(&keys[1], &artifact()).unwrap();
        backdate(&cache, &keys[1], 200);
        assert_eq!(cache_stats().evict.get() - evict0, 0);
        // Third store busts the budget: the oldest entry goes.
        cache.store(&keys[2], &artifact()).unwrap();
        assert_eq!(cache_stats().evict.get() - evict0, 1);
        assert!(!cache.path_for(&keys[0]).exists());
        assert!(cache.path_for(&keys[1]).exists());
        assert!(cache.path_for(&keys[2]).exists());
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn loads_refresh_recency_so_eviction_is_lru_not_fifo() {
        let one = artifact().to_bytes().len() as u64;
        let cache = temp_cache("lru").with_max_bytes(2 * one);
        let keys: Vec<CacheKey> = (0..3).map(|s| CacheKey::new(21, s, "train")).collect();
        cache.store(&keys[0], &artifact()).unwrap();
        backdate(&cache, &keys[0], 300);
        cache.store(&keys[1], &artifact()).unwrap();
        backdate(&cache, &keys[1], 200);
        // Touch the older entry: the load refreshes its mtime, making
        // keys[1] the least recently used.
        assert!(cache.load(&keys[0]).is_some());
        cache.store(&keys[2], &artifact()).unwrap();
        assert!(cache.path_for(&keys[0]).exists());
        assert!(!cache.path_for(&keys[1]).exists());
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn evicted_entry_is_an_ordinary_miss_and_restores_on_next_store() {
        let one = artifact().to_bytes().len() as u64;
        let cache = temp_cache("miss-after-evict").with_max_bytes(one);
        let old = CacheKey::new(22, 1, "train");
        let new = CacheKey::new(22, 2, "train");
        cache.store(&old, &artifact()).unwrap();
        backdate(&cache, &old, 300);
        cache.store(&new, &artifact()).unwrap();
        assert!(!cache.path_for(&old).exists());
        // The evicted key probes as a plain miss (no corrupt count)...
        let miss0 = cache_stats().miss.get();
        let corrupt0 = cache_stats().corrupt.get();
        assert!(cache.load(&old).is_none());
        assert_eq!(cache_stats().miss.get() - miss0, 1);
        assert_eq!(cache_stats().corrupt.get() - corrupt0, 0);
        // ...and the recomputed artifact stores again as usual.
        cache.store(&old, &artifact()).unwrap();
        assert_eq!(cache.load(&old).unwrap(), artifact());
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn just_written_entry_survives_even_when_oversized() {
        let cache = temp_cache("oversized").with_max_bytes(1);
        let key = CacheKey::new(23, 1, "train");
        cache.store(&key, &artifact()).unwrap();
        assert!(cache.path_for(&key).exists());
        assert_eq!(cache.load(&key).unwrap(), artifact());
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = temp_cache("unbounded");
        assert_eq!(cache.max_bytes(), None);
        assert_eq!(cache.clone().with_max_bytes(0).max_bytes(), None);
        let evict0 = cache_stats().evict.get();
        for s in 0..4 {
            cache
                .store(&CacheKey::new(24, s, "train"), &artifact())
                .unwrap();
        }
        assert_eq!(cache_stats().evict.get() - evict0, 0);
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn store_overwrites_existing_entry() {
        let cache = temp_cache("overwrite");
        let key = CacheKey::new(13, 7, "select");
        cache.store(&key, &artifact()).unwrap();
        let mut newer = Artifact::new();
        newer.push(section_kind::INDEX_LIST, vec![9]);
        cache.store(&key, &newer).unwrap();
        assert_eq!(cache.load(&key).unwrap(), newer);
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }
}
