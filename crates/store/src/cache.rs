//! The content-addressed on-disk stage cache.
//!
//! A cache entry is one [`Artifact`] file whose name is derived from
//! *what produced it*: the FNV-1a hash of the flow configuration, the
//! run seed, and the stage name. Because every stage of the flow is a
//! deterministic function of (config, seed, dataset-generation seed),
//! two runs with the same key would compute bit-identical artifacts —
//! which is exactly what makes loading one instead safe.
//!
//! Failure policy: a probe ([`StageCache::load`]) *never* errors. A
//! missing file is a miss (`store.miss`); a file that fails magic,
//! version, structural, or CRC validation is counted as `store.corrupt`
//! and treated as a miss, so a damaged cache degrades to recomputation,
//! never to a wrong result. Writes go through a temp file in the cache
//! directory followed by an atomic rename, so a killed run can leave at
//! most a stale `*.tmp.*` file behind — never a torn artifact under a
//! live key.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::{Artifact, Result, StoreError};

/// Environment variable naming the cache directory.
///
/// When set (and non-empty), [`StageCache::from_env`] returns a cache
/// rooted there; the flow then reuses completed stages across runs.
pub const CACHE_ENV: &str = "QCE_CACHE";

/// Identifies one cached stage result.
///
/// # Examples
///
/// ```
/// use qce_store::CacheKey;
///
/// let key = CacheKey::new(0xdead_beef, 7, "evaluate:TargetCorrelated 4-bit");
/// assert_eq!(
///     key.file_name(),
///     "00000000deadbeef-s7-evaluate-targetcorrelated-4-bit.qcs"
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    /// FNV-1a hash of the run configuration (the same value the
    /// telemetry `RunManifest` records as `config_hash`).
    pub config_hash: u64,
    /// The run's master seed.
    pub seed: u64,
    /// Stage name, e.g. `train` or `evaluate:uncompressed`.
    pub stage: String,
}

impl CacheKey {
    /// A key for `stage` under (`config_hash`, `seed`).
    pub fn new(config_hash: u64, seed: u64, stage: impl Into<String>) -> Self {
        CacheKey {
            config_hash,
            seed,
            stage: stage.into(),
        }
    }

    /// The artifact file name this key addresses:
    /// `{config_hash:016x}-s{seed}-{stage}.qcs`, with the stage
    /// lower-cased and every non-alphanumeric run collapsed to `-` so
    /// arbitrary stage labels stay filesystem-safe.
    #[must_use]
    pub fn file_name(&self) -> String {
        let mut stage = String::with_capacity(self.stage.len());
        let mut last_dash = false;
        for c in self.stage.chars() {
            if c.is_ascii_alphanumeric() {
                stage.extend(c.to_lowercase());
                last_dash = false;
            } else if !last_dash {
                stage.push('-');
                last_dash = true;
            }
        }
        format!("{:016x}-s{}-{}.qcs", self.config_hash, self.seed, stage)
    }
}

/// Cached telemetry handles — registry lookups happen once per process.
struct CacheStats {
    hit: qce_telemetry::Counter,
    miss: qce_telemetry::Counter,
    corrupt: qce_telemetry::Counter,
    write: qce_telemetry::Counter,
}

fn cache_stats() -> &'static CacheStats {
    use std::sync::OnceLock;
    static STATS: OnceLock<CacheStats> = OnceLock::new();
    STATS.get_or_init(|| CacheStats {
        hit: qce_telemetry::counter("store.hit"),
        miss: qce_telemetry::counter("store.miss"),
        corrupt: qce_telemetry::counter("store.corrupt"),
        write: qce_telemetry::counter("store.write"),
    })
}

/// A content-addressed artifact cache rooted at one directory.
///
/// # Examples
///
/// ```no_run
/// use qce_store::{Artifact, CacheKey, StageCache, section_kind};
///
/// # fn main() -> Result<(), qce_store::StoreError> {
/// let cache = StageCache::at("/tmp/qce-cache");
/// let key = CacheKey::new(1, 7, "select");
/// if cache.load(&key).is_none() {
///     let mut artifact = Artifact::new();
///     artifact.push(section_kind::INDEX_LIST, vec![]);
///     cache.store(&key, &artifact)?;
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageCache {
    dir: PathBuf,
}

impl StageCache {
    /// A cache rooted at `dir` (created lazily on first write).
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        StageCache { dir: dir.into() }
    }

    /// The cache named by the `QCE_CACHE` environment variable, or
    /// `None` when the variable is unset or empty.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        match std::env::var(CACHE_ENV) {
            Ok(dir) if !dir.trim().is_empty() => Some(StageCache::at(dir.trim())),
            _ => None,
        }
    }

    /// The cache's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The artifact path `key` addresses (whether or not it exists).
    #[must_use]
    pub fn path_for(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Probes the cache: returns the verified artifact on a hit, `None`
    /// otherwise.
    ///
    /// Increments `store.hit` on success. A missing file increments
    /// `store.miss`; a file that exists but fails verification (wrong
    /// magic or format version, truncation, CRC mismatch) increments
    /// `store.corrupt` *and* `store.miss` — corruption is a reason for a
    /// miss, never an error the caller has to handle.
    #[must_use]
    pub fn load(&self, key: &CacheKey) -> Option<Artifact> {
        let stats = cache_stats();
        let path = self.path_for(key);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(_) => {
                stats.miss.incr(1);
                return None;
            }
        };
        match Artifact::from_bytes(&bytes) {
            Ok(artifact) => {
                stats.hit.incr(1);
                Some(artifact)
            }
            Err(e) => {
                stats.corrupt.incr(1);
                stats.miss.incr(1);
                qce_telemetry::debug!(
                    "[store] discarding corrupt cache artifact {}: {e}",
                    path.display()
                );
                None
            }
        }
    }

    /// Writes `artifact` under `key` atomically: the bytes go to a
    /// process-unique temp file in the cache directory, which is then
    /// renamed over the final path. Readers therefore observe either the
    /// old entry, or the complete new one — never a torn write.
    ///
    /// Increments `store.write` on success.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the directory cannot be created
    /// or the file cannot be written/renamed.
    pub fn store(&self, key: &CacheKey, artifact: &Artifact) -> Result<PathBuf> {
        static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| StoreError::io(format!("creating cache dir {}", self.dir.display()), e))?;
        let path = self.path_for(key);
        let tmp = self.dir.join(format!(
            "{}.tmp.{}.{}",
            key.file_name(),
            std::process::id(),
            WRITE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let bytes = artifact.to_bytes();
        std::fs::write(&tmp, &bytes)
            .map_err(|e| StoreError::io(format!("writing {}", tmp.display()), e))?;
        if let Err(e) = std::fs::rename(&tmp, &path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(StoreError::io(
                format!("renaming {} over {}", tmp.display(), path.display()),
                e,
            ));
        }
        cache_stats().write.incr(1);
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::section_kind;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_cache(tag: &str) -> StageCache {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "qce-store-test-{}-{}-{}",
            tag,
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        StageCache::at(dir)
    }

    fn artifact() -> Artifact {
        let mut a = Artifact::new();
        a.push(section_kind::INDEX_LIST, vec![4, 5, 6]);
        a
    }

    #[test]
    fn file_names_are_sanitized_and_stable() {
        let key = CacheKey::new(0xABCD, 3, "quantize:KMeans 4-bit");
        assert_eq!(
            key.file_name(),
            "000000000000abcd-s3-quantize-kmeans-4-bit.qcs"
        );
        // Distinct stages, seeds and hashes address distinct files.
        assert_ne!(
            CacheKey::new(1, 1, "train").file_name(),
            CacheKey::new(1, 1, "select").file_name()
        );
        assert_ne!(
            CacheKey::new(1, 1, "train").file_name(),
            CacheKey::new(1, 2, "train").file_name()
        );
        assert_ne!(
            CacheKey::new(1, 1, "train").file_name(),
            CacheKey::new(2, 1, "train").file_name()
        );
    }

    #[test]
    fn store_then_load_round_trips() {
        let cache = temp_cache("roundtrip");
        let key = CacheKey::new(11, 7, "train");
        let hit0 = cache_stats().hit.get();
        let miss0 = cache_stats().miss.get();
        assert!(cache.load(&key).is_none());
        assert_eq!(cache_stats().miss.get() - miss0, 1);
        let path = cache.store(&key, &artifact()).unwrap();
        assert!(path.ends_with(key.file_name()));
        assert_eq!(cache.load(&key).unwrap(), artifact());
        assert_eq!(cache_stats().hit.get() - hit0, 1);
        // No temp files survive a successful store.
        let leftovers: Vec<_> = std::fs::read_dir(cache.dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn corrupt_file_is_a_counted_miss() {
        let cache = temp_cache("corrupt");
        let key = CacheKey::new(12, 7, "train");
        let path = cache.store(&key, &artifact()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        *bytes.last_mut().unwrap() ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let corrupt0 = cache_stats().corrupt.get();
        assert!(cache.load(&key).is_none());
        assert_eq!(cache_stats().corrupt.get() - corrupt0, 1);
        // Truncated file: also a miss.
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(cache.load(&key).is_none());
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn store_overwrites_existing_entry() {
        let cache = temp_cache("overwrite");
        let key = CacheKey::new(13, 7, "select");
        cache.store(&key, &artifact()).unwrap();
        let mut newer = Artifact::new();
        newer.push(section_kind::INDEX_LIST, vec![9]);
        cache.store(&key, &newer).unwrap();
        assert_eq!(cache.load(&key).unwrap(), newer);
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }
}
