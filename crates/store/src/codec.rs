//! Little-endian payload primitives shared by every section codec.
//!
//! The artifact container ([`format`](crate::format)) treats section
//! payloads as opaque bytes; whatever produces a payload — this crate's
//! [`persist`](crate::persist) codecs or a downstream crate serializing
//! its own types (e.g. `qce`'s stage reports) — builds it with
//! [`ByteWriter`] and decodes it with [`ByteReader`]. Keeping both here
//! means every payload shares one wire convention: little-endian fixed
//! width integers, IEEE-754 bit patterns for floats (so `NaN` and `-0.0`
//! round-trip bitwise), and length-prefixed UTF-8 strings.
//!
//! # Examples
//!
//! ```
//! use qce_store::codec::{ByteReader, ByteWriter};
//!
//! let mut w = ByteWriter::new();
//! w.put_u64(3).put_f32(1.5).put_str("flow.train");
//! let bytes = w.finish();
//!
//! let mut r = ByteReader::new(&bytes);
//! assert_eq!(r.u64().unwrap(), 3);
//! assert_eq!(r.f32().unwrap(), 1.5);
//! assert_eq!(r.str().unwrap(), "flow.train");
//! assert!(r.is_empty());
//! ```

use crate::{Result, StoreError};

/// Appends little-endian primitives to a growable byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends an `f32` as its IEEE-754 bit pattern (bitwise lossless,
    /// including `NaN` payloads and signed zero).
    pub fn put_f32(&mut self, v: f32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u64` length prefix followed by the UTF-8 bytes.
    pub fn put_str(&mut self, s: &str) -> &mut Self {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// Appends raw bytes without a length prefix (pair with
    /// [`ByteReader::take`]).
    pub fn put_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(bytes);
        self
    }

    /// Appends a `u64` count followed by every slice element as an `f32`
    /// bit pattern.
    pub fn put_f32_slice(&mut self, vs: &[f32]) -> &mut Self {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_f32(v);
        }
        self
    }

    /// The accumulated payload.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Reads little-endian primitives back out of a payload, with explicit
/// truncation errors instead of panics.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N]> {
        let bytes = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(bytes);
        Ok(out)
    }

    /// Consumes and returns the next `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Format`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let Some(end) = end else {
            return Err(StoreError::format(format!(
                "payload truncated: wanted {n} bytes at offset {} of {}",
                self.pos,
                self.buf.len()
            )));
        };
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Format`] on truncation.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take_array::<1>()?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Format`] on truncation.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Format`] on truncation.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Format`] on truncation.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Reads a `u64` and narrows it to `usize`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Format`] on truncation or when the value
    /// does not fit a `usize`.
    pub fn len_u64(&mut self) -> Result<usize> {
        usize::try_from(self.u64()?).map_err(|_| StoreError::format("length prefix exceeds usize"))
    }

    /// Reads an `f32` bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Format`] on truncation.
    pub fn f32(&mut self) -> Result<f32> {
        Ok(f32::from_le_bytes(self.take_array()?))
    }

    /// Reads an `f64` bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Format`] on truncation.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take_array()?))
    }

    /// Reads a length-prefixed UTF-8 string written by
    /// [`ByteWriter::put_str`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Format`] on truncation or invalid UTF-8.
    pub fn str(&mut self) -> Result<String> {
        let len = self.len_u64()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::format("string payload is not UTF-8"))
    }

    /// Reads a counted `f32` vector written by
    /// [`ByteWriter::put_f32_slice`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Format`] on truncation.
    pub fn f32_vec(&mut self) -> Result<Vec<f32>> {
        let len = self.len_u64()?;
        let mut out = Vec::with_capacity(len.min(self.remaining() / 4));
        for _ in 0..len {
            out.push(self.f32()?);
        }
        Ok(out)
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Fails unless the payload was consumed exactly — the cheap way for
    /// a codec to notice trailing garbage.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Format`] when bytes remain.
    pub fn expect_empty(&self) -> Result<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(StoreError::format(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7)
            .put_u16(300)
            .put_u32(70_000)
            .put_u64(u64::MAX)
            .put_f32(-0.0)
            .put_f64(f64::MIN_POSITIVE)
            .put_str("héllo")
            .put_f32_slice(&[1.0, f32::NAN]);
        assert!(!w.is_empty());
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.f64().unwrap(), f64::MIN_POSITIVE);
        assert_eq!(r.str().unwrap(), "héllo");
        let vs = r.f32_vec().unwrap();
        assert_eq!(vs[0], 1.0);
        assert!(vs[1].is_nan());
        r.expect_empty().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.put_u64(99);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes[..3]);
        assert!(r.u64().is_err());

        // A huge string length prefix must not over-allocate or panic.
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX).put_bytes(b"abc");
        let bytes = w.finish();
        assert!(ByteReader::new(&bytes).str().is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = ByteWriter::new();
        w.put_u32(1).put_u8(0xEE);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        r.u32().unwrap();
        assert!(r.expect_empty().is_err());
        r.u8().unwrap();
        r.expect_empty().unwrap();
    }
}
