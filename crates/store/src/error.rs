use std::fmt;

/// Error type of the artifact format and the stage cache.
///
/// Cache *probes* never surface these: a malformed or unreadable artifact
/// is treated as a miss by [`StageCache::load`](crate::StageCache::load).
/// The errors exist for the write path and for callers that decode
/// artifacts directly.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// Reading or writing the artifact file failed.
    Io {
        /// What the store was doing when the I/O failed.
        context: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The bytes are not a valid artifact (bad magic, unsupported
    /// version, truncation, or an out-of-range section table).
    Format {
        /// Why the bytes were rejected.
        reason: String,
    },
    /// A section's stored CRC-32 does not match its payload — the
    /// artifact was damaged after it was written.
    Corrupt {
        /// The section kind whose checksum failed.
        kind: u16,
        /// CRC recorded in the section table.
        expected: u32,
        /// CRC of the payload as read.
        actual: u32,
    },
    /// The artifact decoded, but a typed payload inside it did not
    /// (e.g. a network section that does not match the target
    /// architecture).
    Payload {
        /// Why the payload was rejected.
        reason: String,
    },
}

impl StoreError {
    pub(crate) fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        StoreError::Io {
            context: context.into(),
            source,
        }
    }

    pub(crate) fn format(reason: impl Into<String>) -> Self {
        StoreError::Format {
            reason: reason.into(),
        }
    }

    pub(crate) fn payload(reason: impl Into<String>) -> Self {
        StoreError::Payload {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { context, source } => write!(f, "{context}: {source}"),
            StoreError::Format { reason } => write!(f, "malformed artifact: {reason}"),
            StoreError::Corrupt {
                kind,
                expected,
                actual,
            } => write!(
                f,
                "section kind {kind} failed its CRC check \
                 (stored {expected:#010x}, computed {actual:#010x})"
            ),
            StoreError::Payload { reason } => write!(f, "artifact payload rejected: {reason}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StoreError>;
