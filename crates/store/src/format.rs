//! The `QCES` artifact container: magic, format version, a section
//! table, and one CRC-32 per section.
//!
//! Layout (little-endian; full specification in DESIGN.md §5e):
//!
//! ```text
//! offset    size  field
//! 0         4     magic "QCES"
//! 4         2     format version (u16) — currently 1
//! 6         2     section count (u16)
//! 8         16·n  section table, one row per section:
//!                   kind u16 | reserved u16 (zero) | payload_len u64 | crc32 u32
//! 8+16·n    4     header CRC-32, computed over bytes 0..8+16·n
//! 8+16·n+4  …     payloads, concatenated in table order
//! ```
//!
//! The CRC-32 (IEEE 802.3, the same [`qce_attack::ecc::crc32`] that
//! guards LSB payloads) is computed over each payload independently, so
//! a single damaged section is pinpointed without re-reading the rest;
//! the header CRC extends that guarantee to the magic, version, and
//! table bytes, so *any* single-bit flip in an artifact is detected.
//! [`Artifact::from_bytes`] verifies *everything* — magic, version,
//! declared lengths against the actual byte count, and every checksum —
//! before returning, which is what lets the stage cache treat any
//! deserialization error as a miss rather than a risk.

use std::path::Path;

use qce_attack::ecc::crc32;

use crate::{Result, StoreError};

/// The four magic bytes opening every artifact file.
pub const MAGIC: [u8; 4] = *b"QCES";

/// The container format version this crate writes and accepts.
///
/// A reader encountering any other version must treat the artifact as
/// unusable (the stage cache degrades that to a miss); there is no
/// cross-version migration.
pub const FORMAT_VERSION: u16 = 1;

/// Well-known section kind tags.
///
/// Kinds are an open set: the container round-trips any `u16`, and
/// downstream crates may claim tags ≥ [`section_kind::DOWNSTREAM_BASE`]
/// for payloads this crate does not know about (the `qce` flow crate
/// stores its stage reports that way).
pub mod section_kind {
    /// A trained float network: parameters and buffers
    /// ([`crate::persist::network_to_bytes`]).
    pub const NETWORK: u16 = 1;
    /// A quantized network: per-tensor codebooks plus the packed
    /// cluster-index stream ([`crate::persist::quantized_to_bytes`]).
    pub const QUANTIZED_NETWORK: u16 = 2;
    /// A selected-dataset index list
    /// ([`crate::persist::indices_to_bytes`]).
    pub const INDEX_LIST: u16 = 3;
    /// A training history ([`crate::persist::history_to_bytes`]).
    pub const TRAINING_HISTORY: u16 = 4;
    /// First tag reserved for payload types defined outside this crate.
    pub const DOWNSTREAM_BASE: u16 = 0x100;
}

/// One tagged, CRC-guarded payload inside an artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// The section's kind tag (see [`section_kind`]).
    pub kind: u16,
    /// The opaque payload bytes.
    pub payload: Vec<u8>,
}

/// A versioned container of tagged sections — the unit the stage cache
/// reads and writes.
///
/// # Examples
///
/// ```
/// use qce_store::{Artifact, section_kind};
///
/// let mut artifact = Artifact::new();
/// artifact.push(section_kind::INDEX_LIST, vec![1, 2, 3]);
/// let bytes = artifact.to_bytes();
///
/// let back = Artifact::from_bytes(&bytes).unwrap();
/// assert_eq!(back.section(section_kind::INDEX_LIST), Some(&[1u8, 2, 3][..]));
/// assert_eq!(back.section(section_kind::NETWORK), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Artifact {
    sections: Vec<Section>,
}

impl Artifact {
    /// An artifact with no sections.
    #[must_use]
    pub fn new() -> Self {
        Artifact::default()
    }

    /// Appends a section. Order is preserved; duplicate kinds are
    /// allowed (lookup returns the first).
    pub fn push(&mut self, kind: u16, payload: Vec<u8>) -> &mut Self {
        self.sections.push(Section { kind, payload });
        self
    }

    /// The payload of the first section with `kind`, if present.
    #[must_use]
    pub fn section(&self, kind: u16) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|s| s.kind == kind)
            .map(|s| s.payload.as_slice())
    }

    /// Like [`Artifact::section`] but with a descriptive error for
    /// artifacts that should contain the section.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Format`] when no section has `kind`.
    pub fn require(&self, kind: u16) -> Result<&[u8]> {
        self.section(kind)
            .ok_or_else(|| StoreError::format(format!("artifact has no section of kind {kind}")))
    }

    /// All sections, in storage order.
    #[must_use]
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Serializes the artifact: header, section table with per-section
    /// CRC-32, the header CRC-32, then the concatenated payloads.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload_total: usize = self.sections.iter().map(|s| s.payload.len()).sum();
        let mut out = Vec::with_capacity(12 + 16 * self.sections.len() + payload_total);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u16).to_le_bytes());
        for s in &self.sections {
            out.extend_from_slice(&s.kind.to_le_bytes());
            out.extend_from_slice(&0u16.to_le_bytes());
            out.extend_from_slice(&(s.payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(&s.payload).to_le_bytes());
        }
        let header_crc = crc32(&out);
        out.extend_from_slice(&header_crc.to_le_bytes());
        for s in &self.sections {
            out.extend_from_slice(&s.payload);
        }
        out
    }

    /// Parses and *fully verifies* an artifact: magic, format version,
    /// section-table bounds, and the CRC-32 of every payload.
    ///
    /// # Errors
    ///
    /// - [`StoreError::Format`] for anything structurally wrong (bad
    ///   magic, unsupported version, truncation, trailing bytes,
    ///   lengths that overflow).
    /// - [`StoreError::Corrupt`] when a payload fails its checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 8 {
            return Err(StoreError::format("shorter than the fixed header"));
        }
        if bytes[0..4] != MAGIC {
            return Err(StoreError::format("bad magic, not a qce artifact"));
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != FORMAT_VERSION {
            return Err(StoreError::format(format!(
                "unsupported artifact format version {version} (this build reads {FORMAT_VERSION})"
            )));
        }
        let count = u16::from_le_bytes([bytes[6], bytes[7]]) as usize;
        let table_end = 8usize
            .checked_add(count.checked_mul(16).ok_or_else(table_overflow)?)
            .ok_or_else(table_overflow)?;
        let header_end = table_end.checked_add(4).ok_or_else(table_overflow)?;
        if bytes.len() < header_end {
            return Err(StoreError::format(format!(
                "section table truncated: {} declared sections need {} bytes, have {}",
                count,
                header_end,
                bytes.len()
            )));
        }
        let stored_header_crc = u32::from_le_bytes(
            bytes[table_end..header_end]
                .try_into()
                .expect("4-byte slice"),
        );
        let actual_header_crc = crc32(&bytes[..table_end]);
        if stored_header_crc != actual_header_crc {
            return Err(StoreError::format(format!(
                "header CRC mismatch (stored {stored_header_crc:#010x}, \
                 computed {actual_header_crc:#010x})"
            )));
        }
        let mut rows = Vec::with_capacity(count);
        let mut offset = header_end;
        for i in 0..count {
            let row = &bytes[8 + 16 * i..8 + 16 * (i + 1)];
            let kind = u16::from_le_bytes([row[0], row[1]]);
            let len = u64::from_le_bytes(row[4..12].try_into().expect("8-byte slice"));
            let len = usize::try_from(len).map_err(|_| table_overflow())?;
            let crc = u32::from_le_bytes(row[12..16].try_into().expect("4-byte slice"));
            let end = offset.checked_add(len).ok_or_else(table_overflow)?;
            if end > bytes.len() {
                return Err(StoreError::format(format!(
                    "payload {i} truncated: wants bytes {offset}..{end} of {}",
                    bytes.len()
                )));
            }
            rows.push((kind, offset, end, crc));
            offset = end;
        }
        if offset != bytes.len() {
            return Err(StoreError::format(format!(
                "{} trailing bytes after the last payload",
                bytes.len() - offset
            )));
        }
        let mut sections = Vec::with_capacity(count);
        for (kind, start, end, expected) in rows {
            let payload = &bytes[start..end];
            let actual = crc32(payload);
            if actual != expected {
                return Err(StoreError::Corrupt {
                    kind,
                    expected,
                    actual,
                });
            }
            sections.push(Section {
                kind,
                payload: payload.to_vec(),
            });
        }
        Ok(Artifact { sections })
    }
}

impl Artifact {
    /// Reads and fully verifies an artifact file (see
    /// [`Artifact::from_bytes`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file cannot be read, otherwise
    /// whatever [`Artifact::from_bytes`] reports.
    pub fn read_file(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| StoreError::io(format!("reading artifact {}", path.display()), e))?;
        Artifact::from_bytes(&bytes)
    }

    /// Serializes the artifact to `path`, creating parent directories as
    /// needed.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when a directory or the file cannot be
    /// written.
    pub fn write_file(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| {
                    StoreError::io(format!("creating directory {}", parent.display()), e)
                })?;
            }
        }
        std::fs::write(path, self.to_bytes())
            .map_err(|e| StoreError::io(format!("writing artifact {}", path.display()), e))
    }
}

/// The format version a byte buffer *declares*, if it carries the QCES
/// magic — readable even when [`Artifact::from_bytes`] would reject the
/// buffer as an unsupported version. Diagnostic tooling uses this to
/// distinguish "written by a newer build, regenerate it" from "not an
/// artifact at all".
#[must_use]
pub fn peek_version(bytes: &[u8]) -> Option<u16> {
    if bytes.len() >= 6 && bytes[0..4] == MAGIC {
        Some(u16::from_le_bytes([bytes[4], bytes[5]]))
    } else {
        None
    }
}

fn table_overflow() -> StoreError {
    StoreError::format("section table lengths overflow")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Artifact {
        let mut a = Artifact::new();
        a.push(section_kind::NETWORK, vec![1, 2, 3, 4, 5]);
        a.push(section_kind::INDEX_LIST, Vec::new());
        a.push(section_kind::DOWNSTREAM_BASE + 7, vec![0xAA; 100]);
        a
    }

    #[test]
    fn round_trip_preserves_sections_and_order() {
        let a = sample();
        let back = Artifact::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(back, a);
        assert_eq!(back.sections().len(), 3);
        assert_eq!(back.section(section_kind::INDEX_LIST), Some(&[][..]));
        assert!(back.require(section_kind::NETWORK).is_ok());
        assert!(back.require(section_kind::QUANTIZED_NETWORK).is_err());
    }

    #[test]
    fn every_bit_flip_in_a_payload_is_detected() {
        let bytes = sample().to_bytes();
        // Payloads start after the 8-byte header + 3 table rows + header CRC.
        let payload_start = 8 + 16 * 3 + 4;
        for byte in payload_start..bytes.len() {
            for bit in 0..8 {
                let mut damaged = bytes.clone();
                damaged[byte] ^= 1 << bit;
                let err = Artifact::from_bytes(&damaged).unwrap_err();
                assert!(
                    matches!(err, StoreError::Corrupt { .. }),
                    "byte {byte} bit {bit}: {err}"
                );
            }
        }
    }

    #[test]
    fn header_damage_is_a_format_error() {
        let bytes = sample().to_bytes();
        // Magic.
        let mut b = bytes.clone();
        b[0] = b'X';
        assert!(matches!(
            Artifact::from_bytes(&b),
            Err(StoreError::Format { .. })
        ));
        // Version.
        let mut b = bytes.clone();
        b[4] = 0xFF;
        assert!(matches!(
            Artifact::from_bytes(&b),
            Err(StoreError::Format { .. })
        ));
        // Truncations at every prefix length are errors, never panics.
        for len in 0..bytes.len() {
            assert!(Artifact::from_bytes(&bytes[..len]).is_err(), "len {len}");
        }
        // Trailing garbage.
        let mut b = bytes;
        b.push(0);
        assert!(matches!(
            Artifact::from_bytes(&b),
            Err(StoreError::Format { .. })
        ));
    }

    #[test]
    fn absurd_declared_lengths_are_rejected() {
        let mut a = Artifact::new();
        a.push(1, vec![9; 4]);
        let mut bytes = a.to_bytes();
        // Declare a payload length far beyond the file size.
        bytes[8 + 4..8 + 12].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Artifact::from_bytes(&bytes),
            Err(StoreError::Format { .. })
        ));
    }

    #[test]
    fn empty_artifact_round_trips() {
        let a = Artifact::new();
        let bytes = a.to_bytes();
        assert_eq!(bytes.len(), 12);
        assert_eq!(Artifact::from_bytes(&bytes).unwrap(), a);
    }

    #[test]
    fn peek_version_reads_declared_version_even_when_unsupported() {
        let mut bytes = sample().to_bytes();
        assert_eq!(peek_version(&bytes), Some(FORMAT_VERSION));
        // A future format version: from_bytes refuses, peek still reads.
        bytes[4..6].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        let err = Artifact::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        assert_eq!(peek_version(&bytes), Some(FORMAT_VERSION + 1));
        // Not an artifact at all.
        assert_eq!(peek_version(b"png\x89 definitely not"), None);
        assert_eq!(peek_version(b"QCES"), None);
        assert_eq!(peek_version(&[]), None);
    }

    #[test]
    fn file_round_trip_and_io_errors() {
        let dir = std::env::temp_dir().join(format!("qce-format-io-{}", std::process::id()));
        let path = dir.join("nested").join("artifact.qces");
        let a = sample();
        a.write_file(&path).unwrap();
        assert_eq!(Artifact::read_file(&path).unwrap(), a);
        // Damaged on disk: read_file surfaces the verification error.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Artifact::read_file(&path),
            Err(StoreError::Corrupt { .. })
        ));
        // Missing file: a contextual Io error.
        let missing = dir.join("missing.qces");
        let err = Artifact::read_file(&missing).unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }));
        assert!(err.to_string().contains("missing.qces"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn table_damage_is_detected_by_the_header_crc() {
        let bytes = sample().to_bytes();
        // Flip one bit in every header/table byte (magic, version, count,
        // kind tags, reserved fields, lengths, CRCs, header CRC): all must
        // be rejected — payload CRCs alone would miss kind/reserved flips.
        for byte in 0..(8 + 16 * 3 + 4) {
            let mut damaged = bytes.clone();
            damaged[byte] ^= 0x04;
            assert!(Artifact::from_bytes(&damaged).is_err(), "byte {byte}");
        }
    }
}
