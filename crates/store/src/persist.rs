//! Typed section payload codecs for the workspace types the store knows
//! about: trained networks, quantized networks, selected-dataset index
//! lists, and training histories.
//!
//! Each codec produces the *payload bytes* of one section; pair them
//! with the [`section_kind`](crate::section_kind) tags when building an
//! [`Artifact`](crate::Artifact). Types defined above this crate in the
//! dependency graph (`qce`'s stage reports) implement their own codecs
//! with [`codec`](crate::codec) and a downstream kind tag.
//!
//! Everything here is bitwise-lossless: floats are stored as IEEE-754
//! bit patterns, so a payload deserialized on any platform reproduces
//! the exact weights that were serialized — the property the
//! resume-equals-cold-run determinism contract rests on.

use qce_nn::{serialize, Network, TrainingHistory};
use qce_quant::{deploy, QuantizedNetwork};

use crate::codec::{ByteReader, ByteWriter};
use crate::{Result, StoreError};

/// Serializes a network's parameters and buffers.
///
/// The payload wraps the `qce-nn` model format (its own magic and
/// version included), so a network section extracted from an artifact is
/// also a valid standalone model file.
///
/// # Errors
///
/// Returns [`StoreError::Payload`] wrapping any serialization failure.
pub fn network_to_bytes(net: &Network) -> Result<Vec<u8>> {
    let mut bytes = Vec::new();
    serialize::save_network(net, &mut bytes)
        .map_err(|e| StoreError::payload(format!("network serialization failed: {e}")))?;
    Ok(bytes)
}

/// Loads a payload written by [`network_to_bytes`] into an existing
/// network of the same architecture.
///
/// The caller provides the shell (rebuilt from configuration, exactly as
/// the adversary of the threat model does) because the payload stores
/// parameters, not architecture.
///
/// # Errors
///
/// Returns [`StoreError::Payload`] for malformed payloads or an
/// architecture mismatch.
pub fn network_from_bytes(net: &mut Network, bytes: &[u8]) -> Result<()> {
    serialize::load_network(net, bytes)
        .map_err(|e| StoreError::payload(format!("network deserialization failed: {e}")))
}

/// Serializes a quantized network: per-tensor codebooks and the packed
/// cluster-index stream, via the `qce-quant` deployment format.
///
/// # Errors
///
/// Returns [`StoreError::Payload`] wrapping any serialization failure.
pub fn quantized_to_bytes(qnet: &QuantizedNetwork) -> Result<Vec<u8>> {
    let mut bytes = Vec::new();
    deploy::write_deployment(qnet, &mut bytes)
        .map_err(|e| StoreError::payload(format!("quantized serialization failed: {e}")))?;
    Ok(bytes)
}

/// Reads a payload written by [`quantized_to_bytes`] back into a
/// [`QuantizedNetwork`] handle.
///
/// # Errors
///
/// Returns [`StoreError::Payload`] for malformed payloads.
pub fn quantized_from_bytes(bytes: &[u8]) -> Result<QuantizedNetwork> {
    deploy::read_deployment(bytes)
        .map_err(|e| StoreError::payload(format!("quantized deserialization failed: {e}")))
}

/// Serializes a selected-dataset index list (the select stage's output).
#[must_use]
pub fn indices_to_bytes(indices: &[usize]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(indices.len() as u64);
    for &i in indices {
        w.put_u64(i as u64);
    }
    w.finish()
}

/// Reads an index list written by [`indices_to_bytes`].
///
/// # Errors
///
/// Returns [`StoreError::Format`] for truncated or oversized payloads.
pub fn indices_from_bytes(bytes: &[u8]) -> Result<Vec<usize>> {
    let mut r = ByteReader::new(bytes);
    let len = r.len_u64()?;
    let mut out = Vec::with_capacity(len.min(r.remaining() / 8));
    for _ in 0..len {
        out.push(r.len_u64()?);
    }
    r.expect_empty()?;
    Ok(out)
}

/// Serializes a [`TrainingHistory`] (per-epoch losses and penalties plus
/// the rollback count).
#[must_use]
pub fn history_to_bytes(history: &TrainingHistory) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_f32_slice(&history.epoch_losses)
        .put_f32_slice(&history.epoch_penalties)
        .put_u64(history.rollbacks as u64);
    w.finish()
}

/// Reads a payload written by [`history_to_bytes`].
///
/// # Errors
///
/// Returns [`StoreError::Format`] for truncated payloads.
pub fn history_from_bytes(bytes: &[u8]) -> Result<TrainingHistory> {
    let mut r = ByteReader::new(bytes);
    let epoch_losses = r.f32_vec()?;
    let epoch_penalties = r.f32_vec()?;
    let rollbacks = r.len_u64()?;
    r.expect_empty()?;
    Ok(TrainingHistory {
        epoch_losses,
        epoch_penalties,
        rollbacks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qce_nn::models::ResNetLite;
    use qce_nn::Mode;
    use qce_quant::{quantize_network, LinearQuantizer};
    use qce_tensor::init;

    fn net(seed: u64) -> Network {
        ResNetLite::builder()
            .input(1, 8)
            .classes(3)
            .stage_channels(&[4, 8])
            .blocks_per_stage(1)
            .build(seed)
            .unwrap()
    }

    #[test]
    fn network_round_trip_is_bitwise() {
        let mut original = net(1);
        // Touch batch-norm running stats so buffers carry state.
        let x = init::uniform(&[4, 1, 8, 8], 0.0, 1.0, &mut init::seeded_rng(2));
        original.forward(&x, Mode::Train).unwrap();
        let bytes = network_to_bytes(&original).unwrap();
        let mut restored = net(77);
        network_from_bytes(&mut restored, &bytes).unwrap();
        assert_eq!(restored.flat_weights(), original.flat_weights());
        assert_eq!(restored.snapshot().buffers(), original.snapshot().buffers());
    }

    #[test]
    fn network_payload_rejects_architecture_mismatch() {
        let bytes = network_to_bytes(&net(1)).unwrap();
        let mut other = ResNetLite::builder()
            .input(1, 8)
            .classes(3)
            .stage_channels(&[6])
            .blocks_per_stage(1)
            .build(1)
            .unwrap();
        assert!(matches!(
            network_from_bytes(&mut other, &bytes),
            Err(StoreError::Payload { .. })
        ));
    }

    #[test]
    fn quantized_round_trip_preserves_handle() {
        let mut n = net(3);
        let qnet = quantize_network(&mut n, &LinearQuantizer::new(16).unwrap()).unwrap();
        let bytes = quantized_to_bytes(&qnet).unwrap();
        let back = quantized_from_bytes(&bytes).unwrap();
        assert_eq!(back.slots().len(), qnet.slots().len());
        for (a, b) in back.slots().iter().zip(qnet.slots()) {
            assert_eq!(a.assignment, b.assignment);
            assert_eq!(a.codebook.representatives(), b.codebook.representatives());
            assert_eq!(a.codebook.boundaries(), b.codebook.boundaries());
        }
        assert_eq!(back.compression_ratio(), qnet.compression_ratio());
        assert!(quantized_from_bytes(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn indices_and_history_round_trip() {
        let ix = vec![0usize, 7, 42, usize::from(u16::MAX)];
        assert_eq!(indices_from_bytes(&indices_to_bytes(&ix)).unwrap(), ix);
        assert_eq!(indices_from_bytes(&indices_to_bytes(&[])).unwrap(), vec![]);
        assert!(indices_from_bytes(&indices_to_bytes(&ix)[..9]).is_err());

        let h = TrainingHistory {
            epoch_losses: vec![2.5, 1.0, 0.5],
            epoch_penalties: vec![0.0, -0.25],
            rollbacks: 2,
        };
        let back = history_from_bytes(&history_to_bytes(&h)).unwrap();
        assert_eq!(back.epoch_losses, h.epoch_losses);
        assert_eq!(back.epoch_penalties, h.epoch_penalties);
        assert_eq!(back.rollbacks, h.rollbacks);
    }
}
