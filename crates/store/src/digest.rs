//! Deterministic 64-bit content digests for artifacts and tensors.
//!
//! The conformance harness gates "the reproduction still reproduces" on
//! *bit identity* of the released state: a golden report records the
//! digest of the released weights, the selected indices and the target
//! pixels, and any later run whose digests differ has broken the
//! determinism contract even if every aggregate metric still lands
//! inside its tolerance band.
//!
//! The digest is FNV-1a 64 over the little-endian byte image of the
//! input — the same family as [`qce_telemetry::fnv1a`], but over raw
//! bytes instead of UTF-8, and resumable through [`Digester`] so
//! heterogeneous fields can be folded into one value. It is a
//! *fingerprint*, not a cryptographic hash: collisions are possible in
//! principle but irrelevant for regression detection, where the
//! adversary is entropy, not an attacker.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64 digest over heterogeneous fields.
///
/// # Examples
///
/// ```
/// use qce_store::digest::{digest_bytes, Digester};
///
/// let one_shot = digest_bytes(b"abc");
/// let incremental = Digester::new().bytes(b"ab").bytes(b"c").finish();
/// assert_eq!(one_shot, incremental);
/// ```
#[derive(Debug, Clone)]
pub struct Digester {
    hash: u64,
}

impl Digester {
    /// A fresh digest at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Digester { hash: FNV_OFFSET }
    }

    /// Folds raw bytes into the digest.
    #[must_use]
    pub fn bytes(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Folds a `u64` (little-endian) into the digest.
    #[must_use]
    pub fn u64(self, v: u64) -> Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Folds every `f32` *bit pattern* into the digest. Two slices
    /// digest equal iff they are bit-for-bit identical — `-0.0` and
    /// `0.0` differ, and every NaN payload is distinguished, which is
    /// exactly what a determinism gate wants.
    #[must_use]
    pub fn f32s(mut self, values: &[f32]) -> Self {
        for v in values {
            self = self.bytes(&v.to_bits().to_le_bytes());
        }
        self
    }

    /// Folds a `usize` slice (as little-endian `u64`s) into the digest.
    #[must_use]
    pub fn indices(mut self, values: &[usize]) -> Self {
        for &v in values {
            self = self.u64(v as u64);
        }
        self
    }

    /// The accumulated digest.
    #[must_use]
    pub fn finish(self) -> u64 {
        self.hash
    }
}

impl Default for Digester {
    fn default() -> Self {
        Digester::new()
    }
}

/// One-shot digest of a byte slice.
#[must_use]
pub fn digest_bytes(bytes: &[u8]) -> u64 {
    Digester::new().bytes(bytes).finish()
}

/// One-shot digest of an `f32` slice's bit patterns (see
/// [`Digester::f32s`]).
#[must_use]
pub fn digest_f32s(values: &[f32]) -> u64 {
    Digester::new().f32s(values).finish()
}

/// One-shot digest of an index list.
#[must_use]
pub fn digest_indices(values: &[usize]) -> u64 {
    Digester::new().indices(values).finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_and_order_sensitive() {
        assert_eq!(digest_bytes(b"qces"), digest_bytes(b"qces"));
        assert_ne!(digest_bytes(b"ab"), digest_bytes(b"ba"));
        assert_ne!(digest_bytes(b""), digest_bytes(b"\0"));
    }

    #[test]
    fn empty_digest_is_the_offset_basis() {
        assert_eq!(digest_bytes(&[]), FNV_OFFSET);
        assert_eq!(Digester::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn f32_digest_separates_bit_patterns() {
        assert_ne!(digest_f32s(&[0.0]), digest_f32s(&[-0.0]));
        assert_eq!(digest_f32s(&[1.5, -2.25]), digest_f32s(&[1.5, -2.25]));
        assert_ne!(digest_f32s(&[1.5, -2.25]), digest_f32s(&[-2.25, 1.5]));
    }

    #[test]
    fn incremental_matches_one_shot() {
        let a = Digester::new()
            .bytes(b"stage")
            .u64(7)
            .f32s(&[0.5, -0.5])
            .indices(&[3, 1, 4])
            .finish();
        let b = Digester::new()
            .bytes(b"stage")
            .u64(7)
            .f32s(&[0.5])
            .f32s(&[-0.5])
            .indices(&[3])
            .indices(&[1, 4])
            .finish();
        assert_eq!(a, b);
        assert_ne!(a, digest_indices(&[3, 1, 4]));
    }
}
