use qce_attack::correlation::{correlation, SignConvention};
use qce_attack::statsign::{StatSignDecoder, StatSignLayout, StatSignRegularizer};
use qce_attack::{CorrelationRegularizer, DecodedImage, Decoder, EncodingLayout};
use qce_data::{Dataset, Image};
use qce_defense::{DefenseContext, DefensePlan};
use qce_metrics::{mape, ssim};
use qce_nn::{accuracy, Network, NetworkSnapshot, Regularizer, TrainingHistory};
use qce_quant::{
    finetune, quantize_network, FinetuneConfig, KMeansQuantizer, LinearQuantizer, Quantizer,
    TargetCorrelatedQuantizer, WeightedEntropyQuantizer,
};
use qce_store::{persist, section_kind, Artifact, CacheKey, StageCache};
use qce_telemetry::{RunManifest, StageStat};
use qce_tensor::Tensor;
use std::time::Instant;

use crate::faults::FaultPlan;
use crate::step::FlowMachine;
use crate::store_io;
use crate::{
    EncodingChannel, FaultedImage, FaultedReport, FlowConfig, FlowError, ImageReport, QuantConfig,
    QuantMethod, Result, RobustnessPoint, RobustnessReport, StageReport,
};

/// The end-to-end quantized correlation encoding attack flow (Fig. 1 of
/// the paper).
///
/// [`AttackFlow::run`] executes everything in one call; for experiments
/// that evaluate one trained model under several quantizers (Tables I and
/// III sweep bit widths), [`AttackFlow::train`] returns a
/// [`TrainedAttack`] whose float state can be re-quantized repeatedly
/// without retraining.
///
/// # Checkpoint/resume
///
/// With a stage cache attached — explicitly via
/// [`AttackFlow::with_cache`], or via the `QCE_CACHE` environment
/// variable — every completed stage (select, train, quantize, each
/// evaluation) is written to disk as a CRC-guarded
/// [`Artifact`](qce_store::Artifact), and re-runs with the same
/// configuration, seed and dataset load those checkpoints instead of
/// recomputing. Because each stage is deterministic, a resumed run is
/// bit-for-bit identical to a cold one; a corrupted or truncated
/// checkpoint (e.g. from a killed run) is detected by its checksums and
/// silently recomputed.
#[derive(Debug, Clone)]
pub struct AttackFlow {
    config: FlowConfig,
    cache: Option<StageCache>,
}

/// A trained (but not yet released) attack model: the float network, its
/// encoding plan, the held-out validation split, and everything needed to
/// quantize and evaluate it repeatedly.
pub struct TrainedAttack {
    pub(crate) config: FlowConfig,
    pub(crate) network: Network,
    pub(crate) float_state: NetworkSnapshot,
    pub(crate) layout: Option<EncodingLayout>,
    pub(crate) statsign: Option<StatSignLayout>,
    pub(crate) selection_indices: Vec<usize>,
    pub(crate) targets: Vec<Image>,
    pub(crate) target_labels: Vec<usize>,
    pub(crate) training: TrainingHistory,
    pub(crate) train_x: Tensor,
    pub(crate) train_y: Vec<usize>,
    pub(crate) test_x: Tensor,
    pub(crate) test_y: Vec<usize>,
    pub(crate) stage_stats: Vec<StageStat>,
}

impl std::fmt::Debug for TrainedAttack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainedAttack")
            .field("targets", &self.targets.len())
            .field("weights", &self.network.num_weights())
            .finish()
    }
}

/// A quantized release produced by [`TrainedAttack::quantize`].
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedRelease {
    /// Evaluation of the quantized model.
    pub report: StageReport,
    /// Weight-payload compression ratio vs. float32.
    pub compression_ratio: f64,
}

/// Everything a full flow run produces.
#[derive(Debug)]
pub struct FlowOutcome {
    /// The released (possibly quantized) network.
    pub network: Network,
    /// The encoding plan (`None` for benign runs).
    pub layout: Option<EncodingLayout>,
    /// Indices of the encoded images in the *training split*.
    pub selection_indices: Vec<usize>,
    /// The original target images, in encoding order.
    pub targets: Vec<Image>,
    /// Labels of the target images.
    pub target_labels: Vec<usize>,
    /// Evaluation of the float model before quantization.
    pub pre_quant: StageReport,
    /// Evaluation after quantization + fine-tuning (`None` if the config
    /// skipped quantization).
    pub post_quant: Option<StageReport>,
    /// Evaluation after the data holder's countermeasures (`None` if the
    /// config carried no [`DefensePlan`]). When present, `network` is the
    /// *defended* release — the state this report measured.
    pub post_defense: Option<FaultedReport>,
    /// Training history of the main training phase.
    pub training: TrainingHistory,
    /// Weight-payload compression ratio vs. float32 (`None` without
    /// quantization).
    pub compression_ratio: Option<f64>,
    /// Observational run manifest: config hash, seed, thread count and
    /// per-stage wall times / key metrics. Also published to the
    /// telemetry sinks (and, with `QCE_TRACE`, a sibling
    /// `*.manifest.json` file) by [`AttackFlow::run`].
    pub manifest: RunManifest,
}

impl FlowOutcome {
    /// The report for the model that actually gets released: quantized if
    /// quantization ran, float otherwise.
    pub fn final_report(&self) -> &StageReport {
        self.post_quant.as_ref().unwrap_or(&self.pre_quant)
    }

    /// Content digests of the run's released state, in deterministic
    /// order — the exact-match side of conformance gating (see
    /// `qce-harness`). `release.weights` fingerprints the released
    /// network bit-for-bit; `select.indices` and `targets.pixels` pin
    /// the data-selection stage; `training.history` pins the loss
    /// trajectory.
    pub fn artifact_digests(&self) -> Vec<(String, u64)> {
        stage_digests(
            &self.network,
            &self.selection_indices,
            &self.targets,
            &self.training,
        )
    }
}

/// Shared digest derivation for [`FlowOutcome`] and [`TrainedAttack`]:
/// the network is fingerprinted in whatever state the caller holds it
/// (released/quantized for outcomes, current state for trained attacks).
fn stage_digests(
    network: &Network,
    selection_indices: &[usize],
    targets: &[Image],
    training: &TrainingHistory,
) -> Vec<(String, u64)> {
    let mut targets_digest = qce_store::Digester::new();
    for img in targets {
        targets_digest = targets_digest.bytes(img.pixels());
    }
    vec![
        (
            "release.weights".to_string(),
            qce_store::digest_f32s(&network.flat_weights()),
        ),
        (
            "select.indices".to_string(),
            qce_store::digest_indices(selection_indices),
        ),
        ("targets.pixels".to_string(), targets_digest.finish()),
        (
            "training.history".to_string(),
            qce_store::Digester::new()
                .f32s(&training.epoch_losses)
                .f32s(&training.epoch_penalties)
                .u64(training.rollbacks as u64)
                .finish(),
        ),
    ]
}

impl AttackFlow {
    /// Creates a flow with the given configuration.
    pub fn new(config: FlowConfig) -> Self {
        AttackFlow {
            config,
            cache: None,
        }
    }

    /// Attaches a stage cache explicitly, overriding the `QCE_CACHE`
    /// environment variable. Prefer this in tests and library callers —
    /// unlike the env var it is scoped to the one flow instead of the
    /// whole process.
    #[must_use]
    pub fn with_cache(mut self, cache: StageCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The cache this flow will use: the explicit override if set,
    /// otherwise whatever `QCE_CACHE` names, otherwise `None`.
    fn resolve_cache(&self) -> Option<StageCache> {
        self.cache.clone().or_else(StageCache::from_env)
    }

    /// The flow's configuration.
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// Builds the flow as a resumable [`FlowMachine`] over a copy of
    /// `dataset` — the scheduler-facing entry point: the machine can be
    /// queued, moved to a worker thread and advanced one
    /// [`StageStep`](crate::StageStep) at a time, with every completed
    /// step checkpointed through the attached cache. Driving it to
    /// completion is bit-for-bit identical to [`AttackFlow::run`], which
    /// is implemented as exactly that loop.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidConfig`] for configuration or dataset
    /// problems (caught up front, before any stage runs).
    pub fn machine(&self, dataset: &Dataset) -> Result<FlowMachine> {
        FlowMachine::new(self.config.clone(), self.resolve_cache(), dataset.clone())
    }

    /// Runs the full pipeline on `dataset` (training, optional
    /// quantization from the config, evaluation of every released stage).
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] describing the first failing stage.
    pub fn run(&self, dataset: &Dataset) -> Result<FlowOutcome> {
        // Push buffered trace events to disk even when a stage errors
        // out early — aborted runs must leave an analyzable prefix.
        let _flush = qce_telemetry::FlushGuard::new();
        let mut machine = self.machine(dataset)?;
        while !machine.is_done() {
            machine.advance()?;
        }
        machine.into_outcome()
    }

    /// Runs the data-preprocessing and training stages only, returning a
    /// [`TrainedAttack`] that can be evaluated and quantized repeatedly
    /// (the config's own `quant` field is ignored here).
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] describing the first failing stage;
    /// configuration problems are caught up front by
    /// [`FlowConfig::validate`].
    pub fn train(&self, dataset: &Dataset) -> Result<TrainedAttack> {
        let _flush = qce_telemetry::FlushGuard::new();
        let mut machine = self.machine(dataset)?;
        machine.advance()?; // select
        machine.advance()?; // train
        machine.into_trained()
    }
}

impl TrainedAttack {
    /// The network in its current state.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable access to the network (e.g. for applying baseline attacks
    /// or external quantizers to the released weights).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// Consumes the trained attack and returns the network in its current
    /// state.
    pub fn into_network(self) -> Network {
        self.network
    }

    /// The encoding plan (`None` for benign runs).
    pub fn layout(&self) -> Option<&EncodingLayout> {
        self.layout.as_ref()
    }

    /// The statsign channel plan (`None` unless the flow trained with
    /// [`EncodingChannel::StatSign`]). Exposes the payload geometry and
    /// [`StatSignLayout::payload_ber`] for defense/robustness studies.
    pub fn statsign_layout(&self) -> Option<&StatSignLayout> {
        self.statsign.as_ref()
    }

    /// The original target images, in encoding order.
    pub fn targets(&self) -> &[Image] {
        &self.targets
    }

    /// Training history of the main phase.
    pub fn training(&self) -> &TrainingHistory {
        &self.training
    }

    /// Observational per-stage wall times and key metrics accumulated so
    /// far (select/train at construction, one entry per quantization).
    pub fn stage_stats(&self) -> &[StageStat] {
        &self.stage_stats
    }

    /// Content digests of the attack's *current* state (same entries as
    /// [`FlowOutcome::artifact_digests`]): the network in whatever state
    /// it is in right now — float after [`AttackFlow::train`], quantized
    /// after [`TrainedAttack::apply_quantized_state`].
    pub fn artifact_digests(&self) -> Vec<(String, u64)> {
        stage_digests(
            &self.network,
            &self.selection_indices,
            &self.targets,
            &self.training,
        )
    }

    /// Evaluates the float (uncompressed) model.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn float_report(&mut self) -> Result<StageReport> {
        self.restore_float()?;
        self.evaluate("uncompressed".to_string())
    }

    /// Quantizes a *copy* of the float model with `qcfg` (including
    /// fine-tuning per the config) and evaluates it; the float state is
    /// restored afterwards so `quantize` can be called repeatedly with
    /// different settings.
    ///
    /// # Errors
    ///
    /// Propagates quantization, fine-tuning or evaluation errors.
    pub fn quantize(&mut self, qcfg: QuantConfig) -> Result<QuantizedRelease> {
        self.restore_float()?;
        let (ratio, _) = self.quantize_in_place(qcfg)?;
        let label = format!("{:?} {}-bit", qcfg.method, qcfg.bits);
        let report = self.evaluate(label)?;
        self.restore_float()?;
        Ok(QuantizedRelease {
            report,
            compression_ratio: ratio,
        })
    }

    /// Re-applies a quantization and *leaves* the network in that state —
    /// for callers that want to inspect the quantized weights directly
    /// (e.g. to decode Fig. 5 image strips). Returns the compression
    /// ratio. Call [`TrainedAttack::restore_float`] to undo.
    ///
    /// # Errors
    ///
    /// Propagates quantization errors.
    pub fn apply_quantized_state(&mut self, qcfg: QuantConfig) -> Result<f64> {
        self.restore_float()?;
        Ok(self.quantize_in_place(qcfg)?.0)
    }

    /// Restores the network to its float (post-training) state.
    ///
    /// # Errors
    ///
    /// Returns an error only if the snapshot no longer matches (cannot
    /// happen through this type's public API).
    pub fn restore_float(&mut self) -> Result<()> {
        let state = self.float_state.clone();
        self.network.restore(&state)?;
        Ok(())
    }

    fn quantize_in_place(
        &mut self,
        qcfg: QuantConfig,
    ) -> Result<(f64, qce_quant::QuantizedNetwork)> {
        let t_quant = Instant::now();
        let a_quant = alloc_mark();
        let quant_span = qce_telemetry::span!("flow.quantize", bits = qcfg.bits);
        let levels = 1usize << qcfg.bits;
        let quantizer: Box<dyn Quantizer> = match qcfg.method {
            QuantMethod::Linear => Box::new(LinearQuantizer::new(levels)?),
            QuantMethod::KMeans => Box::new(KMeansQuantizer::new(levels)?),
            QuantMethod::WeightedEntropy => Box::new(WeightedEntropyQuantizer::new(levels)?),
            QuantMethod::TargetCorrelated => {
                let stream: Vec<u8> = self
                    .targets
                    .iter()
                    .flat_map(|img| img.pixels().iter().copied())
                    .collect();
                if stream.is_empty() {
                    return Err(FlowError::InvalidConfig {
                        reason: "target-correlated quantization needs an attack run".to_string(),
                    });
                }
                Box::new(TargetCorrelatedQuantizer::new(levels, &stream)?)
            }
        };
        let mut qnet = quantize_network(&mut self.network, quantizer.as_ref())?;
        if qcfg.finetune_epochs > 0 {
            let ft = FinetuneConfig {
                epochs: qcfg.finetune_epochs,
                batch_size: self.config.batch_size,
                lr: qcfg.finetune_lr,
                momentum: 0.9,
                shuffle_seed: self.config.seed.wrapping_add(4),
                verbose: self.config.verbose,
            };
            let mut corr_reg: Option<CorrelationRegularizer> = None;
            let mut stat_reg: Option<StatSignRegularizer> = None;
            if qcfg.regularize_finetune {
                match self.config.channel {
                    EncodingChannel::Correlation => {
                        corr_reg = self
                            .layout
                            .clone()
                            .map(|l| CorrelationRegularizer::new(l, self.config.sign));
                    }
                    EncodingChannel::StatSign { lambda } => {
                        if let Some(l) = &self.statsign {
                            stat_reg = Some(StatSignRegularizer::new(l, lambda)?);
                        }
                    }
                }
            }
            let reg: Option<&mut dyn Regularizer> = match (corr_reg.as_mut(), stat_reg.as_mut()) {
                (Some(r), _) => Some(r),
                (None, Some(r)) => Some(r),
                (None, None) => None,
            };
            finetune(
                &mut self.network,
                &mut qnet,
                &self.train_x,
                &self.train_y,
                &ft,
                reg,
            )?;
        }
        drop(quant_span);
        let mut metrics = qce_telemetry::snapshot().flatten_with_prefix(&["quant."]);
        metrics.push((
            "quant.compression_ratio".to_string(),
            qnet.compression_ratio(),
        ));
        push_alloc_metrics(&mut metrics, a_quant);
        self.stage_stats.push(StageStat {
            name: format!("flow.quantize:{:?} {}-bit", qcfg.method, qcfg.bits),
            wall_ms: t_quant.elapsed().as_secs_f64() * 1e3,
            metrics,
        });
        Ok((qnet.compression_ratio(), qnet))
    }

    /// Evaluates the current network state, going through `cache` when
    /// one is attached. Evaluation reads the network without mutating
    /// it, so a hit skips the whole stage safely.
    pub(crate) fn evaluate_cached(
        &mut self,
        label: String,
        cache: Option<&StageCache>,
        cache_hash: u64,
        level: qce_telemetry::Level,
    ) -> Result<StageReport> {
        let Some(cache) = cache else {
            return self.evaluate(label);
        };
        let key = CacheKey::new(cache_hash, self.config.seed, format!("evaluate:{label}"));
        if let Some(artifact) = cache.load(&key) {
            let decoded = artifact
                .require(store_io::STAGE_REPORT)
                .and_then(store_io::report_from_bytes);
            match decoded {
                Ok(report) if report.label == label => {
                    log_cache_hit(level, &key.stage);
                    return Ok(report);
                }
                Ok(report) => note_payload_corrupt(
                    &key.stage,
                    &format!("label mismatch: stored {:?}", report.label),
                ),
                Err(e) => note_payload_corrupt(&key.stage, &e),
            }
        }
        let report = self.evaluate(label)?;
        let mut artifact = Artifact::new();
        artifact.push(store_io::STAGE_REPORT, store_io::report_to_bytes(&report));
        store_stage(cache, &key, &artifact);
        Ok(report)
    }

    /// Restores the float state and applies `qcfg`, going through
    /// `cache` when one is attached: a hit loads the post-fine-tune
    /// network and the quantized handle instead of re-running
    /// quantization and fine-tuning. Leaves the network in its released
    /// (quantized) state either way and returns the compression ratio.
    pub(crate) fn quantize_cached(
        &mut self,
        qcfg: QuantConfig,
        cache: Option<&StageCache>,
        cache_hash: u64,
        level: qce_telemetry::Level,
    ) -> Result<f64> {
        self.restore_float()?;
        let Some(cache) = cache else {
            return Ok(self.quantize_in_place(qcfg)?.0);
        };
        let key = CacheKey::new(cache_hash, self.config.seed, "quantize");
        if let Some(artifact) = cache.load(&key) {
            match self.load_quantized_state(&artifact) {
                Ok(ratio) => {
                    log_cache_hit(level, &key.stage);
                    self.stage_stats.push(StageStat {
                        name: format!("flow.quantize:{:?} {}-bit", qcfg.method, qcfg.bits),
                        wall_ms: 0.0,
                        metrics: vec![("quant.compression_ratio".to_string(), ratio)],
                    });
                    return Ok(ratio);
                }
                Err(e) => note_payload_corrupt(&key.stage, &e),
            }
        }
        let (ratio, qnet) = self.quantize_in_place(qcfg)?;
        let payloads = persist::network_to_bytes(&self.network)
            .and_then(|nb| persist::quantized_to_bytes(&qnet).map(|qb| (nb, qb)));
        match payloads {
            Ok((net_bytes, qnet_bytes)) => {
                let mut artifact = Artifact::new();
                artifact.push(section_kind::NETWORK, net_bytes);
                artifact.push(section_kind::QUANTIZED_NETWORK, qnet_bytes);
                store_stage(cache, &key, &artifact);
            }
            Err(e) => qce_telemetry::debug!(
                "[flow] skipping quantize checkpoint (serialization failed): {e}"
            ),
        }
        Ok(ratio)
    }

    /// Applies a cached quantize artifact: the network section holds the
    /// released (post-fine-tune) weights and buffers, the quantized
    /// section rebuilds the handle the compression ratio comes from.
    fn load_quantized_state(&mut self, artifact: &Artifact) -> qce_store::Result<f64> {
        let net_bytes = artifact.require(section_kind::NETWORK)?;
        let qnet =
            persist::quantized_from_bytes(artifact.require(section_kind::QUANTIZED_NETWORK)?)?;
        // `network_from_bytes` mutates parameters as it parses; guard
        // with a snapshot so a payload that fails mid-way cannot leave a
        // half-loaded network behind the recompute path.
        let guard = self.network.snapshot();
        if let Err(e) = persist::network_from_bytes(&mut self.network, net_bytes) {
            let _ = self.network.restore(&guard);
            return Err(e);
        }
        Ok(qnet.compression_ratio())
    }

    /// Evaluates a *faulted* release: restores the float state, optionally
    /// quantizes with `qcfg`, applies `plan` to whatever is being released
    /// (the packed index stream for quantized releases, raw weights
    /// otherwise), then measures task accuracy and resilient extraction
    /// quality. The float state is restored before returning.
    ///
    /// # Errors
    ///
    /// Propagates quantization, fault-application or evaluation errors.
    pub fn evaluate_faulted(
        &mut self,
        qcfg: Option<QuantConfig>,
        plan: &FaultPlan,
        label: String,
    ) -> Result<FaultedReport> {
        let result = self.evaluate_faulted_inner(qcfg, plan, label);
        self.restore_float()?;
        result
    }

    /// [`TrainedAttack::evaluate_faulted`] through `cache` when one is
    /// attached. The fault plan and the applied quantizer are *not* part
    /// of the flow configuration, so the key hash extends `cache_hash`
    /// over both — two sweep cells probing different plans (or bit
    /// widths) over the same trained model never collide on a cache
    /// entry. The float state is restored before returning either way.
    ///
    /// # Errors
    ///
    /// Propagates quantization, fault-application or evaluation errors.
    pub fn evaluate_faulted_cached(
        &mut self,
        qcfg: Option<QuantConfig>,
        plan: &FaultPlan,
        label: String,
        cache: Option<&StageCache>,
        cache_hash: u64,
        level: qce_telemetry::Level,
    ) -> Result<FaultedReport> {
        let Some(cache) = cache else {
            return self.evaluate_faulted(qcfg, plan, label);
        };
        let hash = store_io::fault_cache_hash(cache_hash, qcfg, plan);
        let key = CacheKey::new(hash, self.config.seed, "faulted");
        if let Some(artifact) = cache.load(&key) {
            let decoded = artifact
                .require(store_io::FAULTED_REPORT)
                .and_then(store_io::faulted_from_bytes);
            match decoded {
                Ok(report) if report.label == label => {
                    log_cache_hit(level, &key.stage);
                    return Ok(report);
                }
                Ok(report) => note_payload_corrupt(
                    &key.stage,
                    &format!("label mismatch: stored {:?}", report.label),
                ),
                Err(e) => note_payload_corrupt(&key.stage, &e),
            }
        }
        let report = self.evaluate_faulted(qcfg, plan, label)?;
        let mut artifact = Artifact::new();
        artifact.push(
            store_io::FAULTED_REPORT,
            store_io::faulted_to_bytes(&report),
        );
        store_stage(cache, &key, &artifact);
        Ok(report)
    }

    fn evaluate_faulted_inner(
        &mut self,
        qcfg: Option<QuantConfig>,
        plan: &FaultPlan,
        label: String,
    ) -> Result<FaultedReport> {
        self.restore_float()?;
        match qcfg {
            Some(qcfg) => {
                let (_, mut qnet) = self.quantize_in_place(qcfg)?;
                plan.apply_to_quantized(&mut qnet, &mut self.network)?;
            }
            None => plan.apply_to_network(&mut self.network)?,
        }
        self.resilient_report(label)
    }

    /// Resiliently decodes the network's *current* weights through
    /// whichever channel the run encoded (`None` for benign runs).
    fn decode_release_resilient(&self) -> Result<Option<qce_attack::ResilientDecode>> {
        let flat = self.network.flat_weights();
        if let Some(layout) = &self.statsign {
            let decoded = StatSignDecoder::new(layout.clone()).decode_resilient(&flat)?;
            return Ok(Some(decoded));
        }
        if let Some(layout) = &self.layout {
            let decoder = Decoder::new(layout.clone(), self.config.sign);
            return Ok(Some(decoder.decode_resilient(&flat)));
        }
        Ok(None)
    }

    /// Measures the network's current state as a [`FaultedReport`]: task
    /// accuracy plus per-image resilient-decode status and quality.
    fn resilient_report(&mut self, label: String) -> Result<FaultedReport> {
        let acc = accuracy(&mut self.network, &self.test_x, &self.test_y, 64)?;
        let mut images = Vec::new();
        let mut mean_confidence = 0.0;
        if let Some(resilient) = self.decode_release_resilient()? {
            mean_confidence = resilient.mean_confidence();
            for r in &resilient.images {
                let (mape_v, ssim_v) = match &r.image {
                    Some(img) => {
                        let original = &self.targets[r.target_index];
                        (Some(mape(original, img)), Some(ssim(original, img)))
                    }
                    None => (None, None),
                };
                images.push(FaultedImage {
                    target_index: r.target_index,
                    group: r.group,
                    status: r.status.clone(),
                    mape: mape_v,
                    ssim: ssim_v,
                });
            }
        }
        Ok(FaultedReport {
            label,
            accuracy: acc,
            images,
            mean_confidence,
        })
    }

    /// Applies `plan` to the network's *current* (released) state and
    /// evaluates the defended release. Leaves the network defended — this
    /// is the data holder's release path, not a what-if probe; use
    /// [`TrainedAttack::evaluate_defended`] for repeatable sweeps.
    ///
    /// # Errors
    ///
    /// Propagates defense-application or evaluation errors.
    pub fn defend_in_place(&mut self, plan: &DefensePlan, label: String) -> Result<FaultedReport> {
        let t_defend = Instant::now();
        let a_defend = alloc_mark();
        let defend_span = qce_telemetry::span!("flow.defend", seed = plan.seed());
        let ctx = DefenseContext::with_data(&self.train_x, &self.train_y, self.config.batch_size);
        plan.apply(&mut self.network, &ctx)?;
        drop(defend_span);
        let report = self.resilient_report(label)?;
        let mut metrics = qce_telemetry::snapshot().flatten_with_prefix(&["defense.", "decode."]);
        metrics.push(("defense.accuracy".to_string(), f64::from(report.accuracy)));
        metrics.push(("defense.images_ok".to_string(), report.ok_count() as f64));
        metrics.push((
            "defense.images_failed".to_string(),
            report.failed_count() as f64,
        ));
        push_alloc_metrics(&mut metrics, a_defend);
        self.stage_stats.push(StageStat {
            name: format!("flow.defend:{}", report.label),
            wall_ms: t_defend.elapsed().as_secs_f64() * 1e3,
            metrics,
        });
        Ok(report)
    }

    /// Evaluates a *defended* release: restores the float state,
    /// optionally quantizes with `qcfg`, applies `plan` to the would-be
    /// release, and measures task accuracy plus resilient extraction
    /// quality. The float state is restored before returning, so defense
    /// sweeps can reuse one trained model.
    ///
    /// # Errors
    ///
    /// Propagates quantization, defense-application or evaluation errors.
    pub fn evaluate_defended(
        &mut self,
        qcfg: Option<QuantConfig>,
        plan: &DefensePlan,
        label: String,
    ) -> Result<FaultedReport> {
        let result = self.evaluate_defended_inner(qcfg, plan, label);
        self.restore_float()?;
        result
    }

    fn evaluate_defended_inner(
        &mut self,
        qcfg: Option<QuantConfig>,
        plan: &DefensePlan,
        label: String,
    ) -> Result<FaultedReport> {
        self.restore_float()?;
        if let Some(qcfg) = qcfg {
            self.quantize_in_place(qcfg)?;
        }
        self.defend_in_place(plan, label)
    }

    /// Runs the defense stage through the cache when one is attached: a
    /// hit loads the defended network and its report instead of re-running
    /// the countermeasures. Leaves the network defended either way.
    pub(crate) fn defend_cached(
        &mut self,
        plan: &DefensePlan,
        cache: Option<&StageCache>,
        cache_hash: u64,
        level: qce_telemetry::Level,
    ) -> Result<FaultedReport> {
        let label = format!("defended seed {}", plan.seed());
        let Some(cache) = cache else {
            return self.defend_in_place(plan, label);
        };
        let key = CacheKey::new(cache_hash, self.config.seed, "defend");
        if let Some(artifact) = cache.load(&key) {
            match self.load_defended_state(&artifact) {
                Ok(report) if report.label == label => {
                    log_cache_hit(level, &key.stage);
                    self.stage_stats.push(StageStat {
                        name: format!("flow.defend:{label}"),
                        wall_ms: 0.0,
                        metrics: vec![("defense.accuracy".to_string(), f64::from(report.accuracy))],
                    });
                    return Ok(report);
                }
                Ok(report) => note_payload_corrupt(
                    &key.stage,
                    &format!("label mismatch: stored {:?}", report.label),
                ),
                Err(e) => note_payload_corrupt(&key.stage, &e),
            }
        }
        let report = self.defend_in_place(plan, label)?;
        match persist::network_to_bytes(&self.network) {
            Ok(net_bytes) => {
                let mut artifact = Artifact::new();
                artifact.push(section_kind::NETWORK, net_bytes);
                artifact.push(
                    store_io::FAULTED_REPORT,
                    store_io::faulted_to_bytes(&report),
                );
                store_stage(cache, &key, &artifact);
            }
            Err(e) => qce_telemetry::debug!(
                "[flow] skipping defend checkpoint (serialization failed): {e}"
            ),
        }
        Ok(report)
    }

    /// Applies a cached defend artifact: the network section holds the
    /// defended release, the report section its evaluation.
    fn load_defended_state(&mut self, artifact: &Artifact) -> qce_store::Result<FaultedReport> {
        let net_bytes = artifact.require(section_kind::NETWORK)?;
        let report = artifact
            .require(store_io::FAULTED_REPORT)
            .and_then(store_io::faulted_from_bytes)?;
        let guard = self.network.snapshot();
        if let Err(e) = persist::network_from_bytes(&mut self.network, net_bytes) {
            let _ = self.network.restore(&guard);
            return Err(e);
        }
        Ok(report)
    }

    /// Sweeps `plan` over severity factors (each point evaluates
    /// [`TrainedAttack::evaluate_faulted`] on `plan.scaled(severity)`) —
    /// the raw material of the robustness tables. Pass severities in
    /// ascending order if you intend to check monotonicity.
    ///
    /// # Errors
    ///
    /// Propagates the first failing evaluation.
    pub fn robustness_sweep(
        &mut self,
        qcfg: Option<QuantConfig>,
        plan: &FaultPlan,
        severities: &[f32],
    ) -> Result<RobustnessReport> {
        let mut points = Vec::with_capacity(severities.len());
        for &severity in severities {
            let scaled = plan.scaled(severity);
            let rep = self.evaluate_faulted(qcfg, &scaled, format!("severity {severity}"))?;
            points.push(RobustnessPoint {
                severity,
                accuracy: rep.accuracy,
                mean_mape: rep.mean_mape(),
                mean_ssim: rep.mean_ssim(),
                decoded: rep.ok_count(),
                degraded: rep.degraded_count(),
                failed: rep.failed_count(),
                mean_confidence: rep.mean_confidence,
            });
        }
        Ok(RobustnessReport {
            label: format!("plan seed {}", plan.seed()),
            points,
        })
    }

    /// Evaluates the network in its *current* state (float or quantized):
    /// validation accuracy plus, for attack runs, extraction quality.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn evaluate(&mut self, label: String) -> Result<StageReport> {
        let t_eval = Instant::now();
        let a_eval = alloc_mark();
        let _span = qce_telemetry::span!("flow.evaluate", label = label.as_str());
        let acc = accuracy(&mut self.network, &self.test_x, &self.test_y, 64)?;
        let mut images = Vec::new();
        let mut group_correlations = Vec::new();
        let mut decoded: Vec<DecodedImage> = Vec::new();
        let mut geometry = None;

        if let Some(layout) = &self.layout {
            let flat = self.network.flat_weights();
            for g in layout.groups() {
                let rho = if g.target().is_empty() {
                    0.0
                } else {
                    let stream = g.extract(&flat);
                    let n = g.target().len().min(stream.len());
                    correlation(&stream[..n], &g.target()[..n])
                };
                group_correlations.push(rho);
            }

            let decoder = Decoder::new(layout.clone(), self.config.sign);
            for gi in 0..layout.groups().len() {
                match self.config.sign {
                    SignConvention::Positive => {
                        decoded.extend(decoder.decode_group(&flat, gi, false)?);
                    }
                    SignConvention::Absolute => {
                        // Resolve polarity per group by reconstruction error.
                        let straight = decoder.decode_group(&flat, gi, false)?;
                        let flipped = decoder.decode_group(&flat, gi, true)?;
                        let err = |set: &[qce_attack::DecodedImage]| -> f32 {
                            set.iter()
                                .map(|d| mape(&self.targets[d.target_index], &d.image))
                                .sum::<f32>()
                                .max(0.0)
                        };
                        decoded.extend(if err(&straight) <= err(&flipped) {
                            straight
                        } else {
                            flipped
                        });
                    }
                }
            }
            geometry = Some(layout.geometry());
        } else if let Some(layout) = &self.statsign {
            // The hardened channel has no per-group correlation statistic;
            // its strict view is the resilient decode minus the failures.
            let resilient = StatSignDecoder::new(layout.clone())
                .decode_resilient(&self.network.flat_weights())?;
            decoded.extend(resilient.images.into_iter().filter_map(|r| {
                r.image.map(|image| DecodedImage {
                    image,
                    group: r.group,
                    target_index: r.target_index,
                })
            }));
            geometry = Some(layout.geometry());
        }

        // Batch-classify the decoded images with the released model.
        let recognized_flags = match geometry {
            Some((c, h, w)) if !decoded.is_empty() => {
                let mut flags = Vec::with_capacity(decoded.len());
                for chunk in decoded.chunks(64) {
                    let mut data = Vec::with_capacity(chunk.len() * c * h * w);
                    for d in chunk {
                        data.extend(d.image.to_f32_normalized());
                    }
                    let batch = Tensor::from_vec(data, &[chunk.len(), c, h, w])
                        .map_err(|e| FlowError::Nn(qce_nn::NnError::tensor("decode batch", e)))?;
                    let preds = self.network.predict(&batch)?;
                    for (d, p) in chunk.iter().zip(preds) {
                        flags.push(p == self.target_labels[d.target_index]);
                    }
                }
                flags
            }
            _ => Vec::new(),
        };

        for (d, recognized) in decoded.iter().zip(recognized_flags) {
            let original = &self.targets[d.target_index];
            images.push(ImageReport {
                target_index: d.target_index,
                dataset_index: self.selection_indices[d.target_index],
                group: d.group,
                mape: mape(original, &d.image),
                ssim: ssim(original, &d.image),
                recognized,
            });
        }

        let mut metrics = Vec::new();
        metrics.push(("eval.accuracy".to_string(), f64::from(acc)));
        metrics.push(("eval.images".to_string(), images.len() as f64));
        metrics.extend(qce_telemetry::snapshot().flatten_with_prefix(&["decode."]));
        push_alloc_metrics(&mut metrics, a_eval);
        Ok(StageReport {
            label,
            accuracy: acc,
            images,
            group_correlations,
            wall_ms: t_eval.elapsed().as_secs_f64() * 1e3,
            metrics,
        })
    }

    /// Decodes the currently-released weights into images (the raw
    /// adversary view, without evaluation against originals).
    ///
    /// # Errors
    ///
    /// Propagates decoding errors; returns an empty vector for benign
    /// runs.
    pub fn decode_images(&self) -> Result<Vec<qce_attack::DecodedImage>> {
        if self.statsign.is_some() {
            let decoded = self.decode_release_resilient()?.expect("statsign layout");
            return Ok(decoded
                .images
                .into_iter()
                .filter_map(|r| {
                    r.image.map(|image| DecodedImage {
                        image,
                        group: r.group,
                        target_index: r.target_index,
                    })
                })
                .collect());
        }
        let Some(layout) = &self.layout else {
            return Ok(Vec::new());
        };
        let decoder = Decoder::new(layout.clone(), self.config.sign);
        Ok(decoder.decode(&self.network.flat_weights())?)
    }
}

pub(crate) fn log_cache_hit(level: qce_telemetry::Level, stage: &str) {
    qce_telemetry::log_line(level, &format!("[flow] stage cache hit: {stage}"));
}

/// Allocation counters at stage entry, or `None` when `QCE_ALLOC` is
/// off — the stage then pays nothing for byte accounting.
pub(crate) fn alloc_mark() -> Option<qce_telemetry::alloc::AllocStats> {
    qce_telemetry::alloc::tracking_enabled().then(qce_telemetry::alloc::stats)
}

/// Appends the stage's allocation delta (bytes and calls since `mark`)
/// plus the process-wide peak so every stage reports memory next to
/// `wall_ms`. Observational only: `alloc.*` is not a gated counter
/// prefix, so conformance goldens are unaffected.
pub(crate) fn push_alloc_metrics(
    metrics: &mut Vec<(String, f64)>,
    mark: Option<qce_telemetry::alloc::AllocStats>,
) {
    let Some(before) = mark else { return };
    let now = qce_telemetry::alloc::stats();
    metrics.push((
        "alloc.bytes".to_string(),
        now.allocated_bytes.saturating_sub(before.allocated_bytes) as f64,
    ));
    metrics.push((
        "alloc.count".to_string(),
        now.allocations.saturating_sub(before.allocations) as f64,
    ));
    metrics.push(("alloc.peak_bytes".to_string(), now.peak_bytes as f64));
}

/// A checkpoint that passed the container checksums but whose *payload*
/// failed to decode (wrong architecture, truncated inner format, stale
/// semantics). Counted under the same `store.corrupt` metric as
/// container-level damage; the caller recomputes.
pub(crate) fn note_payload_corrupt(stage: &str, err: &dyn std::fmt::Display) {
    qce_telemetry::counter("store.corrupt").incr(1);
    qce_telemetry::debug!("[flow] discarding cache entry for {stage}: {err}");
}

/// Writes a stage checkpoint; failures are logged and swallowed — a
/// read-only or full cache directory must never fail the flow itself.
pub(crate) fn store_stage(cache: &StageCache, key: &CacheKey, artifact: &Artifact) {
    if let Err(e) = cache.store(key, artifact) {
        qce_telemetry::debug!(
            "[flow] stage checkpoint write failed for {}: {e}",
            key.stage
        );
    }
}

/// Decodes a cached selection, rejecting indices outside the training
/// split (possible only if a foreign artifact lands under our key).
pub(crate) fn decode_selection(
    artifact: &Artifact,
    train_len: usize,
    stage: &str,
) -> Option<Vec<usize>> {
    let decoded = artifact
        .require(section_kind::INDEX_LIST)
        .and_then(persist::indices_from_bytes);
    match decoded {
        Ok(indices) if indices.iter().all(|&i| i < train_len) => Some(indices),
        Ok(_) => {
            note_payload_corrupt(stage, &"selection index out of range");
            None
        }
        Err(e) => {
            note_payload_corrupt(stage, &e);
            None
        }
    }
}

/// Loads a cached train checkpoint (float weights + buffers + history)
/// into `net`, snapshot-guarded so a bad payload leaves `net` untouched.
pub(crate) fn load_trained_state(
    net: &mut Network,
    artifact: &Artifact,
) -> qce_store::Result<TrainingHistory> {
    let net_bytes = artifact.require(section_kind::NETWORK)?;
    let history = persist::history_from_bytes(artifact.require(section_kind::TRAINING_HISTORY)?)?;
    let guard = net.snapshot();
    if let Err(e) = persist::network_from_bytes(net, net_bytes) {
        let _ = net.restore(&guard);
        return Err(e);
    }
    Ok(history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BandRule, Grouping};
    use qce_data::SynthCifar;

    fn tiny_data() -> Dataset {
        SynthCifar::new(8).classes(4).generate(160, 5).unwrap()
    }

    #[test]
    fn benign_flow_has_no_extraction() {
        let cfg = FlowConfig {
            grouping: Grouping::Benign,
            quant: None,
            ..FlowConfig::tiny()
        };
        let out = AttackFlow::new(cfg).run(&tiny_data()).unwrap();
        assert!(out.layout.is_none());
        assert!(out.pre_quant.images.is_empty());
        assert!(out.post_quant.is_none());
        assert!(out.compression_ratio.is_none());
        assert!(out.pre_quant.accuracy > 0.0);
    }

    #[test]
    fn uniform_attack_encodes_and_decodes() {
        let cfg = FlowConfig {
            grouping: Grouping::Uniform(5.0),
            band: BandRule::FirstN,
            quant: None,
            epochs: 3,
            ..FlowConfig::tiny()
        };
        let out = AttackFlow::new(cfg).run(&tiny_data()).unwrap();
        let layout = out.layout.as_ref().unwrap();
        assert!(layout.total_encoded_images() > 0);
        assert_eq!(out.pre_quant.images.len(), layout.total_encoded_images());
        assert!(
            out.pre_quant.group_correlations[0] > 0.5,
            "rho = {}",
            out.pre_quant.group_correlations[0]
        );
        assert!(
            out.pre_quant.mean_mape() < 60.0,
            "mape = {}",
            out.pre_quant.mean_mape()
        );
    }

    #[test]
    fn quantized_flow_reports_both_stages() {
        let cfg = FlowConfig {
            grouping: Grouping::Uniform(5.0),
            band: BandRule::FirstN,
            quant: Some(crate::QuantConfig {
                method: QuantMethod::TargetCorrelated,
                bits: 4,
                finetune_epochs: 1,
                finetune_lr: 0.01,
                regularize_finetune: true,
            }),
            epochs: 2,
            ..FlowConfig::tiny()
        };
        let out = AttackFlow::new(cfg).run(&tiny_data()).unwrap();
        let post = out.post_quant.as_ref().unwrap();
        assert!(post.label.contains("TargetCorrelated"));
        assert_eq!(post.images.len(), out.pre_quant.images.len());
        let ratio = out.compression_ratio.unwrap();
        assert!(ratio > 3.0, "ratio {ratio}");
        assert_eq!(out.final_report().label, post.label);
        // The released network really is quantized.
        let slots = out.network.weight_slots();
        let flat = out.network.flat_weights();
        for slot in slots.iter().filter(|s| s.len >= 16) {
            let mut vals: Vec<f32> = flat[slot.offset..slot.offset + slot.len].to_vec();
            vals.sort_by(f32::total_cmp);
            vals.dedup();
            assert!(
                vals.len() <= 16,
                "slot {} has {} values",
                slot.ordinal,
                vals.len()
            );
        }
    }

    #[test]
    fn trained_attack_supports_repeated_quantization() {
        let cfg = FlowConfig {
            grouping: Grouping::Uniform(5.0),
            band: BandRule::FirstN,
            quant: None,
            epochs: 2,
            ..FlowConfig::tiny()
        };
        let data = tiny_data();
        let mut trained = AttackFlow::new(cfg).train(&data).unwrap();
        let float1 = trained.float_report().unwrap();
        let q8 = trained
            .quantize(crate::QuantConfig::new(QuantMethod::Linear, 8))
            .unwrap();
        let q3 = trained
            .quantize(crate::QuantConfig::new(QuantMethod::Linear, 3))
            .unwrap();
        // The float state is untouched by the quantization passes.
        let float2 = trained.float_report().unwrap();
        assert_eq!(float1, float2);
        // Coarser quantization compresses more.
        assert!(q3.compression_ratio > q8.compression_ratio);
    }

    #[test]
    fn flow_is_deterministic() {
        let cfg = FlowConfig {
            grouping: Grouping::Uniform(3.0),
            band: BandRule::FirstN,
            quant: None,
            epochs: 1,
            ..FlowConfig::tiny()
        };
        let data = tiny_data();
        let a = AttackFlow::new(cfg.clone()).run(&data).unwrap();
        let b = AttackFlow::new(cfg).run(&data).unwrap();
        assert_eq!(a.pre_quant.accuracy, b.pre_quant.accuracy);
        assert_eq!(a.pre_quant.mean_mape(), b.pre_quant.mean_mape());
        assert_eq!(a.network.flat_weights(), b.network.flat_weights());
        assert_eq!(a.artifact_digests(), b.artifact_digests());
    }

    #[test]
    fn artifact_digests_pin_the_released_state() {
        let cfg = FlowConfig {
            grouping: Grouping::Uniform(3.0),
            band: BandRule::FirstN,
            quant: None,
            epochs: 1,
            ..FlowConfig::tiny()
        };
        let mut out = AttackFlow::new(cfg).run(&tiny_data()).unwrap();
        let before = out.artifact_digests();
        assert_eq!(before.len(), 4);
        assert_eq!(before[0].0, "release.weights");
        // Any single-weight perturbation moves the release digest and
        // leaves the selection/target digests alone.
        let mut flat = out.network.flat_weights();
        flat[0] += 1.0;
        out.network.set_flat_weights(&flat).unwrap();
        let after = out.artifact_digests();
        assert_ne!(before[0].1, after[0].1);
        assert_eq!(before[1..], after[1..]);
    }

    fn statsign_cfg() -> FlowConfig {
        FlowConfig {
            grouping: Grouping::Uniform(5.0),
            band: BandRule::FirstN,
            channel: EncodingChannel::StatSign { lambda: 3e4 },
            stage_channels: vec![12, 24],
            quant: None,
            epochs: 4,
            ..FlowConfig::tiny()
        }
    }

    #[test]
    fn statsign_flow_encodes_and_decodes() {
        let out = AttackFlow::new(statsign_cfg()).run(&tiny_data()).unwrap();
        assert!(out.layout.is_none());
        assert!(
            !out.pre_quant.images.is_empty(),
            "statsign run decoded no images"
        );
        assert!(out.pre_quant.accuracy > 0.0);
        assert!(
            out.pre_quant.mean_mape() < 20.0,
            "mape = {}",
            out.pre_quant.mean_mape()
        );
    }

    #[test]
    fn statsign_flow_survives_a_rotation_defense() {
        use qce_defense::{DefenseKind, RotationMode};
        let data = tiny_data();
        let mut trained = AttackFlow::new(statsign_cfg()).train(&data).unwrap();
        let plan = DefensePlan::new(11).with(DefenseKind::Rotation {
            mode: RotationMode::Permute,
        });
        let rep = trained
            .evaluate_defended(None, &plan, "rotated".to_string())
            .unwrap();
        assert!(!rep.images.is_empty());
        assert!(
            rep.failed_count() * 2 <= rep.images.len(),
            "rotation broke the hardened channel: {} of {} failed",
            rep.failed_count(),
            rep.images.len()
        );
        assert!(
            rep.mean_mape().unwrap_or(f32::INFINITY) < 20.0,
            "mape = {:?}",
            rep.mean_mape()
        );
    }

    #[test]
    fn defense_stage_is_part_of_the_released_flow() {
        use qce_defense::DefenseKind;
        let cfg = FlowConfig {
            grouping: Grouping::Uniform(5.0),
            band: BandRule::FirstN,
            quant: None,
            epochs: 2,
            defense: Some(DefensePlan::new(3).with(DefenseKind::NoiseWeights { fraction: 0.05 })),
            ..FlowConfig::tiny()
        };
        let data = tiny_data();
        let out = AttackFlow::new(cfg.clone()).run(&data).unwrap();
        let defended = out.post_defense.as_ref().unwrap();
        assert!(defended.label.contains("seed 3"));
        // The released network is the defended one, and the manifest
        // records the defend stage.
        let undefended = AttackFlow::new(FlowConfig {
            defense: None,
            ..cfg
        })
        .run(&data)
        .unwrap();
        assert_ne!(
            out.network.flat_weights(),
            undefended.network.flat_weights()
        );
        assert!(out
            .manifest
            .stages
            .iter()
            .any(|s| s.name.starts_with("flow.defend:")));
    }

    #[test]
    fn rejects_empty_dataset_and_bad_config() {
        let empty = Dataset::new(Vec::new(), Vec::new(), 1).unwrap();
        assert!(AttackFlow::new(FlowConfig::tiny()).run(&empty).is_err());

        let cfg = FlowConfig {
            quant: Some(crate::QuantConfig::new(QuantMethod::TargetCorrelated, 4)),
            grouping: Grouping::Benign,
            ..FlowConfig::tiny()
        };
        // Target-correlated quantization without an attack is impossible.
        assert!(AttackFlow::new(cfg).run(&tiny_data()).is_err());
    }
}
