//! Active defenses a data holder can apply to a model *before* releasing
//! it, without retraining — the constructive follow-up the paper's
//! conclusion calls for.
//!
//! * [`noise_weights`] — add zero-mean Gaussian noise scaled to each
//!   tensor's own standard deviation.
//! * [`requantize`] — re-quantize the released weights with the
//!   defender's *own* k-means codebook (this annihilates LSB payloads
//!   outright and undoes an attacker's target-correlated boundaries).
//!
//! **Measured caveat** (see the `defenses` bench): against the
//! *correlation* attack these countermeasures under-deliver — on an
//! attacked model, noise strong enough to damage the encoding destroys
//! task accuracy first, and defender re-quantization at survivable bit
//! widths leaves most encoded images recognizable. The correlation
//! attack stores its payload at the same "resolution" the task uses, so
//! there is no perturbation budget that separates them. The effective
//! defenses are *detection* ([`audit`](crate::audit), which names the
//! stolen images) and reviewing third-party training code.

use qce_nn::{Network, ParamKind};
use qce_quant::{quantize_network, KMeansQuantizer, QuantizedNetwork};

use crate::{FlowError, Result};

/// Adds zero-mean Gaussian noise to every `Weight`-kind tensor, with the
/// noise standard deviation set to `fraction` of the tensor's own weight
/// standard deviation.
///
/// # Errors
///
/// Returns [`FlowError::InvalidConfig`] for a negative `fraction`.
///
/// # Examples
///
/// ```
/// use qce::defense::noise_weights;
/// use qce_nn::models::ResNetLite;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut net = ResNetLite::builder()
///     .input(1, 8).classes(2).stage_channels(&[4]).blocks_per_stage(1)
///     .build(1)?;
/// let before = net.flat_weights();
/// noise_weights(&mut net, 0.1, 7)?;
/// assert_ne!(net.flat_weights(), before);
/// # Ok(())
/// # }
/// ```
pub fn noise_weights(net: &mut Network, fraction: f32, seed: u64) -> Result<()> {
    if fraction < 0.0 {
        return Err(FlowError::InvalidConfig {
            reason: format!("noise fraction {fraction} must be non-negative"),
        });
    }
    if fraction == 0.0 {
        return Ok(());
    }
    let mut rng = qce_tensor::init::seeded_rng(seed);
    for p in net.params_mut() {
        if p.kind() != ParamKind::Weight {
            continue;
        }
        let std = qce_tensor::stats::std_dev(p.value().as_slice());
        if std <= 0.0 {
            continue;
        }
        let sigma = fraction * std;
        for w in p.value_mut().as_mut_slice() {
            *w += sigma * qce_tensor::init::standard_normal(&mut rng);
        }
    }
    Ok(())
}

/// Re-quantizes the released weights with a defender-chosen k-means
/// codebook at `bits` (levels = `2^bits`), returning the quantization
/// handle (useful for size accounting).
///
/// # Errors
///
/// Returns [`FlowError::InvalidConfig`] for `bits` outside `1..=16`, or
/// propagates quantization errors.
pub fn requantize(net: &mut Network, bits: u32) -> Result<QuantizedNetwork> {
    if bits == 0 || bits > 16 {
        return Err(FlowError::InvalidConfig {
            reason: format!("requantize bits {bits} outside 1..=16"),
        });
    }
    let q = KMeansQuantizer::new(1usize << bits)?;
    Ok(quantize_network(net, &q)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttackFlow, BandRule, FlowConfig, Grouping};
    use qce_data::SynthCifar;
    use qce_metrics::mape;

    fn attacked() -> (crate::TrainedAttack, Vec<qce_data::Image>) {
        let dataset = SynthCifar::new(8).classes(4).generate(160, 81).unwrap();
        let trained = AttackFlow::new(FlowConfig {
            grouping: Grouping::Uniform(8.0),
            band: BandRule::FirstN,
            quant: None,
            ..FlowConfig::tiny()
        })
        .train(&dataset)
        .unwrap();
        let targets = trained.targets().to_vec();
        (trained, targets)
    }

    fn mean_mape(t: &crate::TrainedAttack, targets: &[qce_data::Image]) -> f32 {
        let decoded = t.decode_images().unwrap();
        decoded
            .iter()
            .map(|d| mape(&targets[d.target_index], &d.image))
            .sum::<f32>()
            / decoded.len() as f32
    }

    #[test]
    fn noise_degrades_decoding_monotonically() {
        let (mut trained, targets) = attacked();
        let clean = mean_mape(&trained, &targets);
        noise_weights(trained.network_mut(), 0.2, 1).unwrap();
        let light = mean_mape(&trained, &targets);
        trained.restore_float().unwrap();
        noise_weights(trained.network_mut(), 1.0, 1).unwrap();
        let heavy = mean_mape(&trained, &targets);
        assert!(clean < light, "{clean} !< {light}");
        assert!(light < heavy, "{light} !< {heavy}");
    }

    #[test]
    fn zero_noise_is_identity_and_negative_rejected() {
        let (mut trained, _) = attacked();
        let before = trained.network().flat_weights();
        noise_weights(trained.network_mut(), 0.0, 1).unwrap();
        assert_eq!(trained.network().flat_weights(), before);
        assert!(noise_weights(trained.network_mut(), -0.5, 1).is_err());
    }

    #[test]
    fn requantize_produces_coarse_weights() {
        let (mut trained, targets) = attacked();
        let clean = mean_mape(&trained, &targets);
        let q = requantize(trained.network_mut(), 3).unwrap();
        assert_eq!(q.requested_levels(), 8);
        let after = mean_mape(&trained, &targets);
        // Defender quantization (ignorant of the pixel histogram) hurts
        // the decoding more than it would a benign deployment.
        assert!(after > clean, "{clean} !< {after}");
        assert!(requantize(trained.network_mut(), 0).is_err());
        assert!(requantize(trained.network_mut(), 17).is_err());
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let (mut a, _) = attacked();
        let (mut b, _) = attacked();
        noise_weights(a.network_mut(), 0.1, 9).unwrap();
        noise_weights(b.network_mut(), 0.1, 9).unwrap();
        assert_eq!(a.network().flat_weights(), b.network().flat_weights());
    }
}
