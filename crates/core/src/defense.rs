//! Active defenses a data holder can apply to a model *before* releasing
//! it — the constructive follow-up the paper's conclusion calls for.
//!
//! The countermeasures themselves now live in the [`qce_defense`] crate
//! as composable, seeded [`DefensePlan`]s (rotation/permutation of hidden
//! channels, defensive fine-tuning, magnitude pruning, defender
//! re-quantization, weight noise); this module re-exports them and keeps
//! thin deprecated wrappers for the two original free functions.
//!
//! **Measured picture** (see the tournament conformance suite under
//! `conformance/tournament/` and the `defenses` bench): against the
//! *correlation* attack, noise and defender re-quantization under-deliver
//! — perturbation strong enough to damage the encoding destroys task
//! accuracy first. The *rotation* family is different: a compensated
//! hidden-channel permutation is exactly accuracy-preserving and scrambles
//! the correlation channel's weight order, driving recovery to zero — but
//! the hardened statistics-sign channel
//! ([`qce_attack::statsign`]) survives it by construction. The arms race
//! is measured, not asserted: the tournament goldens pin per-cell recovery
//! for every (attack variant × defense × bit width) combination, and
//! *detection* ([`audit`](crate::audit)) plus reviewing third-party
//! training code remain the defenses that do not trade accuracy at all.

use qce_nn::Network;
use qce_quant::{quantize_network, KMeansQuantizer, QuantizedNetwork};

use crate::{FlowError, Result};

pub use qce_defense::{
    Defense, DefenseContext, DefenseError, DefenseKind, DefensePlan, RotationMode,
};

/// Adds zero-mean Gaussian noise to every `Weight`-kind tensor, with the
/// noise standard deviation set to `fraction` of the tensor's own weight
/// standard deviation.
///
/// # Errors
///
/// Returns [`FlowError::InvalidConfig`] for a negative `fraction`.
///
/// # Examples
///
/// ```
/// # #![allow(deprecated)]
/// use qce::defense::noise_weights;
/// use qce_nn::models::ResNetLite;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut net = ResNetLite::builder()
///     .input(1, 8).classes(2).stage_channels(&[4]).blocks_per_stage(1)
///     .build(1)?;
/// let before = net.flat_weights();
/// noise_weights(&mut net, 0.1, 7)?;
/// assert_ne!(net.flat_weights(), before);
/// # Ok(())
/// # }
/// ```
#[deprecated(
    since = "0.1.0",
    note = "use qce_defense::DefensePlan::new(seed).with(DefenseKind::NoiseWeights { fraction })"
)]
pub fn noise_weights(net: &mut Network, fraction: f32, seed: u64) -> Result<()> {
    if fraction < 0.0 {
        return Err(FlowError::InvalidConfig {
            reason: format!("noise fraction {fraction} must be non-negative"),
        });
    }
    DefensePlan::new(seed)
        .with(DefenseKind::NoiseWeights { fraction })
        .apply(net, &DefenseContext::empty())?;
    Ok(())
}

/// Re-quantizes the released weights with a defender-chosen k-means
/// codebook at `bits` (levels = `2^bits`), returning the quantization
/// handle (useful for size accounting).
///
/// # Errors
///
/// Returns [`FlowError::InvalidConfig`] for `bits` outside `1..=16`, or
/// propagates quantization errors.
#[deprecated(
    since = "0.1.0",
    note = "use qce_defense::DefenseKind::Requantize { bits } in a DefensePlan \
            (this wrapper additionally returns the quantization handle)"
)]
pub fn requantize(net: &mut Network, bits: u32) -> Result<QuantizedNetwork> {
    if bits == 0 || bits > 16 {
        return Err(FlowError::InvalidConfig {
            reason: format!("requantize bits {bits} outside 1..=16"),
        });
    }
    let q = KMeansQuantizer::new(1usize << bits)?;
    Ok(quantize_network(net, &q)?)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::{AttackFlow, BandRule, FlowConfig, Grouping};
    use qce_data::SynthCifar;
    use qce_metrics::mape;

    fn attacked() -> (crate::TrainedAttack, Vec<qce_data::Image>) {
        let dataset = SynthCifar::new(8).classes(4).generate(160, 81).unwrap();
        let trained = AttackFlow::new(FlowConfig {
            grouping: Grouping::Uniform(8.0),
            band: BandRule::FirstN,
            quant: None,
            ..FlowConfig::tiny()
        })
        .train(&dataset)
        .unwrap();
        let targets = trained.targets().to_vec();
        (trained, targets)
    }

    fn mean_mape(t: &crate::TrainedAttack, targets: &[qce_data::Image]) -> f32 {
        let decoded = t.decode_images().unwrap();
        decoded
            .iter()
            .map(|d| mape(&targets[d.target_index], &d.image))
            .sum::<f32>()
            / decoded.len() as f32
    }

    #[test]
    fn noise_degrades_decoding_monotonically() {
        let (mut trained, targets) = attacked();
        let clean = mean_mape(&trained, &targets);
        noise_weights(trained.network_mut(), 0.2, 1).unwrap();
        let light = mean_mape(&trained, &targets);
        trained.restore_float().unwrap();
        noise_weights(trained.network_mut(), 1.0, 1).unwrap();
        let heavy = mean_mape(&trained, &targets);
        assert!(clean < light, "{clean} !< {light}");
        assert!(light < heavy, "{light} !< {heavy}");
    }

    #[test]
    fn zero_noise_is_identity_and_negative_rejected() {
        let (mut trained, _) = attacked();
        let before = trained.network().flat_weights();
        noise_weights(trained.network_mut(), 0.0, 1).unwrap();
        assert_eq!(trained.network().flat_weights(), before);
        assert!(noise_weights(trained.network_mut(), -0.5, 1).is_err());
    }

    #[test]
    fn requantize_produces_coarse_weights() {
        let (mut trained, targets) = attacked();
        let clean = mean_mape(&trained, &targets);
        let q = requantize(trained.network_mut(), 3).unwrap();
        assert_eq!(q.requested_levels(), 8);
        let after = mean_mape(&trained, &targets);
        // Defender quantization (ignorant of the pixel histogram) hurts
        // the decoding more than it would a benign deployment.
        assert!(after > clean, "{clean} !< {after}");
        assert!(requantize(trained.network_mut(), 0).is_err());
        assert!(requantize(trained.network_mut(), 17).is_err());
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let (mut a, _) = attacked();
        let (mut b, _) = attacked();
        noise_weights(a.network_mut(), 0.1, 9).unwrap();
        noise_weights(b.network_mut(), 0.1, 9).unwrap();
        assert_eq!(a.network().flat_weights(), b.network().flat_weights());
    }

    #[test]
    fn wrapper_matches_the_plan_path() {
        // The deprecated free function and the DefensePlan route must be
        // bit-identical: same seed, same draws, same weights.
        let (mut a, _) = attacked();
        let (mut b, _) = attacked();
        noise_weights(a.network_mut(), 0.1, 9).unwrap();
        DefensePlan::new(9)
            .with(DefenseKind::NoiseWeights { fraction: 0.1 })
            .apply(b.network_mut(), &DefenseContext::empty())
            .unwrap();
        assert_eq!(a.network().flat_weights(), b.network().flat_weights());
    }
}
