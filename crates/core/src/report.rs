use serde::{Deserialize, Serialize};

/// Reconstruction quality of one extracted image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImageReport {
    /// Index into the attack's target image list.
    pub target_index: usize,
    /// Index of the original image in the training dataset.
    pub dataset_index: usize,
    /// Layer group the image was decoded from.
    pub group: usize,
    /// Mean absolute pixel error vs. the original.
    pub mape: f32,
    /// Structural similarity vs. the original.
    pub ssim: f32,
    /// Whether the released model classifies the *decoded* image to the
    /// original's label — the paper's "recognizable by the model itself"
    /// criterion.
    pub recognized: bool,
}

/// Evaluation of one released model (uncompressed or quantized).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageReport {
    /// Human-readable stage label (e.g. `"weq 4-bit"`).
    pub label: String,
    /// Top-1 accuracy on the held-out validation split.
    pub accuracy: f32,
    /// Per-extracted-image quality.
    pub images: Vec<ImageReport>,
    /// Pearson correlation per layer group at release time.
    pub group_correlations: Vec<f32>,
}

impl StageReport {
    /// Mean MAPE over the extracted images (`NaN`-free; 0 when none).
    pub fn mean_mape(&self) -> f32 {
        if self.images.is_empty() {
            return 0.0;
        }
        self.images.iter().map(|i| i.mape).sum::<f32>() / self.images.len() as f32
    }

    /// Mean SSIM over the extracted images (0 when none).
    pub fn mean_ssim(&self) -> f32 {
        if self.images.is_empty() {
            return 0.0;
        }
        self.images.iter().map(|i| i.ssim).sum::<f32>() / self.images.len() as f32
    }

    /// Number of extracted images the model itself recognizes.
    pub fn recognized_count(&self) -> usize {
        self.images.iter().filter(|i| i.recognized).count()
    }

    /// Recognized images as a fraction of everything encoded (0 when
    /// nothing was encoded).
    pub fn recognized_fraction(&self) -> f32 {
        if self.images.is_empty() {
            return 0.0;
        }
        self.recognized_count() as f32 / self.images.len() as f32
    }

    /// Number of images with MAPE strictly below `threshold` (Table IV
    /// uses 20).
    pub fn count_mape_below(&self, threshold: f32) -> usize {
        self.images.iter().filter(|i| i.mape < threshold).count()
    }

    /// Number of images with MAPE above `threshold` — the paper's "badly
    /// encoded" count (Table II uses 20).
    pub fn count_mape_above(&self, threshold: f32) -> usize {
        self.images.iter().filter(|i| i.mape > threshold).count()
    }

    /// Number of images with SSIM strictly above `threshold` (Table IV
    /// uses 0.5).
    pub fn count_ssim_above(&self, threshold: f32) -> usize {
        self.images.iter().filter(|i| i.ssim > threshold).count()
    }

    /// Per-group `(bad, total)` counts at the MAPE threshold — the rows of
    /// Table II.
    pub fn bad_by_group(&self, threshold: f32, groups: usize) -> Vec<(usize, usize)> {
        let mut out = vec![(0usize, 0usize); groups];
        for img in &self.images {
            if img.group < groups {
                out[img.group].1 += 1;
                if img.mape > threshold {
                    out[img.group].0 += 1;
                }
            }
        }
        out
    }

    /// The header matching [`StageReport::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "label,accuracy,encoded,mean_mape,mean_ssim,recognized,mape_below_20,ssim_above_0_5"
    }

    /// One CSV row summarizing this stage — for piping sweep results into
    /// external analysis tools. Commas in the label are replaced with
    /// semicolons to keep the row well-formed.
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{:.6},{},{:.4},{:.6},{},{},{}",
            self.label.replace(',', ";"),
            self.accuracy,
            self.images.len(),
            self.mean_mape(),
            self.mean_ssim(),
            self.recognized_count(),
            self.count_mape_below(20.0),
            self.count_ssim_above(0.5),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> StageReport {
        StageReport {
            label: "test".to_string(),
            accuracy: 0.9,
            images: vec![
                ImageReport {
                    target_index: 0,
                    dataset_index: 5,
                    group: 0,
                    mape: 10.0,
                    ssim: 0.8,
                    recognized: true,
                },
                ImageReport {
                    target_index: 1,
                    dataset_index: 9,
                    group: 2,
                    mape: 30.0,
                    ssim: 0.3,
                    recognized: false,
                },
            ],
            group_correlations: vec![0.0, 0.0, 0.9],
        }
    }

    #[test]
    fn aggregate_statistics() {
        let r = report();
        assert_eq!(r.mean_mape(), 20.0);
        assert!((r.mean_ssim() - 0.55).abs() < 1e-6);
        assert_eq!(r.recognized_count(), 1);
        assert_eq!(r.recognized_fraction(), 0.5);
        assert_eq!(r.count_mape_below(20.0), 1);
        assert_eq!(r.count_mape_above(20.0), 1);
        assert_eq!(r.count_ssim_above(0.5), 1);
    }

    #[test]
    fn per_group_bad_counts() {
        let r = report();
        let by_group = r.bad_by_group(20.0, 3);
        assert_eq!(by_group[0], (0, 1));
        assert_eq!(by_group[1], (0, 0));
        assert_eq!(by_group[2], (1, 1));
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let r = report();
        let header_cols = StageReport::csv_header().split(',').count();
        let row = r.to_csv_row();
        assert_eq!(row.split(',').count(), header_cols);
        assert!(row.starts_with("test,0.9"));
    }

    #[test]
    fn csv_row_escapes_commas_in_label() {
        let mut r = report();
        r.label = "weq, 4-bit".to_string();
        assert!(r.to_csv_row().starts_with("weq; 4-bit,"));
    }

    #[test]
    fn empty_report_is_zero() {
        let r = StageReport {
            label: String::new(),
            accuracy: 0.0,
            images: Vec::new(),
            group_correlations: Vec::new(),
        };
        assert_eq!(r.mean_mape(), 0.0);
        assert_eq!(r.mean_ssim(), 0.0);
        assert_eq!(r.recognized_fraction(), 0.0);
    }
}
