use serde::{Deserialize, Serialize};

use qce_attack::ImageStatus;

/// Reconstruction quality of one extracted image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImageReport {
    /// Index into the attack's target image list.
    pub target_index: usize,
    /// Index of the original image in the training dataset.
    pub dataset_index: usize,
    /// Layer group the image was decoded from.
    pub group: usize,
    /// Mean absolute pixel error vs. the original.
    pub mape: f32,
    /// Structural similarity vs. the original.
    pub ssim: f32,
    /// Whether the released model classifies the *decoded* image to the
    /// original's label — the paper's "recognizable by the model itself"
    /// criterion.
    pub recognized: bool,
}

/// Evaluation of one released model (uncompressed or quantized).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageReport {
    /// Human-readable stage label (e.g. `"weq 4-bit"`).
    pub label: String,
    /// Top-1 accuracy on the held-out validation split.
    pub accuracy: f32,
    /// Per-extracted-image quality.
    pub images: Vec<ImageReport>,
    /// Pearson correlation per layer group at release time.
    pub group_correlations: Vec<f32>,
    /// Wall time of the evaluation stage in milliseconds (observational;
    /// excluded from equality).
    pub wall_ms: f64,
    /// Snapshot of the relevant telemetry metrics at the end of the stage,
    /// as deterministic `(name, value)` pairs (observational; excluded
    /// from equality).
    pub metrics: Vec<(String, f64)>,
}

/// Equality covers the *result* of a stage — label, accuracy, images and
/// correlations — and deliberately ignores the observational `wall_ms`
/// and `metrics` fields: two bit-identical runs must compare equal even
/// though their wall-clock timings differ.
impl PartialEq for StageReport {
    fn eq(&self, other: &Self) -> bool {
        self.label == other.label
            && self.accuracy == other.accuracy
            && self.images == other.images
            && self.group_correlations == other.group_correlations
    }
}

impl StageReport {
    /// Mean MAPE over the extracted images (`NaN`-free; 0 when none).
    pub fn mean_mape(&self) -> f32 {
        if self.images.is_empty() {
            return 0.0;
        }
        self.images.iter().map(|i| i.mape).sum::<f32>() / self.images.len() as f32
    }

    /// Mean SSIM over the extracted images (0 when none).
    pub fn mean_ssim(&self) -> f32 {
        if self.images.is_empty() {
            return 0.0;
        }
        self.images.iter().map(|i| i.ssim).sum::<f32>() / self.images.len() as f32
    }

    /// Number of extracted images the model itself recognizes.
    pub fn recognized_count(&self) -> usize {
        self.images.iter().filter(|i| i.recognized).count()
    }

    /// Recognized images as a fraction of everything encoded (0 when
    /// nothing was encoded).
    pub fn recognized_fraction(&self) -> f32 {
        if self.images.is_empty() {
            return 0.0;
        }
        self.recognized_count() as f32 / self.images.len() as f32
    }

    /// Number of images with MAPE strictly below `threshold` (Table IV
    /// uses 20).
    pub fn count_mape_below(&self, threshold: f32) -> usize {
        self.images.iter().filter(|i| i.mape < threshold).count()
    }

    /// Number of images with MAPE above `threshold` — the paper's "badly
    /// encoded" count (Table II uses 20).
    pub fn count_mape_above(&self, threshold: f32) -> usize {
        self.images.iter().filter(|i| i.mape > threshold).count()
    }

    /// Number of images with SSIM strictly above `threshold` (Table IV
    /// uses 0.5).
    pub fn count_ssim_above(&self, threshold: f32) -> usize {
        self.images.iter().filter(|i| i.ssim > threshold).count()
    }

    /// Per-group `(bad, total)` counts at the MAPE threshold — the rows of
    /// Table II.
    pub fn bad_by_group(&self, threshold: f32, groups: usize) -> Vec<(usize, usize)> {
        let mut out = vec![(0usize, 0usize); groups];
        for img in &self.images {
            if img.group < groups {
                out[img.group].1 += 1;
                if img.mape > threshold {
                    out[img.group].0 += 1;
                }
            }
        }
        out
    }

    /// The header matching [`StageReport::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "label,accuracy,encoded,mean_mape,mean_ssim,recognized,mape_below_20,ssim_above_0_5"
    }

    /// One CSV row summarizing this stage — for piping sweep results into
    /// external analysis tools. Commas in the label are replaced with
    /// semicolons to keep the row well-formed.
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{:.6},{},{:.4},{:.6},{},{},{}",
            self.label.replace(',', ";"),
            self.accuracy,
            self.images.len(),
            self.mean_mape(),
            self.mean_ssim(),
            self.recognized_count(),
            self.count_mape_below(20.0),
            self.count_ssim_above(0.5),
        )
    }
}

/// Quality of one extraction attempt from a *faulted* release.
///
/// Unlike [`ImageReport`], quality metrics are optional: a chunk the
/// resilient decoder marked [`ImageStatus::Failed`] has no image to score.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultedImage {
    /// Index into the attack's target image list.
    pub target_index: usize,
    /// Layer group the image was decoded from.
    pub group: usize,
    /// The resilient decoder's verdict for this chunk.
    pub status: ImageStatus,
    /// Mean absolute pixel error vs. the original (decoded chunks only).
    pub mape: Option<f32>,
    /// Structural similarity vs. the original (decoded chunks only).
    pub ssim: Option<f32>,
}

/// Evaluation of one faulted release: task accuracy plus resilient-decode
/// quality with per-image status.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultedReport {
    /// Human-readable label (e.g. `"bitflip 0.1%"`).
    pub label: String,
    /// Top-1 accuracy of the faulted model on the held-out split.
    pub accuracy: f32,
    /// Per-chunk extraction outcome.
    pub images: Vec<FaultedImage>,
    /// Mean decoder confidence (histogram agreement) across groups.
    pub mean_confidence: f32,
}

impl FaultedReport {
    /// Chunks decoded without any repair.
    pub fn ok_count(&self) -> usize {
        self.images
            .iter()
            .filter(|i| matches!(i.status, ImageStatus::Ok))
            .count()
    }

    /// Chunks decoded after carrier repair.
    pub fn degraded_count(&self) -> usize {
        self.images
            .iter()
            .filter(|i| matches!(i.status, ImageStatus::Degraded { .. }))
            .count()
    }

    /// Chunks the decoder gave up on.
    pub fn failed_count(&self) -> usize {
        self.images
            .iter()
            .filter(|i| matches!(i.status, ImageStatus::Failed { .. }))
            .count()
    }

    /// Images actually *recovered*: decoded (`Ok` or `Degraded`) **and**
    /// faithful to the target (MAPE at or below `mape_ceiling`).
    ///
    /// Decode status alone over-counts under structural defenses: a
    /// correlation decode of permuted weights still reads out "images",
    /// just with scrambled pixels. The MAPE gate is what makes recovery
    /// numbers comparable across attack variants in the tournament.
    pub fn recovered_count(&self, mape_ceiling: f32) -> usize {
        self.images
            .iter()
            .filter(|i| {
                !matches!(i.status, ImageStatus::Failed { .. })
                    && i.mape.is_some_and(|m| m <= mape_ceiling)
            })
            .count()
    }

    /// Mean MAPE over decoded chunks (`None` when nothing decoded).
    pub fn mean_mape(&self) -> Option<f32> {
        mean_of(self.images.iter().filter_map(|i| i.mape))
    }

    /// Mean SSIM over decoded chunks (`None` when nothing decoded).
    pub fn mean_ssim(&self) -> Option<f32> {
        mean_of(self.images.iter().filter_map(|i| i.ssim))
    }
}

fn mean_of(values: impl Iterator<Item = f32>) -> Option<f32> {
    let (sum, n) = values.fold((0.0f32, 0usize), |(s, n), v| (s + v, n + 1));
    (n > 0).then(|| sum / n as f32)
}

/// One severity step of a robustness sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RobustnessPoint {
    /// The severity factor the base [`FaultPlan`](crate::FaultPlan) was
    /// scaled by.
    pub severity: f32,
    /// Task accuracy of the faulted release.
    pub accuracy: f32,
    /// Mean MAPE over decoded chunks (`None` when decoding failed
    /// entirely).
    pub mean_mape: Option<f32>,
    /// Mean SSIM over decoded chunks.
    pub mean_ssim: Option<f32>,
    /// Chunks decoded without repair.
    pub decoded: usize,
    /// Chunks decoded after repair.
    pub degraded: usize,
    /// Chunks the decoder gave up on.
    pub failed: usize,
    /// Mean decoder confidence.
    pub mean_confidence: f32,
}

/// Fault severity vs. extraction quality — the robustness analogue of the
/// paper's quantization sweeps: instead of "how few bits survive the
/// attack", it answers "how much release perturbation does".
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RobustnessReport {
    /// Label of the base fault plan that was swept.
    pub label: String,
    /// One point per severity, in ascending severity order.
    pub points: Vec<RobustnessPoint>,
}

impl RobustnessReport {
    /// The header matching [`RobustnessReport::to_csv`] rows.
    pub fn csv_header() -> &'static str {
        "label,severity,accuracy,mean_mape,mean_ssim,decoded,degraded,failed,mean_confidence"
    }

    /// All points as CSV rows (no header). Missing means render empty.
    pub fn to_csv(&self) -> String {
        let fmt_opt = |v: Option<f32>| v.map(|v| format!("{v:.4}")).unwrap_or_default();
        self.points
            .iter()
            .map(|p| {
                format!(
                    "{},{},{:.6},{},{},{},{},{},{:.4}",
                    self.label.replace(',', ";"),
                    p.severity,
                    p.accuracy,
                    fmt_opt(p.mean_mape),
                    fmt_opt(p.mean_ssim),
                    p.decoded,
                    p.degraded,
                    p.failed,
                    p.mean_confidence,
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Whether MAPE never *improves* by more than `tolerance` as severity
    /// rises (chunks that stop decoding count as degradation).
    pub fn mape_monotone(&self, tolerance: f32) -> bool {
        self.points.windows(2).all(|w| {
            match (w[0].mean_mape, w[1].mean_mape) {
                (Some(a), Some(b)) => b >= a - tolerance,
                // Losing all decodable chunks is degradation, not a dip.
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => true,
            }
        })
    }

    /// Whether SSIM never *improves* by more than `tolerance` as severity
    /// rises.
    pub fn ssim_monotone(&self, tolerance: f32) -> bool {
        self.points
            .windows(2)
            .all(|w| match (w[0].mean_ssim, w[1].mean_ssim) {
                (Some(a), Some(b)) => b <= a + tolerance,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => true,
            })
    }

    /// A compact human-readable table of the sweep.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "{:<10} {:>8} {:>10} {:>10} {:>5} {:>5} {:>5} {:>6}\n",
            "severity", "acc", "mape", "ssim", "ok", "deg", "fail", "conf"
        );
        for p in &self.points {
            let mape = p.mean_mape.map(|v| format!("{v:.1}")).unwrap_or("-".into());
            let ssim = p.mean_ssim.map(|v| format!("{v:.3}")).unwrap_or("-".into());
            out.push_str(&format!(
                "{:<10} {:>8.3} {:>10} {:>10} {:>5} {:>5} {:>5} {:>6.3}\n",
                p.severity,
                p.accuracy,
                mape,
                ssim,
                p.decoded,
                p.degraded,
                p.failed,
                p.mean_confidence,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> StageReport {
        StageReport {
            label: "test".to_string(),
            accuracy: 0.9,
            images: vec![
                ImageReport {
                    target_index: 0,
                    dataset_index: 5,
                    group: 0,
                    mape: 10.0,
                    ssim: 0.8,
                    recognized: true,
                },
                ImageReport {
                    target_index: 1,
                    dataset_index: 9,
                    group: 2,
                    mape: 30.0,
                    ssim: 0.3,
                    recognized: false,
                },
            ],
            group_correlations: vec![0.0, 0.0, 0.9],
            wall_ms: 0.0,
            metrics: Vec::new(),
        }
    }

    #[test]
    fn aggregate_statistics() {
        let r = report();
        assert_eq!(r.mean_mape(), 20.0);
        assert!((r.mean_ssim() - 0.55).abs() < 1e-6);
        assert_eq!(r.recognized_count(), 1);
        assert_eq!(r.recognized_fraction(), 0.5);
        assert_eq!(r.count_mape_below(20.0), 1);
        assert_eq!(r.count_mape_above(20.0), 1);
        assert_eq!(r.count_ssim_above(0.5), 1);
    }

    #[test]
    fn equality_ignores_observational_fields() {
        let a = report();
        let mut b = report();
        b.wall_ms = 99.0;
        b.metrics = vec![("train.loss".to_string(), 0.5)];
        assert_eq!(a, b);
        b.accuracy = 0.1;
        assert_ne!(a, b);
    }

    #[test]
    fn per_group_bad_counts() {
        let r = report();
        let by_group = r.bad_by_group(20.0, 3);
        assert_eq!(by_group[0], (0, 1));
        assert_eq!(by_group[1], (0, 0));
        assert_eq!(by_group[2], (1, 1));
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let r = report();
        let header_cols = StageReport::csv_header().split(',').count();
        let row = r.to_csv_row();
        assert_eq!(row.split(',').count(), header_cols);
        assert!(row.starts_with("test,0.9"));
    }

    #[test]
    fn csv_row_escapes_commas_in_label() {
        let mut r = report();
        r.label = "weq, 4-bit".to_string();
        assert!(r.to_csv_row().starts_with("weq; 4-bit,"));
    }

    fn point(severity: f32, mape: Option<f32>, ssim: Option<f32>) -> RobustnessPoint {
        RobustnessPoint {
            severity,
            accuracy: 0.5,
            mean_mape: mape,
            mean_ssim: ssim,
            decoded: 1,
            degraded: 1,
            failed: 1,
            mean_confidence: 0.9,
        }
    }

    #[test]
    fn faulted_report_counts_and_means() {
        let r = FaultedReport {
            label: "f".to_string(),
            accuracy: 0.4,
            images: vec![
                FaultedImage {
                    target_index: 0,
                    group: 2,
                    status: ImageStatus::Ok,
                    mape: Some(10.0),
                    ssim: Some(0.9),
                },
                FaultedImage {
                    target_index: 1,
                    group: 2,
                    status: ImageStatus::Degraded { repaired_pixels: 3 },
                    mape: Some(30.0),
                    ssim: Some(0.5),
                },
                FaultedImage {
                    target_index: 2,
                    group: 2,
                    status: ImageStatus::Failed {
                        reason: "gone".to_string(),
                    },
                    mape: None,
                    ssim: None,
                },
            ],
            mean_confidence: 0.8,
        };
        assert_eq!(r.ok_count(), 1);
        assert_eq!(r.degraded_count(), 1);
        assert_eq!(r.failed_count(), 1);
        assert_eq!(r.mean_mape(), Some(20.0));
        assert!((r.mean_ssim().unwrap() - 0.7).abs() < 1e-6);
    }

    #[test]
    fn empty_faulted_report_has_no_means() {
        let r = FaultedReport {
            label: String::new(),
            accuracy: 0.0,
            images: Vec::new(),
            mean_confidence: 0.0,
        };
        assert_eq!(r.mean_mape(), None);
        assert_eq!(r.mean_ssim(), None);
    }

    #[test]
    fn robustness_monotonicity_checks() {
        let rising = RobustnessReport {
            label: "r".to_string(),
            points: vec![
                point(0.0, Some(1.0), Some(0.99)),
                point(1.0, Some(5.0), Some(0.80)),
                point(2.0, Some(40.0), Some(0.20)),
                point(4.0, None, None),
            ],
        };
        assert!(rising.mape_monotone(0.5));
        assert!(rising.ssim_monotone(0.05));
        let dipping = RobustnessReport {
            label: "d".to_string(),
            points: vec![
                point(0.0, Some(30.0), Some(0.2)),
                point(1.0, Some(5.0), Some(0.9)),
            ],
        };
        assert!(!dipping.mape_monotone(0.5));
        assert!(!dipping.ssim_monotone(0.05));
        // Chunks reappearing after total failure is non-monotone too.
        let resurrect = RobustnessReport {
            label: "z".to_string(),
            points: vec![point(0.0, None, None), point(1.0, Some(5.0), Some(0.9))],
        };
        assert!(!resurrect.mape_monotone(0.5));
    }

    #[test]
    fn robustness_csv_matches_header_arity() {
        let r = RobustnessReport {
            label: "sweep, base".to_string(),
            points: vec![point(0.0, Some(1.0), Some(0.9)), point(2.0, None, None)],
        };
        let cols = RobustnessReport::csv_header().split(',').count();
        for row in r.to_csv().lines() {
            assert_eq!(row.split(',').count(), cols, "row {row}");
            assert!(row.starts_with("sweep; base,"));
        }
        assert!(!r.summary().is_empty());
    }

    #[test]
    fn empty_report_is_zero() {
        let r = StageReport {
            label: String::new(),
            accuracy: 0.0,
            images: Vec::new(),
            group_correlations: Vec::new(),
            wall_ms: 0.0,
            metrics: Vec::new(),
        };
        assert_eq!(r.mean_mape(), 0.0);
        assert_eq!(r.mean_ssim(), 0.0);
        assert_eq!(r.recognized_fraction(), 0.0);
    }
}
