//! Defender-side auditing: distribution-level heuristics that flag
//! correlation-encoded weight tensors in a released model.
//!
//! The correlation attack reshapes late-layer weight distributions toward
//! the pixel distribution of the encoded images (Fig. 2a of the paper) —
//! flat, wide and often multi-modal, instead of the bell-shaped,
//! near-zero-mean distributions benign SGD training produces. The
//! [`audit_network`] heuristic scores each weight tensor on two
//! distribution statistics:
//!
//! * **Excess kurtosis** — benign conv weights are roughly Gaussian
//!   (excess ≈ 0) to heavy-tailed (positive); pixel-like weights are
//!   platykurtic (strongly negative).
//! * **Uniform-distance** — symmetric KL between the tensor's histogram
//!   and a uniform histogram over its range; pixel-like weights sit much
//!   closer to uniform than Gaussians do.
//!
//! These are heuristics, not proofs: a motivated adversary can trade
//! capacity for stealth. The `defense_audit` example shows the scores
//! separating a benign model from an attacked one.

use qce_metrics::distribution::symmetric_kl;
use qce_nn::{Network, ParamKind};
use qce_tensor::stats::{self, Histogram};

/// Distribution statistics of one weight tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorAudit {
    /// Ordinal of the weight tensor (forward order).
    pub ordinal: usize,
    /// Number of weights.
    pub len: usize,
    /// Excess kurtosis of the weight values (0 for a Gaussian).
    pub excess_kurtosis: f32,
    /// Symmetric KL divergence from a uniform distribution over the
    /// tensor's own range (small = suspiciously pixel-like).
    pub uniform_divergence: f64,
    /// Combined suspicion score in `[0, 1]` (higher = more likely to
    /// carry encoded data).
    pub suspicion: f32,
}

/// Result of auditing a whole network.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// Per-tensor statistics, in forward order.
    pub tensors: Vec<TensorAudit>,
}

impl AuditReport {
    /// Tensors whose suspicion exceeds `threshold` (0.5 is a reasonable
    /// default; see the `defense_audit` example for calibration).
    pub fn flagged(&self, threshold: f32) -> Vec<&TensorAudit> {
        self.tensors
            .iter()
            .filter(|t| t.suspicion > threshold)
            .collect()
    }

    /// The maximum suspicion over all tensors (0 for an empty model).
    pub fn max_suspicion(&self) -> f32 {
        self.tensors.iter().map(|t| t.suspicion).fold(0.0, f32::max)
    }

    /// Weight-count-weighted mean suspicion.
    pub fn mean_suspicion(&self) -> f32 {
        let total: usize = self.tensors.iter().map(|t| t.len).sum();
        if total == 0 {
            return 0.0;
        }
        self.tensors
            .iter()
            .map(|t| t.suspicion * t.len as f32)
            .sum::<f32>()
            / total as f32
    }
}

/// Excess kurtosis of a sample (0 for a Gaussian; negative for flat,
/// pixel-like distributions).
pub fn excess_kurtosis(values: &[f32]) -> f32 {
    if values.len() < 4 {
        return 0.0;
    }
    let mean = stats::mean(values);
    let var = stats::variance(values);
    if var <= 0.0 {
        return 0.0;
    }
    let m4: f64 = values
        .iter()
        .map(|&x| ((x - mean) as f64).powi(4))
        .sum::<f64>()
        / values.len() as f64;
    (m4 / (var as f64 * var as f64) - 3.0) as f32
}

fn uniform_divergence(values: &[f32]) -> f64 {
    const BINS: usize = 32;
    let Some((lo, hi)) = stats::min_max(values) else {
        return 0.0;
    };
    if lo >= hi {
        return 0.0;
    }
    let h = Histogram::from_values(values, BINS, lo, hi);
    let uniform = vec![1.0 / BINS as f64; BINS];
    symmetric_kl(&h.probabilities(), &uniform)
}

/// Scores one weight tensor; see the module docs for the statistics.
pub fn audit_tensor(ordinal: usize, values: &[f32]) -> TensorAudit {
    let kurt = excess_kurtosis(values);
    let udiv = uniform_divergence(values);
    // Benign Gaussian-ish tensors: kurtosis >= ~0, uniform divergence
    // >= ~1.2 nats once trained. Pixel-like tensors: kurtosis near -1.2
    // (uniform) and divergence well under 1. Map both onto [0, 1],
    // average, then discount by an evidence weight: both statistics are
    // noisy on small tensors (a 64-weight classifier head can land at
    // kurtosis -1.2 by chance), so suspicion is shrunk toward zero as
    // `len / (len + 128)`.
    let kurt_score = ((-kurt) / 1.2).clamp(0.0, 1.0);
    let udiv_score = (1.0 - (udiv / 1.2)).clamp(0.0, 1.0) as f32;
    let evidence = values.len() as f32 / (values.len() as f32 + 128.0);
    TensorAudit {
        ordinal,
        len: values.len(),
        excess_kurtosis: kurt,
        uniform_divergence: udiv,
        suspicion: evidence * 0.5 * (kurt_score + udiv_score),
    }
}

/// One dataset image detected inside a released model's weights.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectedImage {
    /// Index of the matched image in the dataset.
    pub dataset_index: usize,
    /// Offset (in the flat weight vector) of the best-matching window.
    pub weight_offset: usize,
    /// Absolute Pearson correlation between the window and the image's
    /// pixel stream.
    pub correlation: f32,
}

const SIGNATURE_DIMS: usize = 32;

/// Unit-norm coarse signature of a value stream: means of
/// [`SIGNATURE_DIMS`] consecutive segments of the centered stream.
/// Affine-related streams have near-identical signatures, so signature
/// dot products prefilter full-correlation checks.
fn signature(values: &[f32]) -> Option<[f32; SIGNATURE_DIMS]> {
    if values.len() < SIGNATURE_DIMS {
        return None;
    }
    let mean = stats::mean(values);
    let mut sig = [0.0f32; SIGNATURE_DIMS];
    let seg = values.len() / SIGNATURE_DIMS;
    for (i, s) in sig.iter_mut().enumerate() {
        let chunk = &values[i * seg..(i + 1) * seg];
        *s = stats::mean(chunk) - mean;
    }
    let norm = sig.iter().map(|&x| (x * x) as f64).sum::<f64>().sqrt() as f32;
    if norm <= 1e-12 {
        return None;
    }
    for s in &mut sig {
        *s /= norm;
    }
    Some(sig)
}

fn pearson_abs(centered_a: &[f32], norm_a: f32, centered_b: &[f32], norm_b: f32) -> f32 {
    if norm_a <= 1e-12 || norm_b <= 1e-12 {
        return 0.0;
    }
    let dot: f64 = centered_a
        .iter()
        .zip(centered_b.iter())
        .map(|(&a, &b)| (a as f64) * (b as f64))
        .sum();
    (dot / (norm_a as f64 * norm_b as f64)).abs() as f32
}

/// Data-aware detection: scans the released weights for windows that
/// correlate with *specific dataset images* — answering the question a
/// data holder actually has: *which of my images were stolen?*
///
/// The correlation attack packs images contiguously starting at some
/// weight-tensor boundary, so candidate windows are enumerated at every
/// slot offset plus integer multiples of the image size. Each window is
/// prefiltered against every image by a 32-dimensional coarse signature
/// (segment means — affine-invariant like the correlation itself) and
/// only promising pairs pay for a full Pearson check; images whose best
/// match exceeds `threshold` are reported, best first.
///
/// Cost is `O(slots × weights / pixels × images)` signature dot products
/// — sub-second at this workspace's scales; run it as an offline audit.
///
/// # Examples
///
/// See the `defense_audit` example and the `pipeline` integration tests.
pub fn detect_encoded_images(
    net: &Network,
    dataset: &qce_data::Dataset,
    threshold: f32,
) -> Vec<DetectedImage> {
    let flat = net.flat_weights();
    if dataset.is_empty() {
        return Vec::new();
    }
    let image_pixels = dataset.image(0).num_pixels();
    if image_pixels < SIGNATURE_DIMS || flat.len() < image_pixels {
        return Vec::new();
    }
    // Precompute per-image centered streams, norms and signatures.
    struct ImageRef {
        centered: Vec<f32>,
        norm: f32,
        sig: [f32; SIGNATURE_DIMS],
    }
    let images: Vec<Option<ImageRef>> = dataset
        .images()
        .iter()
        .map(|img| {
            let p = img.to_f32();
            let sig = signature(&p)?;
            let mean = stats::mean(&p);
            let centered: Vec<f32> = p.iter().map(|&x| x - mean).collect();
            let norm = centered.iter().map(|&x| (x * x) as f64).sum::<f64>().sqrt() as f32;
            Some(ImageRef {
                centered,
                norm,
                sig,
            })
        })
        .collect();

    // Candidate window starts: every slot offset + k * image_pixels.
    let mut starts: Vec<usize> = Vec::new();
    for slot in net.weight_slots() {
        let mut c = slot.offset;
        while c + image_pixels <= flat.len() {
            starts.push(c);
            c += image_pixels;
        }
    }
    starts.sort_unstable();
    starts.dedup();

    // The signature of a true affine match is nearly identical, but noise
    // and quantization blur it; accept candidates well below the final
    // threshold and verify with the exact correlation.
    let prefilter = (threshold - 0.35).max(0.3);
    let mut best: Vec<Option<DetectedImage>> = vec![None; dataset.len()];
    for &offset in &starts {
        let window = &flat[offset..offset + image_pixels];
        let Some(w_sig) = signature(window) else {
            continue;
        };
        let mut centered: Option<(Vec<f32>, f32)> = None;
        for (idx, image) in images.iter().enumerate() {
            let Some(image) = image else { continue };
            let sig_dot: f32 = w_sig
                .iter()
                .zip(image.sig.iter())
                .map(|(&a, &b)| a * b)
                .sum();
            if sig_dot.abs() < prefilter {
                continue;
            }
            let (w_centered, w_norm) = centered.get_or_insert_with(|| {
                let mean = stats::mean(window);
                let c: Vec<f32> = window.iter().map(|&x| x - mean).collect();
                let n = c.iter().map(|&x| (x * x) as f64).sum::<f64>().sqrt() as f32;
                (c, n)
            });
            let rho = pearson_abs(w_centered, *w_norm, &image.centered, image.norm);
            if rho > threshold && best[idx].as_ref().is_none_or(|d| rho > d.correlation) {
                best[idx] = Some(DetectedImage {
                    dataset_index: idx,
                    weight_offset: offset,
                    correlation: rho,
                });
            }
        }
    }
    let mut out: Vec<DetectedImage> = best.into_iter().flatten().collect();
    out.sort_by(|a, b| b.correlation.total_cmp(&a.correlation));
    out
}

/// Audits every `Weight`-kind tensor of a released model.
///
/// # Examples
///
/// ```
/// use qce::audit::audit_network;
/// use qce_nn::models::ResNetLite;
///
/// # fn main() -> Result<(), qce_nn::NnError> {
/// let net = ResNetLite::builder()
///     .input(1, 8).classes(2).stage_channels(&[4]).blocks_per_stage(1)
///     .build(1)?;
/// let report = audit_network(&net);
/// // A freshly initialized model should not look encoded.
/// assert!(report.mean_suspicion() < 0.75);
/// # Ok(())
/// # }
/// ```
pub fn audit_network(net: &Network) -> AuditReport {
    let mut tensors = Vec::new();
    let mut ordinal = 0usize;
    for p in net.params() {
        if p.kind() == ParamKind::Weight {
            tensors.push(audit_tensor(ordinal, p.value().as_slice()));
            ordinal += 1;
        }
    }
    AuditReport { tensors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = qce_tensor::init::seeded_rng(seed);
        (0..n)
            .map(|_| qce_tensor::init::standard_normal(&mut rng) * 0.1)
            .collect()
    }

    fn pixel_like(n: usize, seed: u64) -> Vec<f32> {
        // Mimic encoded weights: affine image of near-uniform pixels.
        use rand::RngExt;
        let mut rng = qce_tensor::init::seeded_rng(seed);
        (0..n)
            .map(|_| 0.002 * rng.random_range(0.0f32..255.0) - 0.25)
            .collect()
    }

    #[test]
    fn kurtosis_reference_values() {
        let g = gaussian(50_000, 1);
        assert!(excess_kurtosis(&g).abs() < 0.1);
        let u = pixel_like(50_000, 2);
        assert!(excess_kurtosis(&u) < -1.0, "{}", excess_kurtosis(&u));
        assert_eq!(excess_kurtosis(&[1.0, 1.0, 1.0, 1.0]), 0.0);
        assert_eq!(excess_kurtosis(&[1.0]), 0.0);
    }

    #[test]
    fn pixel_like_tensors_score_higher() {
        let benign = audit_tensor(0, &gaussian(20_000, 3));
        let attacked = audit_tensor(1, &pixel_like(20_000, 4));
        assert!(
            attacked.suspicion > benign.suspicion + 0.3,
            "benign {} vs attacked {}",
            benign.suspicion,
            attacked.suspicion
        );
        assert!(attacked.suspicion > 0.7);
        assert!(benign.suspicion < 0.5);
    }

    #[test]
    fn report_aggregation() {
        let report = AuditReport {
            tensors: vec![
                audit_tensor(0, &gaussian(5_000, 5)),
                audit_tensor(1, &pixel_like(5_000, 6)),
            ],
        };
        assert_eq!(report.flagged(0.6).len(), 1);
        assert!(report.max_suspicion() > 0.6);
        assert!(report.mean_suspicion() > 0.0);
    }

    #[test]
    fn empty_report() {
        let r = AuditReport {
            tensors: Vec::new(),
        };
        assert_eq!(r.max_suspicion(), 0.0);
        assert_eq!(r.mean_suspicion(), 0.0);
        assert!(r.flagged(0.0).is_empty());
    }

    #[test]
    fn detection_finds_planted_images_and_ignores_benign_models() {
        use qce_data::SynthCifar;
        use qce_nn::models::ResNetLite;
        let dataset = SynthCifar::new(8).classes(4).generate(60, 71).unwrap();
        let mut net = ResNetLite::builder()
            .input(3, 8)
            .classes(4)
            .stage_channels(&[8, 16])
            .blocks_per_stage(1)
            .build(72)
            .unwrap();

        // Benign model: nothing above a strict threshold.
        let clean = detect_encoded_images(&net, &dataset, 0.8);
        assert!(clean.is_empty(), "false positives: {clean:?}");

        // Plant images 3 and 7 as affine weight windows where the real
        // attack would put them: consecutive chunks from a weight-tensor
        // boundary.
        let mut flat = net.flat_weights();
        let group_start = net.weight_slots()[1].offset;
        for (chunk, &img_idx) in [3usize, 7].iter().enumerate() {
            let pixels = dataset.image(img_idx).to_f32();
            let start = group_start + chunk * pixels.len();
            for (i, &p) in pixels.iter().enumerate() {
                flat[start + i] = 0.001 * p - 0.13;
            }
        }
        net.set_flat_weights(&flat).unwrap();
        let found = detect_encoded_images(&net, &dataset, 0.8);
        let indices: Vec<usize> = found.iter().map(|d| d.dataset_index).collect();
        assert!(indices.contains(&3), "missed image 3: {indices:?}");
        assert!(indices.contains(&7), "missed image 7: {indices:?}");
        // The planted matches are near-perfect and sorted first.
        assert!(found[0].correlation > 0.95);
    }

    #[test]
    fn detection_handles_degenerate_inputs() {
        use qce_nn::models::ResNetLite;
        let net = ResNetLite::builder()
            .input(1, 8)
            .classes(2)
            .stage_channels(&[4])
            .blocks_per_stage(1)
            .build(1)
            .unwrap();
        let empty = qce_data::Dataset::new(Vec::new(), Vec::new(), 1).unwrap();
        assert!(detect_encoded_images(&net, &empty, 0.5).is_empty());
    }
}
