use qce_attack::correlation::SignConvention;
use qce_defense::DefensePlan;
use serde::{Deserialize, Serialize};

/// Which model family the flow trains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Architecture {
    /// Residual CNN (the paper's ResNet-34 stand-in) — the default.
    #[default]
    ResNetLite,
    /// Plain VGG-style CNN without skip connections, for checking that
    /// the attack does not depend on residual structure.
    ConvNet,
}

/// How the malicious regularizer distributes correlation rates over the
/// network (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Grouping {
    /// No attack at all — the benign training baseline.
    Benign,
    /// One uniform rate over every weight tensor: the original CCS'17
    /// correlated value encoding attack (Eq. 1).
    Uniform(f32),
    /// The paper's three layer groups (early / mid / late weight tensors)
    /// with rates `[λ_1, λ_2, λ_3]`; the evaluation uses `[0, 0, λ]`.
    LayerWise([f32; 3]),
}

impl Grouping {
    /// Whether this grouping actually encodes data.
    pub fn is_attack(&self) -> bool {
        match *self {
            Grouping::Benign => false,
            Grouping::Uniform(l) => l > 0.0,
            Grouping::LayerWise(ls) => ls.iter().any(|&l| l > 0.0),
        }
    }
}

/// How the correlation penalty's strength evolves over training.
///
/// The schedule is a swept axis of the trade-off surface: warm-up trades
/// early-epoch accuracy recovery against slower payload convergence,
/// while a constant rate encodes harder from the first step at a larger
/// accuracy cost (the original CCS'17 setup).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum LambdaSchedule {
    /// Linear ramp: the effective rate at epoch `e` of `E` is
    /// `λ·(e+1)/E`, reaching full strength on the last epoch — the
    /// default, matching the repo's historical behavior.
    #[default]
    Warmup,
    /// Full λ from epoch 0.
    Constant,
}

/// Which weight-encoding channel the attack trains into the model.
///
/// The channel decides *how* target pixels become weights; the
/// [`Grouping`] still decides whether an attack runs at all and (for the
/// correlation channel) how rates spread over the layer groups.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum EncodingChannel {
    /// The paper's correlated value encoding: weights are an affine image
    /// of the target pixel stream, addressed by weight position. Highest
    /// capacity, but a symmetry defense (channel permutation) scrambles
    /// it for free.
    #[default]
    Correlation,
    /// The hardened sign/magnitude-statistics channel
    /// ([`qce_attack::statsign`]): payload bits ride signs of weight-group
    /// means with per-row index headers and an ECC budget, surviving the
    /// compensated permutations of `qce-defense` at a steep capacity
    /// cost.
    StatSign {
        /// Penalty strength of the carrier pull (plays the role the
        /// grouping's λ plays for the correlation channel).
        lambda: f32,
    },
}

/// How encoding targets are chosen from the training set (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BandRule {
    /// The paper's rule: a band of the given width starting at
    /// `floor(std_mean)` of the dataset.
    Auto {
        /// Band width `d`.
        width: f32,
    },
    /// An explicit `[min, max)` pixel-std band (the CIFAR evaluation
    /// fixes `[50, 55)`).
    Explicit {
        /// Inclusive lower edge.
        min: f32,
        /// Exclusive upper edge.
        max: f32,
    },
    /// No pre-processing: encode the first images of the training set —
    /// the original-attack baseline.
    FirstN,
}

/// Which quantizer compresses the released model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuantMethod {
    /// Equal-width clusters (deep-compression linear init).
    Linear,
    /// 1-D k-means clusters.
    KMeans,
    /// Weighted-entropy quantization (Park et al.) — the defense baseline.
    WeightedEntropy,
    /// The paper's target-correlated quantization (Algorithm 1).
    TargetCorrelated,
}

/// Quantization stage configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantConfig {
    /// Boundary-selection method.
    pub method: QuantMethod,
    /// Bit width (levels = `2^bits`).
    pub bits: u32,
    /// Fine-tuning epochs after quantization (0 disables).
    pub finetune_epochs: usize,
    /// Fine-tuning learning rate.
    pub finetune_lr: f32,
    /// Keep the malicious regularizer active during fine-tuning (the
    /// adversary authors the whole algorithm, so the default is `true`).
    pub regularize_finetune: bool,
}

impl QuantConfig {
    /// A sensible default for `method` at `bits` (2 fine-tune epochs).
    pub fn new(method: QuantMethod, bits: u32) -> Self {
        QuantConfig {
            method,
            bits,
            finetune_epochs: 2,
            finetune_lr: 0.01,
            regularize_finetune: true,
        }
    }
}

/// Full configuration of the end-to-end flow.
///
/// Build one with the presets ([`FlowConfig::small`],
/// [`FlowConfig::paper`]) and adjust fields, or construct it literally.
///
/// # Examples
///
/// ```
/// use qce::{FlowConfig, Grouping, QuantConfig, QuantMethod};
///
/// let config = FlowConfig {
///     grouping: Grouping::LayerWise([0.0, 0.0, 5.0]),
///     quant: Some(QuantConfig::new(QuantMethod::TargetCorrelated, 4)),
///     ..FlowConfig::small()
/// };
/// assert!(config.grouping.is_attack());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowConfig {
    /// Master seed; every stochastic stage derives from it.
    pub seed: u64,
    /// Model family.
    pub arch: Architecture,
    /// Residual-stage channel widths of the model.
    pub stage_channels: Vec<usize>,
    /// Residual blocks per stage.
    pub blocks_per_stage: usize,
    /// Fraction of the dataset used for training (rest is the validation
    /// split the data holder checks accuracy on).
    pub train_fraction: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Base learning rate.
    pub lr: f32,
    /// Correlation-rate layout.
    pub grouping: Grouping,
    /// Internal multiplier applied to every correlation rate.
    ///
    /// The paper trains for tens of thousands of SGD steps on GPU-scale
    /// data; this CPU reproduction runs two to three orders of magnitude
    /// fewer. Because the per-weight correlation gradient shrinks as
    /// `1/ℓ`, the same `λ` values need proportionally fewer steps *or* a
    /// constant gradient boost to reach the same correlation. This scale
    /// keeps the paper's `λ ∈ {3, 5, 10}` labels (and their relative
    /// trade-off) meaningful at the reduced step count. See DESIGN.md.
    pub lambda_scale: f32,
    /// Epoch schedule of the correlation penalty strength.
    pub lambda_schedule: LambdaSchedule,
    /// Target-selection rule.
    pub band: BandRule,
    /// Sign convention of the correlation term.
    #[serde(skip, default)]
    pub sign: SignConvention,
    /// Which encoding channel carries the payload.
    pub channel: EncodingChannel,
    /// Quantization stage (`None` releases the float model).
    pub quant: Option<QuantConfig>,
    /// Data-holder countermeasures applied to the release *after*
    /// quantization and *before* the final evaluation (`None` releases
    /// the model untouched — the undefended baseline).
    pub defense: Option<DefensePlan>,
    /// Print progress to stderr.
    pub verbose: bool,
}

impl FlowConfig {
    /// A minutes-scale preset: 16×16 images, ~100 K-weight model, a few
    /// epochs — the configuration the table benches use.
    pub fn small() -> Self {
        FlowConfig {
            seed: 7,
            arch: Architecture::ResNetLite,
            stage_channels: vec![12, 24, 48],
            blocks_per_stage: 2,
            train_fraction: 0.8333,
            epochs: 5,
            batch_size: 32,
            lr: 0.05,
            grouping: Grouping::LayerWise([0.0, 0.0, 5.0]),
            lambda_scale: 40.0,
            lambda_schedule: LambdaSchedule::Warmup,
            band: BandRule::Explicit {
                min: 50.0,
                max: 55.0,
            },
            sign: SignConvention::Positive,
            channel: EncodingChannel::Correlation,
            quant: Some(QuantConfig::new(QuantMethod::TargetCorrelated, 4)),
            defense: None,
            verbose: false,
        }
    }

    /// A seconds-scale preset for unit tests: tiny model, one epoch.
    pub fn tiny() -> Self {
        FlowConfig {
            stage_channels: vec![8, 16],
            blocks_per_stage: 1,
            epochs: 2,
            band: BandRule::FirstN,
            ..FlowConfig::small()
        }
    }

    /// A preset mirroring the paper's scale knobs as closely as the CPU
    /// substrate allows: larger model, more epochs. Expect tens of
    /// minutes per run.
    pub fn paper() -> Self {
        FlowConfig {
            stage_channels: vec![16, 32, 64],
            blocks_per_stage: 3,
            epochs: 12,
            ..FlowConfig::small()
        }
    }

    /// Validates cross-field consistency.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidConfig`](crate::FlowError::InvalidConfig)
    /// describing the first problem found.
    pub fn validate(&self) -> crate::Result<()> {
        if self.stage_channels.is_empty() || self.blocks_per_stage == 0 {
            return Err(crate::FlowError::InvalidConfig {
                reason: "model needs at least one stage and one block".to_string(),
            });
        }
        if !(0.0..1.0).contains(&self.train_fraction) || self.train_fraction == 0.0 {
            return Err(crate::FlowError::InvalidConfig {
                reason: format!("train fraction {} outside (0, 1)", self.train_fraction),
            });
        }
        if self.epochs == 0 || self.batch_size == 0 {
            return Err(crate::FlowError::InvalidConfig {
                reason: "epochs and batch size must be non-zero".to_string(),
            });
        }
        if let Some(q) = &self.quant {
            if q.bits == 0 || q.bits > 16 {
                return Err(crate::FlowError::InvalidConfig {
                    reason: format!("quantization bits {} outside 1..=16", q.bits),
                });
            }
        }
        if let BandRule::Explicit { min, max } = self.band {
            if min >= max {
                return Err(crate::FlowError::InvalidConfig {
                    reason: format!("std band [{min}, {max}) is empty"),
                });
            }
        }
        if let EncodingChannel::StatSign { lambda } = self.channel {
            if !(lambda > 0.0 && lambda.is_finite()) {
                return Err(crate::FlowError::InvalidConfig {
                    reason: format!("statsign channel lambda {lambda} must be positive and finite"),
                });
            }
            if self.quant.map(|q| q.method) == Some(QuantMethod::TargetCorrelated) {
                return Err(crate::FlowError::InvalidConfig {
                    reason: "target-correlated quantization is defined over the correlation \
                             channel's pixel stream; pick another quantizer for statsign"
                        .to_string(),
                });
            }
        }
        if let Some(plan) = &self.defense {
            plan.validate()
                .map_err(|e| crate::FlowError::InvalidConfig {
                    reason: format!("defense plan: {e}"),
                })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        FlowConfig::small().validate().unwrap();
        FlowConfig::tiny().validate().unwrap();
        FlowConfig::paper().validate().unwrap();
    }

    #[test]
    fn grouping_is_attack() {
        assert!(!Grouping::Benign.is_attack());
        assert!(!Grouping::Uniform(0.0).is_attack());
        assert!(Grouping::Uniform(3.0).is_attack());
        assert!(Grouping::LayerWise([0.0, 0.0, 5.0]).is_attack());
        assert!(!Grouping::LayerWise([0.0; 3]).is_attack());
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut c = FlowConfig::small();
        c.stage_channels.clear();
        assert!(c.validate().is_err());

        let mut c = FlowConfig::small();
        c.train_fraction = 1.5;
        assert!(c.validate().is_err());

        let mut c = FlowConfig::small();
        c.quant = Some(QuantConfig::new(QuantMethod::Linear, 0));
        assert!(c.validate().is_err());

        let mut c = FlowConfig::small();
        c.band = BandRule::Explicit { min: 5.0, max: 5.0 };
        assert!(c.validate().is_err());

        // TargetCorrelated quantization needs the correlation channel's
        // pixel stream.
        let mut c = FlowConfig::small();
        c.channel = EncodingChannel::StatSign { lambda: 30.0 };
        assert!(c.validate().is_err());
        c.quant = Some(QuantConfig::new(QuantMethod::KMeans, 4));
        c.validate().unwrap();
        c.channel = EncodingChannel::StatSign { lambda: 0.0 };
        assert!(c.validate().is_err());

        let mut c = FlowConfig::small();
        c.defense = Some(
            qce_defense::DefensePlan::new(3)
                .with(qce_defense::DefenseKind::PruneScrub { fraction: 2.0 }),
        );
        assert!(c.validate().is_err());
    }

    #[test]
    fn config_debug_is_informative() {
        let d = format!("{:?}", FlowConfig::small());
        assert!(d.contains("TargetCorrelated"));
        assert!(d.contains("LayerWise"));
    }
}
