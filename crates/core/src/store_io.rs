//! Flow-side glue for the [`qce_store`] stage cache: the cache-key
//! derivation and the [`StageReport`] section codec.
//!
//! `qce-store` sits *below* this crate in the dependency graph, so it
//! cannot know about [`StageReport`]; this module serializes it with the
//! store's public [`codec`](qce_store::codec) primitives under a section
//! kind from the downstream range
//! ([`section_kind::DOWNSTREAM_BASE`](qce_store::section_kind)).
//!
//! The cache key hash covers *both inputs* of the deterministic pipeline:
//! the FNV-1a hash of the flow configuration (the same value the run
//! manifest records) extended over a fingerprint of the dataset. Without
//! the dataset component, two runs with identical configs on different
//! data would collide on the same cache entries.

use qce_data::Dataset;
use qce_store::codec::{ByteReader, ByteWriter};
use qce_store::{section_kind, StoreError};

use crate::{FaultedImage, FaultedReport, FlowConfig, ImageReport, ImageStatus, StageReport};

/// Section kind tag for a serialized [`StageReport`].
pub(crate) const STAGE_REPORT: u16 = section_kind::DOWNSTREAM_BASE;

/// Section kind tag for a serialized [`FaultedReport`] (the defend
/// stage's checkpoint payload).
pub(crate) const FAULTED_REPORT: u16 = section_kind::DOWNSTREAM_BASE + 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The hash component of every stage cache key for a `(config, dataset)`
/// pair: the manifest's config hash, extended FNV-1a style over the
/// dataset's class count, length, per-image geometry, pixels, and labels.
pub(crate) fn flow_cache_hash(config: &FlowConfig, dataset: &Dataset) -> u64 {
    let config_hash = qce_telemetry::fnv1a(&format!("{config:?}"));
    let mut h = fnv1a_extend(FNV_OFFSET, &config_hash.to_le_bytes());
    h = fnv1a_extend(h, &(dataset.classes() as u64).to_le_bytes());
    h = fnv1a_extend(h, &(dataset.len() as u64).to_le_bytes());
    for (image, &label) in dataset.images().iter().zip(dataset.labels()) {
        h = fnv1a_extend(h, &(image.channels() as u32).to_le_bytes());
        h = fnv1a_extend(h, &(image.height() as u32).to_le_bytes());
        h = fnv1a_extend(h, &(image.width() as u32).to_le_bytes());
        h = fnv1a_extend(h, image.pixels());
        h = fnv1a_extend(h, &(label as u64).to_le_bytes());
    }
    h
}

/// Extends a flow cache hash over a fault-evaluation's extra inputs: the
/// quantizer actually applied and the fault plan. Neither lives in
/// [`FlowConfig`], so without this fold two sweep cells probing different
/// plans (or bit widths) over the same trained model would collide on one
/// cache entry and the second cell would read the first cell's report.
pub(crate) fn fault_cache_hash(
    cache_hash: u64,
    qcfg: Option<crate::QuantConfig>,
    plan: &crate::FaultPlan,
) -> u64 {
    let h = fnv1a_extend(cache_hash, format!("{qcfg:?}").as_bytes());
    fnv1a_extend(h, format!("{plan:?}").as_bytes())
}

/// Serializes a [`StageReport`] — including the observational `wall_ms`
/// and `metrics` fields, so a cache-loaded report still renders sensible
/// manifest stage stats.
pub(crate) fn report_to_bytes(report: &StageReport) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_str(&report.label).put_f32(report.accuracy);
    w.put_u64(report.images.len() as u64);
    for img in &report.images {
        w.put_u64(img.target_index as u64)
            .put_u64(img.dataset_index as u64)
            .put_u64(img.group as u64)
            .put_f32(img.mape)
            .put_f32(img.ssim)
            .put_u8(u8::from(img.recognized));
    }
    w.put_f32_slice(&report.group_correlations);
    w.put_f64(report.wall_ms);
    w.put_u64(report.metrics.len() as u64);
    for (name, value) in &report.metrics {
        w.put_str(name).put_f64(*value);
    }
    w.finish()
}

/// Reads a payload written by [`report_to_bytes`].
pub(crate) fn report_from_bytes(bytes: &[u8]) -> Result<StageReport, StoreError> {
    let mut r = ByteReader::new(bytes);
    let label = r.str()?;
    let accuracy = r.f32()?;
    let image_count = r.len_u64()?;
    let mut images = Vec::with_capacity(image_count.min(bytes.len() / 33));
    for _ in 0..image_count {
        images.push(ImageReport {
            target_index: r.len_u64()?,
            dataset_index: r.len_u64()?,
            group: r.len_u64()?,
            mape: r.f32()?,
            ssim: r.f32()?,
            recognized: r.u8()? != 0,
        });
    }
    let group_correlations = r.f32_vec()?;
    let wall_ms = r.f64()?;
    let metric_count = r.len_u64()?;
    let mut metrics = Vec::with_capacity(metric_count.min(bytes.len() / 16));
    for _ in 0..metric_count {
        let name = r.str()?;
        let value = r.f64()?;
        metrics.push((name, value));
    }
    r.expect_empty()?;
    Ok(StageReport {
        label,
        accuracy,
        images,
        group_correlations,
        wall_ms,
        metrics,
    })
}

/// Serializes a [`FaultedReport`] (the defend-stage checkpoint payload).
pub(crate) fn faulted_to_bytes(report: &FaultedReport) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_str(&report.label).put_f32(report.accuracy);
    w.put_u64(report.images.len() as u64);
    for img in &report.images {
        w.put_u64(img.target_index as u64).put_u64(img.group as u64);
        match &img.status {
            ImageStatus::Ok => {
                w.put_u8(0);
            }
            ImageStatus::Degraded { repaired_pixels } => {
                w.put_u8(1).put_u64(*repaired_pixels as u64);
            }
            ImageStatus::Failed { reason } => {
                w.put_u8(2).put_str(reason);
            }
        }
        put_opt_f32(&mut w, img.mape);
        put_opt_f32(&mut w, img.ssim);
    }
    w.put_f32(report.mean_confidence);
    w.finish()
}

/// Reads a payload written by [`faulted_to_bytes`].
pub(crate) fn faulted_from_bytes(bytes: &[u8]) -> Result<FaultedReport, StoreError> {
    let mut r = ByteReader::new(bytes);
    let label = r.str()?;
    let accuracy = r.f32()?;
    let image_count = r.len_u64()?;
    let mut images = Vec::with_capacity(image_count.min(bytes.len() / 19));
    for _ in 0..image_count {
        let target_index = r.len_u64()?;
        let group = r.len_u64()?;
        let status = match r.u8()? {
            0 => ImageStatus::Ok,
            1 => ImageStatus::Degraded {
                repaired_pixels: r.len_u64()?,
            },
            2 => ImageStatus::Failed { reason: r.str()? },
            tag => {
                return Err(StoreError::Payload {
                    reason: format!("unknown image status tag {tag}"),
                })
            }
        };
        images.push(FaultedImage {
            target_index,
            group,
            status,
            mape: opt_f32(&mut r)?,
            ssim: opt_f32(&mut r)?,
        });
    }
    let mean_confidence = r.f32()?;
    r.expect_empty()?;
    Ok(FaultedReport {
        label,
        accuracy,
        images,
        mean_confidence,
    })
}

fn put_opt_f32(w: &mut ByteWriter, v: Option<f32>) {
    match v {
        Some(v) => {
            w.put_u8(1).put_f32(v);
        }
        None => {
            w.put_u8(0);
        }
    }
}

fn opt_f32(r: &mut ByteReader<'_>) -> Result<Option<f32>, StoreError> {
    match r.u8()? {
        0 => Ok(None),
        _ => Ok(Some(r.f32()?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use qce_data::SynthCifar;

    fn f32_bits() -> impl Strategy<Value = f32> {
        any::<u32>().prop_map(f32::from_bits)
    }

    // The vendored proptest has no tuple strategies, so a report is
    // assembled from parallel per-field vectors zipped to a common length.
    fn build_report(
        label: Vec<u8>,
        accuracy: f32,
        quality: Vec<f32>,
        recognized: Vec<bool>,
        group_correlations: Vec<f32>,
    ) -> StageReport {
        let images = quality
            .iter()
            .zip(&recognized)
            .enumerate()
            .map(|(i, (&q, &rec))| ImageReport {
                target_index: i,
                dataset_index: i * 7 + 3,
                group: i % 3,
                mape: q,
                ssim: q * 0.5 - 1.0,
                recognized: rec,
            })
            .collect();
        StageReport {
            label: label.into_iter().map(|b| char::from(b & 0x7F)).collect(),
            accuracy,
            images,
            group_correlations,
            wall_ms: 12.5,
            metrics: vec![("eval.accuracy".to_string(), 0.5)],
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn stage_report_round_trip_is_identity(
            label in prop::collection::vec(any::<u8>(), 0..12),
            accuracy in f32_bits(),
            quality in prop::collection::vec(f32_bits(), 0..8),
            recognized in prop::collection::vec(any::<bool>(), 8),
            group_correlations in prop::collection::vec(f32_bits(), 0..6),
        ) {
            let report = build_report(label, accuracy, quality, recognized, group_correlations);
            let back = report_from_bytes(&report_to_bytes(&report)).unwrap();
            // StageReport::eq ignores observational fields; check the lot.
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(&back.label, &report.label);
            prop_assert_eq!(back.accuracy.to_bits(), report.accuracy.to_bits());
            prop_assert_eq!(back.images.len(), report.images.len());
            for (a, b) in back.images.iter().zip(&report.images) {
                prop_assert_eq!(a.target_index, b.target_index);
                prop_assert_eq!(a.dataset_index, b.dataset_index);
                prop_assert_eq!(a.group, b.group);
                prop_assert_eq!(a.mape.to_bits(), b.mape.to_bits());
                prop_assert_eq!(a.ssim.to_bits(), b.ssim.to_bits());
                prop_assert_eq!(a.recognized, b.recognized);
            }
            prop_assert_eq!(
                bits(&back.group_correlations),
                bits(&report.group_correlations)
            );
            prop_assert_eq!(back.wall_ms, report.wall_ms);
            prop_assert_eq!(&back.metrics, &report.metrics);
        }

        #[test]
        fn stage_report_truncations_error(
            label in prop::collection::vec(any::<u8>(), 0..12),
            quality in prop::collection::vec(f32_bits(), 1..8),
            recognized in prop::collection::vec(any::<bool>(), 8),
            cut in any::<usize>(),
        ) {
            let report = build_report(label, 0.5, quality, recognized, vec![0.9]);
            let bytes = report_to_bytes(&report);
            let len = cut % bytes.len().max(1);
            if len < bytes.len() {
                prop_assert!(report_from_bytes(&bytes[..len]).is_err());
            }
        }
    }

    #[test]
    fn faulted_report_round_trips_and_rejects_damage() {
        let report = FaultedReport {
            label: "defended seed 7".to_string(),
            accuracy: 0.42,
            images: vec![
                FaultedImage {
                    target_index: 0,
                    group: 0,
                    status: ImageStatus::Ok,
                    mape: Some(3.5),
                    ssim: Some(0.9),
                },
                FaultedImage {
                    target_index: 1,
                    group: 2,
                    status: ImageStatus::Degraded {
                        repaired_pixels: 17,
                    },
                    mape: Some(12.0),
                    ssim: None,
                },
                FaultedImage {
                    target_index: 2,
                    group: 1,
                    status: ImageStatus::Failed {
                        reason: "crc".to_string(),
                    },
                    mape: None,
                    ssim: None,
                },
            ],
            mean_confidence: 0.77,
        };
        let bytes = faulted_to_bytes(&report);
        assert_eq!(faulted_from_bytes(&bytes).unwrap(), report);
        // Truncation errors instead of panicking.
        assert!(faulted_from_bytes(&bytes[..bytes.len() - 1]).is_err());
        // An unknown status tag is a payload error.
        let mut w = ByteWriter::new();
        w.put_str("x").put_f32(0.0);
        w.put_u64(1);
        w.put_u64(0).put_u64(0).put_u8(9);
        assert!(faulted_from_bytes(&w.finish()).is_err());
    }

    #[test]
    fn cache_hash_separates_configs_and_datasets() {
        let data_a = SynthCifar::new(8).classes(4).generate(24, 5).unwrap();
        let data_b = SynthCifar::new(8).classes(4).generate(24, 6).unwrap();
        let cfg_a = FlowConfig::tiny();
        let cfg_b = FlowConfig {
            epochs: cfg_a.epochs + 1,
            ..FlowConfig::tiny()
        };
        let base = flow_cache_hash(&cfg_a, &data_a);
        assert_eq!(base, flow_cache_hash(&cfg_a, &data_a));
        assert_ne!(base, flow_cache_hash(&cfg_b, &data_a));
        assert_ne!(base, flow_cache_hash(&cfg_a, &data_b));
    }

    // Regression: the λ schedule is a swept axis; two cells differing
    // only in it must land on distinct cache entries.
    #[test]
    fn cache_hash_separates_lambda_schedules() {
        let data = SynthCifar::new(8).classes(4).generate(24, 5).unwrap();
        let warmup = FlowConfig::tiny();
        let constant = FlowConfig {
            lambda_schedule: crate::LambdaSchedule::Constant,
            ..FlowConfig::tiny()
        };
        assert_ne!(
            flow_cache_hash(&warmup, &data),
            flow_cache_hash(&constant, &data)
        );
    }

    // Regression: fault plans and the applied quantizer live outside
    // FlowConfig, so the faulted-evaluation key must fold them in — two
    // distinct cells never collide on a cache entry.
    #[test]
    fn fault_cache_hash_separates_plans_and_quantizers() {
        use crate::{FaultKind, FaultPlan, QuantConfig, QuantMethod};
        let plan_a = FaultPlan::new(3).with(FaultKind::BitFlip { rate: 0.001 });
        let plan_b = FaultPlan::new(3).with(FaultKind::BitFlip { rate: 0.002 });
        let q4 = Some(QuantConfig::new(QuantMethod::TargetCorrelated, 4));
        let q8 = Some(QuantConfig::new(QuantMethod::TargetCorrelated, 8));
        let base = fault_cache_hash(7, q4, &plan_a);
        assert_eq!(base, fault_cache_hash(7, q4, &plan_a));
        assert_ne!(base, fault_cache_hash(7, q4, &plan_b));
        assert_ne!(base, fault_cache_hash(7, q8, &plan_a));
        assert_ne!(base, fault_cache_hash(7, None, &plan_a));
        assert_ne!(base, fault_cache_hash(8, q4, &plan_a));
    }
}
