use std::fmt;

use qce_attack::AttackError;
use qce_data::DataError;
use qce_defense::DefenseError;
use qce_nn::NnError;
use qce_quant::QuantError;

use crate::faults::FaultError;

/// Error type for the end-to-end attack flow.
#[derive(Debug)]
#[non_exhaustive]
pub enum FlowError {
    /// Dataset generation/selection failed.
    Data(DataError),
    /// Model construction or training failed.
    Nn(NnError),
    /// Attack planning, regularization or decoding failed.
    Attack(AttackError),
    /// Quantization or fine-tuning failed.
    Quant(QuantError),
    /// Fault injection on a release failed.
    Faults(FaultError),
    /// A data-holder countermeasure failed.
    Defense(DefenseError),
    /// The flow configuration is inconsistent.
    InvalidConfig {
        /// Why the configuration is rejected.
        reason: String,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Data(e) => write!(f, "data stage failed: {e}"),
            FlowError::Nn(e) => write!(f, "training stage failed: {e}"),
            FlowError::Attack(e) => write!(f, "attack stage failed: {e}"),
            FlowError::Quant(e) => write!(f, "quantization stage failed: {e}"),
            FlowError::Faults(e) => write!(f, "fault injection failed: {e}"),
            FlowError::Defense(e) => write!(f, "defense stage failed: {e}"),
            FlowError::InvalidConfig { reason } => write!(f, "invalid flow config: {reason}"),
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::Data(e) => Some(e),
            FlowError::Nn(e) => Some(e),
            FlowError::Attack(e) => Some(e),
            FlowError::Quant(e) => Some(e),
            FlowError::Faults(e) => Some(e),
            FlowError::Defense(e) => Some(e),
            FlowError::InvalidConfig { .. } => None,
        }
    }
}

impl From<DataError> for FlowError {
    fn from(e: DataError) -> Self {
        FlowError::Data(e)
    }
}

impl From<NnError> for FlowError {
    fn from(e: NnError) -> Self {
        FlowError::Nn(e)
    }
}

impl From<AttackError> for FlowError {
    fn from(e: AttackError) -> Self {
        FlowError::Attack(e)
    }
}

impl From<QuantError> for FlowError {
    fn from(e: QuantError) -> Self {
        FlowError::Quant(e)
    }
}

impl From<FaultError> for FlowError {
    fn from(e: FaultError) -> Self {
        FlowError::Faults(e)
    }
}

impl From<DefenseError> for FlowError {
    fn from(e: DefenseError) -> Self {
        FlowError::Defense(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_source() {
        use std::error::Error;
        let e: FlowError = DataError::EmptySelection { stage: "x" }.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("data stage"));
        let e: FlowError = NnError::InvalidConfig {
            reason: "y".to_string(),
        }
        .into();
        assert!(matches!(e, FlowError::Nn(_)));
        let e: FlowError = FaultError::InvalidFault {
            reason: "z".to_string(),
        }
        .into();
        assert!(matches!(e, FlowError::Faults(_)));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("fault injection"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FlowError>();
    }
}
